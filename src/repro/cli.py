"""Command-line interface: run experiments and regenerate paper figures.

Usage (installed as ``python -m repro``):

    python -m repro list
    python -m repro run --workload sort --scale 0.05 --scheduler pythia --ratio 10
    python -m repro compare --workload nutch --ratio 20
    python -m repro figure fig3 --scale 0.2 --seeds 1
    python -m repro sweep --workload sort --workers 4 --cache-dir .sweep-cache
    python -m repro forecast --seeds 1 2 --ratios 5
    python -m repro metrics --workload sort --ratio 10
    python -m repro trace --workload sort --subsystem allocator
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro import obs

from repro.analysis.report import format_table
from repro.analysis.speedup import speedup
from repro.analysis.timeline import job_timeline, phase_fractions, render_timeline
from repro.experiments.common import SCHEDULERS, run_experiment
from repro.workloads import HIBENCH, make_workload

FIGURES = ("fig1a", "fig1b", "fig3", "fig4", "fig5", "overhead", "ablations")


def _parse_ratio(value: str) -> Optional[float]:
    if value.lower() in ("none", "0"):
        return None
    return float(value.removeprefix("1:"))


def _cmd_list(_args: argparse.Namespace) -> int:
    print("workloads: ", ", ".join(sorted(HIBENCH)))
    print("schedulers:", ", ".join(SCHEDULERS))
    print("figures:   ", ", ".join(FIGURES))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    spec = make_workload(args.workload, scale=args.scale)
    pythia_config = None
    if getattr(args, "forecast_mode", "off") != "off":
        from repro.core.config import PythiaConfig

        pythia_config = PythiaConfig(forecast_mode=args.forecast_mode)
    res = run_experiment(
        spec,
        scheduler=args.scheduler,
        ratio=args.ratio,
        seed=args.seed,
        pythia_config=pythia_config,
    )
    print(f"{spec.name} under {args.scheduler}"
          f" (oversubscription {'none' if args.ratio is None else f'1:{args.ratio:g}'}):"
          f" JCT = {res.jct:.1f}s")
    fr = phase_fractions(res.run)
    print("phase coverage: " + ", ".join(f"{k} {v:.0%}" for k, v in fr.items()))
    if res.policy_stats:
        print("scheduler stats:", res.policy_stats)
    if args.timeline:
        print(render_timeline(job_timeline(res.run)))
    if args.export is not None:
        from repro.analysis.export import export_run

        path = export_run(res, args.export)
        print(f"measurements written to {path}")
    return 0


def _cmd_mix(args: argparse.Namespace) -> int:
    from repro.experiments.mix import run_mix
    from repro.workloads.mix import synthesize_mix

    rows = []
    for scheduler in args.schedulers:
        res = run_mix(
            synthesize_mix(n_jobs=args.jobs, seed=args.seed),
            scheduler=scheduler,
            ratio=args.ratio,
            seed=args.seed,
        )
        rows.append((scheduler, res.mean_jct, res.p95_jct, res.makespan))
    print(
        format_table(
            ["scheduler", "mean JCT (s)", "p95 JCT (s)", "makespan (s)"], rows
        )
    )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    rows = []
    for scheduler in args.schedulers:
        jcts = [
            run_experiment(
                make_workload(args.workload, scale=args.scale),
                scheduler=scheduler,
                ratio=args.ratio,
                seed=s,
            ).jct
            for s in args.seeds
        ]
        rows.append((scheduler, sum(jcts) / len(jcts)))
    base = rows[0][1]
    print(
        format_table(
            ["scheduler", "JCT (s)", "vs first (%)"],
            [(name, jct, 100.0 * speedup(base, jct)) for name, jct in rows],
        )
    )
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    name = args.name
    if name == "fig1a":
        from repro.experiments.fig1a_sequence import run_fig1a

        print(run_fig1a().render(width=90))
    elif name == "fig1b":
        from repro.experiments.fig1b_adversarial import run_fig1b

        for sched in ("ecmp", "pythia"):
            r = run_fig1b(sched)
            print(
                f"{sched}: flow-1 via {r.flow1_trunk} in {r.flow1_seconds:.1f}s, "
                f"flow-2 via {r.flow2_trunk} in {r.flow2_seconds:.1f}s"
            )
    elif name == "fig3":
        from repro.experiments.fig3_nutch import render_fig3, run_fig3

        print(render_fig3(run_fig3(pages=5e6 * args.scale, seeds=args.seeds)))
    elif name == "fig4":
        from repro.experiments.fig4_sort import render_fig4, run_fig4

        print(render_fig4(run_fig4(input_gb=48.0 * args.scale, seeds=args.seeds)))
    elif name == "fig5":
        from repro.experiments.fig5_prediction import run_fig5

        print(run_fig5(input_gb=60.0 * args.scale, seed=args.seeds[0]).render())
    elif name == "overhead":
        from repro.experiments.overhead import render_overhead, run_overhead
        from repro.workloads import nutch_indexing_job, sort_job

        rows = [
            run_overhead(lambda: sort_job(input_gb=24.0 * args.scale), seed=args.seeds[0]),
            run_overhead(lambda: nutch_indexing_job(pages=5e6 * args.scale), seed=args.seeds[0]),
        ]
        print(render_overhead(rows))
    elif name == "ablations":
        from repro.experiments import ablations as ab

        print(ab.render_ablation("A1 — aggregation", ab.ablate_aggregation(seed=args.seeds[0])))
        print(ab.render_ablation("A1b — allocators", ab.ablate_allocators(seed=args.seeds[0])))
        print(ab.render_ablation("A2 — schedulers", ab.ablate_schedulers(seed=args.seeds[0])))
        print(ab.render_ablation("A3a — k paths", ab.ablate_k_paths(seed=args.seeds[0])))
        print(ab.render_ablation("A3b — install latency", ab.ablate_install_latency(seed=args.seeds[0])))
    else:  # pragma: no cover — argparse restricts choices
        raise ValueError(name)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    """Run a (ratio x scheduler x seed) grid on the parallel runner."""
    from repro.analysis.speedup import speedup
    from repro.runner import run_cells, sweep_grid

    if args.arrival_rates:
        return _fleet_sweep(args)
    cells = sweep_grid(
        lambda: make_workload(args.workload, scale=args.scale),
        schedulers=args.schedulers,
        ratios=args.ratios,
        seeds=args.seeds,
    )
    report = run_cells(cells, workers=args.workers, cache_dir=args.cache_dir)

    per_ratio = len(args.schedulers) * len(args.seeds)
    means: dict[tuple[int, str], list[float]] = {}
    for idx, (cell, summary) in enumerate(zip(cells, report.summaries)):
        means.setdefault((idx // per_ratio, cell.scheduler), []).append(summary.jct)
    rows = []
    for i, ratio in enumerate(args.ratios):
        label = "none" if ratio is None else f"1:{ratio:g}"
        jcts = [
            sum(means[(i, s)]) / len(means[(i, s)]) for s in args.schedulers
        ]
        rows.append((label, *jcts, 100.0 * speedup(jcts[0], jcts[-1])))
    headers = (
        ["oversub"]
        + [f"{s} (s)" for s in args.schedulers]
        + [f"{args.schedulers[-1]} vs {args.schedulers[0]} (%)"]
    )
    print(format_table(headers, rows))
    print(
        f"cells: {len(cells)} total, {report.cache_hits} from cache, "
        f"{report.executed} executed ({report.invalidations} invalidated) "
        f"in {report.elapsed_seconds:.1f}s with {args.workers} worker(s)"
    )
    if args.cache_dir is not None:
        print(
            f"cache: {args.cache_dir} (hit rate {100.0 * report.hit_rate:.0f}%, "
            f"manifest {report.manifest_path})"
        )
    if args.min_cache_hit_rate is not None and report.hit_rate < args.min_cache_hit_rate:
        print(
            f"error: cache hit rate {report.hit_rate:.2f} below required "
            f"{args.min_cache_hit_rate:.2f}",
            file=sys.stderr,
        )
        return 1
    return 0


def _fleet_sweep(args: argparse.Namespace) -> int:
    """Multi-tenant mode of ``repro sweep``: arrival-rate x scheduler."""
    from repro.experiments.multi_tenant import format_fleet_table, multi_tenant_sweep

    ratio = args.ratios[0] if args.ratios else 10.0
    rows, report = multi_tenant_sweep(
        arrival_rates=args.arrival_rates,
        schedulers=args.schedulers,
        seeds=args.seeds,
        ratio=ratio,
        n_jobs=args.fleet_jobs,
        workers=args.workers,
        cache_dir=args.cache_dir,
    )
    print(format_fleet_table(rows))
    print(
        f"fleet cells: {len(rows)} total, {report.cache_hits} from cache, "
        f"{report.executed} executed ({report.invalidations} invalidated) "
        f"in {report.elapsed_seconds:.1f}s with {args.workers} worker(s)"
    )
    if args.min_cache_hit_rate is not None and report.hit_rate < args.min_cache_hit_rate:
        print(
            f"error: cache hit rate {report.hit_rate:.2f} below required "
            f"{args.min_cache_hit_rate:.2f}",
            file=sys.stderr,
        )
        return 1
    return 0


def _telemetry_run(args: argparse.Namespace, tracer: Optional[obs.Tracer] = None):
    """Run one instrumented experiment for the telemetry commands."""
    registry = obs.MetricsRegistry()
    spec = make_workload(args.workload, scale=args.scale)
    res = run_experiment(
        spec,
        scheduler=args.scheduler,
        ratio=args.ratio,
        seed=args.seed,
        registry=registry,
        tracer=tracer,
    )
    return registry, res


def _cmd_metrics(args: argparse.Namespace) -> int:
    registry, res = _telemetry_run(args)
    metrics = registry.snapshot()
    hits = metrics.get("routing.kpath_cache_hits", {}).get("value", 0)
    misses = metrics.get("routing.kpath_cache_misses", {}).get("value", 0)
    if hits + misses:
        # derived rate next to the raw counters: the one-glance health
        # number for the routing memo (1.0 = fully warm control plane)
        metrics["routing.kpath_cache_hit_rate"] = {
            "type": "derived",
            "value": hits / (hits + misses),
        }
    snapshot = {
        "run": {
            "workload": res.run.spec.name,
            "scheduler": res.scheduler,
            "ratio": res.ratio,
            "seed": res.seed,
            "jct_seconds": res.jct,
        },
        "metrics": metrics,
    }
    print(json.dumps(snapshot, indent=2 if args.indent else None))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    tracer = obs.Tracer(capacity=args.capacity)
    _registry, _res = _telemetry_run(args, tracer=tracer)
    events = tracer.events(subsystem=args.subsystem, kind=args.kind)
    if args.limit is not None:
        events = events[-args.limit:]
    for ev in events:
        print(json.dumps(ev.to_dict()))
    if tracer.dropped:
        print(
            f"note: ring buffer dropped {tracer.dropped} older events "
            f"(capacity {tracer.capacity})",
            file=sys.stderr,
        )
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Run one job under a seeded fault schedule with invariants on."""
    from repro.faults import InvariantViolation, random_schedule

    spec = make_workload(args.workload, scale=args.scale)
    tracer = obs.Tracer()

    def schedule_factory(topo):
        return random_schedule(
            topo,
            seed=args.chaos_seed,
            flaps=args.flaps,
            switch_outages=args.switch_outages,
            controller_outages=args.outages,
            stats_freezes=args.freezes,
            prediction_faults=args.prediction_faults,
            horizon=(args.horizon[0], args.horizon[1]),
        )

    try:
        res = run_experiment(
            spec,
            scheduler=args.scheduler,
            ratio=args.ratio,
            seed=args.seed,
            tracer=tracer,
            invariants=not args.no_invariants,
            chaos=schedule_factory,
        )
    except InvariantViolation as exc:
        print(f"INVARIANT VIOLATION during {spec.name} under {args.scheduler}:")
        print(exc)
        return 1
    print(
        f"{spec.name} under {args.scheduler} survived chaos seed "
        f"{args.chaos_seed}: JCT = {res.jct:.1f}s"
    )
    if res.faults_injected:
        injected = ", ".join(
            f"{kind} x{count}" for kind, count in sorted(res.faults_injected.items())
        )
        print(f"faults injected: {injected}")
    else:
        print("faults injected: none (schedule was empty)")
    if res.invariants:
        print(
            f"invariants: {res.invariants['checkpoints']} checkpoints, "
            f"{res.invariants['checks_run']} checks, "
            f"{res.invariants['violations']} violations"
        )
    if res.policy_stats:
        print("degradation stats:", res.policy_stats)
    return 0


def _cmd_forecast(args: argparse.Namespace) -> int:
    """Forecast-efficacy sweeps (tentpole evaluation)."""
    from repro.experiments.forecast_efficacy import (
        forecast_efficacy_sweep,
        forecast_lead_time_curve,
        format_efficacy,
        format_lead_time,
    )
    from repro.workloads import sort_job

    def spec_factory():
        return sort_job(input_gb=16.0 * args.scale)

    rows = forecast_efficacy_sweep(
        spec_factory=spec_factory,
        modes=args.modes,
        ratios=args.ratios,
        seeds=args.seeds,
        workers=args.workers,
        cache_dir=args.cache_dir,
    )
    print(format_efficacy(rows))
    if args.lead_times:
        curve = forecast_lead_time_curve(
            mode=args.lead_time_mode,
            horizons=args.lead_times,
            spec_factory=spec_factory,
            ratio=args.ratios[0],
            seeds=args.seeds,
            workers=args.workers,
            cache_dir=args.cache_dir,
        )
        print()
        print(format_lead_time(curve))
    return 0


def _cmd_lp(args: argparse.Namespace) -> int:
    """LP re-optimization comparison sweep (needs the [lp] extra)."""
    from repro.core.lp_allocator import HAVE_SCIPY
    from repro.experiments.lp_comparison import (
        bench_payload,
        format_lp_comparison,
        lp_comparison_sweep,
    )

    if not HAVE_SCIPY:
        print(
            "the LP variants need scipy; install the [lp] extra "
            "(pip install 'repro[lp]')",
            file=sys.stderr,
        )
        return 2
    rows = lp_comparison_sweep(
        ratios=args.ratios,
        seeds=args.seeds,
        workers=args.workers,
        cache_dir=args.cache_dir,
    )
    print(format_lp_comparison(rows))
    if args.export:
        payload = bench_payload(rows, ratios=args.ratios, seeds=args.seeds)
        with open(args.export, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.export}")
    return 0


def _cmd_record(args: argparse.Namespace) -> int:
    """Run one Pythia job with message recording on and save the tape."""
    from repro.core.config import PythiaConfig
    from repro.pipeline import MessageTape

    spec = make_workload(args.workload, scale=args.scale)
    res = run_experiment(
        spec,
        scheduler="pythia",
        ratio=args.ratio,
        seed=args.seed,
        pythia_config=PythiaConfig(record_messages=True),
    )
    tape = MessageTape.from_collector(res.collector)
    tape.save(args.out)
    print(
        f"recorded {len(tape)} messages over {tape.duration:.1f}s "
        f"({spec.name}, seed {args.seed}) -> {args.out}"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the controller as a staged-pipeline service.

    With ``--tape`` the tape is replayed in-process at ``--rate``; with
    ``--port`` the service accepts the same JSONL stream over TCP from
    ``repro replay --connect`` until an eof record arrives.  Either way
    the service drains fully and prints its stats ledger as JSON.
    """
    from repro.core.config import PythiaConfig
    from repro.pipeline import MessageTape, PipelineService, ReplayClient
    from repro.pipeline.service import TOPOLOGIES, serve_tcp

    if args.tape is None and args.port is None:
        print("serve needs --tape FILE (in-process) or --port N (TCP)",
              file=sys.stderr)
        return 2
    config = PythiaConfig(
        pipeline_mode="staged",
        pipeline_shards=args.shards,
        pipeline_queue_capacity=args.queue_capacity,
        pipeline_batch_max=args.batch_max,
        pipeline_coalesce=not args.no_coalesce,
    )
    service = PipelineService(
        topology_factory=TOPOLOGIES[args.topology], config=config
    )
    service.start()
    client_stats = None
    try:
        if args.tape is not None:
            tape = MessageTape.load(args.tape)
            client_stats = ReplayClient(tape, rate=args.rate).run(service.submit)
        else:
            done = serve_tcp(service, args.port)
            print(f"listening on 127.0.0.1:{args.port} "
                  "(send an eof record to finish)", file=sys.stderr)
            done.wait()
        drained = service.drain(timeout=args.drain_timeout)
    finally:
        service.stop()
    snap = service.snapshot()
    if client_stats is not None:
        snap["client"] = client_stats
    snap["drained"] = drained
    print(json.dumps(snap, indent=2 if args.indent else None))
    return 0 if drained else 1


def _cmd_replay(args: argparse.Namespace) -> int:
    """Stream a recorded tape to a running ``repro serve --port``."""
    from repro.pipeline import MessageTape
    from repro.pipeline.service import replay_tcp

    host, _, port = args.connect.rpartition(":")
    tape = MessageTape.load(args.tape)
    stats = replay_tcp(tape, host or "127.0.0.1", int(port), rate=args.rate)
    print(json.dumps(stats))
    return 0


def _add_telemetry_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--workload", default="sort", choices=sorted(HIBENCH))
    p.add_argument("--scale", type=float, default=0.05)
    p.add_argument("--scheduler", default="pythia", choices=SCHEDULERS)
    p.add_argument("--ratio", type=_parse_ratio, default=10.0,
                   help="over-subscription 1:N (e.g. 10 or 1:10; none = unloaded)")
    p.add_argument("--seed", type=int, default=1)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Pythia (IPDPS 2014) reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads, schedulers and figures")

    run_p = sub.add_parser("run", help="run one workload under one scheduler")
    run_p.add_argument("--workload", default="sort", choices=sorted(HIBENCH))
    run_p.add_argument("--scale", type=float, default=0.05)
    run_p.add_argument("--scheduler", default="pythia", choices=SCHEDULERS)
    run_p.add_argument("--ratio", type=_parse_ratio, default=None,
                       help="over-subscription 1:N (e.g. 10 or 1:10; none = unloaded)")
    run_p.add_argument("--seed", type=int, default=1)
    run_p.add_argument("--forecast-mode", default="off",
                       choices=["off", "ewma", "holt_winters", "ar"],
                       help="score allocations against forecast link load "
                            "and reroute elephants proactively (pythia only)")
    run_p.add_argument("--timeline", action="store_true",
                       help="print the job's sequence diagram")
    run_p.add_argument("--export", default=None, metavar="FILE",
                       help="write the run's measurements as JSON")

    cmp_p = sub.add_parser("compare", help="compare schedulers on one workload")
    cmp_p.add_argument("--workload", default="sort", choices=sorted(HIBENCH))
    cmp_p.add_argument("--scale", type=float, default=0.05)
    cmp_p.add_argument("--ratio", type=_parse_ratio, default=10.0)
    cmp_p.add_argument("--seeds", type=int, nargs="+", default=[1, 2])
    cmp_p.add_argument("--schedulers", nargs="+", default=list(SCHEDULERS))

    fig_p = sub.add_parser("figure", help="regenerate one paper figure")
    fig_p.add_argument("name", choices=FIGURES)
    fig_p.add_argument("--scale", type=float, default=0.2)
    fig_p.add_argument("--seeds", type=int, nargs="+", default=[1])

    met_p = sub.add_parser("metrics", help="run one job and emit its metrics as JSON")
    _add_telemetry_args(met_p)
    met_p.add_argument("--indent", action="store_true", help="pretty-print the JSON")

    trc_p = sub.add_parser("trace", help="run one job and emit its trace as JSON lines")
    _add_telemetry_args(trc_p)
    trc_p.add_argument("--capacity", type=int, default=65536,
                       help="trace ring-buffer capacity (oldest events drop)")
    trc_p.add_argument("--limit", type=int, default=None,
                       help="print only the last N events")
    trc_p.add_argument("--subsystem", default=None,
                       help="filter by subsystem (sim, network, allocator, ...)")
    trc_p.add_argument("--kind", default=None,
                       help="filter by event kind (flow_start, placement, ...)")

    chaos_p = sub.add_parser(
        "chaos", help="fault-injection runs with the invariant checker on"
    )
    chaos_sub = chaos_p.add_subparsers(dest="chaos_command", required=True)
    chr_p = chaos_sub.add_parser(
        "run", help="run one workload under a seeded random fault schedule"
    )
    _add_telemetry_args(chr_p)
    chr_p.add_argument("--chaos-seed", type=int, default=7,
                       help="seed of the random fault schedule")
    chr_p.add_argument("--flaps", type=int, default=2,
                       help="number of inter-switch link flaps")
    chr_p.add_argument("--switch-outages", type=int, default=0,
                       help="number of core/trunk switch outages")
    chr_p.add_argument("--outages", type=int, default=1,
                       help="number of controller crash/restore cycles")
    chr_p.add_argument("--freezes", type=int, default=1,
                       help="number of link-stats staleness windows")
    chr_p.add_argument("--prediction-faults", type=int, default=0,
                       help="number of prediction loss/error windows")
    chr_p.add_argument("--horizon", type=float, nargs=2, default=[5.0, 40.0],
                       metavar=("LO", "HI"),
                       help="fault injection window (seconds)")
    chr_p.add_argument("--no-invariants", action="store_true",
                       help="skip the runtime invariant checker")

    sweep_p = sub.add_parser(
        "sweep",
        help="run a ratio x scheduler x seed grid on the parallel runner "
             "with the content-addressed result cache",
    )
    sweep_p.add_argument("--workload", default="sort", choices=sorted(HIBENCH))
    sweep_p.add_argument("--scale", type=float, default=0.05)
    sweep_p.add_argument("--ratios", type=_parse_ratio, nargs="+",
                         default=[None, 5.0, 10.0, 20.0],
                         help="over-subscription points (e.g. none 5 10 20)")
    sweep_p.add_argument("--seeds", type=int, nargs="+", default=[1, 2, 3])
    sweep_p.add_argument("--schedulers", nargs="+", default=["ecmp", "pythia"],
                         choices=SCHEDULERS)
    sweep_p.add_argument("--workers", type=int, default=1,
                         help="process-pool width (1 = in-process serial)")
    sweep_p.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="content-addressed result cache root "
                              "(repeat sweeps are served from it)")
    sweep_p.add_argument("--min-cache-hit-rate", type=float, default=None,
                         metavar="FRAC",
                         help="exit non-zero if the cache served less than "
                              "this fraction of cells (CI guard)")
    sweep_p.add_argument("--arrival-rates", type=float, nargs="+", default=None,
                         metavar="RATE",
                         help="multi-tenant mode: sweep a Poisson job stream "
                              "at these arrival rates (jobs/s) instead of the "
                              "single-job grid; reports fleet p50/p99 JCT, "
                              "slowdown and Jain fairness")
    sweep_p.add_argument("--fleet-jobs", type=int, default=5,
                         help="jobs per fleet workload in --arrival-rates mode")

    fc_p = sub.add_parser(
        "forecast",
        help="forecast-efficacy sweep: ecmp/hedera/pythia vs pythia+forecast "
             "on the step-background scenario",
    )
    fc_p.add_argument("--scale", type=float, default=0.05,
                      help="sort input = 16 GB x scale")
    fc_p.add_argument("--modes", nargs="+",
                      default=["ewma", "holt_winters", "ar"],
                      choices=["ewma", "holt_winters", "ar"])
    fc_p.add_argument("--ratios", type=_parse_ratio, nargs="+", default=[5.0, 10.0])
    fc_p.add_argument("--seeds", type=int, nargs="+", default=[1, 2, 3])
    fc_p.add_argument("--workers", type=int, default=1)
    fc_p.add_argument("--cache-dir", default=None, metavar="DIR")
    fc_p.add_argument("--lead-times", type=float, nargs="+", default=None,
                      metavar="H",
                      help="also sweep these forecast horizons (seconds) "
                           "for the accuracy-vs-lead-time curve")
    fc_p.add_argument("--lead-time-mode", default="holt_winters",
                      choices=["ewma", "holt_winters", "ar"],
                      help="forecaster for the lead-time curve")

    lp_p = sub.add_parser(
        "lp",
        help="LP re-optimization sweep: greedy baselines vs the periodic "
             "global min-MLU / max-throughput re-solve (needs the [lp] extra)",
    )
    lp_p.add_argument("--ratios", type=_parse_ratio, nargs="+", default=[5.0, 10.0])
    lp_p.add_argument("--seeds", type=int, nargs="+", default=[1, 2])
    lp_p.add_argument("--workers", type=int, default=1)
    lp_p.add_argument("--cache-dir", default=None, metavar="DIR")
    lp_p.add_argument("--export", default=None, metavar="FILE",
                      help="write the sweep as BENCH_lp.json-style JSON")

    mix_p = sub.add_parser("mix", help="run a multi-tenant job stream")
    mix_p.add_argument("--jobs", type=int, default=8)
    mix_p.add_argument("--ratio", type=_parse_ratio, default=10.0)
    mix_p.add_argument("--seed", type=int, default=1)
    mix_p.add_argument("--schedulers", nargs="+", default=["ecmp", "pythia"])

    rec_p = sub.add_parser(
        "record", help="run one job and save its prediction stream as a tape"
    )
    _add_telemetry_args(rec_p)
    rec_p.add_argument("--out", default="tape.jsonl", metavar="FILE",
                       help="JSONL tape destination")

    srv_p = sub.add_parser(
        "serve",
        help="run the controller as a staged-pipeline service fed by a "
             "replayed tape (in-process or over TCP)",
    )
    srv_p.add_argument("--topology", default="two_rack",
                       choices=sorted(["two_rack", "leaf_spine", "fat_tree"]))
    srv_p.add_argument("--shards", type=int, default=2,
                       help="collector shards (one thread each)")
    srv_p.add_argument("--queue-capacity", type=int, default=256)
    srv_p.add_argument("--batch-max", type=int, default=64,
                       help="max messages per stage batch / flow-mods per install")
    srv_p.add_argument("--no-coalesce", action="store_true",
                       help="disable superseded-prediction coalescing")
    srv_p.add_argument("--tape", default=None, metavar="FILE",
                       help="replay this tape in-process and exit when drained")
    srv_p.add_argument("--rate", type=float, default=None,
                       help="replay pacing in messages/sec (default: max rate)")
    srv_p.add_argument("--port", type=int, default=None,
                       help="accept the tape over TCP instead (see `repro replay`)")
    srv_p.add_argument("--drain-timeout", type=float, default=30.0)
    srv_p.add_argument("--indent", action="store_true",
                       help="pretty-print the final stats JSON")

    rep_p = sub.add_parser(
        "replay", help="stream a recorded tape to a running `repro serve --port`"
    )
    rep_p.add_argument("--tape", required=True, metavar="FILE")
    rep_p.add_argument("--connect", default="127.0.0.1:9177",
                       metavar="HOST:PORT")
    rep_p.add_argument("--rate", type=float, default=None,
                       help="pacing in messages/sec (default: max rate)")

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handler = {
        "list": _cmd_list,
        "run": _cmd_run,
        "compare": _cmd_compare,
        "figure": _cmd_figure,
        "sweep": _cmd_sweep,
        "forecast": _cmd_forecast,
        "lp": _cmd_lp,
        "mix": _cmd_mix,
        "metrics": _cmd_metrics,
        "trace": _cmd_trace,
        "chaos": _cmd_chaos,
        "record": _cmd_record,
        "serve": _cmd_serve,
        "replay": _cmd_replay,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
