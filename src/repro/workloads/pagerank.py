"""PageRank workload: an iterative chain of MapReduce jobs.

PageRank on MapReduce runs one job per iteration — map emits rank
contributions along edges, reduce sums them per page — and web graphs
have power-law in-degree, so the per-reducer shuffle skew is heavy and
*persistent across iterations* (the same hub pages dominate every
round).  This makes the chain a natural consumer of runtime network
optimisation: whatever Pythia saves per iteration compounds.
"""

from __future__ import annotations

from repro.hadoop.job import JobSpec, MiB
from repro.hadoop.partition import zipf_weights

GiB = 1024.0 * MiB


def pagerank_iteration_job(
    graph_gb: float = 4.0,
    iteration: int = 0,
    num_reducers: int = 20,
    skew_alpha: float = 1.0,
) -> JobSpec:
    """One PageRank iteration over an edge list of ``graph_gb``.

    Map reads (page, ranks+adjacency) records and emits one
    contribution per out-edge — intermediate data is roughly the edge
    list's size; reduce sums contributions per destination page, and
    hub pages (power-law in-degree) concentrate the shuffle.
    """
    return JobSpec(
        name=f"pagerank-iter{iteration}",
        input_bytes=graph_gb * GiB,
        num_reducers=num_reducers,
        block_size=128.0 * MiB,
        map_output_ratio=1.1,          # contributions + graph re-emission
        reducer_weights=zipf_weights(num_reducers, alpha=skew_alpha),
        per_map_sigma=0.2,
        map_rate=24.0 * MiB,           # parse + emit per edge
        map_base=0.5,
        reduce_rate=48.0 * MiB,
        reduce_base=0.5,
    )


def pagerank_chain(
    graph_gb: float = 4.0,
    iterations: int = 5,
    num_reducers: int = 20,
    skew_alpha: float = 1.0,
) -> list[JobSpec]:
    """The full iterative chain (iteration i+1 consumes i's output)."""
    if iterations < 1:
        raise ValueError("need at least one iteration")
    return [
        pagerank_iteration_job(
            graph_gb=graph_gb,
            iteration=i,
            num_reducers=num_reducers,
            skew_alpha=skew_alpha,
        )
        for i in range(iterations)
    ]
