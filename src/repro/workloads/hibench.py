"""Named workload registry (the HiBench catalogue surface).

``make_workload("sort", scale=0.1)`` yields the paper's sort benchmark
at a tenth of its input size — the scale knob keeps unit tests fast
while benchmarks run closer to paper scale.
"""

from __future__ import annotations

from typing import Callable

from repro.hadoop.job import JobSpec
from repro.workloads.nutch import nutch_indexing_job
from repro.workloads.pagerank import pagerank_iteration_job
from repro.workloads.sort import integer_sort_job, sort_job, toy_sort_job
from repro.workloads.terasort import terasort_job
from repro.workloads.wordcount import wordcount_job


def _scaled_sort(scale: float, **kw) -> JobSpec:
    return sort_job(input_gb=240.0 * scale, **kw)


def _scaled_intsort(scale: float, **kw) -> JobSpec:
    return integer_sort_job(input_gb=60.0 * scale, **kw)


def _scaled_nutch(scale: float, **kw) -> JobSpec:
    return nutch_indexing_job(pages=5e6 * scale, **kw)


def _scaled_terasort(scale: float, **kw) -> JobSpec:
    return terasort_job(input_gb=100.0 * scale, **kw)


def _scaled_wordcount(scale: float, **kw) -> JobSpec:
    return wordcount_job(input_gb=50.0 * scale, **kw)


def _toy(scale: float, **kw) -> JobSpec:
    return toy_sort_job(**kw)


def _scaled_pagerank(scale: float, **kw) -> JobSpec:
    return pagerank_iteration_job(graph_gb=20.0 * scale, **kw)


HIBENCH: dict[str, Callable[..., JobSpec]] = {
    "sort": _scaled_sort,
    "intsort": _scaled_intsort,
    "nutch": _scaled_nutch,
    "terasort": _scaled_terasort,
    "wordcount": _scaled_wordcount,
    "pagerank": _scaled_pagerank,
    "toy-sort": _toy,
}


def make_workload(name: str, scale: float = 1.0, **overrides) -> JobSpec:
    """Build a catalogued workload at a given input scale."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    try:
        factory = HIBENCH[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; choose from {sorted(HIBENCH)}"
        ) from None
    return factory(scale, **overrides)
