"""WordCount workload: compute-heavy map with combiner-shrunk shuffle.

WordCount with combiners emits a tiny fraction of its input as
intermediate data; it is the CPU-bound control case where network
scheduling should barely matter — a useful negative control for the
benchmark suite (Pythia must not *hurt* such jobs).
"""

from __future__ import annotations

from repro.hadoop.job import JobSpec, MiB
from repro.hadoop.partition import zipf_weights

GiB = 1024.0 * MiB


def wordcount_job(input_gb: float = 50.0, num_reducers: int = 10) -> JobSpec:
    """WordCount over text input with map-side combining."""
    return JobSpec(
        name=f"wordcount-{input_gb:g}GB",
        input_bytes=input_gb * GiB,
        num_reducers=num_reducers,
        block_size=128.0 * MiB,
        map_output_ratio=0.05,          # combiners collapse word counts
        reducer_weights=zipf_weights(num_reducers, alpha=1.0),  # word skew
        per_map_sigma=0.3,
        map_rate=10.0 * MiB,            # tokenising text is CPU work
        map_base=0.5,
        reduce_rate=32.0 * MiB,
        reduce_base=0.3,
    )
