"""HiBench-shaped workload generators (§V-A).

The paper evaluates two network-intensive HiBench benchmarks — Sort
(240 GB input, "representative of a large subset of real-world
MapReduce applications") and Nutch indexing (5M pages / 8 GB,
"representative of ... large-scale search indexing") — plus a 60 GB
integer sort for the prediction-efficacy study.  These factories
produce :class:`~repro.hadoop.job.JobSpec` instances whose cost models
land the jobs in the same regimes: sort shuffle-bound with large flows,
Nutch compute-bound with many small skewed flows.
"""

from repro.workloads.cluster import (
    ClusterJob,
    ClusterWorkload,
    Tenant,
    poisson_workload,
    single_job_workload,
    trace_workload,
)
from repro.workloads.hibench import HIBENCH, make_workload
from repro.workloads.mix import JobArrival, synthesize_mix
from repro.workloads.nutch import nutch_indexing_job
from repro.workloads.pagerank import pagerank_chain, pagerank_iteration_job
from repro.workloads.sort import integer_sort_job, sort_job, toy_sort_job
from repro.workloads.terasort import terasort_job
from repro.workloads.traces import load_trace, save_trace
from repro.workloads.wordcount import wordcount_job

__all__ = [
    "HIBENCH",
    "make_workload",
    "ClusterJob",
    "ClusterWorkload",
    "Tenant",
    "poisson_workload",
    "single_job_workload",
    "trace_workload",
    "sort_job",
    "toy_sort_job",
    "integer_sort_job",
    "nutch_indexing_job",
    "terasort_job",
    "wordcount_job",
    "pagerank_chain",
    "pagerank_iteration_job",
    "JobArrival",
    "synthesize_mix",
    "save_trace",
    "load_trace",
]
