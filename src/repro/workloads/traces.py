"""Workload-trace files: save and replay job streams.

A SWIM-style (Statistical Workload Injector for MapReduce) trace is a
list of job submissions with arrival time, input size, shuffle ratio
and reducer count.  This module writes/reads such traces as JSON so
job streams can be archived, shared, and replayed bit-identically by
:func:`repro.experiments.mix.run_mix`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.hadoop.job import JobSpec
from repro.hadoop.partition import explicit_weights
from repro.workloads.mix import JobArrival

TRACE_VERSION = 1


def save_trace(arrivals: list[JobArrival], path: Union[str, Path]) -> Path:
    """Write a job stream as a JSON trace file."""
    payload = {
        "version": TRACE_VERSION,
        "jobs": [
            {
                "at": a.at,
                "name": a.spec.name,
                "input_bytes": a.spec.input_bytes,
                "block_size": a.spec.block_size,
                "num_reducers": a.spec.num_reducers,
                "map_output_ratio": a.spec.map_output_ratio,
                "reducer_weights": list(map(float, a.spec.reducer_weights)),
                "per_map_sigma": a.spec.per_map_sigma,
                "map_rate": a.spec.map_rate,
                "map_base": a.spec.map_base,
                "reduce_rate": a.spec.reduce_rate,
                "reduce_base": a.spec.reduce_base,
                "duration_jitter": a.spec.duration_jitter,
                "predicted_overhead": a.spec.predicted_overhead,
            }
            for a in arrivals
        ],
    }
    path = Path(path)
    path.write_text(json.dumps(payload, indent=1))
    return path


def load_trace(path: Union[str, Path]) -> list[JobArrival]:
    """Read a JSON trace back into a replayable job stream."""
    data = json.loads(Path(path).read_text())
    if data.get("version") != TRACE_VERSION:
        raise ValueError(f"unsupported trace version {data.get('version')!r}")
    arrivals: list[JobArrival] = []
    for j in data["jobs"]:
        spec = JobSpec(
            name=j["name"],
            input_bytes=j["input_bytes"],
            block_size=j["block_size"],
            num_reducers=j["num_reducers"],
            map_output_ratio=j["map_output_ratio"],
            reducer_weights=explicit_weights(j["reducer_weights"]),
            per_map_sigma=j["per_map_sigma"],
            map_rate=j["map_rate"],
            map_base=j["map_base"],
            reduce_rate=j["reduce_rate"],
            reduce_base=j["reduce_base"],
            duration_jitter=j["duration_jitter"],
            predicted_overhead=j["predicted_overhead"],
        )
        arrivals.append(JobArrival(at=float(j["at"]), spec=spec))
    return arrivals
