"""Sort workloads: HiBench sort, the toy Figure-1a job, 60 GB int sort.

Sort is the canonical network-bound MapReduce job: map output ratio is
1.0 (every input byte is shuffled), map processing streams fast, so job
time is dominated by moving the intermediate data — which is why the
paper's Figure 4 shows sort stressing the network at every
over-subscription ratio.
"""

from __future__ import annotations

from repro.hadoop.job import JobSpec, MiB
from repro.hadoop.partition import explicit_weights, zipf_weights

GiB = 1024.0 * MiB


def sort_job(
    input_gb: float = 240.0,
    num_reducers: int = 20,
    skew_alpha: float = 0.3,
    block_size: float = 128.0 * MiB,
) -> JobSpec:
    """HiBench sort (§V-A configured it with 240 GB of input).

    Mild Zipf skew reflects hash partitioning over real key spaces;
    per-map jitter adds the block-to-block variation of sampled data.
    """
    return JobSpec(
        name=f"sort-{input_gb:g}GB",
        input_bytes=input_gb * GiB,
        num_reducers=num_reducers,
        block_size=block_size,
        map_output_ratio=1.0,
        reducer_weights=zipf_weights(num_reducers, alpha=skew_alpha),
        per_map_sigma=0.15,
        map_rate=64.0 * MiB,       # data transformation streams fast
        map_base=0.3,
        reduce_rate=96.0 * MiB,
        reduce_base=0.3,
    )


def integer_sort_job(input_gb: float = 60.0, num_reducers: int = 20) -> JobSpec:
    """The 60 GB integer sort used for Figure 5's prediction study."""
    spec = sort_job(input_gb=input_gb, num_reducers=num_reducers)
    spec.name = f"intsort-{input_gb:g}GB"
    return spec


def toy_sort_job() -> JobSpec:
    """Figure 1a's toy job: three map slots, two reducers, 5:1 skew.

    "reducer-0 receives 5x times more data compared to reducer-1" —
    the skew is explicit here so the sequence diagram reproduces the
    figure's disproportionate shuffle arrows.
    """
    return JobSpec(
        name="toy-sort",
        input_bytes=3 * 128.0 * MiB,
        num_reducers=2,
        block_size=128.0 * MiB,
        map_output_ratio=1.0,
        reducer_weights=explicit_weights([5.0, 1.0]),
        per_map_sigma=0.0,
        map_rate=32.0 * MiB,
        duration_jitter=0.0,
    )
