"""TeraSort workload: uniform-partition sort with a sampled partitioner.

TeraSort's range partitioner is built from input sampling, so reducer
shares are near-uniform — the no-skew control case against
:func:`repro.workloads.sort.sort_job`'s hash-partition skew.
"""

from __future__ import annotations

from repro.hadoop.job import JobSpec, MiB
from repro.hadoop.partition import uniform_weights

GiB = 1024.0 * MiB


def terasort_job(input_gb: float = 100.0, num_reducers: int = 20) -> JobSpec:
    """TeraSort with a near-perfect range partitioner."""
    return JobSpec(
        name=f"terasort-{input_gb:g}GB",
        input_bytes=input_gb * GiB,
        num_reducers=num_reducers,
        block_size=128.0 * MiB,
        map_output_ratio=1.0,
        reducer_weights=uniform_weights(num_reducers),
        per_map_sigma=0.05,
        map_rate=64.0 * MiB,
        map_base=0.3,
        reduce_rate=96.0 * MiB,
        reduce_base=0.3,
    )
