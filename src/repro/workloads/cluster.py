"""Cluster-level workload layer: concurrent jobs from an arrival process.

Production clusters are multi-tenant: many users submit heterogeneous
jobs against one fabric, and the paper's premise — predictive SDN
optimization paying off under contention — only really shows at fleet
scale.  A :class:`ClusterWorkload` describes such a fleet statically: a
set of tenants (with fair-share weights and optional slot quotas) and a
list of :class:`ClusterJob` submissions, each carrying a *stable key*
that pins the job's RNG stream and identity independently of the order
the jobs happen to be submitted in.

Determinism contract
--------------------
* Every generator derives per-job parameters from
  ``SeedSequence(seed).spawn``-style keyed streams, so a workload is a
  pure function of its arguments.
* :meth:`ClusterWorkload.sorted_jobs` orders submissions canonically by
  ``(arrival, key)``; the experiment runner always submits in that
  order, which makes fleet traces invariant under permutations of the
  job list at identical arrival times (a property test holds that
  line).
* A job's stable ``key`` maps to the jobtracker's per-job
  ``SeedSequence.spawn`` derivation, so a one-job workload is
  bit-identical to the classic single-job path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.hadoop.job import JobSpec
from repro.workloads.mix import JobArrival
from repro.workloads.nutch import nutch_indexing_job
from repro.workloads.sort import sort_job

DEFAULT_TENANT = "tenant-0"


@dataclass(frozen=True)
class Tenant:
    """One cluster tenant: fair-share weight plus optional slot quotas.

    ``weight`` scales the tenant's share of free slots (the Hadoop Fair
    Scheduler analogue: slots go to the tenant with the lowest
    running-slots/weight ratio).  ``map_quota``/``reduce_quota`` cap
    the tenant's concurrent tasks as a fraction of cluster slots; None
    leaves the tenant bounded only by fair sharing.
    """

    name: str
    weight: float = 1.0
    map_quota: Optional[float] = None
    reduce_quota: Optional[float] = None

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"tenant {self.name!r}: weight must be positive")
        for label, quota in (("map_quota", self.map_quota),
                             ("reduce_quota", self.reduce_quota)):
            if quota is not None and not 0 < quota <= 1:
                raise ValueError(f"tenant {self.name!r}: {label} must be in (0, 1]")


@dataclass(frozen=True)
class ClusterJob:
    """One submission in a cluster workload.

    ``key`` is the job's stable identity: it selects the job's RNG
    stream (``SeedSequence`` spawn key) and orders simultaneous
    arrivals, so it must be unique within a workload.
    """

    key: int
    tenant: str
    at: float
    spec: JobSpec

    def __post_init__(self) -> None:
        if self.key < 0:
            raise ValueError("job key must be non-negative")
        if self.at < 0:
            raise ValueError("arrival time must be non-negative")


@dataclass
class ClusterWorkload:
    """A static multi-tenant fleet: tenants plus keyed job arrivals."""

    name: str
    jobs: list[ClusterJob] = field(default_factory=list)
    tenants: list[Tenant] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.jobs:
            raise ValueError("a cluster workload needs at least one job")
        keys = [j.key for j in self.jobs]
        if len(set(keys)) != len(keys):
            raise ValueError(f"duplicate job keys in workload {self.name!r}")
        if not self.tenants:
            names = sorted({j.tenant for j in self.jobs})
            self.tenants = [Tenant(name=n) for n in names]
        known = {t.name for t in self.tenants}
        unknown = sorted({j.tenant for j in self.jobs} - known)
        if unknown:
            raise ValueError(f"jobs reference unknown tenants: {unknown}")

    def sorted_jobs(self) -> list[ClusterJob]:
        """Submissions in canonical order: by arrival, then stable key.

        The runner always submits in this order, so fleet outcomes do
        not depend on how the ``jobs`` list happens to be permuted.
        """
        return sorted(self.jobs, key=lambda j: (j.at, j.key))

    def tenant(self, name: str) -> Tenant:
        """The tenant record for ``name``."""
        for t in self.tenants:
            if t.name == name:
                return t
        raise KeyError(name)

    @property
    def n_jobs(self) -> int:
        return len(self.jobs)

    @property
    def horizon(self) -> float:
        """Latest arrival time in the workload."""
        return max(j.at for j in self.jobs)


# ----------------------------------------------------------------------
# generators
# ----------------------------------------------------------------------
def single_job_workload(
    spec: JobSpec, tenant: str = DEFAULT_TENANT, name: Optional[str] = None
) -> ClusterWorkload:
    """Wrap one spec as a degenerate fleet (bit-identical to a solo run)."""
    return ClusterWorkload(
        name=name or spec.name,
        jobs=[ClusterJob(key=0, tenant=tenant, at=0.0, spec=spec)],
        tenants=[Tenant(name=tenant)],
    )


def trace_workload(
    arrivals: Sequence[JobArrival],
    tenants: Optional[Sequence[str]] = None,
    name: str = "trace",
) -> ClusterWorkload:
    """Lift a :class:`~repro.workloads.mix.JobArrival` trace to a fleet.

    ``tenants`` assigns each arrival a tenant round-robin when given
    (e.g. ``("prod", "adhoc")``); otherwise every job belongs to the
    default tenant.
    """
    if not arrivals:
        raise ValueError("empty arrival trace")
    names = list(tenants) if tenants else [DEFAULT_TENANT]
    jobs = [
        ClusterJob(key=i, tenant=names[i % len(names)], at=a.at, spec=a.spec)
        for i, a in enumerate(arrivals)
    ]
    return ClusterWorkload(name=name, jobs=jobs,
                           tenants=[Tenant(name=n) for n in names])


def _job_rng(seed: int, key: int) -> np.random.Generator:
    """Keyed parameter stream: independent of generation order."""
    return np.random.default_rng(np.random.SeedSequence(seed, spawn_key=(key,)))


def _heavy_tailed_gb(rng: np.random.Generator, median_gb: float) -> float:
    """Log-normal job size: most jobs small, a few large (clipped at 4x)."""
    return float(min(4.0 * median_gb,
                     median_gb * rng.lognormal(mean=0.0, sigma=0.9)))


def poisson_workload(
    n_jobs: int = 6,
    arrival_rate: float = 0.1,
    tenants: Optional[Sequence[Tenant]] = None,
    sort_fraction: float = 0.6,
    median_input_gb: float = 1.5,
    num_reducers: int = 6,
    seed: int = 0,
    name: Optional[str] = None,
) -> ClusterWorkload:
    """A Poisson stream of sort/nutch jobs spread across tenants.

    ``arrival_rate`` is jobs/second: inter-arrival gaps are exponential
    draws, so raising the rate packs more jobs into the same window and
    raises contention — the knob the multi-tenant experiment sweeps.
    Job sizes are heavy-tailed (log-normal, clipped); the sort/nutch
    split follows ``sort_fraction``.  Tenants are assigned round-robin
    by job key, so every permutation-stable key keeps its tenant.
    """
    if n_jobs < 1:
        raise ValueError("need at least one job")
    if arrival_rate <= 0:
        raise ValueError("arrival_rate must be positive (jobs/second)")
    if not 0 <= sort_fraction <= 1:
        raise ValueError("sort_fraction must be in [0, 1]")
    tenant_list = list(tenants) if tenants else [
        Tenant(name="tenant-0"), Tenant(name="tenant-1"),
    ]
    arrival_rng = np.random.default_rng(np.random.SeedSequence(seed))
    gaps = arrival_rng.exponential(scale=1.0 / arrival_rate, size=n_jobs)
    gaps[0] = 0.0  # the first job opens the window
    times = np.cumsum(gaps)
    jobs: list[ClusterJob] = []
    for key in range(n_jobs):
        rng = _job_rng(seed, key)
        gb = max(0.25, _heavy_tailed_gb(rng, median_input_gb))
        if float(rng.uniform()) < sort_fraction:
            spec = sort_job(input_gb=gb, num_reducers=num_reducers)
        else:
            spec = nutch_indexing_job(pages=gb * 1e6 / 1.6,
                                      num_reducers=num_reducers)
        spec.name = f"{spec.name}-j{key}"
        jobs.append(
            ClusterJob(
                key=key,
                tenant=tenant_list[key % len(tenant_list)].name,
                at=float(times[key]),
                spec=spec,
            )
        )
    return ClusterWorkload(
        name=name or f"poisson-{n_jobs}x{arrival_rate:g}",
        jobs=jobs,
        tenants=tenant_list,
    )


__all__ = [
    "DEFAULT_TENANT",
    "ClusterJob",
    "ClusterWorkload",
    "Tenant",
    "poisson_workload",
    "single_job_workload",
    "trace_workload",
]
