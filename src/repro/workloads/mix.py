"""Multi-job workload mixes (cluster-level job streams).

The paper motivates Pythia with production traces — "a recent analysis
of MapReduce traces from Facebook revealed that 33% of the execution
time of a large number of jobs is spent at the MapReduce [shuffle]
phase" (§I).  Production clusters run *streams* of heterogeneous jobs,
not one benchmark at a time; this module synthesises such a stream
(heavy-tailed input sizes, mixed job types, Poisson arrivals) so the
mix experiment can measure Pythia's effect on mean job completion time
under multi-tenancy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hadoop.job import JobSpec
from repro.workloads.nutch import nutch_indexing_job
from repro.workloads.sort import sort_job
from repro.workloads.wordcount import wordcount_job


@dataclass(frozen=True)
class JobArrival:
    """One job submission in a cluster trace."""

    at: float
    spec: JobSpec


#: job-type mixture loosely following published trace analyses: mostly
#: small summary jobs, a solid share of data transforms (shuffle-heavy),
#: some indexing-like compute+shuffle jobs.
_TYPE_WEIGHTS = (
    ("wordcount", 0.45),
    ("sort", 0.35),
    ("nutch", 0.20),
)


def _heavy_tailed_gb(rng: np.random.Generator, median_gb: float) -> float:
    """Log-normal input size: most jobs small, a few large.

    Clipped at 4x the median so one extreme draw cannot dominate the
    whole stream's runtime (trace analyses truncate similarly).
    """
    return float(min(4.0 * median_gb, median_gb * rng.lognormal(mean=0.0, sigma=0.9)))


def synthesize_mix(
    n_jobs: int = 8,
    horizon: float = 120.0,
    median_input_gb: float = 2.0,
    seed: int = 0,
) -> list[JobArrival]:
    """A Poisson stream of mixed jobs over ``horizon`` seconds."""
    if n_jobs < 1:
        raise ValueError("need at least one job")
    rng = np.random.default_rng(seed)
    names = [t for t, _ in _TYPE_WEIGHTS]
    probs = np.array([w for _, w in _TYPE_WEIGHTS])
    probs = probs / probs.sum()
    # Poisson process conditioned on n arrivals = sorted uniforms.
    times = np.sort(rng.uniform(0.0, horizon, size=n_jobs))
    arrivals: list[JobArrival] = []
    for i, at in enumerate(times):
        kind = names[int(rng.choice(len(names), p=probs))]
        gb = max(0.25, _heavy_tailed_gb(rng, median_input_gb))
        if kind == "sort":
            spec = sort_job(input_gb=gb, num_reducers=10)
        elif kind == "nutch":
            spec = nutch_indexing_job(pages=gb * 1e6 / 1.6, num_reducers=10)
        else:
            spec = wordcount_job(input_gb=2.0 * gb, num_reducers=8)
        spec.name = f"{spec.name}-mix{i}"
        arrivals.append(JobArrival(at=float(at), spec=spec))
    return arrivals
