"""Nutch indexing workload (§V-A: 5M pages, 8 GB total input).

Indexing is compute-bound per byte (parsing, tokenising, inverting)
and emits many *small*, heavily skewed shuffle flows — "the smaller
flows created by Nutch increase the opportunity for optimization"
(§V-B), which is why Pythia holds Nutch's completion time nearly flat
across over-subscription ratios (Figure 3) while ECMP degrades.
"""

from __future__ import annotations

from repro.hadoop.job import JobSpec, MiB
from repro.hadoop.partition import zipf_weights

GiB = 1024.0 * MiB
#: average crawled-page record size implied by 5M pages in 8 GB.
BYTES_PER_PAGE = 8.0 * GiB / 5e6


def nutch_indexing_job(
    pages: float = 5e6,
    num_reducers: int = 30,
    skew_alpha: float = 0.5,
) -> JobSpec:
    """Nutch indexing scaled by crawled page count."""
    input_bytes = pages * BYTES_PER_PAGE
    return JobSpec(
        name=f"nutch-{pages / 1e6:g}Mpages",
        input_bytes=input_bytes,
        num_reducers=num_reducers,
        block_size=64.0 * MiB,
        map_output_ratio=0.65,         # inverted index is smaller than
                                       # the raw crawl segments
        reducer_weights=zipf_weights(num_reducers, alpha=skew_alpha),
        per_map_sigma=0.25,            # pages vary wildly per split
        map_rate=2.0 * MiB,            # parsing/tokenising is slow per byte
        map_base=1.0,
        reduce_rate=12.0 * MiB,        # index merge is also compute-heavy
        reduce_base=1.0,
    )
