"""Message tapes and the rate-paced replay client.

A tape is the collector-facing message stream of a run — per-map
prediction messages plus reducer-location reports — recorded by the
collector (``PythiaConfig(record_messages=True)``) or synthesised, and
saved as JSONL so ``repro serve`` / ``repro replay`` can drive the
controller service with realistic input at configurable rates.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.instrumentation.messages import PredictionMessage, ReducerLocationMessage


@dataclass(frozen=True)
class TapeRecord:
    """One recorded message: arrival time, kind ("pred"/"loc"), payload."""

    t: float
    kind: str
    msg: object


class MessageTape:
    """An ordered prediction-message stream, serialisable as JSONL."""

    def __init__(self, records: list[TapeRecord]) -> None:
        self.records = sorted(records, key=lambda r: r.t)

    def __len__(self) -> int:
        return len(self.records)

    @property
    def duration(self) -> float:
        """Span of recorded arrival times (seconds)."""
        if not self.records:
            return 0.0
        return self.records[-1].t - self.records[0].t

    @classmethod
    def from_collector(cls, collector) -> "MessageTape":
        """Lift a recording collector's tape (see ``record_messages``)."""
        if collector is None or collector.tape is None:
            raise ValueError("collector did not record messages")
        return cls([TapeRecord(t, kind, msg) for t, kind, msg in collector.tape])

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            for rec in self.records:
                fh.write(json.dumps(_encode(rec)) + "\n")

    @classmethod
    def load(cls, path: str) -> "MessageTape":
        records = []
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if line:
                    records.append(_decode(json.loads(line)))
        return cls(records)


def _encode(rec: TapeRecord) -> dict:
    msg = rec.msg
    if rec.kind == "pred":
        assert isinstance(msg, PredictionMessage)
        return {
            "t": rec.t,
            "kind": "pred",
            "job": msg.job,
            "map_id": msg.map_id,
            "src_server": msg.src_server,
            "reducer_bytes": [float(b) for b in msg.reducer_bytes],
            "created_at": msg.created_at,
        }
    assert isinstance(msg, ReducerLocationMessage)
    return {
        "t": rec.t,
        "kind": "loc",
        "job": msg.job,
        "reducer_id": msg.reducer_id,
        "server": msg.server,
        "created_at": msg.created_at,
    }


def _decode(obj: dict) -> TapeRecord:
    if obj["kind"] == "pred":
        msg: object = PredictionMessage(
            job=obj["job"],
            map_id=int(obj["map_id"]),
            src_server=obj["src_server"],
            reducer_bytes=np.asarray(obj["reducer_bytes"], dtype=float),
            created_at=float(obj["created_at"]),
        )
    elif obj["kind"] == "loc":
        msg = ReducerLocationMessage(
            job=obj["job"],
            reducer_id=int(obj["reducer_id"]),
            server=obj["server"],
            created_at=float(obj["created_at"]),
        )
    else:
        raise ValueError(f"unknown tape record kind {obj['kind']!r}")
    return TapeRecord(t=float(obj["t"]), kind=obj["kind"], msg=msg)


def synthetic_tape(
    hosts: list[str],
    njobs: int = 2,
    nmaps: int = 20,
    nreducers: int = 4,
    repredict: int = 1,
    mean_bytes: float = 4e7,
    seed: int = 0,
) -> MessageTape:
    """Benchmark fodder: a dense, duplicate-bearing prediction stream.

    Locations come first (every intent binds immediately, so replay
    throughput measures the pipeline, not late-binding waits), then one
    prediction message per (job, map) repeated ``repredict`` times —
    later repeats supersede earlier ones, which is exactly what the
    coalescing stage exists to drop.
    """
    if not hosts:
        raise ValueError("synthetic_tape needs at least one host")
    rng = np.random.default_rng(seed)
    records: list[TapeRecord] = []
    t = 0.0
    for j in range(njobs):
        job = f"bench{j}"
        for r in range(nreducers):
            server = hosts[(j + r) % len(hosts)]
            records.append(
                TapeRecord(
                    t, "loc", ReducerLocationMessage(job, r, server, created_at=t)
                )
            )
    for j in range(njobs):
        job = f"bench{j}"
        for m in range(nmaps):
            src = hosts[(j * 3 + m) % len(hosts)]
            nbytes = rng.uniform(0.5, 1.5, size=nreducers) * mean_bytes
            for _ in range(max(1, repredict)):
                t += 1e-4
                records.append(
                    TapeRecord(
                        t,
                        "pred",
                        PredictionMessage(job, m, src, nbytes.copy(), created_at=t),
                    )
                )
    return MessageTape(records)


class ReplayClient:
    """Feeds a tape into a submit endpoint at a configurable rate.

    ``rate`` is messages/second of wall time (None = as fast as the
    endpoint accepts).  A bounced offer is retried after a short pause
    — the client experiences the pipeline's backpressure instead of
    dropping messages — and every retry is counted.
    """

    def __init__(self, tape: MessageTape, rate: Optional[float] = None) -> None:
        if rate is not None and rate <= 0:
            raise ValueError("rate must be positive")
        self.tape = tape
        self.rate = rate

    def run(
        self,
        submit: Callable[[str, object], bool],
        *,
        retry_pause: float = 0.0005,
    ) -> dict:
        """Replay the whole tape; returns send-side statistics."""
        sent = 0
        retries = 0
        start = time.monotonic()
        for i, rec in enumerate(self.tape.records):
            if self.rate is not None:
                due = start + i / self.rate
                pause = due - time.monotonic()
                if pause > 0:
                    time.sleep(pause)
            while not submit(rec.kind, rec.msg):
                retries += 1
                time.sleep(retry_pause)
            sent += 1
        wall = time.monotonic() - start
        return {
            "sent": sent,
            "retries": retries,
            "wall_seconds": wall,
            "offered_rate": self.rate,
            "achieved_rate": sent / wall if wall > 0 else float("inf"),
        }
