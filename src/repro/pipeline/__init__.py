"""Staged, backpressured prediction-ingestion pipeline.

The monolithic collector → aggregation → allocation → rule-install
chain, restructured as explicit stages connected by bounded queues so
the controller can run as a long-lived service ingesting prediction
streams at high rate (ROADMAP: "controller as a service").  The same
:class:`PipelineCore` runs in two harnesses:

- inline inside the simulator (:class:`InlinePipelineDriver`), where
  each stage hop is a simulator event — selected with
  ``PythiaConfig(pipeline_mode="staged")``;
- as a threaded service (:class:`PipelineService`) driven by a
  :class:`ReplayClient` feeding recorded message tapes at a
  configurable rate (``repro serve`` / ``repro replay``).
"""

from repro.pipeline.core import BoundIntent, DemandDelta, InstallBatch, PipelineCore
from repro.pipeline.inline import InlinePipelineDriver
from repro.pipeline.queues import BoundedQueue
from repro.pipeline.replay import MessageTape, ReplayClient, synthetic_tape
from repro.pipeline.service import PipelineService

__all__ = [
    "BoundIntent",
    "BoundedQueue",
    "DemandDelta",
    "InlinePipelineDriver",
    "InstallBatch",
    "MessageTape",
    "PipelineCore",
    "PipelineService",
    "ReplayClient",
    "synthetic_tape",
]
