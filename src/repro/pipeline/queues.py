"""Bounded inter-stage queues: the pipeline's backpressure primitive.

Every stage boundary is a :class:`BoundedQueue`; a full queue rejects
offers (counted, surfaced as a metric) instead of growing without
bound, which is what turns a producer overrun into *backpressure* the
upstream stage can act on — the ingress retries later, internal stages
stall their pump until downstream drains.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Optional

from repro import obs


class BoundedQueue:
    """Thread-safe FIFO with a hard capacity and backpressure counters.

    Used both single-threaded (the inline simulator driver) and across
    threads (the service harness); the lock is uncontended in the
    former.  Consumers are expected to be single per queue, so
    ``peek()`` followed by ``pop()`` is race-free.
    """

    def __init__(self, name: str, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("queue capacity must be >= 1")
        self.name = name
        self.capacity = capacity
        self._items: deque = deque()
        self._lock = threading.Lock()
        self._nonempty = threading.Condition(self._lock)
        self.offered = 0
        self.accepted = 0
        #: offers rejected because the queue was at capacity.
        self.rejected = 0
        #: items admitted past capacity through :meth:`force`.
        self.forced = 0
        self.high_water = 0
        registry = obs.get_registry()
        self._m_depth = registry.gauge(f"pipeline.{name}.depth")
        self._m_backpressure = registry.counter(f"pipeline.{name}.backpressure")

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def free(self) -> int:
        """Slots left before offers start bouncing (0 when over-full)."""
        with self._lock:
            return max(0, self.capacity - len(self._items))

    def _note_depth(self) -> None:
        d = len(self._items)
        if d > self.high_water:
            self.high_water = d
        self._m_depth.set(d)

    def offer(self, item: Any) -> bool:
        """Append if there is room; False (counted) otherwise."""
        with self._nonempty:
            self.offered += 1
            if len(self._items) >= self.capacity:
                self.rejected += 1
                self._m_backpressure.inc()
                return False
            self._items.append(item)
            self.accepted += 1
            self._note_depth()
            self._nonempty.notify()
            return True

    def force(self, item: Any) -> None:
        """Append past capacity (counted) — the deadlock escape hatch.

        Used only where rejecting would wedge the pipeline: an atomic
        unit (one message's fan-out, one drained delta) that was
        already admitted upstream must land even if it momentarily
        overshoots the bound.
        """
        with self._nonempty:
            self.offered += 1
            self.accepted += 1
            self.forced += 1
            self._items.append(item)
            self._note_depth()
            self._nonempty.notify()

    def peek(self) -> Optional[Any]:
        """Head item without removing it (None when empty)."""
        with self._lock:
            return self._items[0] if self._items else None

    def pop(self) -> Optional[Any]:
        """Remove and return the head item (None when empty)."""
        with self._lock:
            if not self._items:
                return None
            item = self._items.popleft()
            self._m_depth.set(len(self._items))
            return item

    def pop_batch(self, max_n: int) -> list:
        """Remove up to ``max_n`` items from the head."""
        with self._lock:
            out = []
            while self._items and len(out) < max_n:
                out.append(self._items.popleft())
            if out:
                self._m_depth.set(len(self._items))
            return out

    def wait_nonempty(self, timeout: float) -> bool:
        """Block up to ``timeout`` seconds for an item to appear."""
        with self._nonempty:
            if self._items:
                return True
            self._nonempty.wait(timeout)
            return bool(self._items)

    def snapshot(self) -> dict:
        """Counters as a plain dict (for service stats endpoints)."""
        with self._lock:
            depth = len(self._items)
        return {
            "depth": depth,
            "capacity": self.capacity,
            "offered": self.offered,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "forced": self.forced,
            "high_water": self.high_water,
        }
