"""Controller-as-a-service: the staged core pumped by worker threads.

``repro serve`` wraps this: one bind thread, one thread per collector
shard, and a control thread that owns everything the discrete-event
simulator touches (allocation, rule expansion, the programmer and
``sim.run()``), so the simulator clock and rule table stay
single-threaded by construction.  Crash/failover is injected through a
control-request queue and therefore also executes on the control
thread, exactly where installs and resyncs happen.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from typing import Callable, Optional

from repro import obs
from repro.core.config import PythiaConfig
from repro.core.scheduler import PythiaScheduler
from repro.pipeline import replay as replay_mod
from repro.sdn.controller import Controller
from repro.simnet.engine import Simulator
from repro.simnet.network import Network
from repro.simnet.topology import Topology, fat_tree, leaf_spine, two_rack

TOPOLOGIES: dict[str, Callable[[], Topology]] = {
    "two_rack": two_rack,
    "leaf_spine": leaf_spine,
    "fat_tree": lambda: fat_tree(4),
}


class PipelineService:
    """A long-lived Pythia controller fed by replayed prediction streams."""

    def __init__(
        self,
        topology_factory: Callable[[], Topology] = two_rack,
        config: Optional[PythiaConfig] = None,
        registry: Optional[obs.MetricsRegistry] = None,
    ) -> None:
        cfg = config or PythiaConfig(pipeline_mode="staged")
        if cfg.pipeline_mode != "staged":
            raise ValueError("PipelineService requires pipeline_mode='staged'")
        self.config = cfg
        self.registry = registry if registry is not None else obs.MetricsRegistry()
        with obs.use(registry=self.registry):
            self.sim = Simulator()
            self.topology = topology_factory()
            self.network = Network(self.sim, self.topology)
            self.controller = Controller(
                self.sim,
                self.network,
                k_paths=cfg.k_paths,
                stats_period=cfg.stats_period,
                stats_alpha=cfg.stats_alpha,
                per_rule_latency=cfg.per_rule_latency,
                control_rtt=cfg.control_rtt,
                mgmt_latency=cfg.mgmt_latency,
            )
            self.scheduler = PythiaScheduler(cfg)
            self.controller.register(self.scheduler)
            # No periodic stats poller: a service with no data-plane
            # flows would otherwise keep the event queue eternally
            # non-empty and sim.run() would never return.
            self.controller.start(start_stats=False)
        assert self.scheduler.pipeline is not None
        self.core = self.scheduler.pipeline
        # Queueing latency is *measured* in wall time here; the
        # modelled switch-programming latency is charged on top.
        self.core.clock = time.monotonic
        self.core.charge_install_latency = True
        self._threads: list[threading.Thread] = []
        self._stop = threading.Event()
        self._control_requests: list[str] = []
        self._control_lock = threading.Lock()
        self._started = False
        self.started_at: Optional[float] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the stage threads."""
        if self._started:
            return
        self._started = True
        self._stop.clear()
        self.started_at = time.monotonic()
        self._threads = [
            threading.Thread(target=self._bind_loop, name="pipeline-bind", daemon=True),
            threading.Thread(
                target=self._control_loop, name="pipeline-control", daemon=True
            ),
        ]
        for i in range(len(self.core.shards)):
            self._threads.append(
                threading.Thread(
                    target=self._shard_loop, args=(i,), name=f"pipeline-shard{i}",
                    daemon=True,
                )
            )
        for t in self._threads:
            t.start()

    def stop(self) -> None:
        """Stop the stage threads (the core's state stays inspectable)."""
        if not self._started:
            return
        self._stop.set()
        for t in self._threads:
            t.join(timeout=5.0)
        self._started = False

    # ------------------------------------------------------------------
    # ingestion / fault injection
    # ------------------------------------------------------------------
    def submit(self, kind: str, msg) -> bool:
        """Offer one message to the ingress queue (False = backpressure)."""
        return self.core.submit(kind, msg)

    def crash(self) -> None:
        """Request a controller outage (executed on the control thread)."""
        with self._control_lock:
            self._control_requests.append("crash")

    def restore(self) -> None:
        """Request controller recovery + failover resync."""
        with self._control_lock:
            self._control_requests.append("restore")

    def drain(self, timeout: float = 30.0) -> bool:
        """Block until every accepted message has reached a terminal
        state (installed / coalesced); False on timeout.

        While the controller is crashed the in-flight ledger cannot
        empty — issue :meth:`restore` first.
        """
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.core.backlog() == 0:
                return True
            time.sleep(0.002)
        return self.core.backlog() == 0

    # ------------------------------------------------------------------
    # stage loops
    # ------------------------------------------------------------------
    def _bind_loop(self) -> None:
        while not self._stop.is_set():
            processed, _ = self.core.pump_bind()
            if processed == 0:
                self.core.ingress.wait_nonempty(0.005)

    def _shard_loop(self, i: int) -> None:
        queue = self.core.shards[i].queue
        while not self._stop.is_set():
            if not self.core.pump_shard(i):
                queue.wait_nonempty(0.005)

    def _control_loop(self) -> None:
        while not self._stop.is_set():
            progress = self._handle_control_requests()
            progress |= self.core.pump_alloc()
            progress |= self.core.pump_install()
            # Advance the modelled world: install commits, retry
            # backoff, abandonment.  Only this thread touches the sim.
            self.sim.run()
            if not progress:
                time.sleep(0.001)

    def _handle_control_requests(self) -> bool:
        with self._control_lock:
            requests, self._control_requests = self._control_requests, []
        for req in requests:
            if req == "crash":
                self.controller.crash()
            elif req == "restore":
                self.controller.restore()
        return bool(requests)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Service-level stats: the core ledger plus derived rates."""
        snap = self.core.snapshot()
        uptime = (
            time.monotonic() - self.started_at if self.started_at is not None else 0.0
        )
        snap["uptime_seconds"] = uptime
        if uptime > 0:
            snap["predictions_per_sec_in"] = self.core.predictions_in / uptime
            snap["predictions_per_sec_out"] = (
                self.core.intents_installed + self.core.intents_coalesced
            ) / uptime
        snap["controller"] = {
            "online": self.controller.online,
            "crashes": self.controller.crashes,
            "resyncs": self.controller.resyncs,
            "rules_installed": self.controller.programmer.rules_installed,
            "table_size": self.controller.programmer.table_size,
            "install_failures": self.controller.programmer.install_failures,
        }
        e2e = self.registry.histogram("pipeline.e2e_seconds")
        if e2e.count:
            snap["e2e_seconds"] = {
                "count": e2e.count,
                "mean": e2e.mean,
                "p50": e2e.quantile(0.50),
                "p99": e2e.quantile(0.99),
            }
        return snap

    def hosts(self) -> list[str]:
        """Server names a tape for this service may address."""
        return [h.name for h in self.topology.worker_hosts()]


# ----------------------------------------------------------------------
# TCP front door (optional; `repro serve --port` / `repro replay --connect`)
# ----------------------------------------------------------------------

def serve_tcp(
    service: PipelineService,
    port: int,
    *,
    host: str = "127.0.0.1",
    ready: Optional[threading.Event] = None,
) -> threading.Event:
    """Accept JSONL tape records on a socket and feed them to ``service``.

    Each line is one tape record (the format :mod:`repro.pipeline.replay`
    writes); a ``{"kind": "eof"}`` line sets the returned event so the
    caller can drain and exit.  Single-connection-at-a-time on purpose:
    the replay client is the only intended producer.
    """
    done = threading.Event()
    listener = socket.create_server((host, port))
    listener.settimeout(0.5)
    if ready is not None:
        ready.set()

    def _loop() -> None:
        with listener:
            while not done.is_set():
                try:
                    conn, _addr = listener.accept()
                except socket.timeout:
                    continue
                with conn, conn.makefile("r") as fh:
                    for line in fh:
                        line = line.strip()
                        if not line:
                            continue
                        obj = json.loads(line)
                        if obj.get("kind") == "eof":
                            done.set()
                            break
                        rec = replay_mod._decode(obj)
                        while not service.submit(rec.kind, rec.msg):
                            time.sleep(0.0005)

    threading.Thread(target=_loop, name="pipeline-tcp", daemon=True).start()
    return done


def replay_tcp(
    tape: replay_mod.MessageTape,
    host: str,
    port: int,
    rate: Optional[float] = None,
    *,
    connect_timeout: float = 5.0,
) -> dict:
    """Stream a tape to a ``repro serve --port`` instance as JSONL."""
    deadline = time.monotonic() + connect_timeout
    while True:
        try:
            sock = socket.create_connection((host, port), timeout=connect_timeout)
            break
        except OSError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.05)
    sent = 0
    start = time.monotonic()
    with sock, sock.makefile("w") as fh:
        for i, rec in enumerate(tape.records):
            if rate is not None:
                due = start + i / rate
                pause = due - time.monotonic()
                if pause > 0:
                    time.sleep(pause)
            fh.write(json.dumps(replay_mod._encode(rec)) + "\n")
            sent += 1
        fh.write(json.dumps({"kind": "eof"}) + "\n")
        fh.flush()
    wall = time.monotonic() - start
    return {
        "sent": sent,
        "wall_seconds": wall,
        "achieved_rate": sent / wall if wall > 0 else float("inf"),
    }


__all__ = [
    "PipelineService",
    "TOPOLOGIES",
    "replay_tcp",
    "serve_tcp",
]
