"""Inline harness: the staged core driven through simulator events.

The middleware-facing endpoint in ``pipeline_mode="staged"`` runs.
Each stage hop is its own zero-delay simulator event, so the staged
path keeps the discrete-event model's determinism while exercising the
same pumps the threaded service uses.  Backpressure becomes time: a
bounced ingress offer redelivers after ``retry_delay`` and a stalled
stage re-pumps after the same pause, mirroring a blocked producer.
"""

from __future__ import annotations

from repro.instrumentation.messages import PredictionMessage, ReducerLocationMessage
from repro.pipeline.core import PipelineCore
from repro.simnet.engine import Simulator


class InlinePipelineDriver:
    """CollectorEndpoint that schedules the core's pumps as sim events."""

    def __init__(
        self,
        sim: Simulator,
        core: PipelineCore,
        *,
        stage_delay: float = 0.0,
        retry_delay: float = 0.001,
    ) -> None:
        self.sim = sim
        self.core = core
        #: latency of one stage hop (0 keeps staged runs time-comparable
        #: with the monolithic chain; raise it to model a real bus).
        self.stage_delay = stage_delay
        #: redelivery/stall pause when a queue pushes back.
        self.retry_delay = retry_delay
        self.redeliveries = 0
        self._bind_scheduled = False
        self._shard_scheduled = [False] * len(core.shards)
        self._alloc_scheduled = False
        self._install_scheduled = False

    # ------------------------------------------------------------------
    # middleware-facing endpoints
    # ------------------------------------------------------------------
    def receive_prediction(self, msg: PredictionMessage) -> None:
        self._ingest("pred", msg)

    def receive_reducer_location(self, msg: ReducerLocationMessage) -> None:
        self._ingest("loc", msg)

    def _ingest(self, kind: str, msg) -> None:
        if not self.core.submit(kind, msg):
            # Ingress full: the management network redelivers later —
            # bounded queues turn overload into latency, never loss.
            self.redeliveries += 1
            self.sim.schedule(self.retry_delay, self._ingest, kind, msg)
            return
        self._kick_bind(self.stage_delay)

    # ------------------------------------------------------------------
    # stage events — each pump re-kicks itself while its input is
    # non-empty (zero delay after progress, retry_delay after a stall,
    # so a blocked stage never spins within one simulation instant).
    # ------------------------------------------------------------------
    def _kick_bind(self, delay: float) -> None:
        if not self._bind_scheduled:
            self._bind_scheduled = True
            self.sim.schedule(delay, self._run_bind)

    def _run_bind(self) -> None:
        self._bind_scheduled = False
        processed, touched = self.core.pump_bind()
        for i in touched:
            self._kick_shard(i, self.stage_delay)
        if len(self.core.ingress):
            self._kick_bind(self.stage_delay if processed else self.retry_delay)

    def _kick_shard(self, i: int, delay: float) -> None:
        if not self._shard_scheduled[i]:
            self._shard_scheduled[i] = True
            self.sim.schedule(delay, self._run_shard, i)

    def _run_shard(self, i: int) -> None:
        self._shard_scheduled[i] = False
        pushed = self.core.pump_shard(i)
        if pushed:
            self._kick_alloc(self.stage_delay)
        if len(self.core.shards[i].queue):
            self._kick_shard(i, self.stage_delay if pushed else self.retry_delay)

    def _kick_alloc(self, delay: float) -> None:
        if not self._alloc_scheduled:
            self._alloc_scheduled = True
            self.sim.schedule(delay, self._run_alloc)

    def _run_alloc(self) -> None:
        self._alloc_scheduled = False
        pushed = self.core.pump_alloc()
        if pushed:
            self._kick_install(self.stage_delay)
        if len(self.core.alloc_q):
            self._kick_alloc(self.stage_delay if pushed else self.retry_delay)

    def _kick_install(self, delay: float) -> None:
        if not self._install_scheduled:
            self._install_scheduled = True
            self.sim.schedule(delay, self._run_install)

    def _run_install(self) -> None:
        self._install_scheduled = False
        self.core.pump_install()
        if len(self.core.install_q):
            self._kick_install(self.stage_delay)
