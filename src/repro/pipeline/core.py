"""The staged prediction-ingestion core: bind → shard → allocate → install.

One synchronous engine shared by both harnesses (the inline simulator
driver and the threaded service).  The stages:

1. **bind** — drains the ingress queue through the real
   :class:`~repro.core.collector.PredictionCollector` (late binding,
   prediction log, fault filter), whose aggregator is replaced by a
   :class:`ShardRouter` that fans completed intents out to shards.
2. **shard** — each shard owns a private
   :class:`~repro.core.aggregation.FlowAggregator` partition.  Routing
   hashes the *(job, destination)* part of the aggregation key, so one
   aggregate key only ever lives in one shard and shards never contend
   on an entry.  Drained batches coalesce superseded predictions for
   the same (job, mapper, reducer) before folding.
3. **allocate** — path allocation plus rule expansion for the union of
   entries touched by the drained demand deltas.
4. **install** — rule diffs merged into batched flow-mod transactions
   through :meth:`FlowProgrammer.install_diff`.

Accounting is conservation-checked at intent granularity: every intent
accepted into a shard queue is eventually counted exactly once as
installed (its delta's transaction committed, or adopted by a failover
resync) or coalesced.  ``double_installs`` watches the programmer's
rule events and must stay zero across crash/restore cycles.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro import obs
from repro.core.aggregation import AggregateEntry, AggregationPolicy, FlowAggregator
from repro.core.collector import PredictionCollector
from repro.pipeline.queues import BoundedQueue
from repro.sdn.programming import FlowProgrammer, Rule
from repro.simnet.engine import Simulator


@dataclass
class BoundIntent:
    """One location-bound (map, reducer) intent routed to a shard."""

    job: str
    map_id: int
    reducer_id: int
    src: str
    dst: str
    nbytes: float
    #: clock() when the intent entered its shard queue.
    t_enq: float


@dataclass
class DemandDelta:
    """One shard drain: the aggregates a batch of intents touched."""

    shard: int
    entries: list[AggregateEntry]
    #: intents folded into this delta (after coalescing).
    intents: int
    #: earliest enqueue stamp among the folded intents.
    t_first: float


@dataclass
class InstallBatch:
    """One flow-mod transaction: a rule diff plus the deltas it commits."""

    add: list[Rule]
    remove: list[Rule]
    deltas: list[DemandDelta]
    #: modelled switch-programming latency of the transaction, charged
    #: on top of measured queueing delay by the wall-clock harness.
    modeled_latency: float = 0.0


@dataclass
class _Shard:
    index: int
    queue: BoundedQueue
    aggregator: FlowAggregator
    coalesced: int = 0
    folded: int = 0
    entries_gauge: object = field(default=None, repr=False)


class ShardRouter:
    """Stands in for the bind-stage collector's FlowAggregator.

    ``add`` routes completed intents to shard queues instead of folding
    them; the read-side surface (``entries``, ``entries_on_link``,
    ``total_predicted``) merges the shard partitions so failure repair
    and diagnostics see one logical aggregator.
    """

    def __init__(self, core: "PipelineCore") -> None:
        self._core = core

    @property
    def policy(self) -> AggregationPolicy:
        return self._core.agg_policy

    def add(
        self,
        src: str,
        dst: str,
        map_id: int,
        reducer_id: int,
        nbytes: float,
        job: str = "",
    ) -> None:
        self._core._route(src, dst, map_id, reducer_id, nbytes, job)

    def drain_dirty(self) -> list[AggregateEntry]:
        # The bind-stage collector never drains; shards own dirtiness.
        return []

    @property
    def entries(self) -> dict[tuple, AggregateEntry]:
        merged: dict[tuple, AggregateEntry] = {}
        for shard in self._core.shards:
            merged.update(shard.aggregator.entries)
        return merged

    def entries_on_link(self, lid: int) -> list[AggregateEntry]:
        out: list[AggregateEntry] = []
        for shard in self._core.shards:
            out.extend(shard.aggregator.entries_on_link(lid))
        return out

    @property
    def total_predicted(self) -> float:
        return sum(s.aggregator.total_predicted for s in self._core.shards)


class PipelineCore:
    """Synchronous staged engine; harnesses decide *when* stages pump."""

    def __init__(
        self,
        sim: Simulator,
        agg_policy: AggregationPolicy,
        allocate: Callable[[list[AggregateEntry]], list],
        rules_for: Callable[..., list[Rule]],
        programmer: FlowProgrammer,
        *,
        nshards: int = 2,
        queue_capacity: int = 256,
        batch_max: int = 64,
        coalesce: bool = True,
        clock: Optional[Callable[[], float]] = None,
        charge_install_latency: bool = False,
    ) -> None:
        if nshards < 1:
            raise ValueError("nshards must be >= 1")
        if batch_max < 1:
            raise ValueError("batch_max must be >= 1")
        self.sim = sim
        self.agg_policy = agg_policy
        self.allocate = allocate
        self.rules_for = rules_for
        self.programmer = programmer
        self.batch_max = batch_max
        self.coalesce = coalesce
        self.queue_capacity = queue_capacity
        #: timestamp source for queueing-latency stamps: simulator time
        #: inline (commits happen *at* the modelled install instant),
        #: wall time in the service harness.
        self.clock: Callable[[], float] = clock or (lambda: self.sim.now)
        #: the service harness measures wall queueing delay, which does
        #: not include the modelled switch-programming latency — charge
        #: it explicitly there (inline mode already lives it).
        self.charge_install_latency = charge_install_latency

        registry = obs.get_registry()
        self.ingress = BoundedQueue("ingress", queue_capacity)
        self.shards = [
            _Shard(
                index=i,
                queue=BoundedQueue(f"shard{i}", queue_capacity),
                aggregator=FlowAggregator(agg_policy),
                entries_gauge=registry.gauge(f"pipeline.shard{i}.entries"),
            )
            for i in range(nshards)
        ]
        self.alloc_q = BoundedQueue("alloc", queue_capacity)
        self.install_q = BoundedQueue("install", queue_capacity)
        self.router = ShardRouter(self)
        #: the real collector is the bind stage: late binding, the
        #: prediction log and the chaos fault filter all stay intact.
        self.collector = PredictionCollector(sim, self.router)

        # intent-conservation ledger ------------------------------------
        self.predictions_in = 0
        self.locations_in = 0
        self.intents_in = 0
        self.intents_installed = 0
        self.intents_coalesced = 0
        self.install_txns = 0
        self.covered_txns = 0
        self.max_txn_mods = 0
        self.bind_stalls = 0
        self.shard_stalls = 0
        self.alloc_stalls = 0
        self.overflow = 0
        self.double_installs = 0
        self.resync_adopted = 0
        self.resyncs = 0

        self._seq = 0
        self._inflight: dict[int, InstallBatch] = {}
        self._live_rule_ids: set[int] = set()
        self._touched_shards: set[int] = set()
        programmer.add_rule_hook(self._on_rule_event)

        self._m_predictions = registry.counter("pipeline.predictions_in")
        self._m_intents_in = registry.counter("pipeline.intents_in")
        self._m_installed = registry.counter("pipeline.intents_installed")
        self._m_coalesced = registry.counter("pipeline.intents_coalesced")
        self._m_txns = registry.counter("pipeline.install_txns")
        self._m_stalls = registry.counter("pipeline.stage_stalls")
        self._m_double = registry.counter("pipeline.double_installs")
        self._m_e2e = registry.histogram("pipeline.e2e_seconds")
        self._m_txn_latency = registry.histogram("pipeline.install_batch_seconds")

    # ------------------------------------------------------------------
    # ingress
    # ------------------------------------------------------------------
    def submit(self, kind: str, msg) -> bool:
        """Offer one raw message ("pred"/"loc"); False = backpressured."""
        return self.ingress.offer((kind, msg))

    # ------------------------------------------------------------------
    # stage pumps (synchronous; harnesses schedule them)
    # ------------------------------------------------------------------
    def pump_bind(self, max_msgs: Optional[int] = None) -> tuple[int, set[int]]:
        """Bind a batch of ingress messages, routing intents to shards.

        Returns ``(messages processed, shard indexes touched)``.  Stops
        early — leaving messages queued — when the shards lack headroom
        for the next message's fan-out, so shard queues stay within
        their bound instead of absorbing unbounded bursts.
        """
        limit = max_msgs if max_msgs is not None else self.batch_max
        touched: set[int] = set()
        self._touched_shards = touched
        processed = 0
        while processed < limit:
            head = self.ingress.peek()
            if head is None:
                break
            kind, msg = head
            if not self._headroom_ok(kind, msg):
                self.bind_stalls += 1
                self._m_stalls.inc()
                break
            self.ingress.pop()
            if kind == "pred":
                self.predictions_in += 1
                self._m_predictions.inc()
                self.collector.receive_prediction(msg)
            else:
                self.locations_in += 1
                self.collector.receive_reducer_location(msg)
            processed += 1
        return processed, touched

    def _headroom_ok(self, kind: str, msg) -> bool:
        """Will the message's intent fan-out fit every shard queue?

        Conservative (checks the fullest shard against the whole
        fan-out); a fan-out larger than the queue capacity itself can
        never fit and is admitted through the force path instead of
        deadlocking.
        """
        if kind == "pred":
            need = len(msg.reducer_bytes)
        else:
            need = self.collector.pending_for(msg.job, msg.reducer_id)
        if need == 0 or need > self.queue_capacity:
            return True
        return min(s.queue.free for s in self.shards) >= need

    def _route(
        self, src: str, dst: str, map_id: int, reducer_id: int, nbytes: float, job: str
    ) -> None:
        """Hash a bound intent to the shard owning its aggregate key.

        Keyed on the *(job, destination)* half of the aggregation key —
        crc32, not ``hash()``, so placement survives PYTHONHASHSEED —
        which gives each shard exclusive ownership of the aggregate
        entries (and hence rules) it produces.
        """
        dst_key = self.agg_policy.key(src, dst)[-1]
        idx = zlib.crc32(repr((job, dst_key)).encode("utf-8")) % len(self.shards)
        intent = BoundIntent(
            job=job,
            map_id=map_id,
            reducer_id=reducer_id,
            src=src,
            dst=dst,
            nbytes=float(nbytes),
            t_enq=self.clock(),
        )
        self.intents_in += 1
        self._m_intents_in.inc()
        shard = self.shards[idx]
        if not shard.queue.offer(intent):
            # A message's fan-out is atomic: the headroom check already
            # admitted it, so an overshoot (oversized fan-out, or the
            # rare cross-thread race) lands anyway, counted.
            shard.queue.force(intent)
            self.overflow += 1
        self._touched_shards.add(idx)

    def pump_shard(self, i: int) -> bool:
        """Coalesce and fold one batch of shard ``i``'s intents.

        Returns True when a demand delta was pushed downstream; leaves
        the batch queued (a stall) while the allocation queue is full.
        """
        shard = self.shards[i]
        if len(shard.queue) == 0:
            return False
        if self.alloc_q.free == 0:
            self.shard_stalls += 1
            self._m_stalls.inc()
            return False
        batch = shard.queue.pop_batch(self.batch_max)
        if not batch:
            return False
        t_first = min(it.t_enq for it in batch)
        if self.coalesce:
            # Keep only the newest prediction per (job, map, reducer):
            # a re-prediction supersedes the value it replaces, and
            # folding both would double-count the demand.
            last: dict[tuple, BoundIntent] = {}
            for it in batch:
                last[(it.job, it.map_id, it.reducer_id)] = it
            dropped = len(batch) - len(last)
            if dropped:
                shard.coalesced += dropped
                self.intents_coalesced += dropped
                self._m_coalesced.inc(dropped)
            batch = list(last.values())
        for it in batch:
            shard.aggregator.add(
                it.src, it.dst, it.map_id, it.reducer_id, it.nbytes, job=it.job
            )
        shard.folded += len(batch)
        shard.entries_gauge.set(len(shard.aggregator.entries))
        delta = DemandDelta(
            shard=i,
            entries=shard.aggregator.drain_dirty(),
            intents=len(batch),
            t_first=t_first,
        )
        if not self.alloc_q.offer(delta):
            # Lost the free-slot race against another shard thread; the
            # intents are already folded, so the delta must not drop.
            self.alloc_q.force(delta)
            self.overflow += 1
        return True

    def pump_alloc(self) -> bool:
        """Allocate paths for drained deltas and expand the rule diff."""
        if self.install_q.free == 0:
            self.alloc_stalls += 1
            self._m_stalls.inc()
            return False
        deltas = self.alloc_q.pop_batch(self.batch_max)
        if not deltas:
            return False
        # Union of touched aggregates — the same entry may be dirty in
        # several deltas; allocating it once is both correct and cheaper.
        entries: list[AggregateEntry] = []
        seen: set[int] = set()
        for delta in deltas:
            for entry in delta.entries:
                if id(entry) not in seen:
                    seen.add(id(entry))
                    entries.append(entry)
        add: list[Rule] = []
        removed: list[Rule] = []
        if entries:
            for entry, path in self.allocate(entries):
                add.extend(self.rules_for(entry, path, removed))
        self.install_q.offer(InstallBatch(add=add, remove=removed, deltas=deltas))
        return True

    def pump_install(self) -> bool:
        """Merge queued diffs into one bounded flow-mod transaction."""
        merged: Optional[InstallBatch] = None
        mods = 0
        while True:
            head = self.install_q.peek()
            if head is None:
                break
            head_mods = len(head.add) + len(head.remove)
            if merged is not None and mods + head_mods > self.batch_max:
                break
            self.install_q.pop()
            if merged is None:
                merged = InstallBatch(
                    add=list(head.add), remove=list(head.remove), deltas=list(head.deltas)
                )
            else:
                merged.add.extend(head.add)
                merged.remove.extend(head.remove)
                merged.deltas.extend(head.deltas)
            mods += head_mods
        if merged is None:
            return False
        if not merged.add and not merged.remove:
            # Demand already covered by rules in the table: nothing to
            # program, the deltas commit immediately.
            self.covered_txns += 1
            self._commit(merged)
            return True
        self.install_txns += 1
        self._m_txns.inc()
        self.max_txn_mods = max(self.max_txn_mods, mods)
        self._seq += 1
        seq = self._seq
        self._inflight[seq] = merged
        before = self.sim.now
        done_at = self.programmer.install_diff(
            merged.add,
            merged.remove,
            on_installed=lambda _rules, seq=seq: self._committed(seq),
        )
        merged.modeled_latency = done_at - before
        self._m_txn_latency.observe(merged.modeled_latency)
        return True

    # ------------------------------------------------------------------
    # commit / failover accounting
    # ------------------------------------------------------------------
    def _committed(self, seq: int) -> None:
        batch = self._inflight.pop(seq, None)
        if batch is None:
            # Already adopted by a failover resync; the programmer's
            # late commit must not double-count the intents.
            return
        self._commit(batch)

    def _commit(self, batch: InstallBatch) -> None:
        now = self.clock()
        extra = batch.modeled_latency if self.charge_install_latency else 0.0
        for delta in batch.deltas:
            self.intents_installed += delta.intents
            self._m_installed.inc(delta.intents)
            self._m_e2e.observe(max(0.0, now - delta.t_first) + extra)

    def _on_rule_event(self, event: str, rule: Rule) -> None:
        rid = id(rule)
        if event == "install":
            if rid in self._live_rule_ids:
                self.double_installs += 1
                self._m_double.inc()
            else:
                self._live_rule_ids.add(rid)
        else:
            self._live_rule_ids.discard(rid)

    def resync(self, intent_rules: Iterable[Rule]) -> int:
        """Post-outage reconcile: reinstall lost intent, adopt orphans.

        Mirrors the monolithic scheduler's resync for the rule table —
        every intent rule in neither the table nor a still-pending
        batch is reinstalled — and additionally settles the pipeline's
        ledger: in-flight transactions whose installs were abandoned
        mid-outage (no rule pending or installed) are *adopted*, their
        intents committed exactly once here because the reinstall above
        is what actually lands their rules.
        """
        self.resyncs += 1
        installed = {id(r) for r in self.programmer._rules}
        # Snapshot *before* the reinstall below marks the missing rules
        # pending again — an abandoned transaction whose rules are about
        # to be re-installed is exactly the orphan case.
        pending = set(self.programmer._pending_rule_ids)
        orphans = [
            seq
            for seq, batch in self._inflight.items()
            if not any(
                id(r) in pending or id(r) in installed for r in batch.add
            )
        ]
        missing = [
            rule
            for rule in intent_rules
            if id(rule) not in installed and id(rule) not in pending
        ]
        if missing:
            self.programmer.install(missing)
        for seq in orphans:
            batch = self._inflight.pop(seq)
            self.resync_adopted += len(batch.deltas)
            self._commit(batch)
        return len(missing)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def backlog(self) -> int:
        """Items anywhere between ingress and an uncommitted install."""
        return (
            len(self.ingress)
            + sum(len(s.queue) for s in self.shards)
            + len(self.alloc_q)
            + len(self.install_q)
            + len(self._inflight)
        )

    @property
    def in_flight(self) -> int:
        """Install transactions issued but not yet committed/adopted."""
        return len(self._inflight)

    def conservation_ok(self) -> bool:
        """After a drain: every accepted intent has exactly one fate."""
        return (
            self.backlog() == 0
            and self.intents_in == self.intents_installed + self.intents_coalesced
        )

    def snapshot(self) -> dict:
        """Ledger and queue counters as one JSON-ready dict."""
        return {
            "predictions_in": self.predictions_in,
            "locations_in": self.locations_in,
            "intents_in": self.intents_in,
            "intents_installed": self.intents_installed,
            "intents_coalesced": self.intents_coalesced,
            "install_txns": self.install_txns,
            "covered_txns": self.covered_txns,
            "max_txn_mods": self.max_txn_mods,
            "bind_stalls": self.bind_stalls,
            "shard_stalls": self.shard_stalls,
            "alloc_stalls": self.alloc_stalls,
            "overflow": self.overflow,
            "double_installs": self.double_installs,
            "resyncs": self.resyncs,
            "resync_adopted": self.resync_adopted,
            "in_flight": self.in_flight,
            "backlog": self.backlog(),
            "queues": {
                q.name: q.snapshot()
                for q in [
                    self.ingress,
                    *[s.queue for s in self.shards],
                    self.alloc_q,
                    self.install_q,
                ]
            },
            "shards": [
                {
                    "index": s.index,
                    "entries": len(s.aggregator.entries),
                    "folded": s.folded,
                    "coalesced": s.coalesced,
                }
                for s in self.shards
            ],
        }
