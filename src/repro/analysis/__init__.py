"""Measurement post-processing and reporting.

* :mod:`repro.analysis.timeline` — Figure 1a sequence diagrams.
* :mod:`repro.analysis.prediction_eval` — Figure 5 promptness/accuracy.
* :mod:`repro.analysis.speedup` — Figures 3/4 JCT comparison tables.
* :mod:`repro.analysis.report` — ASCII tables and series rendering.
"""

from repro.analysis.export import export_run, load_run, run_to_dict
from repro.analysis.lead_model import lead_sensitivity_sweep, predicted_lead_bounds
from repro.analysis.prediction_eval import PredictionEvaluation, evaluate_prediction
from repro.analysis.report import format_grouped_bars, format_series, format_table
from repro.analysis.report_html import run_report_html, write_report
from repro.analysis.speedup import SweepRow, speedup, sweep_table
from repro.analysis.svg import svg_grouped_bars, svg_series, svg_timeline, write_svg
from repro.analysis.timeline import Segment, job_timeline, render_timeline
from repro.analysis.utilization import UtilizationRecorder

__all__ = [
    "PredictionEvaluation",
    "evaluate_prediction",
    "format_series",
    "format_grouped_bars",
    "format_table",
    "SweepRow",
    "speedup",
    "sweep_table",
    "Segment",
    "job_timeline",
    "render_timeline",
    "export_run",
    "load_run",
    "run_to_dict",
    "predicted_lead_bounds",
    "lead_sensitivity_sweep",
    "run_report_html",
    "write_report",
    "svg_timeline",
    "svg_series",
    "svg_grouped_bars",
    "write_svg",
    "UtilizationRecorder",
]
