"""Self-contained HTML report for one experiment run.

Combines the run's headline numbers, phase coverage, scheduler
statistics, the sequence-diagram SVG and the per-server shuffle-egress
chart into a single HTML file with no external assets — the artefact
to attach to a ticket or share with a colleague.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union
from xml.sax.saxutils import escape

from repro.analysis.svg import svg_series, svg_timeline
from repro.analysis.timeline import job_timeline, phase_fractions
from repro.experiments.common import RunResult

_STYLE = """
body { font-family: Helvetica, Arial, sans-serif; margin: 2em; color: #222; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.6em; }
table { border-collapse: collapse; margin: 0.5em 0; }
td, th { border: 1px solid #ccc; padding: 4px 10px; text-align: right; }
th { background: #f2f2f2; }
.figure { margin: 1em 0; }
"""


def _kv_table(rows: list[tuple[str, str]]) -> str:
    body = "".join(
        f"<tr><th style='text-align:left'>{escape(k)}</th><td>{escape(v)}</td></tr>"
        for k, v in rows
    )
    return f"<table>{body}</table>"


def run_report_html(result: RunResult, title: str = "") -> str:
    """Render one run as a standalone HTML document string."""
    run = result.run
    title = title or f"{run.spec.name} under {result.scheduler}"
    ratio = "none" if result.ratio is None else f"1:{result.ratio:g}"
    header = _kv_table(
        [
            ("job", run.spec.name),
            ("scheduler", result.scheduler),
            ("over-subscription", ratio),
            ("seed", str(result.seed)),
            ("job completion time", f"{run.jct:.1f} s"),
            ("maps / reducers", f"{len(run.maps)} / {len(run.reduces)}"),
            ("remote shuffle fraction", f"{run.remote_fraction():.0%}"),
        ]
    )
    phases = phase_fractions(run)
    phase_table = _kv_table(
        [(phase, f"{frac:.0%} of job time") for phase, frac in phases.items()]
    )
    stats_table = _kv_table(
        [(k, str(v)) for k, v in sorted(result.policy_stats.items())]
    )
    telemetry_section = ""
    if result.metrics:
        rows = []
        for name, m in sorted(result.metrics.items()):
            kind = m.get("type", "?")
            if kind == "histogram" and m.get("count", 0):
                value = (
                    f"n={m['count']}  mean={m['mean']:.3g}  "
                    f"p50={m['p50']:.3g}  p99={m['p99']:.3g}"
                )
            elif kind == "gauge":
                value = f"{m['value']:g}  (high-water {m['high_water']:g})"
            else:
                value = f"{m.get('value', m.get('count', 0)):g}"
            rows.append((name, value))
        telemetry_section = f"<h2>Telemetry</h2>\n{_kv_table(rows)}"
    timeline_svg = svg_timeline(
        job_timeline(run), title="sequence diagram", width=900
    )
    egress_series = {
        server: tuple(result.netflow.series(server))
        for server in result.netflow.servers()
    }
    if egress_series:
        egress_svg = svg_series(
            {k: (t, c) for k, (t, c) in egress_series.items()},
            title="cumulative shuffle egress per server",
            x_label="time (s)",
            y_label="bytes",
            width=900,
        )
    else:
        egress_svg = "<p>(no remote shuffle traffic)</p>"
    return f"""<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>{escape(title)}</title>
<style>{_STYLE}</style></head>
<body>
<h1>{escape(title)}</h1>
{header}
<h2>Phase coverage</h2>
{phase_table}
<h2>Scheduler statistics</h2>
{stats_table}
{telemetry_section}
<h2>Sequence diagram</h2>
<div class="figure">{timeline_svg}</div>
<h2>Shuffle egress</h2>
<div class="figure">{egress_svg}</div>
</body></html>
"""


def write_report(result: RunResult, path: Union[str, Path], title: str = "") -> Path:
    """Write the HTML report; returns the path."""
    path = Path(path)
    path.write_text(run_report_html(result, title=title))
    return path
