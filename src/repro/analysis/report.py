"""Plain-text rendering of tables and series for benchmark output."""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Fixed-width table with a header rule; numbers right-aligned."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(widths[i]) for i, c in enumerate(cells))

    out = [line(list(headers)), line(["-" * w for w in widths])]
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.1f}"
    return str(cell)


def format_grouped_bars(
    categories: Sequence[str],
    series: dict[str, Sequence[float]],
    width: int = 50,
    unit: str = "s",
) -> str:
    """Horizontal grouped bar chart (one group per category).

    Used to render the paper's Figure 3/4 bar groups (ECMP vs Pythia
    per over-subscription ratio) in plain text.
    """
    peak = max((max(vals) for vals in series.values() if len(vals)), default=0.0)
    if peak <= 0:
        return "(no data)"
    label_w = max(len(name) for name in series)
    cat_w = max(len(c) for c in categories)
    lines = []
    for i, cat in enumerate(categories):
        for j, (name, vals) in enumerate(series.items()):
            value = vals[i]
            bar = "#" * max(1, int(value / peak * width))
            prefix = f"{cat:>{cat_w}} " if j == 0 else " " * (cat_w + 1)
            lines.append(f"{prefix}{name:<{label_w}} {bar} {value:.1f}{unit}")
        lines.append("")
    return "\n".join(lines).rstrip()


def format_series(
    name: str, xs: Sequence[float], ys: Sequence[float], width: int = 60
) -> str:
    """A crude sparkline-style rendering of one (x, y) series."""
    if len(xs) == 0:
        return f"{name}: (empty)"
    lo, hi = min(ys), max(ys)
    span = max(hi - lo, 1e-12)
    glyphs = " .:-=+*#%@"
    cells = []
    step = max(1, len(xs) // width)
    for i in range(0, len(xs), step):
        level = int((ys[i] - lo) / span * (len(glyphs) - 1))
        cells.append(glyphs[level])
    return f"{name} [{lo:.3g}..{hi:.3g}]: {''.join(cells)}"
