"""Plain-text rendering of tables and series for benchmark output."""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Fixed-width table with a header rule; numbers right-aligned."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(widths[i]) for i, c in enumerate(cells))

    out = [line(list(headers)), line(["-" * w for w in widths])]
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.1f}"
    return str(cell)


def format_grouped_bars(
    categories: Sequence[str],
    series: dict[str, Sequence[float]],
    width: int = 50,
    unit: str = "s",
) -> str:
    """Horizontal grouped bar chart (one group per category).

    Used to render the paper's Figure 3/4 bar groups (ECMP vs Pythia
    per over-subscription ratio) in plain text.
    """
    peak = max((max(vals) for vals in series.values() if len(vals)), default=0.0)
    if peak <= 0:
        return "(no data)"
    label_w = max(len(name) for name in series)
    cat_w = max(len(c) for c in categories)
    lines = []
    for i, cat in enumerate(categories):
        for j, (name, vals) in enumerate(series.items()):
            value = vals[i]
            bar = "#" * max(1, int(value / peak * width))
            prefix = f"{cat:>{cat_w}} " if j == 0 else " " * (cat_w + 1)
            lines.append(f"{prefix}{name:<{label_w}} {bar} {value:.1f}{unit}")
        lines.append("")
    return "\n".join(lines).rstrip()


def format_metrics(snapshot: dict[str, dict]) -> str:
    """Render a metrics-registry snapshot as a fixed-width table.

    Counters show their value; gauges value and high-water; histograms
    count, mean and tail quantiles — one line per metric, so the table
    drops straight into benchmark output and experiment reports.
    """
    if not snapshot:
        return "(no metrics)"
    rows = []
    for name, m in sorted(snapshot.items()):
        kind = m.get("type", "?")
        if kind == "counter":
            detail = f"{m['value']:g}"
        elif kind == "gauge":
            detail = f"{m['value']:g} (high-water {m['high_water']:g})"
        elif kind == "histogram":
            if m.get("count", 0) == 0:
                detail = "no samples"
            else:
                detail = (
                    f"n={m['count']} mean={m['mean']:.3g} "
                    f"p50={m['p50']:.3g} p99={m['p99']:.3g} max={m['max']:.3g}"
                )
        else:  # pragma: no cover — future instrument kinds
            detail = repr(m)
        rows.append((name, kind, detail))
    return format_table(["metric", "type", "value"], rows)


def format_series(
    name: str, xs: Sequence[float], ys: Sequence[float], width: int = 60
) -> str:
    """A crude sparkline-style rendering of one (x, y) series."""
    if len(xs) == 0:
        return f"{name}: (empty)"
    lo, hi = min(ys), max(ys)
    span = max(hi - lo, 1e-12)
    glyphs = " .:-=+*#%@"
    cells = []
    step = max(1, len(xs) // width)
    for i in range(0, len(xs), step):
        level = int((ys[i] - lo) / span * (len(glyphs) - 1))
        cells.append(glyphs[level])
    return f"{name} [{lo:.3g}..{hi:.3g}]: {''.join(cells)}"
