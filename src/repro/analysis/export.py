"""Result export: serialise an experiment run to JSON and back.

Lets users archive runs, diff them across code versions, or analyse
them with external tooling, without pickling live simulator objects.
The export is lossy by design — it captures the *measurements* (task
records, fetches, per-server egress series, scheduler statistics), not
the machinery.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Any, Union

from repro.experiments.common import RunResult

EXPORT_VERSION = 1


def run_to_dict(result: RunResult) -> dict[str, Any]:
    """Flatten a RunResult into JSON-serialisable measurements."""
    run = result.run
    spec = run.spec
    payload: dict[str, Any] = {
        "version": EXPORT_VERSION,
        "scheduler": result.scheduler,
        "ratio": result.ratio,
        "seed": result.seed,
        "jct": run.jct,
        "spec": {
            "name": spec.name,
            "input_bytes": spec.input_bytes,
            "num_maps": spec.num_maps,
            "num_reducers": spec.num_reducers,
            "map_output_ratio": spec.map_output_ratio,
        },
        "job": {
            "job_id": run.job_id,
            "submitted_at": run.submitted_at,
            "completed_at": run.completed_at,
            "map_locality": run.map_locality,
            "speculative_attempts": run.speculative_attempts,
        },
        "maps": [
            {"task_id": r.task_id, "node": r.node, "start": r.start, "end": r.end}
            for r in run.maps.values()
        ],
        "reduces": [
            {
                "task_id": r.task_id,
                "node": r.node,
                "start": r.start,
                "shuffle_end": r.shuffle_end,
                "sort_end": r.sort_end,
                "end": r.end,
            }
            for r in run.reduces.values()
        ],
        "fetches": [
            {
                "map_id": f.map_id,
                "reducer_id": f.reducer_id,
                "src": f.src,
                "dst": f.dst,
                "app_bytes": f.app_bytes,
                "wire_bytes": f.wire_bytes,
                "local": f.local,
                "start": f.start,
                "end": f.end,
            }
            for f in run.fetches
        ],
        "policy_stats": dict(result.policy_stats),
        "netflow": {
            server: {
                "times": result.netflow.series(server)[0].tolist(),
                "cumulative_bytes": result.netflow.series(server)[1].tolist(),
            }
            for server in result.netflow.servers()
        },
    }
    if result.collector is not None:
        payload["predictions"] = [
            asdict(entry) for entry in result.collector.log
        ]
    return payload


def export_run(result: RunResult, path: Union[str, Path]) -> Path:
    """Write a run's measurements as JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(run_to_dict(result), indent=1, sort_keys=True))
    return path


def load_run(path: Union[str, Path]) -> dict[str, Any]:
    """Load an exported run (plain dict; see :data:`EXPORT_VERSION`)."""
    data = json.loads(Path(path).read_text())
    version = data.get("version")
    if version != EXPORT_VERSION:
        raise ValueError(f"unsupported export version {version!r}")
    return data
