"""Fleet-level metrics: per-job rows and cross-tenant fairness.

A multi-tenant run produces many concurrent job traces; this module
reduces them to the measurements the multi-tenant evaluation reports:

* **per-job rows** — job id, tenant, arrival/start/finish, JCT, and
  *slowdown*: JCT under contention divided by the JCT of the same spec
  run alone on an identical fabric (1.0 = no interference penalty).
* **fleet aggregates** — p50/p99 JCT, mean/max slowdown, makespan, and
  the Jain fairness index across tenants.

Jain's index over per-tenant mean slowdowns ``x_1..x_n`` is
``(sum x)^2 / (n * sum x^2)``: 1.0 when every tenant suffers equally,
approaching ``1/n`` when one tenant absorbs all the contention.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np


def job_rows(result) -> list[dict[str, Any]]:
    """Per-job measurement rows of a fleet :class:`RunResult`.

    Rows come out in the workload's canonical (arrival, key) order.
    ``slowdown`` is None when the run carried no isolated baseline for
    that job (``isolated_baselines=False``).
    """
    rows: list[dict[str, Any]] = []
    for run in result.jobs:
        iso = result.isolated_jct.get(run.job_id)
        rows.append(
            {
                "job_id": run.job_id,
                "workload": run.spec.name,
                "tenant": run.tenant,
                "submitted_at": float(run.submitted_at),
                "started_at": (
                    float(run.started_at) if run.started_at is not None else None
                ),
                "completed_at": float(run.completed_at),
                "jct": float(run.jct),
                "isolated_jct": float(iso) if iso is not None else None,
                "slowdown": float(run.jct / iso) if iso else None,
            }
        )
    return rows


def jain_index(values: list[float]) -> float:
    """Jain fairness index of a list of non-negative shares."""
    if not values:
        return 1.0
    x = np.asarray(values, dtype=float)
    denom = len(x) * float(np.sum(x * x))
    if denom == 0.0:
        return 1.0
    return float(np.sum(x) ** 2 / denom)


def _percentile(values: list[float], q: float) -> float:
    return float(np.percentile(np.asarray(values, dtype=float), q))


def fleet_metrics(rows: list[dict[str, Any]]) -> dict[str, Any]:
    """Aggregate per-job rows into the fleet-level report.

    Fairness is computed across *tenants* on per-tenant mean slowdown
    (falling back to per-tenant mean JCT when no baselines were run):
    equal means = 1.0 regardless of how many jobs each tenant ran.
    """
    if not rows:
        return {}
    jcts = [r["jct"] for r in rows]
    slowdowns = [r["slowdown"] for r in rows if r["slowdown"] is not None]
    per_tenant: dict[str, list[float]] = {}
    for r in rows:
        value = r["slowdown"] if r["slowdown"] is not None else r["jct"]
        per_tenant.setdefault(r["tenant"], []).append(value)
    tenant_means = {
        t: float(np.mean(v)) for t, v in sorted(per_tenant.items())
    }
    out: dict[str, Any] = {
        "n_jobs": len(rows),
        "p50_jct": _percentile(jcts, 50.0),
        "p99_jct": _percentile(jcts, 99.0),
        "mean_jct": float(np.mean(jcts)),
        "makespan": max(r["completed_at"] for r in rows)
        - min(r["submitted_at"] for r in rows),
        "tenant_means": tenant_means,
        "jain_fairness": jain_index(list(tenant_means.values())),
    }
    if slowdowns:
        out["mean_slowdown"] = float(np.mean(slowdowns))
        out["p99_slowdown"] = _percentile(slowdowns, 99.0)
        out["max_slowdown"] = float(np.max(slowdowns))
    return out


def fleet_summary(result) -> dict[str, Any]:
    """``job_rows`` + ``fleet_metrics`` of one fleet RunResult."""
    rows = job_rows(result)
    return {"rows": rows, "fleet": fleet_metrics(rows)}


__all__ = ["fleet_metrics", "fleet_summary", "jain_index", "job_rows"]
