"""Job-completion-time comparison tables (Figures 3 and 4).

The paper reports, per over-subscription ratio, the ECMP and Pythia
completion times plus the relative speedup — "the maximum speedup was
obtained for the 1:20 over-subscription ratio case where Pythia
improved job performance by 46 %".  Speedup here follows that reading:
``(t_ecmp - t_pythia) / t_ecmp``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


def speedup(t_baseline: float, t_optimized: float) -> float:
    """Relative improvement of the optimised time over the baseline."""
    if t_baseline <= 0:
        raise ValueError("baseline time must be positive")
    return (t_baseline - t_optimized) / t_baseline


@dataclass(frozen=True)
class SweepRow:
    """One over-subscription point of a Figure 3/4 sweep.

    ``t_*`` are seed-averaged; ``std_*`` carry the across-seed sample
    standard deviation (0 for single-seed sweeps).  ``*_samples`` hold
    the raw per-seed JCTs behind those aggregates (seed order), so
    downstream reports can plot distributions and flag outlier seeds
    instead of seeing only the collapsed mean.
    """

    ratio: Optional[float]
    t_ecmp: float
    t_pythia: float
    std_ecmp: float = 0.0
    std_pythia: float = 0.0
    ecmp_samples: tuple[float, ...] = ()
    pythia_samples: tuple[float, ...] = ()

    @property
    def speedup(self) -> float:
        """Relative improvement of Pythia over ECMP at this point."""
        return speedup(self.t_ecmp, self.t_pythia)

    @property
    def label(self) -> str:
        """Human-readable ratio label (e.g. '1:10')."""
        return "none" if self.ratio is None else f"1:{self.ratio:g}"


def sweep_table(rows: list[SweepRow]) -> list[tuple[str, str, str, float]]:
    """(label, ecmp, pythia, speedup_pct) rows; times carry +-std when known."""

    def fmt(mean: float, std: float) -> str:
        if std > 0:
            return f"{mean:.1f} ±{std:.1f}"
        return f"{mean:.1f}"

    return [
        (r.label, fmt(r.t_ecmp, r.std_ecmp), fmt(r.t_pythia, r.std_pythia), 100.0 * r.speedup)
        for r in rows
    ]
