"""Prediction promptness and accuracy analysis (Figure 5).

The paper overlays two cumulative curves per server: the traffic Pythia
*predicted* the server would source (stepping up at prediction time)
and the traffic NetFlow *measured* leaving it.  Two properties are
claimed: the predicted curve leads the measured one by several seconds
("approximately 9 sec at minimum"), and the final predicted volume
overshoots by 3-7 % (header-overhead estimation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.collector import PredictionCollector
from repro.simnet.netflow import NetFlowCollector


@dataclass
class PredictionEvaluation:
    """Figure-5 metrics for one sourcing server."""

    server: str
    predicted_times: np.ndarray
    predicted_cumulative: np.ndarray
    measured_times: np.ndarray
    measured_cumulative: np.ndarray
    #: min over volume levels of (t_measured(v) - t_predicted(v)).
    min_lead_seconds: float
    #: final predicted volume / final measured volume - 1.
    overestimate_fraction: float
    #: True iff the predicted curve never lags the measured curve.
    never_lags: bool


def _crossing_times(times: np.ndarray, cum: np.ndarray, levels: np.ndarray) -> np.ndarray:
    """First time each cumulative level is reached (inf if never)."""
    out = np.full(len(levels), np.inf)
    j = 0
    for i, level in enumerate(levels):
        while j < len(cum) and cum[j] < level:
            j += 1
        if j < len(cum):
            out[i] = times[j]
        else:
            break
    return out


def evaluate_prediction(
    collector: PredictionCollector,
    netflow: NetFlowCollector,
    server: str,
    levels: int = 200,
) -> PredictionEvaluation:
    """Compare predicted vs measured cumulative egress for one server."""
    events = collector.predicted_egress(server, remote_only=True)
    if not events:
        raise ValueError(f"no predictions sourced at {server!r}")
    p_times = np.array([t for t, _ in events])
    p_cum = np.cumsum([b for _, b in events])
    m_times, m_cum = netflow.series(server)
    if len(m_times) == 0:
        raise ValueError(f"no measured shuffle traffic sourced at {server!r}")

    # Lead time at many volume levels up to the *measured* total (the
    # predicted curve overshoots; comparing beyond the measured total
    # would be meaningless).
    grid = np.linspace(m_cum[-1] * 1e-3, m_cum[-1] * 0.999, levels)
    t_pred = _crossing_times(p_times, p_cum, grid)
    t_meas = _crossing_times(m_times, m_cum, grid)
    leads = t_meas - t_pred
    finite = np.isfinite(leads)
    min_lead = float(leads[finite].min()) if finite.any() else float("nan")

    over = float(p_cum[-1] / m_cum[-1] - 1.0)
    return PredictionEvaluation(
        server=server,
        predicted_times=p_times,
        predicted_cumulative=p_cum,
        measured_times=m_times,
        measured_cumulative=m_cum,
        min_lead_seconds=min_lead,
        overestimate_fraction=over,
        never_lags=bool(finite.all() and (leads[finite] >= 0).all()),
    )


def evaluate_all_servers(
    collector: PredictionCollector, netflow: NetFlowCollector
) -> dict[str, PredictionEvaluation]:
    """Figure-5 analysis for every server that sourced shuffle traffic."""
    out: dict[str, PredictionEvaluation] = {}
    for server in netflow.servers():
        try:
            out[server] = evaluate_prediction(collector, netflow, server)
        except ValueError:
            continue
    return out
