"""Per-reducer shuffle wait decomposition.

Explains *where* a reducer's shuffle time went — the quantity that
ultimately decides job completion behind the barrier:

* **discovery wait** — map finished, but the reducer has not learned of
  it yet (heartbeat completion-event path);
* **queue wait** — the fetch is known but parked behind the
  parallel-copy limit;
* **transfer time** — bytes actually moving (where path choice, and
  hence Pythia, matters).

Used to attribute ECMP-vs-Pythia differences to transfer time rather
than the Hadoop mechanics both share.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hadoop.job import JobRun


@dataclass(frozen=True)
class ReducerBreakdown:
    """Summed fetch-time components of one reducer."""

    reducer_id: int
    node: str
    fetches: int
    #: sum over fetches of (enqueue time - source map finish time).
    discovery_wait: float
    #: sum over fetches of (fetch start - enqueue time).
    queue_wait: float
    #: sum over fetches of (fetch end - fetch start).
    transfer_time: float
    #: wall-clock shuffle span of this reducer.
    shuffle_span: float


def shuffle_breakdown(run: JobRun) -> list[ReducerBreakdown]:
    """Decompose every reducer's shuffle into its wait components."""
    map_end = {m: rec.end for m, rec in run.maps.items()}
    out: list[ReducerBreakdown] = []
    for rid, rec in sorted(run.reduces.items()):
        fetches = [f for f in run.fetches if f.reducer_id == rid]
        discovery = 0.0
        queue = 0.0
        transfer = 0.0
        for f in fetches:
            if f.start is None or f.end is None:
                continue
            finished = map_end.get(f.map_id)
            if finished is not None:
                discovery += max(0.0, f.enqueued - finished)
            queue += max(0.0, f.start - f.enqueued)
            transfer += f.end - f.start
        span = 0.0
        if rec.shuffle_start is not None and rec.shuffle_end is not None:
            span = rec.shuffle_end - rec.shuffle_start
        out.append(
            ReducerBreakdown(
                reducer_id=rid,
                node=rec.node,
                fetches=len(fetches),
                discovery_wait=discovery,
                queue_wait=queue,
                transfer_time=transfer,
                shuffle_span=span,
            )
        )
    return out


def total_transfer_time(run: JobRun) -> float:
    """Summed transfer time across all reducers (the Pythia-sensitive part)."""
    return float(sum(b.transfer_time for b in shuffle_breakdown(run)))


def breakdown_table(run: JobRun) -> list[tuple]:
    """Rows for :func:`repro.analysis.report.format_table`."""
    return [
        (
            f"reduce-{b.reducer_id}@{b.node}",
            b.fetches,
            b.discovery_wait,
            b.queue_wait,
            b.transfer_time,
            b.shuffle_span,
        )
        for b in shuffle_breakdown(run)
    ]


def mean_transfer_seconds(run: JobRun) -> float:
    """Average per-fetch transfer time across the whole job."""
    durations = [
        f.end - f.start for f in run.fetches if f.start is not None and f.end is not None
    ]
    return float(np.mean(durations)) if durations else 0.0
