"""Job sequence diagrams (the paper's Figure 1a visualisation tool).

"Figure 1a depicts the sequence diagram of the execution of a toy-sized
sort job ... obtained by a custom visualization tool we have developed"
— map tasks, per-reducer shuffle, and reduce phases on a shared time
axis, which makes both observations of §II visible: the shuffle phase
dominating job time, and the skewed per-reducer volumes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hadoop.job import JobRun


@dataclass(frozen=True)
class Segment:
    """One bar of the sequence diagram."""

    row: str         # e.g. "map-2@h01" or "reduce-0@h10"
    phase: str       # "map" | "shuffle" | "sort" | "reduce"
    start: float
    end: float
    detail: str = ""

    @property
    def duration(self) -> float:
        """Segment length in seconds."""
        return self.end - self.start


def job_timeline(run: JobRun) -> list[Segment]:
    """Extract the phase segments of one job execution."""
    segments: list[Segment] = []
    for map_id, rec in sorted(run.maps.items()):
        if rec.start is None or rec.end is None:
            continue
        segments.append(
            Segment(row=f"map-{map_id}@{rec.node}", phase="map", start=rec.start, end=rec.end)
        )
    per_reducer_bytes = run.reducer_bytes()
    for rid, rec in sorted(run.reduces.items()):
        row = f"reduce-{rid}@{rec.node}"
        if rec.shuffle_start is not None and rec.shuffle_end is not None:
            segments.append(
                Segment(
                    row=row,
                    phase="shuffle",
                    start=rec.shuffle_start,
                    end=rec.shuffle_end,
                    detail=f"{per_reducer_bytes[rid] / 1e6:.0f}MB",
                )
            )
        if rec.shuffle_end is not None and rec.sort_end is not None:
            segments.append(
                Segment(row=row, phase="sort", start=rec.shuffle_end, end=rec.sort_end)
            )
        if rec.sort_end is not None and rec.end is not None:
            segments.append(Segment(row=row, phase="reduce", start=rec.sort_end, end=rec.end))
    return segments


_PHASE_GLYPH = {"map": "M", "shuffle": "s", "sort": "o", "reduce": "R"}


def render_timeline(segments: list[Segment], width: int = 78) -> str:
    """ASCII Gantt chart of the segments, one row per task."""
    if not segments:
        return "(empty timeline)"
    t0 = min(s.start for s in segments)
    t1 = max(s.end for s in segments)
    span = max(t1 - t0, 1e-9)
    rows: dict[str, list[Segment]] = {}
    for seg in segments:
        rows.setdefault(seg.row, []).append(seg)
    label_w = max(len(r) for r in rows) + 1
    scale = (width - label_w) / span
    lines = [
        f"{'':<{label_w}}t0={t0:.1f}s " + "-" * max(0, width - label_w - 14) + f" t1={t1:.1f}s"
    ]
    for row in rows:
        canvas = [" "] * (width - label_w)
        for seg in rows[row]:
            a = int((seg.start - t0) * scale)
            b = max(a + 1, int((seg.end - t0) * scale))
            glyph = _PHASE_GLYPH.get(seg.phase, "?")
            for i in range(a, min(b, len(canvas))):
                canvas[i] = glyph
        detail = " ".join(s.detail for s in rows[row] if s.detail)
        lines.append(f"{row:<{label_w}}{''.join(canvas)} {detail}".rstrip())
    lines.append("legend: M=map  s=shuffle  o=sort/merge  R=reduce")
    return "\n".join(lines)


def phase_fractions(run: JobRun) -> dict[str, float]:
    """Fraction of job wall time covered by each phase (union of tasks)."""
    segments = job_timeline(run)
    jct = run.jct
    out: dict[str, float] = {}
    for phase in ("map", "shuffle", "sort", "reduce"):
        intervals = sorted(
            (s.start, s.end) for s in segments if s.phase == phase
        )
        covered = 0.0
        cur_a: float | None = None
        cur_b = 0.0
        for a, b in intervals:
            if cur_a is None:
                cur_a, cur_b = a, b
            elif a <= cur_b:
                cur_b = max(cur_b, b)
            else:
                covered += cur_b - cur_a
                cur_a, cur_b = a, b
        if cur_a is not None:
            covered += cur_b - cur_a
        out[phase] = covered / jct if jct > 0 else 0.0
    return out
