"""SVG renderings of the paper's figures (no external dependencies).

The authors built "a custom visualization tool" for sequence diagrams
like Figure 1a (§II).  This module is that tool for the reproduction:
hand-rolled SVG writers for sequence diagrams (Gantt), line series
(Figure 5's cumulative curves) and grouped bars (Figures 3/4), each
returning a standalone SVG document string.

The markup is deliberately simple — `<rect>`, `<line>`, `<text>` — so
tests can validate it with ``xml.etree`` and humans can read it.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence, Union
from xml.sax.saxutils import escape

from repro.analysis.timeline import Segment

_PHASE_COLORS = {
    "map": "#4c72b0",
    "shuffle": "#dd8452",
    "sort": "#937860",
    "reduce": "#55a868",
}
_SERIES_COLORS = ("#4c72b0", "#dd8452", "#55a868", "#c44e52", "#8172b3", "#937860")
_FAMILY = 'font-family="Helvetica,Arial,sans-serif"'
_FONT = f'{_FAMILY} font-size="11"'


def _doc(width: int, height: int, body: list[str], title: str) -> str:
    head = (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">'
    )
    caption = (
        f'<text x="{width / 2:.0f}" y="16" text-anchor="middle" {_FAMILY} '
        f'font-size="13" font-weight="bold">{escape(title)}</text>'
    )
    return "\n".join([head, caption, *body, "</svg>"])


def svg_timeline(
    segments: Sequence[Segment],
    title: str = "job sequence diagram",
    width: int = 860,
    row_height: int = 18,
) -> str:
    """Figure-1a style Gantt chart of task phases."""
    if not segments:
        raise ValueError("no segments to draw")
    rows: list[str] = []
    for seg in segments:
        if seg.row not in rows:
            rows.append(seg.row)
    t0 = min(s.start for s in segments)
    t1 = max(s.end for s in segments)
    span = max(t1 - t0, 1e-9)
    label_w, pad, top = 140, 10, 28
    plot_w = width - label_w - 2 * pad
    height = top + row_height * len(rows) + 40
    body: list[str] = []
    for i, row in enumerate(rows):
        y = top + i * row_height
        body.append(
            f'<text x="{label_w - 6}" y="{y + row_height - 6}" '
            f'text-anchor="end" {_FONT}>{escape(row)}</text>'
        )
    for seg in segments:
        y = top + rows.index(seg.row) * row_height + 2
        x = label_w + (seg.start - t0) / span * plot_w
        w = max(1.0, seg.duration / span * plot_w)
        color = _PHASE_COLORS.get(seg.phase, "#999999")
        tip = f"{seg.row} {seg.phase} [{seg.start:.1f}s..{seg.end:.1f}s] {seg.detail}"
        body.append(
            f'<rect x="{x:.1f}" y="{y}" width="{w:.1f}" height="{row_height - 4}" '
            f'fill="{color}"><title>{escape(tip)}</title></rect>'
        )
    axis_y = top + row_height * len(rows) + 8
    body.append(
        f'<line x1="{label_w}" y1="{axis_y}" x2="{label_w + plot_w}" y2="{axis_y}" '
        'stroke="#333" stroke-width="1"/>'
    )
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        x = label_w + frac * plot_w
        body.append(
            f'<text x="{x:.0f}" y="{axis_y + 14}" text-anchor="middle" {_FONT}>'
            f"{t0 + frac * span:.1f}s</text>"
        )
    legend_x = label_w
    for i, (phase, color) in enumerate(_PHASE_COLORS.items()):
        x = legend_x + i * 90
        body.append(
            f'<rect x="{x}" y="{axis_y + 20}" width="10" height="10" fill="{color}"/>'
            f'<text x="{x + 14}" y="{axis_y + 29}" {_FONT}>{phase}</text>'
        )
    return _doc(width, height + 12, body, title)


def svg_series(
    series: dict[str, tuple[Sequence[float], Sequence[float]]],
    title: str = "series",
    x_label: str = "time (s)",
    y_label: str = "",
    width: int = 720,
    height: int = 360,
) -> str:
    """Figure-5 style line chart: named (xs, ys) series."""
    if not series or all(len(xs) == 0 for xs, _ in series.values()):
        raise ValueError("no data to draw")
    xs_all = [x for xs, _ in series.values() for x in xs]
    ys_all = [y for _, ys in series.values() for y in ys]
    x0, x1 = min(xs_all), max(xs_all)
    y0, y1 = min(ys_all), max(ys_all)
    xspan = max(x1 - x0, 1e-12)
    yspan = max(y1 - y0, 1e-12)
    left, right, top, bottom = 70, 20, 30, 50
    pw, ph = width - left - right, height - top - bottom

    def px(x: float) -> float:
        return left + (x - x0) / xspan * pw

    def py(y: float) -> float:
        return top + ph - (y - y0) / yspan * ph

    body = [
        f'<line x1="{left}" y1="{top + ph}" x2="{left + pw}" y2="{top + ph}" stroke="#333"/>',
        f'<line x1="{left}" y1="{top}" x2="{left}" y2="{top + ph}" stroke="#333"/>',
        f'<text x="{left + pw / 2:.0f}" y="{height - 8}" text-anchor="middle" {_FONT}>'
        f"{escape(x_label)}</text>",
        f'<text x="14" y="{top + ph / 2:.0f}" {_FONT} '
        f'transform="rotate(-90 14 {top + ph / 2:.0f})" text-anchor="middle">'
        f"{escape(y_label)}</text>",
    ]
    for frac in (0.0, 0.5, 1.0):
        body.append(
            f'<text x="{left + frac * pw:.0f}" y="{top + ph + 16}" '
            f'text-anchor="middle" {_FONT}>{x0 + frac * xspan:.3g}</text>'
        )
        body.append(
            f'<text x="{left - 6}" y="{py(y0 + frac * yspan) + 4:.0f}" '
            f'text-anchor="end" {_FONT}>{y0 + frac * yspan:.3g}</text>'
        )
    for i, (name, (xs, ys)) in enumerate(series.items()):
        color = _SERIES_COLORS[i % len(_SERIES_COLORS)]
        points = " ".join(f"{px(x):.1f},{py(y):.1f}" for x, y in zip(xs, ys))
        body.append(
            f'<polyline points="{points}" fill="none" stroke="{color}" stroke-width="2"/>'
        )
        body.append(
            f'<rect x="{left + pw - 150}" y="{top + 4 + i * 16}" width="10" height="10" fill="{color}"/>'
            f'<text x="{left + pw - 136}" y="{top + 13 + i * 16}" {_FONT}>{escape(name)}</text>'
        )
    return _doc(width, height, body, title)


def svg_grouped_bars(
    categories: Sequence[str],
    series: dict[str, Sequence[float]],
    title: str = "comparison",
    y_label: str = "seconds",
    width: int = 720,
    height: int = 360,
) -> str:
    """Figure-3/4 style grouped bars (one group per category)."""
    if not categories or not series:
        raise ValueError("no data to draw")
    peak = max(max(vals) for vals in series.values())
    if peak <= 0:
        raise ValueError("all values are zero")
    left, right, top, bottom = 60, 20, 30, 50
    pw, ph = width - left - right, height - top - bottom
    group_w = pw / len(categories)
    bar_w = group_w * 0.8 / len(series)
    body = [
        f'<line x1="{left}" y1="{top + ph}" x2="{left + pw}" y2="{top + ph}" stroke="#333"/>',
        f'<text x="14" y="{top + ph / 2:.0f}" {_FONT} '
        f'transform="rotate(-90 14 {top + ph / 2:.0f})" text-anchor="middle">'
        f"{escape(y_label)}</text>",
    ]
    for ci, cat in enumerate(categories):
        gx = left + ci * group_w + group_w * 0.1
        for si, (name, vals) in enumerate(series.items()):
            v = vals[ci]
            h = v / peak * ph
            x = gx + si * bar_w
            color = _SERIES_COLORS[si % len(_SERIES_COLORS)]
            body.append(
                f'<rect x="{x:.1f}" y="{top + ph - h:.1f}" width="{bar_w:.1f}" '
                f'height="{h:.1f}" fill="{color}">'
                f"<title>{escape(f'{cat} {name}: {v:.1f}')}</title></rect>"
            )
        body.append(
            f'<text x="{left + ci * group_w + group_w / 2:.0f}" y="{top + ph + 16}" '
            f'text-anchor="middle" {_FONT}>{escape(cat)}</text>'
        )
    for i, name in enumerate(series):
        color = _SERIES_COLORS[i % len(_SERIES_COLORS)]
        body.append(
            f'<rect x="{left + 8 + i * 110}" y="{top + 2}" width="10" height="10" fill="{color}"/>'
            f'<text x="{left + 22 + i * 110}" y="{top + 11}" {_FONT}>{escape(name)}</text>'
        )
    return _doc(width, height, body, title)


def write_svg(svg: str, path: Union[str, Path]) -> Path:
    """Write an SVG document to disk; returns the path."""
    path = Path(path)
    path.write_text(svg)
    return path
