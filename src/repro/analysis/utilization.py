"""Link-utilization time series: record and render.

The controller's link-stats service keeps only an EWMA snapshot; this
recorder keeps the whole history, which is what Figure 1b's per-path
utilisation annotations and any post-hoc congestion analysis need.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.report import format_series
from repro.simnet.engine import Simulator
from repro.simnet.network import Network


@dataclass
class UtilizationRecorder:
    """Samples every link's utilisation on a fixed period.

    Started explicitly and stopped explicitly (or via ``record_for``),
    so it never keeps the event queue alive by accident.
    """

    sim: Simulator
    network: Network
    period: float = 1.0
    times: list[float] = field(default_factory=list)
    samples: list[np.ndarray] = field(default_factory=list)
    _running: bool = field(default=False, repr=False)

    def start(self) -> None:
        """Begin periodic sampling."""
        if self._running:
            return
        self._running = True
        self.sim.schedule(0.0, self._tick)

    def stop(self) -> None:
        """Stop sampling (lets the event queue drain)."""
        self._running = False

    def record_for(self, duration: float) -> None:
        """Start now, stop automatically after ``duration`` seconds."""
        self.start()
        self.sim.schedule(duration, self.stop)

    def _tick(self) -> None:
        if not self._running:
            return
        # Settled vectorised read; mirrors Link.utilization per link
        # (down links keep their raw capacity in the denominator, so a
        # failed link still carrying rigid traffic reads as loaded).
        load = self.network.link_load()
        caps = np.array([l.capacity for l in self.network.topology.links])
        util = np.zeros_like(load)
        np.divide(load, caps, out=util, where=caps > 0)
        self.times.append(self.sim.now)
        self.samples.append(np.minimum(1.0, util))
        self.sim.schedule(self.period, self._tick)

    # ------------------------------------------------------------------
    def series(self, lid: int) -> tuple[np.ndarray, np.ndarray]:
        """(times, utilisation in [0,1]) of one link."""
        if not self.samples:
            return np.array([]), np.array([])
        return np.asarray(self.times), np.stack(self.samples)[:, lid]

    def mean_utilization(self, lid: int) -> float:
        """Mean recorded utilisation of one link."""
        _, u = self.series(lid)
        return float(u.mean()) if u.size else 0.0

    def peak_utilization(self, lid: int) -> float:
        """Peak recorded utilisation of one link."""
        _, u = self.series(lid)
        return float(u.max()) if u.size else 0.0

    def hottest_links(self, top: int = 5) -> list[tuple[int, float]]:
        """(link id, mean utilisation) for the busiest links."""
        links = self.network.topology.links
        means = [(l.lid, self.mean_utilization(l.lid)) for l in links]
        return sorted(means, key=lambda kv: -kv[1])[:top]

    def render(self, lids: list[int], width: int = 60) -> str:
        """Sparkline per requested link, labelled src->dst."""
        out = []
        links = self.network.topology.links
        for lid in lids:
            t, u = self.series(lid)
            label = f"{links[lid].src}->{links[lid].dst}"
            out.append(format_series(label, list(t), list(u), width=width))
        return "\n".join(out)
