"""Analytical model of prediction timeliness (§V-C's on-going work).

The paper closes its prediction study with: "the timeliness of
prediction depends on the time gap between a map task finish event and
the event of a reducer task starting to fetch data from the finished
mapper ... we are currently working on modeling the problem using
relevant Hadoop parameters as input and designing experiments to
confirm this insensitivity."  This module is that future-work item:

* :func:`predicted_lead_bounds` — a closed-form lower/expected bound on
  the minimum prediction lead from the Hadoop timing parameters the
  simulator models (reduce-attempt startup, the two-hop heartbeat
  completion-event path, spill-decode latency);
* :func:`lead_sensitivity_sweep` — the confirming experiment: measure
  the lead while sweeping ``parallel_copies`` (the paper's conjecture
  is that the parallel-transfer limit does *not* erode the lead — it
  only queues fetches later, which widens leads) and ``heartbeat``
  (which *does* move it, linearly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.experiments.common import run_experiment
from repro.hadoop.cluster import ClusterConfig
from repro.instrumentation.middleware import InstrumentationConfig
from repro.workloads.sort import sort_job


@dataclass(frozen=True)
class LeadBounds:
    """Closed-form bounds on the minimum prediction lead (seconds)."""

    lower: float
    expected: float


def predicted_lead_bounds(
    cluster: ClusterConfig,
    instrumentation: InstrumentationConfig | None = None,
) -> LeadBounds:
    """Model the minimum map-finish -> fetch-start gap.

    A spill's prediction reaches the collector after
    ``detection_delay + decode + mgmt_latency``.  The earliest a fetch
    for that spill can start is bounded below by the reduce-attempt
    startup (when the map finished before the reducer was up — always
    true for the first wave under slowstart) and shifted by the
    heartbeat phase alignment: the event rides the source tracker's
    next heartbeat (U(0, h)) and the reducer's next poll (U(0, h)).

    lower  = reduce_startup - sensing latency        (best-case alignment)
    expected = reduce_startup + h (two half-beats) - sensing latency
    """
    instrumentation = instrumentation or InstrumentationConfig()
    sensing = (
        instrumentation.detection_delay
        + instrumentation.decoder.decode_base
        + instrumentation.mgmt_latency
    )
    h = cluster.heartbeat
    return LeadBounds(
        lower=max(0.0, cluster.reduce_startup - sensing),
        expected=max(0.0, cluster.reduce_startup + h - sensing),
    )


@dataclass(frozen=True)
class LeadSample:
    """One (parameter, value, measured lead) observation."""
    parameter: str
    value: float
    min_lead: float


def _measure_min_lead(cluster: ClusterConfig, seed: int, input_gb: float) -> float:
    from repro.analysis.prediction_eval import evaluate_all_servers

    res = run_experiment(
        sort_job(input_gb=input_gb, num_reducers=10),
        scheduler="pythia",
        ratio=None,
        seed=seed,
        cluster_config=cluster,
    )
    assert res.collector is not None
    evals = evaluate_all_servers(res.collector, res.netflow)
    return min(e.min_lead_seconds for e in evals.values())


def lead_sensitivity_sweep(
    parallel_copies: Sequence[int] = (2, 5, 10),
    heartbeats: Sequence[float] = (1.0, 3.0, 5.0),
    seed: int = 1,
    input_gb: float = 6.0,
) -> list[LeadSample]:
    """Measure the minimum lead while sweeping the two §V-C parameters."""
    samples: list[LeadSample] = []
    for pc in parallel_copies:
        cluster = ClusterConfig(parallel_copies=pc)
        samples.append(
            LeadSample("parallel_copies", pc, _measure_min_lead(cluster, seed, input_gb))
        )
    for h in heartbeats:
        cluster = ClusterConfig(heartbeat=h)
        samples.append(
            LeadSample("heartbeat", h, _measure_min_lead(cluster, seed, input_gb))
        )
    return samples
