"""Sweep orchestration: parallel grid execution + content-addressed cache.

The evaluation grids (§V, Figures 3-5) are workload x scheduler x
over-subscription ratio x seed matrices of independent deterministic
simulations.  This package fans those cells out over worker processes
and memoises each cell's result on disk, so figure regeneration and
``repro sweep`` pay only for cells no prior invocation has produced::

    from repro.runner import run_cells, sweep_grid

    cells = sweep_grid(lambda: sort_job(input_gb=12.0),
                       schedulers=("ecmp", "pythia"),
                       ratios=(None, 5, 10, 20), seeds=(1, 2, 3))
    report = run_cells(cells, workers=4, cache_dir=".sweep-cache")

See docs/ARCHITECTURE.md ("Sweep runner") for the cache-key anatomy,
worker isolation and resumability guarantees.
"""

from repro.runner.cache import (
    ResultCache,
    UncacheableCell,
    canonical,
    code_version,
    digest,
)
from repro.runner.summary import SUMMARY_VERSION, RunSummary
from repro.runner.sweep import (
    SweepCell,
    SweepReport,
    cell_key,
    run_cells,
    sweep_grid,
)

__all__ = [
    "ResultCache",
    "RunSummary",
    "SUMMARY_VERSION",
    "SweepCell",
    "SweepReport",
    "UncacheableCell",
    "canonical",
    "cell_key",
    "code_version",
    "digest",
    "run_cells",
    "sweep_grid",
]
