"""Parallel sweep executor: fan experiment cells over a process pool.

The paper's evaluation is a grid — workload x scheduler x
over-subscription ratio x seed — and every cell is an independent
deterministic simulation, so the grid is embarrassingly parallel.  This
module turns a grid into :class:`SweepCell` records (the deterministic
cell -> seed mapping lives in :func:`sweep_grid`: each cell carries its
explicit seed, never a position-derived one, so execution order and
worker count cannot change any cell's RNG stream), executes the cells
either inline or over a ``ProcessPoolExecutor``, and memoises each
cell's :class:`~repro.runner.summary.RunSummary` in a content-addressed
:class:`~repro.runner.cache.ResultCache`.

Determinism: ``run_experiment`` builds a fresh simulator and a fresh
``default_rng(seed)`` per call, so a cell's outcome depends only on its
parameters — parallel results are bit-identical to serial ones
(``tests/runner/test_parallel_determinism.py`` holds that line against
the golden digests).  Worker processes reset the process-global
``obs``/invariant-checker contexts on startup so a registry or checker
installed in the parent (inherited by fork) is never shared across
concurrently running cells.

Resumability: every completed cell is written to the cache before the
sweep moves on, and a manifest file (one per sweep digest) records each
cell's key and how it was satisfied.  Re-running an interrupted sweep
re-executes only the missing cells.
"""

from __future__ import annotations

import json
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

from repro import obs
from repro.core.config import PythiaConfig
from repro.faults import runtime as faults_runtime
from repro.hadoop.cluster import ClusterConfig
from repro.hadoop.job import JobSpec
from repro.runner.cache import (
    ResultCache,
    UncacheableCell,
    canonical,
    code_version,
    digest,
)
from repro.runner.summary import RunSummary
from repro.simnet.topology import two_rack
from repro.workloads.cluster import ClusterWorkload

MANIFEST_VERSION = 1

#: sentinel statuses a manifest records per cell.
CACHED, EXECUTED, UNCACHEABLE = "cached", "executed", "uncacheable"


@dataclass(frozen=True)
class SweepCell:
    """One grid point: a workload under one scheduler/ratio/seed.

    ``spec`` is either a single :class:`JobSpec` (the classic solo-job
    cell) or a :class:`~repro.workloads.cluster.ClusterWorkload` (a
    multi-tenant fleet cell); both are plain dataclasses, so the cache
    key and the worker boundary handle them identically.
    """

    spec: Union[JobSpec, ClusterWorkload]
    scheduler: str
    ratio: Optional[float]
    seed: int

    @property
    def label(self) -> str:
        ratio = "none" if self.ratio is None else f"1:{self.ratio:g}"
        return f"{self.spec.name}/{self.scheduler}/{ratio}/seed{self.seed}"


@dataclass
class SweepReport:
    """What a sweep produced and how the work was satisfied."""

    #: one summary per cell, in cell order.
    summaries: list[RunSummary]
    cache_hits: int = 0
    cache_misses: int = 0
    invalidations: int = 0
    #: cells actually executed this invocation (== misses with a cache).
    executed: int = 0
    elapsed_seconds: float = 0.0
    manifest_path: Optional[Path] = None

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


def sweep_grid(
    spec_factory: Callable[[], JobSpec],
    schedulers: Sequence[str],
    ratios: Sequence[Optional[float]],
    seeds: Sequence[int],
) -> list[SweepCell]:
    """Expand a grid into cells, ratio-major then scheduler then seed.

    Each cell is assigned its seed directly from ``seeds`` — the
    mapping is a pure function of the grid definition, independent of
    execution order, worker count, or which cells are cache hits.
    """
    return [
        SweepCell(spec=spec_factory(), scheduler=scheduler, ratio=ratio, seed=seed)
        for ratio in ratios
        for scheduler in schedulers
        for seed in seeds
    ]


def cell_key(cell: SweepCell, run_kwargs: Optional[dict] = None) -> str:
    """Content digest addressing ``cell``'s result in the cache.

    Covers everything that can change the outcome: the spec, scheduler,
    ratio, seed, the *effective* Pythia/cluster configs and topology
    (defaults are normalised so ``pythia_config=None`` and an explicit
    default-constructed config address the same entry), any further
    run kwargs, and the repro code version.  Raises
    :class:`~repro.runner.cache.UncacheableCell` when a kwarg has no
    canonical form (e.g. a lambda fault hook).
    """
    kwargs = dict(run_kwargs or {})
    payload = {
        "spec": cell.spec,
        "scheduler": cell.scheduler,
        "ratio": cell.ratio,
        "seed": cell.seed,
        "topology": kwargs.pop("topology_factory", None) or two_rack,
        "pythia_config": kwargs.pop("pythia_config", None) or PythiaConfig(),
        "cluster_config": kwargs.pop("cluster_config", None) or ClusterConfig(),
        "kwargs": kwargs,
        "code_version": code_version(),
    }
    return digest(payload)


def _reset_worker_context() -> None:
    """Drop contexts a forked worker inherited from its parent.

    A registry/tracer or invariant checker installed in the parent is
    process-global state; sharing one instance across pool workers
    would interleave unrelated cells' telemetry (and, for the checker,
    watch simulators that no longer exist).  Each worker starts from
    the no-op defaults; ``run_experiment`` re-installs per-run contexts
    as usual.
    """
    obs.set_registry(None)
    obs.set_tracer(None)
    faults_runtime.set_checker(None)


def _execute_cell(cell: SweepCell, run_kwargs: dict) -> RunSummary:
    """Run one cell to completion (in the parent or a pool worker)."""
    from repro.experiments.common import run_cluster_experiment, run_experiment

    runner = (
        run_cluster_experiment
        if isinstance(cell.spec, ClusterWorkload)
        else run_experiment
    )
    result = runner(
        cell.spec,
        scheduler=cell.scheduler,
        ratio=cell.ratio,
        seed=cell.seed,
        **run_kwargs,
    )
    return RunSummary.from_result(result)


def _manifest_path(cache: ResultCache, sweep_digest: str) -> Path:
    return cache.root / f"sweep-{sweep_digest}.manifest.json"


def _load_manifest(path: Path) -> Optional[dict]:
    try:
        data = json.loads(path.read_text())
    except (FileNotFoundError, json.JSONDecodeError):
        return None
    if data.get("version") != MANIFEST_VERSION:
        return None
    return data


def run_cells(
    cells: Sequence[SweepCell],
    *,
    workers: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    run_kwargs: Optional[dict] = None,
) -> SweepReport:
    """Execute a sweep, serving repeats from the cache.

    Parameters
    ----------
    workers:
        Process-pool width; 1 runs every cell inline.  Results are
        bit-identical either way.
    cache_dir:
        Root of the content-addressed result cache; None disables
        caching (every cell executes).
    run_kwargs:
        Extra keyword arguments forwarded to ``run_experiment`` for
        every cell (topology_factory, cluster_config, ...).  With
        ``workers > 1`` they must be picklable, and per-run observability
        sinks (``registry``/``tracer``) are rejected — a pool worker
        cannot mutate the parent's instruments.
    """
    run_kwargs = dict(run_kwargs or {})
    if workers > 1:
        for forbidden in ("registry", "tracer"):
            if run_kwargs.get(forbidden) is not None:
                raise ValueError(
                    f"run_kwargs[{forbidden!r}] is per-process state and cannot "
                    f"cross a worker boundary; use workers=1 for telemetry runs"
                )
    started = time.perf_counter()
    registry = obs.get_registry()
    executed_counter = registry.counter("runner.cells_executed")

    cache = ResultCache(cache_dir) if cache_dir is not None else None
    keys: list[Optional[str]] = []
    for cell in cells:
        if cache is None:
            keys.append(None)
            continue
        try:
            keys.append(cell_key(cell, run_kwargs))
        except UncacheableCell:
            keys.append(None)

    report = SweepReport(summaries=[None] * len(cells))  # type: ignore[list-item]

    # Phase 1: serve what the cache already holds.
    pending: list[int] = []
    for i, key in enumerate(keys):
        summary = cache.get(key) if cache is not None and key is not None else None
        if summary is not None:
            report.summaries[i] = summary
        else:
            pending.append(i)
    if cache is not None:
        report.cache_hits = cache.hits
        report.cache_misses = cache.misses
        report.invalidations = cache.invalidations

    # Phase 2: execute the missing cells, inline or over the pool.
    if pending:
        if workers <= 1 or len(pending) == 1:
            fresh = [_execute_cell(cells[i], run_kwargs) for i in pending]
        else:
            with ProcessPoolExecutor(
                max_workers=min(workers, len(pending)),
                initializer=_reset_worker_context,
            ) as pool:
                fresh = list(
                    pool.map(_execute_cell, [cells[i] for i in pending],
                             [run_kwargs] * len(pending))
                )
        for i, summary in zip(pending, fresh):
            report.summaries[i] = summary
            if cache is not None and keys[i] is not None:
                cache.put(keys[i], summary)
        report.executed = len(pending)
        executed_counter.inc(len(pending))

    # Phase 3: record the sweep manifest (resume/inspection aid).
    if cache is not None:
        sweep_digest = digest([k or f"uncacheable:{cells[i].label}"
                               for i, k in enumerate(keys)])
        path = _manifest_path(cache, sweep_digest)
        prior = _load_manifest(path)
        executed_set = set(pending)
        entries = []
        for i, (cell, key) in enumerate(zip(cells, keys)):
            if key is None:
                status = UNCACHEABLE
            elif i in executed_set:
                status = EXECUTED
            else:
                status = CACHED
            entries.append(
                {"index": i, "cell": cell.label, "key": key, "status": status}
            )
        manifest = {
            "version": MANIFEST_VERSION,
            "sweep": sweep_digest,
            "code_version": code_version(),
            "completions": (prior or {}).get("completions", 0) + 1,
            "cells": entries,
        }
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(manifest, indent=1, sort_keys=True))
        tmp.replace(path)
        report.manifest_path = path

    report.elapsed_seconds = time.perf_counter() - started
    return report


__all__ = [
    "SweepCell",
    "SweepReport",
    "cell_key",
    "run_cells",
    "sweep_grid",
    "canonical",
]
