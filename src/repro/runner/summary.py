"""RunSummary: the serialisable cross-process slice of a RunResult.

:class:`~repro.experiments.common.RunResult` carries live simulator
objects (``Simulator``, ``NetFlowCollector``, ``Topology``) that neither
pickle cleanly across a worker boundary nor belong in an on-disk cache.
:class:`RunSummary` extracts the *measurements* — JCT, per-phase spans,
scheduler/policy statistics, metrics/invariant snapshots, fault counts —
into plain builtins, so sweep workers can return it over a process pool
and the result cache can store it as canonical JSON.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

SUMMARY_VERSION = 2


def _span(getter) -> Optional[tuple[float, float]]:
    """Evaluate a (start, end) span property, None when phase never ran."""
    try:
        start, end = getter()
        return (float(start), float(end))
    except ValueError:  # min()/max() of an empty record set
        return None


@dataclass
class RunSummary:
    """Measurements of one experiment cell, safe to pickle and JSON."""

    workload: str
    scheduler: str
    ratio: Optional[float]
    seed: int
    jct: float
    events_processed: int
    num_maps: int
    num_reducers: int
    submitted_at: float = 0.0
    completed_at: float = 0.0
    #: (first map start, last map end); None if the job ran no maps.
    map_phase: Optional[tuple[float, float]] = None
    #: (first fetch start, last fetch end); None for all-local shuffles.
    shuffle_span: Optional[tuple[float, float]] = None
    #: phase wall-time as a fraction of the JCT (map/shuffle/sort/reduce).
    phase_fractions: dict[str, float] = field(default_factory=dict)
    #: fraction of shuffle bytes that crossed the network.
    remote_fraction: float = 0.0
    map_locality: dict[str, int] = field(default_factory=dict)
    speculative_attempts: int = 0
    policy_stats: dict[str, Any] = field(default_factory=dict)
    #: metrics snapshot (empty unless the run had a real registry).
    metrics: dict[str, Any] = field(default_factory=dict)
    #: invariant-checker snapshot (empty unless checking was enabled).
    invariants: dict[str, Any] = field(default_factory=dict)
    #: per-kind chaos injection counts (empty unless chaos ran).
    faults_injected: dict[str, int] = field(default_factory=dict)
    #: fleet runs only: one measurement row per job, in canonical
    #: (arrival, key) order (see :func:`repro.analysis.fleet.job_rows`).
    job_rows: list[dict] = field(default_factory=list)
    #: fleet runs only: p50/p99 JCT, slowdown, Jain fairness, makespan.
    fleet: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_result(cls, result) -> "RunSummary":
        """Extract the summary from a live RunResult."""
        from repro.analysis.fleet import fleet_metrics, job_rows
        from repro.analysis.timeline import phase_fractions

        rows: list[dict] = []
        fleet: dict[str, Any] = {}
        if result.workload_name:
            rows = job_rows(result)
            fleet = fleet_metrics(rows)
        run = result.run
        return cls(
            workload=result.workload_name or run.spec.name,
            scheduler=result.scheduler,
            ratio=result.ratio,
            seed=result.seed,
            jct=run.jct,
            events_processed=result.sim.events_processed,
            num_maps=run.spec.num_maps,
            num_reducers=run.spec.num_reducers,
            submitted_at=run.submitted_at,
            completed_at=float(run.completed_at),
            map_phase=_span(lambda: run.map_phase_span),
            shuffle_span=_span(lambda: run.shuffle_span),
            phase_fractions=dict(phase_fractions(run)),
            remote_fraction=run.remote_fraction(),
            map_locality=dict(run.map_locality),
            speculative_attempts=run.speculative_attempts,
            policy_stats=dict(result.policy_stats),
            metrics=dict(result.metrics),
            invariants=dict(result.invariants),
            faults_injected=dict(result.faults_injected),
            job_rows=rows,
            fleet=fleet,
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (see :data:`SUMMARY_VERSION`)."""
        return {
            "version": SUMMARY_VERSION,
            "workload": self.workload,
            "scheduler": self.scheduler,
            "ratio": self.ratio,
            "seed": self.seed,
            "jct": self.jct,
            "events_processed": self.events_processed,
            "num_maps": self.num_maps,
            "num_reducers": self.num_reducers,
            "submitted_at": self.submitted_at,
            "completed_at": self.completed_at,
            "map_phase": list(self.map_phase) if self.map_phase else None,
            "shuffle_span": list(self.shuffle_span) if self.shuffle_span else None,
            "phase_fractions": self.phase_fractions,
            "remote_fraction": self.remote_fraction,
            "map_locality": self.map_locality,
            "speculative_attempts": self.speculative_attempts,
            "policy_stats": self.policy_stats,
            "metrics": self.metrics,
            "invariants": self.invariants,
            "faults_injected": self.faults_injected,
            "job_rows": self.job_rows,
            "fleet": self.fleet,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunSummary":
        """Rebuild a summary from :meth:`to_dict` output."""
        version = data.get("version")
        if version not in (1, SUMMARY_VERSION):
            raise ValueError(f"unsupported summary version {version!r}")
        # Version 1 predates the multi-tenant fleet fields; solo-run
        # summaries carry empty defaults for both, so a v1 payload loads
        # losslessly.
        return cls(
            workload=data["workload"],
            scheduler=data["scheduler"],
            ratio=data["ratio"],
            seed=data["seed"],
            jct=data["jct"],
            events_processed=data["events_processed"],
            num_maps=data["num_maps"],
            num_reducers=data["num_reducers"],
            submitted_at=data["submitted_at"],
            completed_at=data["completed_at"],
            map_phase=tuple(data["map_phase"]) if data["map_phase"] else None,
            shuffle_span=tuple(data["shuffle_span"]) if data["shuffle_span"] else None,
            phase_fractions=dict(data["phase_fractions"]),
            remote_fraction=data["remote_fraction"],
            map_locality=dict(data["map_locality"]),
            speculative_attempts=data["speculative_attempts"],
            policy_stats=dict(data["policy_stats"]),
            metrics=dict(data["metrics"]),
            invariants=dict(data["invariants"]),
            faults_injected=dict(data["faults_injected"]),
            job_rows=[dict(r) for r in data.get("job_rows", [])],
            fleet=dict(data.get("fleet", {})),
        )
