"""Content-addressed on-disk cache of sweep cell results.

A cell's cache key is the SHA-256 digest of a canonical-JSON rendering
of everything that determines its outcome: the JobSpec, scheduler,
over-subscription ratio, seed, PythiaConfig, topology factory name, any
extra ``run_experiment`` kwargs, and a code-version digest over the
``repro`` source tree.  Equal inputs always land on the same file;
*any* change — a config knob, a workload parameter, an engine edit —
moves the key, so stale entries can never be served (they are simply
never addressed again).

Entries live under ``<root>/<digest[:2]>/<digest>.json`` and hold a
:class:`~repro.runner.summary.RunSummary` dict.  Unreadable or
format-incompatible entries are dropped and recounted as
invalidations.  Hit/miss/invalidation totals are mirrored into the
active obs registry (``runner.cache_*``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from functools import lru_cache
from pathlib import Path
from typing import Any, Optional, Union

import numpy as np

from repro import obs
from repro.runner.summary import SUMMARY_VERSION, RunSummary


class UncacheableCell(TypeError):
    """A cell parameter cannot be rendered into a canonical cache key."""


def canonical(obj: Any) -> Any:
    """Render ``obj`` as JSON-safe canonical data for key digests.

    Handles the vocabulary experiment kwargs are written in: builtins,
    numpy scalars/arrays, dataclasses (tagged with their class name so
    two config types with equal fields cannot collide), mappings,
    sequences, and module-level callables (tagged ``module:qualname`` —
    how a topology factory enters the key).  Anything else — lambdas,
    live objects like a registry or tracer — raises
    :class:`UncacheableCell`.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.integer, np.floating)):
        return obj.item()
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: canonical(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        return {"__dataclass__": type(obj).__qualname__, **fields}
    if isinstance(obj, dict):
        return {str(k): canonical(v) for k, v in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [canonical(v) for v in obj]
    if callable(obj) and hasattr(obj, "__qualname__") and "<lambda>" not in obj.__qualname__:
        return f"{obj.__module__}:{obj.__qualname__}"
    raise UncacheableCell(
        f"cannot build a cache key from {type(obj).__name__}: {obj!r}"
    )


def digest(payload: Any) -> str:
    """SHA-256 over the canonical-JSON rendering of ``payload``."""
    blob = json.dumps(canonical(payload), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


@lru_cache(maxsize=1)
def code_version() -> str:
    """Digest of every ``repro`` source file (part of each cache key).

    Any edit anywhere in the package moves every key, which is the safe
    default: a cache can survive interpreter restarts and interrupted
    sweeps but never a code change it cannot account for.
    """
    import repro

    root = Path(repro.__file__).resolve().parent
    h = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        h.update(str(path.relative_to(root)).encode())
        h.update(path.read_bytes())
    return h.hexdigest()[:16]


class ResultCache:
    """Digest-keyed store of RunSummary JSON under one root directory."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        registry = obs.get_registry()
        self._hit_counter = registry.counter("runner.cache_hits")
        self._miss_counter = registry.counter("runner.cache_misses")
        self._invalidation_counter = registry.counter("runner.cache_invalidations")

    def path_for(self, key: str) -> Path:
        """Where the entry for ``key`` lives (two-level fan-out)."""
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[RunSummary]:
        """The cached summary for ``key``, or None on a miss.

        An entry that exists but cannot be decoded (truncated write,
        older summary format) is deleted and counted as an
        invalidation *and* a miss, so the caller re-executes the cell.
        """
        path = self.path_for(key)
        try:
            data = json.loads(path.read_text())
            summary = RunSummary.from_dict(data)
        except FileNotFoundError:
            self.misses += 1
            self._miss_counter.inc()
            return None
        except (json.JSONDecodeError, KeyError, ValueError, TypeError):
            path.unlink(missing_ok=True)
            self.invalidations += 1
            self._invalidation_counter.inc()
            self.misses += 1
            self._miss_counter.inc()
            return None
        self.hits += 1
        self._hit_counter.inc()
        return summary

    def put(self, key: str, summary: RunSummary) -> Path:
        """Store ``summary`` under ``key`` (atomic rename; last write wins)."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        tmp.write_text(json.dumps(summary.to_dict(), sort_keys=True))
        tmp.replace(path)
        return path

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))


__all__ = [
    "ResultCache",
    "UncacheableCell",
    "canonical",
    "code_version",
    "digest",
    "SUMMARY_VERSION",
]
