"""Figure 1b: adversarial ECMP shuffle-flow allocation.

The paper's second motivational scenario: two racks, two inter-rack
paths, Path-1 95 % loaded and Path-2 nearly idle.  ECMP's random local
hashing can assign a relatively large shuffle flow (159 MB, reducer-0
fetching from mapper-0) to the highly-loaded path "even if there is
available network capacity to complete the shuffle transfer faster".
Pythia, knowing both the load and the flow size, never does.

``run_fig1b`` constructs exactly that situation, demonstrates a port
draw under which ECMP lands the large flow on the hot path, and
contrasts the resulting transfer time against Pythia's placement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import PythiaConfig
from repro.core.scheduler import PythiaScheduler
from repro.instrumentation.messages import PredictionMessage, ReducerLocationMessage
from repro.sdn.controller import Controller
from repro.sdn.ecmp import ecmp_index
from repro.sdn.policy import EcmpPolicy
from repro.simnet.engine import Simulator
from repro.simnet.flows import SHUFFLE_PORT, TCP, UDP, FiveTuple, Flow
from repro.simnet.network import Network
from repro.simnet.topology import two_rack

MB = 1e6
FLOW1_BYTES = 159 * MB      # reducer-0 <- mapper-0, the paper's large flow
FLOW2_BYTES = 39 * MB       # reducer-1 <- mapper-1
HOT_LOAD_FRACTION = 0.95    # Path-1 utilisation in Figure 1b
COLD_LOAD_FRACTION = 0.05


@dataclass
class Fig1bResult:
    """Path choices and transfer times of the two Figure-1b flows."""
    scheduler: str
    flow1_trunk: str
    flow1_seconds: float
    flow2_trunk: str
    flow2_seconds: float
    hot_trunk: str = "trunk0"

    @property
    def adversarial(self) -> bool:
        """True when the large flow landed on the 95 %-loaded path."""
        return self.flow1_trunk == self.hot_trunk


def _load_paths(sim: Simulator, net: Network, topo) -> None:
    """Put 95 % background on trunk0 and 5 % on trunk1 (both directions)."""
    cap = 125e6
    for frac, trunk in ((HOT_LOAD_FRACTION, "trunk0"), (COLD_LOAD_FRACTION, "trunk1")):
        for src, tor_a, tor_b, dst in (
            ("bg0", "tor0", "tor1", "bg1"),
            ("bg1", "tor1", "tor0", "bg0"),
        ):
            flow = Flow(
                src=src,
                dst=dst,
                size=None,
                five_tuple=FiveTuple(src, dst, 50000, 5001, UDP),
                rigid_rate=frac * cap,
                tags={"kind": "background"},
            )
            net.start_flow(flow, topo.path_links([src, tor_a, trunk, tor_b, dst]))


def _adversarial_port(src_ip: str, dst_ip: str) -> int:
    """An ephemeral port whose five-tuple hash picks path index 0 (hot)."""
    for port in range(32768, 61000):
        ft = FiveTuple(src_ip, dst_ip, SHUFFLE_PORT, port, TCP)
        if ecmp_index(ft, 2) == 0:
            return port
    raise RuntimeError("no port hashes to path 0 — hash broken")


def _benign_port(src_ip: str, dst_ip: str) -> int:
    for port in range(32768, 61000):
        ft = FiveTuple(src_ip, dst_ip, SHUFFLE_PORT, port, TCP)
        if ecmp_index(ft, 2) == 1:
            return port
    raise RuntimeError("no port hashes to path 1 — hash broken")


def _mk_flow(src, dst, src_ip, dst_ip, size, port):
    return Flow(
        src=src,
        dst=dst,
        size=size,
        five_tuple=FiveTuple(src_ip, dst_ip, SHUFFLE_PORT, port, TCP),
        tags={"kind": "shuffle"},
    )


def run_fig1b(scheduler: str = "ecmp") -> Fig1bResult:
    """Place the two Figure-1b flows under one scheduler and time them."""
    sim = Simulator()
    topo = two_rack()
    net = Network(sim, topo)
    _load_paths(sim, net, topo)

    if scheduler == "pythia":
        cfg = PythiaConfig()
        ctrl = Controller(sim, net, k_paths=cfg.k_paths)
        sched = PythiaScheduler(cfg)
        ctrl.register(sched)
        ctrl.start()
        # warm the link statistics so the allocator sees the 95/5 split
        sim.run(until=3.0)
        for rid, server in ((0, "h10"), (1, "h11")):
            sched.collector.receive_reducer_location(
                ReducerLocationMessage(job="fig1b", reducer_id=rid, server=server, created_at=sim.now)
            )
        sched.collector.receive_prediction(
            PredictionMessage(
                job="fig1b",
                map_id=0,
                src_server="h00",
                reducer_bytes=np.array([FLOW1_BYTES, 0.0]),
                created_at=sim.now,
            )
        )
        sched.collector.receive_prediction(
            PredictionMessage(
                job="fig1b",
                map_id=1,
                src_server="h01",
                reducer_bytes=np.array([0.0, FLOW2_BYTES]),
                created_at=sim.now,
            )
        )
        sim.run(until=4.0)
        policy = sched.policy
    elif scheduler == "ecmp":
        policy = EcmpPolicy(topo, k=2)
        ctrl = None
    else:
        raise ValueError(f"fig1b compares ecmp and pythia, not {scheduler!r}")

    # the adversarial draw: flow-1's reducer-side port hashes to the hot path
    f1 = _mk_flow("h00", "h10", "10.0.0", "10.1.0", FLOW1_BYTES,
                  _adversarial_port("10.0.0", "10.1.0"))
    f2 = _mk_flow("h01", "h11", "10.0.1", "10.1.1", FLOW2_BYTES,
                  _benign_port("10.0.1", "10.1.1"))
    net.start_flow(f1, policy.place(f1))
    net.start_flow(f2, policy.place(f2))
    if ctrl is not None:
        ctrl.stop()
    sim.run(until=sim.now + 3600)
    for f in list(net.rigid):
        net.stop_flow(f)
    sim.run()

    def trunk(flow: Flow) -> str:
        return topo.path_nodes(flow.path)[2]

    return Fig1bResult(
        scheduler=scheduler,
        flow1_trunk=trunk(f1),
        flow1_seconds=float(f1.duration),
        flow2_trunk=trunk(f2),
        flow2_seconds=float(f2.duration),
    )
