"""Shared experiment harness: build the stack, run a job, collect results.

``run_experiment`` is the single entry point every figure reproduction
and example uses: it wires the simulator, topology, network, SDN
controller (with the requested scheduler), Hadoop cluster,
instrumentation middleware, NetFlow probes and background traffic, runs
one job to completion, and tears periodic services down so the event
queue drains deterministically.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro import obs
from repro.core.collector import PredictionCollector
from repro.core.config import PythiaConfig
from repro.core.scheduler import PythiaScheduler
from repro.hadoop.cluster import ClusterConfig, HadoopCluster
from repro.hadoop.job import JobRun, JobSpec
from repro.hadoop.jobtracker import JobTracker
from repro.instrumentation.decoder import SpillDecoder
from repro.instrumentation.middleware import (
    InstrumentationConfig,
    InstrumentationMiddleware,
)
from repro.instrumentation.overhead import InstrumentationCostModel
from repro.faults import ChaosEngine, ChaosSchedule, InvariantChecker
from repro.faults import runtime as faults_runtime
from repro.sdn.controller import Controller
from repro.sdn.hedera import HederaScheduler
from repro.sdn.policy import EcmpPolicy, FailureRepairService, PathPolicy
from repro.simnet.background import BackgroundRamp, BackgroundTraffic
from repro.simnet.engine import Simulator
from repro.simnet.netflow import NetFlowCollector
from repro.simnet.network import Network
from repro.simnet.topology import Topology, two_rack
from repro.workloads.cluster import ClusterJob, ClusterWorkload

SCHEDULERS = ("pythia", "ecmp", "hedera")


@dataclass
class RunResult:
    """Everything one experiment run produced."""

    scheduler: str
    ratio: Optional[float]
    seed: int
    run: JobRun
    netflow: NetFlowCollector
    topology: Topology
    sim: Simulator
    collector: Optional[PredictionCollector] = None
    policy_stats: dict = field(default_factory=dict)
    controller: Optional[Controller] = None
    #: metrics snapshot (empty unless the run had a real registry).
    metrics: dict = field(default_factory=dict)
    tracer: Optional[obs.Tracer] = None
    #: invariant-checker snapshot (empty unless checking was enabled).
    invariants: dict = field(default_factory=dict)
    #: per-kind chaos injection counts (empty unless chaos ran).
    faults_injected: dict = field(default_factory=dict)
    #: every job's trace in canonical (arrival, key) order; a solo run
    #: holds its one job here too, so fleet consumers need no branching.
    jobs: list[JobRun] = field(default_factory=list)
    #: the ClusterWorkload name for fleet runs ("" for solo runs).
    workload_name: str = ""
    #: job_id -> JCT of the same spec run alone on the same fabric —
    #: the slowdown denominator (populated by run_cluster_experiment).
    isolated_jct: dict = field(default_factory=dict)

    @property
    def jct(self) -> float:
        """Job completion time in seconds (fleet runs: the first job's)."""
        return self.run.jct


def run_experiment(
    spec: JobSpec,
    scheduler: str = "pythia",
    ratio: Optional[float] = None,
    seed: int = 0,
    topology_factory: Callable[[], Topology] = two_rack,
    cluster_config: Optional[ClusterConfig] = None,
    pythia_config: Optional[PythiaConfig] = None,
    netflow_interval: float = 1.0,
    model_instrumentation_cost: bool = False,
    fault: Optional[Callable[[Simulator, Topology], None]] = None,
    registry: Optional[obs.MetricsRegistry] = None,
    tracer: Optional[obs.Tracer] = None,
    invariants: Optional[bool] = None,
    chaos: Optional[Callable[[Topology], ChaosSchedule]] = None,
    background_ramp: Optional[BackgroundRamp] = None,
) -> RunResult:
    """Run one job under one scheduler and return its trace.

    Parameters
    ----------
    scheduler:
        ``"pythia"``, ``"ecmp"`` or ``"hedera"``.
    ratio:
        Over-subscription ratio N (the paper's 1:N); None = unloaded.
    model_instrumentation_cost:
        Apply the §V-C 2-5 % CPU cost of the middleware to task times
        (only meaningful with the pythia scheduler).
    fault:
        Optional hook to schedule topology faults, e.g.
        ``lambda sim, topo: sim.schedule(30, topo.fail_cable, "tor0", "trunk0")``.
    registry / tracer:
        Optional observability sinks; when given, every subsystem built
        for this run binds its instruments there and the result carries
        ``metrics`` (a snapshot) and ``tracer``.
    invariants:
        Run the :mod:`repro.faults.invariants` checker at every network
        settle point and once after the run.  ``None`` (the default)
        reads the ``REPRO_INVARIANTS`` environment variable, so CI can
        turn checking on for an entire suite without touching call
        sites.  Violations raise :class:`~repro.faults.InvariantViolation`.
    chaos:
        Optional schedule factory, e.g.
        ``lambda topo: random_schedule(topo, seed=7)``.  The resulting
        :class:`~repro.faults.ChaosSchedule` is injected through the
        simulator's event queue; injection counts land in
        ``RunResult.faults_injected``.
    background_ramp:
        Optional :class:`~repro.simnet.background.BackgroundRamp` — a
        stepped background surge on one trunk path (the forecastable
        step scenario ``forecast_efficacy`` evaluates), on top of
        whatever ``ratio`` already placed.
    """
    if scheduler not in SCHEDULERS:
        raise ValueError(f"unknown scheduler {scheduler!r}; choose from {SCHEDULERS}")
    checker = _make_checker(invariants)
    with obs.use(registry=registry, tracer=tracer):
        with faults_runtime.use_checker(checker):
            return _run_experiment_inner(
                spec,
                scheduler,
                ratio,
                seed,
                topology_factory,
                cluster_config,
                pythia_config,
                netflow_interval,
                model_instrumentation_cost,
                fault,
                registry,
                tracer,
                checker,
                chaos,
                background_ramp,
            )


def _make_checker(invariants: Optional[bool]) -> Optional[InvariantChecker]:
    """Resolve the invariant-checking request (arg beats environment)."""
    stride = 1
    scope = "component"
    if invariants is None:
        env = os.environ.get("REPRO_INVARIANTS", "")
        invariants = env not in ("", "0")
        # REPRO_INVARIANTS=N (N > 1) checks every Nth settle — the knob
        # that keeps suite-wide checking affordable on big runs.
        if invariants and env.isdigit():
            stride = max(1, int(env))
        # REPRO_INVARIANTS=full forces the whole-fabric audit at every
        # checkpoint (instead of the O(component) scoped default).
        if env == "full":
            scope = "full"
    return InvariantChecker(every=stride, scope=scope) if invariants else None


def run_cluster_experiment(
    workload: ClusterWorkload,
    scheduler: str = "pythia",
    ratio: Optional[float] = None,
    seed: int = 0,
    topology_factory: Callable[[], Topology] = two_rack,
    cluster_config: Optional[ClusterConfig] = None,
    pythia_config: Optional[PythiaConfig] = None,
    netflow_interval: float = 1.0,
    model_instrumentation_cost: bool = False,
    fault: Optional[Callable[[Simulator, Topology], None]] = None,
    registry: Optional[obs.MetricsRegistry] = None,
    tracer: Optional[obs.Tracer] = None,
    invariants: Optional[bool] = None,
    chaos: Optional[Callable[[Topology], ChaosSchedule]] = None,
    background_ramp: Optional[BackgroundRamp] = None,
    isolated_baselines: bool = True,
) -> RunResult:
    """Run a multi-tenant fleet on one shared fabric and return its trace.

    Jobs are submitted in the workload's canonical ``(arrival, key)``
    order — arrivals at time 0 directly, later ones through scheduled
    events — so fleet outcomes are invariant under permutations of the
    job list, and a one-job workload replays the single-job path
    bit-for-bit (each job's RNG stream comes from its stable key, not
    its submission rank).

    ``isolated_baselines`` additionally runs every job's spec alone on
    an identical fabric (same scheduler/ratio/seed) and records the
    resulting JCTs in ``RunResult.isolated_jct`` — the denominators of
    the per-job *slowdown* metric.  Baselines run outside the fleet's
    observability context so a registry or invariant checker attached
    to the fleet never sees them.
    """
    if scheduler not in SCHEDULERS:
        raise ValueError(f"unknown scheduler {scheduler!r}; choose from {SCHEDULERS}")
    checker = _make_checker(invariants)
    with obs.use(registry=registry, tracer=tracer):
        with faults_runtime.use_checker(checker):
            result = _run_experiment_inner(
                workload.sorted_jobs()[0].spec,
                scheduler,
                ratio,
                seed,
                topology_factory,
                cluster_config,
                pythia_config,
                netflow_interval,
                model_instrumentation_cost,
                fault,
                registry,
                tracer,
                checker,
                chaos,
                background_ramp,
                workload=workload,
            )
    if isolated_baselines:
        for job, run in zip(workload.sorted_jobs(), result.jobs):
            solo = run_experiment(
                job.spec,
                scheduler=scheduler,
                ratio=ratio,
                seed=seed,
                topology_factory=topology_factory,
                cluster_config=cluster_config,
                pythia_config=pythia_config,
                netflow_interval=netflow_interval,
                model_instrumentation_cost=model_instrumentation_cost,
                invariants=False,
            )
            result.isolated_jct[run.job_id] = solo.jct
    return result


def _run_experiment_inner(
    spec: JobSpec,
    scheduler: str,
    ratio: Optional[float],
    seed: int,
    topology_factory: Callable[[], Topology],
    cluster_config: Optional[ClusterConfig],
    pythia_config: Optional[PythiaConfig],
    netflow_interval: float,
    model_instrumentation_cost: bool,
    fault: Optional[Callable[[Simulator, Topology], None]],
    registry: Optional[obs.MetricsRegistry],
    tracer: Optional[obs.Tracer],
    checker: Optional[InvariantChecker] = None,
    chaos: Optional[Callable[[Topology], ChaosSchedule]] = None,
    background_ramp: Optional[BackgroundRamp] = None,
    workload: Optional[ClusterWorkload] = None,
) -> RunResult:
    sim = Simulator()
    rng = np.random.default_rng(seed)
    topology = topology_factory()
    network = Network(sim, topology)
    pythia_config = pythia_config or PythiaConfig()
    controller = Controller(
        sim,
        network,
        k_paths=pythia_config.k_paths,
        stats_period=pythia_config.stats_period,
        stats_alpha=pythia_config.stats_alpha,
        per_rule_latency=pythia_config.per_rule_latency,
        control_rtt=pythia_config.control_rtt,
        mgmt_latency=pythia_config.mgmt_latency,
    )

    pythia: Optional[PythiaScheduler] = None
    hedera: Optional[HederaScheduler] = None
    if scheduler == "pythia":
        pythia = PythiaScheduler(pythia_config)
        controller.register(pythia)
    elif scheduler == "hedera":
        hedera = HederaScheduler()
        controller.register(hedera)
    controller.start()

    policy: PathPolicy
    if pythia is not None:
        policy = pythia.policy
    else:
        policy = EcmpPolicy(topology, k=pythia_config.k_paths)
    repair = FailureRepairService(network, policy)

    cluster_config = cluster_config or ClusterConfig()
    if pythia is not None and model_instrumentation_cost:
        cost = InstrumentationCostModel()
        cluster_config.instrumentation_inflation = cost.mean_dc_fraction()
    cluster = HadoopCluster(topology, cluster_config)
    jobtracker = JobTracker(sim, network, cluster, policy, rng)

    if pythia is not None:
        assert pythia.collector is not None
        # The endpoint is the collector itself in "off" mode and the
        # staged pipeline's ingress driver in "staged" mode.
        InstrumentationMiddleware(
            sim,
            jobtracker,
            pythia.collector_endpoint,
            InstrumentationConfig(
                mgmt_latency=pythia_config.mgmt_latency,
                decoder=SpillDecoder(spec.predicted_overhead),
            ),
            rng,
        )

    # Demand-based max-link-utilisation, sampled on the stats period:
    # offered shuffle load (remaining bytes over the demand horizon,
    # charged to each live flow's current path) plus the rigid
    # background rate, against capacity.  Realised fluid rates always
    # saturate *some* bottleneck under max-min filling, so placement
    # quality only shows in the offered-load picture — this is the MLU
    # the min-MLU LP optimises, measured uniformly for every scheduler.
    mlu_track = [0.0, 0.0, 0]  # peak, sum, samples

    def _mlu_sample(now: float, dt: float, gap: float) -> None:
        caps = network.link_capacity()
        rigid = network.link_load() - network.link_elastic_load()
        load = rigid
        horizon = pythia_config.demand_horizon
        for f in network.elastic:
            if f.is_shuffle() and f.remaining > 0 and f.path:
                load[np.asarray(f.path, dtype=np.intp)] += f.remaining / horizon
        with np.errstate(divide="ignore", invalid="ignore"):
            util = np.where(caps > 0, load / np.where(caps > 0, caps, 1.0), 0.0)
        m = float(util.max())
        if m > mlu_track[0]:
            mlu_track[0] = m
        mlu_track[1] += m
        mlu_track[2] += 1

    controller.stats_service.add_sample_hook(_mlu_sample)

    netflow = NetFlowCollector(sim, network, interval=netflow_interval)
    background = BackgroundTraffic(network, rng)
    background.populate(ratio)
    if background_ramp is not None:
        background.schedule_ramp(sim, background_ramp)

    if fault is not None:
        fault(sim, topology)

    chaos_engine: Optional[ChaosEngine] = None
    if chaos is not None:
        schedule = chaos(topology)
        chaos_engine = ChaosEngine(
            sim,
            network,
            controller=controller,
            collector=pythia.collector if pythia is not None else None,
            seed=schedule.seed,
        )
        chaos_engine.apply(schedule)

    if workload is None:

        def _on_done(_run: JobRun) -> None:
            controller.stop()
            background.teardown()

        run = jobtracker.submit(spec, on_complete=_on_done)
        jobs = [run]
    else:
        jobtracker.configure_tenants(workload.tenants)
        ordered = workload.sorted_jobs()
        remaining = len(ordered)
        runs_by_key: dict[int, JobRun] = {}

        def _on_fleet_done(_run: JobRun) -> None:
            nonlocal remaining
            remaining -= 1
            if remaining == 0:
                controller.stop()
                background.teardown()

        def _submit(job: ClusterJob) -> None:
            runs_by_key[job.key] = jobtracker.submit(
                job.spec,
                on_complete=_on_fleet_done,
                tenant=job.tenant,
                seed_key=job.key,
            )

        # Time-0 arrivals are submitted directly (exactly what the solo
        # path does, keeping one-job fleets bit-identical); later ones
        # arrive through the event queue in canonical order.
        for job in ordered:
            if job.at <= 0.0:
                _submit(job)
            else:
                sim.schedule_at(job.at, _submit, job)
    sim.run()
    if workload is not None:
        jobs = [runs_by_key[j.key] for j in workload.sorted_jobs()]
        run = jobs[0]
    unfinished = [r.spec.name for r in jobs if r.completed_at is None]
    if unfinished:
        raise RuntimeError(
            f"jobs {unfinished!r} did not complete (event queue drained early)"
        )
    if checker is not None:
        # Final end-of-run checkpoint regardless of the sampling stride.
        checker.check()

    stats: dict = {"repairs": repair.repairs, "stranded": repair.stranded}
    if mlu_track[2]:
        stats["demand_mlu_peak"] = mlu_track[0]
        stats["demand_mlu_mean"] = mlu_track[1] / mlu_track[2]
    if chaos_engine is not None:
        stats.update(
            install_retries=controller.programmer.install_retries,
            install_failures=controller.programmer.install_failures,
            crashes=controller.crashes,
            resyncs=controller.resyncs,
            rules_resynced=controller.rules_resynced,
            stats_samples_skipped=controller.stats_service.samples_skipped,
        )
    if pythia is not None:
        stats.update(
            rule_hits=pythia.policy.rule_hits,
            fallbacks=pythia.policy.fallbacks,
            rules_installed=controller.programmer.rules_installed,
            peak_rules=controller.programmer.peak_table_size,
            predictions=pythia.collector.predictions_received,  # type: ignore[union-attr]
        )
        if pythia.pipeline is not None:
            stats["pipeline"] = pythia.pipeline.snapshot()
        if pythia.lp is not None:
            stats.update(pythia.lp.snapshot())
        if pythia.forecast is not None:
            stats.update(pythia.forecast.snapshot())
            if pythia.rerouter is not None:
                stats.update(
                    forecast_reroutes=pythia.rerouter.reroutes,
                    forecast_reroutes_skipped_stale=pythia.rerouter.skipped_stale,
                )
    if hedera is not None:
        stats.update(reroutes=hedera.reroutes)
    return RunResult(
        scheduler=scheduler,
        ratio=ratio,
        seed=seed,
        run=run,
        netflow=netflow,
        topology=topology,
        sim=sim,
        collector=pythia.collector if pythia is not None else None,
        policy_stats=stats,
        controller=controller,
        metrics=registry.snapshot() if registry is not None else {},
        tracer=tracer,
        invariants=checker.snapshot() if checker is not None else {},
        faults_injected=dict(chaos_engine.injected) if chaos_engine is not None else {},
        jobs=jobs,
        workload_name=workload.name if workload is not None else "",
    )


def run_pair(
    spec_factory: Callable[[], JobSpec],
    ratio: Optional[float],
    seed: int = 0,
    **kwargs,
) -> tuple[RunResult, RunResult]:
    """Run the same workload under ECMP and Pythia (one table row)."""
    ecmp = run_experiment(spec_factory(), scheduler="ecmp", ratio=ratio, seed=seed, **kwargs)
    pythia = run_experiment(spec_factory(), scheduler="pythia", ratio=ratio, seed=seed, **kwargs)
    return ecmp, pythia
