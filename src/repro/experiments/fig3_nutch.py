"""Figure 3: Nutch job completion times, Pythia vs ECMP, and speedup.

Paper claims to reproduce in shape: Pythia outperforms ECMP at every
loaded ratio; the maximum speedup lands at 1:20; Pythia's completion
times "do not significantly increase by handing more network capacity
to Hadoop and are comparable to the respective job completion time
measured in a network without over-subscription" (the flat curve).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.report import format_grouped_bars, format_table
from repro.analysis.speedup import SweepRow, sweep_table
from repro.experiments.sweeps import DEFAULT_RATIOS, oversubscription_sweep
from repro.workloads.nutch import nutch_indexing_job


def run_fig3(
    pages: float = 5e6,
    ratios: Sequence[Optional[float]] = DEFAULT_RATIOS,
    seeds: Sequence[int] = (1, 2, 3),
    workers: int = 1,
    cache_dir=None,
) -> list[SweepRow]:
    """Nutch indexing sweep (§V-A configured 5M pages / 8 GB).

    ``workers``/``cache_dir`` reach :func:`repro.runner.run_cells`:
    the grid fans out over a process pool and repeat invocations are
    served from the content-addressed result cache.
    """
    return oversubscription_sweep(
        lambda: nutch_indexing_job(pages=pages),
        ratios=ratios,
        seeds=seeds,
        workers=workers,
        cache_dir=cache_dir,
    )


def render_fig3(rows: list[SweepRow]) -> str:
    """Render the Figure 3 table and bar chart as text."""
    table = format_table(
        ["oversub", "ECMP (s)", "Pythia (s)", "speedup (%)"], sweep_table(rows)
    )
    bars = format_grouped_bars(
        [r.label for r in rows],
        {"ECMP": [r.t_ecmp for r in rows], "Pythia": [r.t_pythia for r in rows]},
    )
    return "Figure 3 — Nutch indexing job completion time\n" + table + "\n\n" + bars
