"""LP re-optimization comparison: global placement vs greedy baselines.

Evaluates :mod:`repro.core.lp_allocator` with the paper's methodology —
same workload x oversubscription grid, averaged over seeds — asking the
one question the greedy pipeline cannot answer by construction: how
much headroom does re-solving *all* live placements at once buy over
placing each aggregate in arrival order and never looking back?

The reference scenario is deliberately trunk-bound: a small sort with
*low* reducer skew (``skew_alpha=0.05``) on the two-rack testbed.  Low
skew matters — under heavy skew the binding link is the hot reducer's
own downlink, which no path choice can avoid, and the LP provably
cannot improve on greedy (the solver returns the incumbent MLU as the
optimum).  With balanced reducers the binding constraint moves onto
the oversubscribed trunks, where path assignment is exactly the degree
of freedom the LP optimises over.

Metrics per (variant, ratio) cell:

* mean/std JCT over seeds — the paper's headline metric;
* ``demand_mlu_peak`` / ``demand_mlu_mean`` — offered-load max-link-
  utilisation sampled on the stats period (see
  :mod:`repro.experiments.common`); realised fluid rates always
  saturate *some* bottleneck under max-min filling, so placement
  quality only shows in the offered-load picture;
* the LP solver counters (solves, worst solve wall-time, placements
  changed, live reroutes, budget overruns) for the LP variants.

Everything runs through :func:`repro.runner.run_cells`, so cells are
cacheable and fan out over workers; each variant's knobs travel in
``run_kwargs`` as a frozen ``PythiaConfig``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

import numpy as np

from repro.analysis import format_table
from repro.core.config import PythiaConfig
from repro.hadoop.job import JobSpec
from repro.runner import run_cells, sweep_grid
from repro.workloads import sort_job

#: sweep variants in report order; ``pythia`` is the greedy first-fit
#: prototype, ``pythia+wf`` its water-filling allocator, and the
#: ``pythia+lp:*`` rows layer the periodic global re-solve on top.
DEFAULT_VARIANTS: tuple[str, ...] = (
    "ecmp",
    "hedera",
    "pythia",
    "pythia+wf",
    "pythia+lp:min_mlu",
    "pythia+lp:max_throughput",
)

DEFAULT_RATIOS: tuple[Optional[float], ...] = (5, 10)

#: re-solve cadence for the LP variants; 1 s keeps a handful of solves
#: inside the reference job's ~12 s shuffle.
DEFAULT_LP_PERIOD = 1.0


def reference_spec() -> JobSpec:
    """The trunk-bound workload the LP comparison (and CI gate) runs on."""
    return sort_job(input_gb=0.3, num_reducers=4, skew_alpha=0.05)


@dataclass(frozen=True)
class LpRow:
    """One (variant, ratio) aggregate of the LP comparison sweep."""

    variant: str
    ratio: Optional[float]
    mean_jct: float
    std_jct: float
    samples: tuple[float, ...]
    #: mean over seeds of the per-run peak demand-based MLU.
    mlu_peak: float
    #: mean over seeds of the per-run time-averaged demand-based MLU.
    mlu_mean: float
    #: mean LP solves per run; 0 for non-LP variants.
    lp_solves: float = 0.0
    #: worst single solve wall-time (ms) across all seeds.
    lp_solve_ms_max: float = 0.0
    #: mean placements changed by LP passes per run.
    lp_placements_changed: float = 0.0
    #: mean live flows rerouted by LP passes per run.
    lp_reroutes: float = 0.0
    #: total solves whose wall-time overran the install budget.
    lp_budget_exceeded: float = 0.0


def variant_config(variant: str, lp_period: float = DEFAULT_LP_PERIOD):
    """(scheduler, PythiaConfig | None) for one report variant."""
    if variant.startswith("pythia+lp:"):
        return "pythia", PythiaConfig(
            lp_mode=variant.split(":", 1)[1], lp_period=lp_period
        )
    if variant == "pythia+wf":
        return "pythia", PythiaConfig(allocation="water_filling")
    return variant, None


def _aggregate(variant: str, ratio: Optional[float], summaries) -> LpRow:
    jcts = [s.jct for s in summaries]
    stats = [s.policy_stats for s in summaries]

    def mean_of(key: str) -> float:
        vals = [st.get(key, 0.0) for st in stats]
        return float(np.mean(vals)) if vals else 0.0

    def max_of(key: str) -> float:
        vals = [st.get(key, 0.0) for st in stats]
        return float(np.max(vals)) if vals else 0.0

    return LpRow(
        variant=variant,
        ratio=ratio,
        mean_jct=float(np.mean(jcts)),
        std_jct=float(np.std(jcts, ddof=1)) if len(jcts) > 1 else 0.0,
        samples=tuple(jcts),
        mlu_peak=mean_of("demand_mlu_peak"),
        mlu_mean=mean_of("demand_mlu_mean"),
        lp_solves=mean_of("lp_solves"),
        lp_solve_ms_max=max_of("lp_solve_ms_max"),
        lp_placements_changed=mean_of("lp_placements_changed"),
        lp_reroutes=mean_of("lp_reroutes"),
        lp_budget_exceeded=mean_of("lp_budget_exceeded"),
    )


def lp_comparison_sweep(
    spec_factory: Callable[[], JobSpec] = reference_spec,
    variants: Sequence[str] = DEFAULT_VARIANTS,
    ratios: Sequence[Optional[float]] = DEFAULT_RATIOS,
    seeds: Sequence[int] = (1, 2),
    workers: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    lp_period: float = DEFAULT_LP_PERIOD,
) -> list[LpRow]:
    """JCT and demand-MLU of every variant across oversubscription ratios."""
    rows: list[LpRow] = []
    for variant in variants:
        scheduler, config = variant_config(variant, lp_period)
        cells = sweep_grid(spec_factory, (scheduler,), ratios, seeds)
        run_kwargs: dict = {}
        if config is not None:
            run_kwargs["pythia_config"] = config
        report = run_cells(
            cells, workers=workers, cache_dir=cache_dir, run_kwargs=run_kwargs
        )
        per_ratio = len(seeds)
        for i, ratio in enumerate(ratios):
            chunk = report.summaries[i * per_ratio : (i + 1) * per_ratio]
            rows.append(_aggregate(variant, ratio, chunk))
    return rows


def format_lp_comparison(rows: Sequence[LpRow]) -> str:
    """Render the comparison sweep as the CLI's table."""
    return format_table(
        [
            "variant",
            "ratio",
            "mean JCT (s)",
            "std",
            "MLU peak",
            "MLU mean",
            "solves",
            "worst solve (ms)",
            "moved",
            "reroutes",
        ],
        [
            (
                r.variant,
                "none" if r.ratio is None else f"1:{r.ratio:g}",
                f"{r.mean_jct:.2f}",
                f"{r.std_jct:.2f}",
                f"{r.mlu_peak:.4f}",
                f"{r.mlu_mean:.4f}",
                f"{r.lp_solves:.1f}",
                f"{r.lp_solve_ms_max:.2f}",
                f"{r.lp_placements_changed:.1f}",
                f"{r.lp_reroutes:.1f}",
            )
            for r in rows
        ],
    )


def bench_payload(
    rows: Sequence[LpRow],
    ratios: Sequence[Optional[float]] = DEFAULT_RATIOS,
    seeds: Sequence[int] = (1, 2),
) -> dict:
    """BENCH_lp.json body for a finished sweep (see benchmarks/)."""
    by_ratio: dict = {}
    for ratio in ratios:
        key = f"ratio_1_{ratio:g}"
        cell: dict = {}
        for r in rows:
            if r.ratio != ratio:
                continue
            entry = {
                "mean_jct_seconds": round(r.mean_jct, 3),
                "demand_mlu_peak": round(r.mlu_peak, 4),
                "demand_mlu_mean": round(r.mlu_mean, 4),
            }
            if r.lp_solves:
                entry.update(
                    lp_solves_per_run=round(r.lp_solves, 1),
                    lp_worst_solve_ms=round(r.lp_solve_ms_max, 2),
                    lp_placements_changed=round(r.lp_placements_changed, 1),
                    lp_reroutes=round(r.lp_reroutes, 1),
                    lp_budget_exceeded=r.lp_budget_exceeded,
                )
            cell[r.variant.replace("+", "_").replace(":", "_")] = entry
        by_ratio[key] = cell
    return {
        "description": (
            "Global LP re-optimization (repro.core.lp_allocator) vs greedy "
            "baselines on the trunk-bound reference scenario: sort 0.3 GB, "
            "4 reducers, skew_alpha=0.05, two-rack testbed, seeds "
            f"{list(seeds)}.  demand_mlu_* is the offered-load max-link-"
            "utilisation the min-MLU LP optimises, sampled on the stats "
            "period; JCTs are simulator-deterministic.  Re-generate with "
            "`python -m repro lp --seeds 1 2`."
        ),
        "workload": {
            "name": "LP re-optimization comparison sweep",
            "topology": "two_rack (2x 1GbE trunks), sort 0.3 GB / 4 reducers",
            "source": (
                "src/repro/experiments/lp_comparison.py; "
                "gates in benchmarks/test_lp_allocator.py"
            ),
        },
        "results": by_ratio,
    }
