"""Experiment runners: one module per paper table/figure.

See DESIGN.md's experiment index.  Every runner builds a full stack —
topology, fluid network, controller + scheduler, Hadoop cluster,
instrumentation, background traffic — executes the workload to
completion, and returns structured results that the benchmark harness
renders as the paper's rows/series.
"""

from repro.experiments.common import RunResult, run_experiment, run_pair

__all__ = ["RunResult", "run_experiment", "run_pair"]
