"""Chained-job experiment: run job i+1 when job i completes.

Iterative analytics (PageRank, k-means, BFS) execute as a *chain* of
MapReduce jobs whose shuffle pattern repeats every round — per-round
savings from network scheduling compound across the chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.config import PythiaConfig
from repro.core.scheduler import PythiaScheduler
from repro.hadoop.cluster import ClusterConfig, HadoopCluster
from repro.hadoop.job import JobSpec
from repro.hadoop.jobtracker import JobTracker
from repro.instrumentation.decoder import SpillDecoder
from repro.instrumentation.middleware import (
    InstrumentationConfig,
    InstrumentationMiddleware,
)
from repro.sdn.controller import Controller
from repro.sdn.policy import EcmpPolicy, FailureRepairService
from repro.simnet.background import BackgroundTraffic
from repro.simnet.engine import Simulator
from repro.simnet.network import Network
from repro.simnet.topology import two_rack


@dataclass
class ChainResult:
    """Outcome of one sequential job chain."""
    scheduler: str
    ratio: Optional[float]
    iteration_jcts: list[float] = field(default_factory=list)
    total_seconds: float = 0.0

    @property
    def mean_iteration(self) -> float:
        """Mean per-iteration completion time."""
        return float(np.mean(self.iteration_jcts))


def run_chain(
    specs: list[JobSpec],
    scheduler: str = "pythia",
    ratio: Optional[float] = 10,
    seed: int = 1,
    pythia_config: Optional[PythiaConfig] = None,
) -> ChainResult:
    """Execute the chain sequentially inside one simulation."""
    if not specs:
        raise ValueError("empty chain")
    sim = Simulator()
    rng = np.random.default_rng(seed)
    topology = two_rack()
    network = Network(sim, topology)
    pythia_config = pythia_config or PythiaConfig()
    controller = Controller(sim, network, k_paths=pythia_config.k_paths)
    pythia: Optional[PythiaScheduler] = None
    if scheduler == "pythia":
        pythia = PythiaScheduler(pythia_config)
        controller.register(pythia)
    elif scheduler != "ecmp":
        raise ValueError(f"chain experiment supports ecmp/pythia, not {scheduler!r}")
    controller.start()
    policy = pythia.policy if pythia is not None else EcmpPolicy(topology)
    FailureRepairService(network, policy)
    cluster = HadoopCluster(topology, ClusterConfig())
    jobtracker = JobTracker(sim, network, cluster, policy, rng)
    if pythia is not None:
        assert pythia.collector is not None
        InstrumentationMiddleware(
            sim,
            jobtracker,
            pythia.collector,
            InstrumentationConfig(decoder=SpillDecoder(specs[0].predicted_overhead)),
            rng,
        )
    background = BackgroundTraffic(network, rng)
    background.populate(ratio)

    result = ChainResult(scheduler=scheduler, ratio=ratio)
    queue = list(specs)

    def _submit_next() -> None:
        spec = queue.pop(0)
        jobtracker.submit(spec, on_complete=_on_done)

    def _on_done(run) -> None:
        result.iteration_jcts.append(run.jct)
        if queue:
            _submit_next()
        else:
            result.total_seconds = sim.now
            controller.stop()
            background.teardown()

    sim.schedule(0.0, _submit_next)
    sim.run()
    if len(result.iteration_jcts) != len(specs):
        raise RuntimeError("chain did not complete")
    return result
