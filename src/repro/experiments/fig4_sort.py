"""Figure 4: Sort job completion times, Pythia vs ECMP, and speedup.

Shape to reproduce: "unlike Nutch, sort jobs running over Pythia are
not able to maintain similar job completion times over different
over-subscription ratios ... however Pythia is still able to
outperform ECMP for different over-subscription ratios" — sort's
shuffle volume exceeds any single path's residual capacity, so Pythia
degrades gracefully while ECMP degrades badly.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.report import format_grouped_bars, format_table
from repro.analysis.speedup import SweepRow, sweep_table
from repro.experiments.sweeps import DEFAULT_RATIOS, oversubscription_sweep
from repro.workloads.sort import sort_job


def run_fig4(
    input_gb: float = 24.0,
    ratios: Sequence[Optional[float]] = DEFAULT_RATIOS,
    seeds: Sequence[int] = (1, 2, 3),
    workers: int = 1,
    cache_dir=None,
) -> list[SweepRow]:
    """Sort sweep.

    The paper ran 240 GB; the default here is a 24 GB scale model (the
    simulator preserves the contention structure — shuffle volume per
    trunk residual — which is what sets the curve's shape).  Pass
    ``input_gb=240`` for paper scale.  ``workers``/``cache_dir`` reach
    :func:`repro.runner.run_cells` (process-pool fan-out + result cache).
    """
    return oversubscription_sweep(
        lambda: sort_job(input_gb=input_gb),
        ratios=ratios,
        seeds=seeds,
        workers=workers,
        cache_dir=cache_dir,
    )


def render_fig4(rows: list[SweepRow]) -> str:
    """Render the Figure 4 table and bar chart as text."""
    table = format_table(
        ["oversub", "ECMP (s)", "Pythia (s)", "speedup (%)"], sweep_table(rows)
    )
    bars = format_grouped_bars(
        [r.label for r in rows],
        {"ECMP": [r.t_ecmp for r in rows], "Pythia": [r.t_pythia for r in rows]},
    )
    return "Figure 4 — Sort job completion time\n" + table + "\n\n" + bars
