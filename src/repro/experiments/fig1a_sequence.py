"""Figure 1a: sequence diagram of a toy sort job.

Reproduces the paper's motivational analysis: a toy-sized sort (three
map tasks, two reducers, 5:1 key skew) on a 1 Gbps non-blocking
network, rendered as a sequence diagram.  The two §II observations
must be visible in the output: the shuffle phase occupies a
substantial fraction of job time, and reducer-0 fetches ~5x the bytes
of reducer-1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.timeline import Segment, job_timeline, phase_fractions, render_timeline
from repro.experiments.common import RunResult, run_experiment
from repro.hadoop.cluster import ClusterConfig
from repro.workloads.sort import toy_sort_job


@dataclass
class Fig1aResult:
    """Timeline and skew metrics of the Figure-1a toy job."""
    result: RunResult
    segments: list[Segment]
    shuffle_fraction: float
    reducer_byte_ratio: float

    def render(self, width: int = 78) -> str:
        """Header line plus ASCII sequence diagram."""
        header = (
            f"toy sort: jct={self.result.jct:.1f}s  "
            f"shuffle covers {self.shuffle_fraction:.0%} of job time  "
            f"reducer-0/reducer-1 bytes = {self.reducer_byte_ratio:.1f}x"
        )
        return header + "\n" + render_timeline(self.segments, width=width)


def run_fig1a(seed: int = 0) -> Fig1aResult:
    """Execute the toy job on an unloaded network and extract the diagram."""
    # Three map slots total, mirroring "the job uses three map task
    # slots and two reducers".
    cluster = ClusterConfig(map_slots=1, reduce_slots=1)
    result = run_experiment(
        toy_sort_job(),
        scheduler="ecmp",
        ratio=None,
        seed=seed,
        cluster_config=cluster,
    )
    run = result.run
    per_reducer = run.reducer_bytes()
    fractions = phase_fractions(run)
    return Fig1aResult(
        result=result,
        segments=job_timeline(run),
        shuffle_fraction=fractions["shuffle"],
        reducer_byte_ratio=float(per_reducer[0] / per_reducer[1]),
    )
