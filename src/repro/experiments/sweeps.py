"""Shared over-subscription sweep machinery for Figures 3 and 4."""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.analysis.speedup import SweepRow
from repro.experiments.common import run_experiment
from repro.hadoop.job import JobSpec

#: the ratios the reproduction sweeps; the testbed's nominal ratio is
#: 1:2.5 (5x 1G host uplinks over 2x 1G trunks), so ratios at or below
#: that add no background traffic.
DEFAULT_RATIOS: tuple[Optional[float], ...] = (None, 5, 10, 20)


def oversubscription_sweep(
    spec_factory: Callable[[], JobSpec],
    ratios: Sequence[Optional[float]] = DEFAULT_RATIOS,
    seeds: Sequence[int] = (1, 2, 3),
    **run_kwargs,
) -> list[SweepRow]:
    """Average ECMP vs Pythia completion times per ratio.

    "Times are reported in seconds and represent the average of
    multiple executions" (§V-B) — hence the seed set.
    """
    rows: list[SweepRow] = []
    for ratio in ratios:
        ecmp = [
            run_experiment(
                spec_factory(), scheduler="ecmp", ratio=ratio, seed=s, **run_kwargs
            ).jct
            for s in seeds
        ]
        pythia = [
            run_experiment(
                spec_factory(), scheduler="pythia", ratio=ratio, seed=s, **run_kwargs
            ).jct
            for s in seeds
        ]
        rows.append(
            SweepRow(
                ratio=ratio,
                t_ecmp=float(np.mean(ecmp)),
                t_pythia=float(np.mean(pythia)),
                std_ecmp=float(np.std(ecmp, ddof=1)) if len(ecmp) > 1 else 0.0,
                std_pythia=float(np.std(pythia, ddof=1)) if len(pythia) > 1 else 0.0,
            )
        )
    return rows
