"""Shared over-subscription sweep machinery for Figures 3 and 4.

The sweep is a (ratio x scheduler x seed) grid of independent runs, so
it executes on :mod:`repro.runner`: pass ``workers=N`` to fan the cells
over a process pool and ``cache_dir=...`` to memoise per-cell results in
the content-addressed cache (repeat sweeps then cost nothing).  Rows
keep the raw per-seed samples alongside the mean/std aggregates.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Optional, Sequence, Union

import numpy as np

from repro.analysis.speedup import SweepRow
from repro.hadoop.job import JobSpec
from repro.runner import run_cells, sweep_grid

#: the ratios the reproduction sweeps; the testbed's nominal ratio is
#: 1:2.5 (5x 1G host uplinks over 2x 1G trunks), so ratios at or below
#: that add no background traffic.
DEFAULT_RATIOS: tuple[Optional[float], ...] = (None, 5, 10, 20)


def oversubscription_sweep(
    spec_factory: Callable[[], JobSpec],
    ratios: Sequence[Optional[float]] = DEFAULT_RATIOS,
    seeds: Sequence[int] = (1, 2, 3),
    workers: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    **run_kwargs,
) -> list[SweepRow]:
    """Average ECMP vs Pythia completion times per ratio.

    "Times are reported in seconds and represent the average of
    multiple executions" (§V-B) — hence the seed set.  ``workers`` and
    ``cache_dir`` go straight to :func:`repro.runner.run_cells`;
    remaining kwargs reach ``run_experiment`` for every cell.
    """
    cells = sweep_grid(spec_factory, ("ecmp", "pythia"), ratios, seeds)
    report = run_cells(
        cells, workers=workers, cache_dir=cache_dir, run_kwargs=run_kwargs
    )
    # Cells are ratio-major (see sweep_grid), so the ratio index is
    # positional — keying on it rather than the ratio value keeps
    # duplicate ratios in the argument list well-defined.
    per_ratio = 2 * len(seeds)
    jct = {
        (cell.scheduler, idx // per_ratio, cell.seed): summary.jct
        for idx, (cell, summary) in enumerate(zip(cells, report.summaries))
    }
    rows: list[SweepRow] = []
    for i, ratio in enumerate(ratios):
        ecmp = [jct[("ecmp", i, s)] for s in seeds]
        pythia = [jct[("pythia", i, s)] for s in seeds]
        rows.append(
            SweepRow(
                ratio=ratio,
                t_ecmp=float(np.mean(ecmp)),
                t_pythia=float(np.mean(pythia)),
                std_ecmp=float(np.std(ecmp, ddof=1)) if len(ecmp) > 1 else 0.0,
                std_pythia=float(np.std(pythia, ddof=1)) if len(pythia) > 1 else 0.0,
                ecmp_samples=tuple(ecmp),
                pythia_samples=tuple(pythia),
            )
        )
    return rows
