"""Figure 5: prediction promptness and accuracy for one sourcing server.

The paper ran a 60 GB integer sort with NetFlow probes on every server
and overlaid, per server, the cumulative traffic volume Pythia
predicted against the volume measured on the wire.  Claims to
reproduce in shape:

* the predicted curve leads the measured one by several seconds
  ("approximately 9 sec at minimum", and always safely above the
  3-5 ms/flow network-programming budget);
* Pythia "was always able to never lag the actual traffic measurement
  trace";
* the final predicted volume over-estimates by 3-7 % (header-overhead
  estimation at the application layer).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.prediction_eval import (
    PredictionEvaluation,
    evaluate_all_servers,
)
from repro.analysis.report import format_table
from repro.experiments.common import RunResult, run_experiment
from repro.workloads.sort import integer_sort_job


@dataclass
class Fig5Result:
    """Per-server prediction evaluations of one Figure-5 run."""
    result: RunResult
    evaluations: dict[str, PredictionEvaluation]

    @property
    def min_lead_seconds(self) -> float:
        """Smallest prediction lead over all servers."""
        return min(e.min_lead_seconds for e in self.evaluations.values())

    @property
    def overestimate_range(self) -> tuple[float, float]:
        """(min, max) volume over-estimate across servers."""
        fracs = [e.overestimate_fraction for e in self.evaluations.values()]
        return (min(fracs), max(fracs))

    @property
    def never_lags(self) -> bool:
        """True iff no server's prediction ever lagged the wire."""
        return all(e.never_lags for e in self.evaluations.values())

    def render(self) -> str:
        """Figure-5 table plus summary line, as text."""
        rows = [
            (
                server,
                e.min_lead_seconds,
                100.0 * e.overestimate_fraction,
                "yes" if e.never_lags else "NO",
            )
            for server, e in sorted(self.evaluations.items())
        ]
        table = format_table(
            ["server", "min lead (s)", "overestimate (%)", "never lags"], rows
        )
        lo, hi = self.overestimate_range
        summary = (
            f"min lead across servers: {self.min_lead_seconds:.1f}s; "
            f"overestimate band: {100 * lo:.1f}%..{100 * hi:.1f}%"
        )
        return "Figure 5 — prediction promptness/accuracy\n" + table + "\n" + summary


def run_fig5(input_gb: float = 60.0, seed: int = 1, netflow_interval: float = 0.5) -> Fig5Result:
    """60 GB integer sort under Pythia, with NetFlow ground truth."""
    result = run_experiment(
        integer_sort_job(input_gb=input_gb),
        scheduler="pythia",
        ratio=None,
        seed=seed,
        netflow_interval=netflow_interval,
    )
    assert result.collector is not None
    evaluations = evaluate_all_servers(result.collector, result.netflow)
    if not evaluations:
        raise RuntimeError("no servers sourced shuffle traffic — job too small?")
    return Fig5Result(result=result, evaluations=evaluations)
