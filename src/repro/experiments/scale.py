"""Fabric-scaling study: Pythia beyond the 2-rack testbed.

§IV anticipates "large-scale future SDN network setups"; this study
runs the same per-node workload on progressively larger multi-path
fabrics and reports job time alongside the control-plane footprint —
predictions ingested, rules installed, peak rule-table occupancy —
which is the operational cost a deployment would watch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.experiments.common import run_experiment
from repro.simnet.topology import Topology, fat_tree, leaf_spine, three_tier, two_rack
from repro.workloads.sort import sort_job


@dataclass(frozen=True)
class ScalePoint:
    """One fabric's job time and control-plane footprint."""
    label: str
    hosts: int
    jct: float
    predictions: int
    rules_installed: int
    peak_rules: int
    fallbacks: int


#: the fabrics the study sweeps, smallest first.
FABRICS: list[tuple[str, Callable[[], Topology]]] = [
    ("2-rack (10 hosts)", lambda: two_rack()),
    ("leaf-spine 4x2 (16 hosts)", lambda: leaf_spine(leaves=4, spines=2, hosts_per_leaf=4)),
    ("leaf-spine 4x4 (24 hosts)", lambda: leaf_spine(leaves=4, spines=4, hosts_per_leaf=6)),
    ("3-tier 2x2x6 (24 hosts)", lambda: three_tier(pods=2, racks_per_pod=2, hosts_per_rack=6, cores=2)),
]

#: the data-center-scale points the structured control plane unlocks.
#: Run these with a lighter per-host load (see `run_scale_study`
#: defaults) — shuffle flow count grows as maps × reducers, so the
#: testbed load level would swamp the study with O(10^5) flows.
LARGE_FABRICS: list[tuple[str, Callable[[], Topology]]] = [
    ("fat-tree k=8 (128 hosts)", lambda: fat_tree(8)),
    ("leaf-spine 16x8 (256 hosts)", lambda: leaf_spine(leaves=16, spines=8, hosts_per_leaf=16)),
]

#: the 1000+-host point the topology-local delta engine unlocks.
#: Minutes, not hours — but still minutes, so it only runs from the
#: slow-marked smoke (nightly workflow / `pytest -m slow`).
XL_FABRICS: list[tuple[str, Callable[[], Topology]]] = [
    ("fat-tree k=16 (1024 hosts)", lambda: fat_tree(16)),
]


def run_scale_study(
    gb_per_host: float = 0.6,
    seed: int = 1,
    ratio: Optional[float] = None,
    fabrics: Optional[list[tuple[str, Callable[[], Topology]]]] = None,
    reducers_per_host: float = 2.0,
) -> list[ScalePoint]:
    """Constant per-host load across growing fabrics."""
    points: list[ScalePoint] = []
    for label, factory in fabrics if fabrics is not None else FABRICS:
        hosts = len(factory().worker_hosts())
        spec = sort_job(
            input_gb=gb_per_host * hosts,
            num_reducers=max(1, round(reducers_per_host * hosts)),
        )
        res = run_experiment(
            spec,
            scheduler="pythia",
            ratio=ratio,
            seed=seed,
            topology_factory=factory,
        )
        stats = res.policy_stats
        points.append(
            ScalePoint(
                label=label,
                hosts=hosts,
                jct=res.jct,
                predictions=stats["predictions"],
                rules_installed=stats["rules_installed"],
                peak_rules=stats["peak_rules"],
                fallbacks=stats["fallbacks"],
            )
        )
    return points
