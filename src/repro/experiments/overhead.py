"""§V-C: instrumentation middleware overhead.

The paper measured 2-5 % per-server CPU/IO overhead from the
middleware (constant monitoring plus a decode spike per map finish)
with insignificant memory cost.  This experiment runs the same job
with the cost model off and on and reports two things:

* the **map-phase inflation** — the direct CPU cost, which must land
  inside the modelled 2-5 % band; and
* the **job-level impact** — usually much smaller than the CPU band
  (and occasionally below measurement noise), because the map phase
  overlaps the shuffle: the paper's benefit must survive paying it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.report import format_table
from repro.experiments.common import run_experiment
from repro.instrumentation.overhead import InstrumentationCostModel


def _map_phase(run) -> float:
    start, end = run.map_phase_span
    return end - start


@dataclass
class OverheadRow:
    """One workload's instrumentation-cost measurements."""
    workload: str
    ratio: Optional[float]
    jct_free: float          # pythia, zero-cost instrumentation
    jct_charged: float       # pythia, 2-5% CPU cost model applied
    jct_ecmp: float          # baseline without any instrumentation
    map_phase_free: float
    map_phase_charged: float

    @property
    def map_inflation(self) -> float:
        """Direct CPU cost: how much slower the map phase ran."""
        return (self.map_phase_charged - self.map_phase_free) / self.map_phase_free

    @property
    def jct_impact(self) -> float:
        """Net job-level cost (can be ~0: maps overlap the shuffle)."""
        return (self.jct_charged - self.jct_free) / self.jct_free

    @property
    def net_speedup_vs_ecmp(self) -> float:
        """Speedup over ECMP after paying the CPU cost."""
        return (self.jct_ecmp - self.jct_charged) / self.jct_ecmp


def run_overhead(
    spec_factory,
    ratio: Optional[float] = 10,
    seed: int = 1,
) -> OverheadRow:
    """One workload with instrumentation cost off/on, plus the baseline."""
    free = run_experiment(
        spec_factory(), scheduler="pythia", ratio=ratio, seed=seed,
        model_instrumentation_cost=False,
    )
    charged = run_experiment(
        spec_factory(), scheduler="pythia", ratio=ratio, seed=seed,
        model_instrumentation_cost=True,
    )
    ecmp = run_experiment(spec_factory(), scheduler="ecmp", ratio=ratio, seed=seed)
    return OverheadRow(
        workload=free.run.spec.name,
        ratio=ratio,
        jct_free=free.jct,
        jct_charged=charged.jct,
        jct_ecmp=ecmp.jct,
        map_phase_free=_map_phase(free.run),
        map_phase_charged=_map_phase(charged.run),
    )


def render_overhead(rows: list[OverheadRow]) -> str:
    """Render the overhead rows as a titled table."""
    model = InstrumentationCostModel()
    table = format_table(
        ["workload", "oversub", "pythia (s)", "pythia+cost (s)", "ECMP (s)",
         "map inflation (%)", "JCT impact (%)", "net speedup (%)"],
        [
            (
                r.workload,
                "none" if r.ratio is None else f"1:{r.ratio:g}",
                r.jct_free,
                r.jct_charged,
                r.jct_ecmp,
                100.0 * r.map_inflation,
                100.0 * r.jct_impact,
                100.0 * r.net_speedup_vs_ecmp,
            )
            for r in rows
        ],
    )
    return (
        "Section V-C — instrumentation overhead "
        f"(modelled CPU cost band {model.dc_low:.0%}-{model.dc_high:.0%})\n" + table
    )
