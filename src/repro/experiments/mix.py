"""Workload-mix experiment: a stream of jobs under one scheduler.

Measures what a cluster operator would: per-job completion times and
makespan for a synthetic multi-tenant job stream, under ECMP vs Pythia
on the loaded 2-rack testbed.  The collector/aggregator handle all
concurrent jobs' predictions simultaneously (keyed by unique job ids).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.config import PythiaConfig
from repro.core.scheduler import PythiaScheduler
from repro.hadoop.cluster import ClusterConfig, HadoopCluster
from repro.hadoop.jobtracker import JobTracker
from repro.instrumentation.decoder import SpillDecoder
from repro.instrumentation.middleware import (
    InstrumentationConfig,
    InstrumentationMiddleware,
)
from repro.sdn.controller import Controller
from repro.sdn.hedera import HederaScheduler
from repro.sdn.policy import EcmpPolicy, FailureRepairService
from repro.simnet.background import BackgroundTraffic
from repro.simnet.engine import Simulator
from repro.simnet.network import Network
from repro.simnet.topology import two_rack
from repro.workloads.mix import JobArrival, synthesize_mix


@dataclass
class MixResult:
    """Aggregate outcome of one job-stream run."""
    scheduler: str
    ratio: Optional[float]
    jcts: dict[str, float] = field(default_factory=dict)
    makespan: float = 0.0

    @property
    def mean_jct(self) -> float:
        """Mean job completion time across the stream."""
        return float(np.mean(list(self.jcts.values())))

    @property
    def p95_jct(self) -> float:
        """95th-percentile job completion time."""
        return float(np.percentile(list(self.jcts.values()), 95))


def run_mix(
    arrivals: Optional[list[JobArrival]] = None,
    scheduler: str = "pythia",
    ratio: Optional[float] = 10,
    seed: int = 1,
    pythia_config: Optional[PythiaConfig] = None,
) -> MixResult:
    """Run a job stream to completion under one scheduler."""
    arrivals = arrivals if arrivals is not None else synthesize_mix(seed=seed)
    sim = Simulator()
    rng = np.random.default_rng(seed)
    topology = two_rack()
    network = Network(sim, topology)
    pythia_config = pythia_config or PythiaConfig()
    controller = Controller(sim, network, k_paths=pythia_config.k_paths)
    pythia: Optional[PythiaScheduler] = None
    if scheduler == "pythia":
        pythia = PythiaScheduler(pythia_config)
        controller.register(pythia)
    elif scheduler == "hedera":
        controller.register(HederaScheduler())
    elif scheduler != "ecmp":
        raise ValueError(f"unknown scheduler {scheduler!r}")
    controller.start()
    policy = pythia.policy if pythia is not None else EcmpPolicy(topology)
    FailureRepairService(network, policy)
    cluster = HadoopCluster(topology, ClusterConfig())
    jobtracker = JobTracker(sim, network, cluster, policy, rng)
    if pythia is not None:
        assert pythia.collector is not None
        InstrumentationMiddleware(
            sim,
            jobtracker,
            pythia.collector,
            InstrumentationConfig(decoder=SpillDecoder(0.08)),
            rng,
        )
    background = BackgroundTraffic(network, rng)
    background.populate(ratio)

    result = MixResult(scheduler=scheduler, ratio=ratio)

    def _done(run) -> None:
        result.jcts[run.job_id] = run.jct
        result.makespan = max(result.makespan, sim.now)
        if len(result.jcts) == len(arrivals):
            controller.stop()
            background.teardown()

    for arrival in arrivals:
        sim.schedule(
            arrival.at,
            lambda spec=arrival.spec: jobtracker.submit(spec, on_complete=_done),
        )
    sim.run()
    if len(result.jcts) != len(arrivals):
        raise RuntimeError("job stream did not drain")
    return result


def compare_mix(
    ratio: Optional[float] = 10,
    n_jobs: int = 8,
    seed: int = 1,
) -> dict[str, MixResult]:
    """The same stream under ECMP and Pythia."""
    out: dict[str, MixResult] = {}
    for scheduler in ("ecmp", "pythia"):
        arrivals = synthesize_mix(n_jobs=n_jobs, seed=seed)
        out[scheduler] = run_mix(arrivals, scheduler=scheduler, ratio=ratio, seed=seed)
    return out
