"""Multi-tenant fleet evaluation: schedulers under rising arrival rate.

The single-job figures show Pythia winning one shuffle at a time; a
production cluster runs many tenants' jobs against the same fabric, and
contention compounds.  This experiment sweeps a Poisson job stream's
arrival rate across schedulers (ECMP, Hedera, Pythia) on the loaded
2-rack testbed and reports the fleet-level metrics the operator cares
about: p50/p99 JCT, mean slowdown versus isolated runs, makespan, and
Jain fairness across tenants (see :mod:`repro.analysis.fleet` for the
metric definitions).

Every cell runs through :func:`repro.runner.run_cells`, so rate sweeps
fan over the process pool and repeat invocations are served from the
content-addressed cache — fleet cells are exactly as cacheable and
bit-reproducible as single-job cells.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Optional, Sequence, Union

import numpy as np

from repro.analysis.report import format_table
from repro.runner import SweepCell, run_cells
from repro.workloads.cluster import ClusterWorkload, poisson_workload

#: jobs/second points of the default sweep — ~one job per 50/20/10 s.
DEFAULT_ARRIVAL_RATES: tuple[float, ...] = (0.02, 0.05, 0.1)
DEFAULT_SCHEDULERS: tuple[str, ...] = ("ecmp", "hedera", "pythia")


def fleet_grid(
    arrival_rates: Sequence[float] = DEFAULT_ARRIVAL_RATES,
    schedulers: Sequence[str] = DEFAULT_SCHEDULERS,
    seeds: Sequence[int] = (1,),
    ratio: Optional[float] = 10.0,
    n_jobs: int = 5,
    workload_seed: int = 0,
    **workload_kwargs,
) -> list[SweepCell]:
    """Expand (rate x scheduler x seed) into fleet sweep cells.

    The workload at each rate is generated once (``workload_seed`` keys
    the stream) and shared by every scheduler/seed cell at that rate, so
    schedulers face an identical job mix.
    """
    workloads: dict[float, ClusterWorkload] = {
        rate: poisson_workload(
            n_jobs=n_jobs,
            arrival_rate=rate,
            seed=workload_seed,
            **workload_kwargs,
        )
        for rate in arrival_rates
    }
    return [
        SweepCell(spec=workloads[rate], scheduler=scheduler, ratio=ratio, seed=seed)
        for rate in arrival_rates
        for scheduler in schedulers
        for seed in seeds
    ]


def multi_tenant_sweep(
    arrival_rates: Sequence[float] = DEFAULT_ARRIVAL_RATES,
    schedulers: Sequence[str] = DEFAULT_SCHEDULERS,
    seeds: Sequence[int] = (1,),
    ratio: Optional[float] = 10.0,
    n_jobs: int = 5,
    workers: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    run_kwargs: Optional[dict] = None,
    **workload_kwargs,
) -> tuple[list[dict[str, Any]], Any]:
    """Run the fleet grid; returns (per-cell rows, SweepReport).

    Each row carries the cell coordinates plus the fleet aggregates and
    the per-job measurement rows the cell's summary recorded.  Seeds are
    averaged by the caller (rows stay per-seed so tails are not washed
    out before percentile math).
    """
    cells = fleet_grid(
        arrival_rates=arrival_rates,
        schedulers=schedulers,
        seeds=seeds,
        ratio=ratio,
        n_jobs=n_jobs,
        **workload_kwargs,
    )
    report = run_cells(
        cells, workers=workers, cache_dir=cache_dir, run_kwargs=run_kwargs
    )
    per_rate = len(schedulers) * len(seeds)
    rows: list[dict[str, Any]] = []
    for idx, (cell, summary) in enumerate(zip(cells, report.summaries)):
        rows.append(
            {
                "arrival_rate": float(arrival_rates[idx // per_rate]),
                "scheduler": cell.scheduler,
                "seed": cell.seed,
                "workload": summary.workload,
                "fleet": dict(summary.fleet),
                "job_rows": [dict(r) for r in summary.job_rows],
            }
        )
    return rows, report


def format_fleet_table(rows: list[dict[str, Any]]) -> str:
    """Render sweep rows as the fleet report table (seed-averaged)."""
    grouped: dict[tuple[float, str], list[dict]] = {}
    for row in rows:
        grouped.setdefault((row["arrival_rate"], row["scheduler"]), []).append(
            row["fleet"]
        )

    def mean(fleets: list[dict], key: str) -> float:
        return float(np.mean([f[key] for f in fleets]))

    table = [
        (
            f"{rate:g}",
            scheduler,
            mean(fleets, "p50_jct"),
            mean(fleets, "p99_jct"),
            mean(fleets, "mean_slowdown"),
            mean(fleets, "jain_fairness"),
            mean(fleets, "makespan"),
        )
        for (rate, scheduler), fleets in sorted(grouped.items())
    ]
    return format_table(
        [
            "rate (jobs/s)",
            "scheduler",
            "p50 JCT (s)",
            "p99 JCT (s)",
            "mean slowdown",
            "Jain fairness",
            "makespan (s)",
        ],
        table,
    )


__all__ = [
    "DEFAULT_ARRIVAL_RATES",
    "DEFAULT_SCHEDULERS",
    "fleet_grid",
    "format_fleet_table",
    "multi_tenant_sweep",
]
