"""Forecast efficacy: prediction accuracy vs lead time vs JCT gain.

Evaluates the :mod:`repro.forecast` subsystem with the paper's own
methodology — compare schedulers on the same workload × over-
subscription grid, averaged over seeds — on the *step-background
scenario*: partway through the job, a stepped CBR surge
(:class:`~repro.simnet.background.BackgroundRamp`) ramps up on one
trunk path.  A measured-load allocator keeps scoring that path by its
pre-surge EWMA and only reacts once the link is already saturated; a
trend-aware forecaster sees the first steps coming up and both (a)
scores new placements against the predicted occupancy and (b)
proactively reroutes elephants off the dying path.

Two sweeps:

* :func:`forecast_efficacy_sweep` — ecmp / hedera / measured-load
  pythia / pythia+{each forecaster} across oversubscription ratios,
  reporting mean/std JCT plus the forecast-side counters (MAE,
  reroutes, stale fallbacks) per variant.
* :func:`forecast_lead_time_curve` — one forecaster across a range of
  horizons, reporting how prediction error grows with lead time and
  what that does to JCT (the accuracy-vs-lead-time trade the related
  elephant-prediction work plots).

Both run through :func:`repro.runner.run_cells`, so ``workers=N`` fans
cells over processes and ``cache_dir=...`` memoises them; every
variant's knobs travel in ``run_kwargs`` (dataclasses, so the cells
stay content-addressable).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

import numpy as np

from repro.analysis import format_table
from repro.core.config import PythiaConfig
from repro.hadoop.job import JobSpec
from repro.runner import run_cells, sweep_grid
from repro.simnet.background import BackgroundRamp
from repro.workloads import sort_job

#: trunk capacity is 2 x 1 GbE on the two-rack testbed; the surge adds
#: ~0.5 GbE to the second trunk path over an 8 s window mid-shuffle.
DEFAULT_RAMP = BackgroundRamp(at=5.0, duration=8.0, rate=60e6, steps=4, path_index=1)

#: the forecasters under evaluation, in report order.
DEFAULT_MODES: tuple[str, ...] = ("ewma", "holt_winters", "ar")

DEFAULT_RATIOS: tuple[Optional[float], ...] = (5, 10)


def default_spec() -> JobSpec:
    """The sweep's workload: a sort sized to keep cells snappy."""
    return sort_job(input_gb=0.8)


@dataclass(frozen=True)
class EfficacyRow:
    """One (variant, ratio) aggregate of the efficacy sweep."""

    variant: str
    ratio: Optional[float]
    mean_jct: float
    std_jct: float
    samples: tuple[float, ...]
    #: mean streaming forecast MAE (bytes/s); 0 for non-forecast variants.
    forecast_mae: float = 0.0
    #: mean proactive reroutes per run; 0 for non-forecast variants.
    reroutes: float = 0.0
    #: mean measured-EWMA fallbacks per run (staleness indicator).
    stale_fallbacks: float = 0.0


@dataclass(frozen=True)
class LeadTimeRow:
    """One horizon point of the accuracy-vs-lead-time curve."""

    horizon: float
    mean_jct: float
    std_jct: float
    forecast_mae: float
    reroutes: float


def _aggregate(
    variant: str,
    ratio: Optional[float],
    summaries,
) -> EfficacyRow:
    jcts = [s.jct for s in summaries]
    stats = [s.policy_stats for s in summaries]

    def mean_of(key: str) -> float:
        vals = [st.get(key, 0.0) for st in stats]
        return float(np.mean(vals)) if vals else 0.0

    return EfficacyRow(
        variant=variant,
        ratio=ratio,
        mean_jct=float(np.mean(jcts)),
        std_jct=float(np.std(jcts, ddof=1)) if len(jcts) > 1 else 0.0,
        samples=tuple(jcts),
        forecast_mae=mean_of("forecast_mae_bytes"),
        reroutes=mean_of("forecast_reroutes"),
        stale_fallbacks=mean_of("forecast_stale_fallbacks"),
    )


def _variant_cells_and_kwargs(
    variant: str,
    spec_factory: Callable[[], JobSpec],
    ratios: Sequence[Optional[float]],
    seeds: Sequence[int],
    ramp: BackgroundRamp,
    horizon: float,
):
    """(scheduler, cells, run_kwargs) for one report variant."""
    if variant.startswith("pythia+"):
        scheduler = "pythia"
        config = PythiaConfig(
            forecast_mode=variant.split("+", 1)[1], forecast_horizon=horizon
        )
    else:
        scheduler = variant
        config = None
    cells = sweep_grid(spec_factory, (scheduler,), ratios, seeds)
    run_kwargs: dict = {"background_ramp": ramp}
    if config is not None:
        run_kwargs["pythia_config"] = config
    return cells, run_kwargs


def forecast_efficacy_sweep(
    spec_factory: Callable[[], JobSpec] = default_spec,
    modes: Sequence[str] = DEFAULT_MODES,
    ratios: Sequence[Optional[float]] = DEFAULT_RATIOS,
    seeds: Sequence[int] = (1, 2, 3),
    workers: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    ramp: BackgroundRamp = DEFAULT_RAMP,
    horizon: float = 5.0,
) -> list[EfficacyRow]:
    """JCT of every scheduler variant on the step-background scenario.

    Variants: ``ecmp``, ``hedera``, measured-load ``pythia``, and
    ``pythia+<mode>`` for each forecaster in ``modes``; one row per
    (variant, ratio).
    """
    variants = ["ecmp", "hedera", "pythia"] + [f"pythia+{m}" for m in modes]
    rows: list[EfficacyRow] = []
    for variant in variants:
        cells, run_kwargs = _variant_cells_and_kwargs(
            variant, spec_factory, ratios, seeds, ramp, horizon
        )
        report = run_cells(
            cells, workers=workers, cache_dir=cache_dir, run_kwargs=run_kwargs
        )
        per_ratio = len(seeds)
        for i, ratio in enumerate(ratios):
            chunk = report.summaries[i * per_ratio : (i + 1) * per_ratio]
            rows.append(_aggregate(variant, ratio, chunk))
    return rows


def forecast_lead_time_curve(
    mode: str = "holt_winters",
    horizons: Sequence[float] = (1.0, 2.0, 5.0, 10.0),
    spec_factory: Callable[[], JobSpec] = default_spec,
    ratio: Optional[float] = 5,
    seeds: Sequence[int] = (1, 2, 3),
    workers: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    ramp: BackgroundRamp = DEFAULT_RAMP,
) -> list[LeadTimeRow]:
    """Forecast error and JCT as the prediction horizon stretches."""
    rows: list[LeadTimeRow] = []
    for horizon in horizons:
        cells, run_kwargs = _variant_cells_and_kwargs(
            f"pythia+{mode}", spec_factory, (ratio,), seeds, ramp, horizon
        )
        report = run_cells(
            cells, workers=workers, cache_dir=cache_dir, run_kwargs=run_kwargs
        )
        jcts = [s.jct for s in report.summaries]
        stats = [s.policy_stats for s in report.summaries]
        rows.append(
            LeadTimeRow(
                horizon=horizon,
                mean_jct=float(np.mean(jcts)),
                std_jct=float(np.std(jcts, ddof=1)) if len(jcts) > 1 else 0.0,
                forecast_mae=float(
                    np.mean([st.get("forecast_mae_bytes", 0.0) for st in stats])
                ),
                reroutes=float(
                    np.mean([st.get("forecast_reroutes", 0.0) for st in stats])
                ),
            )
        )
    return rows


def format_efficacy(rows: Sequence[EfficacyRow]) -> str:
    """Render the efficacy sweep as the CLI's table."""
    return format_table(
        ["variant", "ratio", "mean JCT (s)", "std", "MAE (MB/s)", "reroutes", "fallbacks"],
        [
            (
                r.variant,
                "none" if r.ratio is None else f"1:{r.ratio:g}",
                f"{r.mean_jct:.2f}",
                f"{r.std_jct:.2f}",
                f"{r.forecast_mae / 1e6:.2f}",
                f"{r.reroutes:.1f}",
                f"{r.stale_fallbacks:.1f}",
            )
            for r in rows
        ],
    )


def format_lead_time(rows: Sequence[LeadTimeRow]) -> str:
    """Render the lead-time curve as the CLI's table."""
    return format_table(
        ["horizon (s)", "mean JCT (s)", "std", "MAE (MB/s)", "reroutes"],
        [
            (
                f"{r.horizon:g}",
                f"{r.mean_jct:.2f}",
                f"{r.std_jct:.2f}",
                f"{r.forecast_mae / 1e6:.2f}",
                f"{r.reroutes:.1f}",
            )
            for r in rows
        ],
    )
