"""Ablations over Pythia's design choices (DESIGN.md items A1-A3).

* **A1 — aggregation policy**: server-pair (paper default) vs rack-pair
  (§IV's forwarding-state-conservation variant).  Expectation: rack-pair
  slashes installed rules at a small JCT cost.
* **A2 — scheduler family**: ECMP (load-unaware) vs Hedera-style
  (load-aware, reactive, application-blind) vs Pythia (load-aware,
  predictive, application-informed), the §II/§VI argument.
* **A3 — routing/programming sensitivity**: k in k-shortest-paths on a
  multi-spine fabric, and rule-install latency up to the point where
  rules lose the race against flow arrival (the §V-C timing-budget
  claim, inverted).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.report import format_table
from repro.core.config import PythiaConfig
from repro.experiments.common import run_experiment
from repro.simnet.topology import leaf_spine
from repro.workloads.nutch import nutch_indexing_job
from repro.workloads.sort import sort_job


@dataclass
class AblationRow:
    """One variant's outcome in an ablation table."""
    label: str
    jct: float
    detail: str = ""


def ablate_aggregation(ratio: Optional[float] = 10, seed: int = 1) -> list[AblationRow]:
    """A1: server-pair vs rack-pair aggregation (forwarding-state cost)."""
    from repro.sdn.switch_tables import SwitchTableView

    rows = []
    for policy in ("server_pair", "rack_pair"):
        res = run_experiment(
            nutch_indexing_job(),
            scheduler="pythia",
            ratio=ratio,
            seed=seed,
            pythia_config=PythiaConfig(aggregation=policy),
        )
        assert res.controller is not None
        tcam = SwitchTableView(res.topology, res.controller.programmer).max_occupancy()
        rows.append(
            AblationRow(
                label=policy,
                jct=res.jct,
                detail=(
                    f"peak_rules={res.policy_stats['peak_rules']} "
                    f"installs={res.policy_stats['rules_installed']} "
                    f"tcam_max={tcam}"
                ),
            )
        )
    return rows


def ablate_schedulers(
    ratio: Optional[float] = 10, seed: int = 1, input_gb: float = 12.0
) -> list[AblationRow]:
    """A2: ECMP vs Hedera vs Pythia on the same sort job."""
    rows = []
    for sched in ("ecmp", "hedera", "pythia"):
        res = run_experiment(
            sort_job(input_gb=input_gb), scheduler=sched, ratio=ratio, seed=seed
        )
        detail = ""
        if sched == "hedera":
            detail = f"reroutes={res.policy_stats.get('reroutes', 0)}"
        if sched == "pythia":
            detail = f"rule_hits={res.policy_stats.get('rule_hits', 0)}"
        rows.append(AblationRow(label=sched, jct=res.jct, detail=detail))
    return rows


def ablate_allocators(ratio: Optional[float] = 10, seed: int = 1) -> list[AblationRow]:
    """A1b: the three flow-scheduling algorithms behind §IV's plug point."""
    rows = []
    for kind in ("first_fit", "best_fit", "water_filling"):
        res = run_experiment(
            sort_job(input_gb=12.0),
            scheduler="pythia",
            ratio=ratio,
            seed=seed,
            pythia_config=PythiaConfig(allocation=kind),
        )
        rows.append(AblationRow(label=kind, jct=res.jct))
    return rows


def ablate_ordering(ratio: Optional[float] = 10, seed: int = 1) -> list[AblationRow]:
    """A2b: criticality (first-fit decreasing) vs arrival-order packing.

    §VI positions Pythia against FlowComb partly on ordering: "network
    optimization flow scheduling in FlowComb does not leverage
    application intelligence except from predicted flow volumes ...
    Pythia ... incorporat[es] flow priority as a criterion".
    """
    rows = []
    for ordering, label in (("criticality", "criticality (pythia)"),
                            ("arrival", "arrival (flowcomb-style)")):
        res = run_experiment(
            sort_job(input_gb=12.0, skew_alpha=0.8),
            scheduler="pythia",
            ratio=ratio,
            seed=seed,
            pythia_config=PythiaConfig(ordering=ordering),
        )
        rows.append(AblationRow(label=label, jct=res.jct))
    return rows


def ablate_weighted_shuffle(ratio: Optional[float] = 10, seed: int = 2) -> list[AblationRow]:
    """W1: §II's proportionality — per-flow weights from reducer volume.

    Expectation (measured, honest): the heavy reducer's fetches speed
    up, but the job barrier barely moves on this topology because the
    heavy reducer's tail is bound by its own access link and the
    parallel-copy serialisation.
    """
    from repro.analysis.shuffle_breakdown import mean_transfer_seconds
    from repro.hadoop.partition import explicit_weights

    rows = []
    for weighted in (False, True):
        spec = sort_job(input_gb=6.0, num_reducers=10)
        spec.reducer_weights = explicit_weights([5, 1, 1, 1, 1, 1, 1, 1, 1, 1])
        res = run_experiment(
            spec,
            scheduler="pythia",
            ratio=ratio,
            seed=seed,
            pythia_config=PythiaConfig(weighted_shuffle=weighted),
        )
        rows.append(
            AblationRow(
                label="weighted" if weighted else "unweighted",
                jct=res.jct,
                detail=f"mean_fetch={mean_transfer_seconds(res.run):.2f}s",
            )
        )
    return rows


def ablate_k_paths(seed: int = 1, input_gb: float = 8.0) -> list[AblationRow]:
    """A3a: k-shortest-paths fan-out on a 4-spine leaf-spine fabric."""
    rows = []
    for k in (1, 2, 4):
        res = run_experiment(
            sort_job(input_gb=input_gb, num_reducers=16),
            scheduler="pythia",
            ratio=None,
            seed=seed,
            topology_factory=lambda: leaf_spine(leaves=2, spines=4, hosts_per_leaf=5),
            pythia_config=PythiaConfig(k_paths=k),
        )
        rows.append(AblationRow(label=f"k={k}", jct=res.jct))
    return rows


def ablate_install_latency(
    ratio: Optional[float] = 10, seed: int = 1
) -> list[AblationRow]:
    """A3b: how slow can rule programming get before Pythia degrades?

    The paper's timing argument: prediction leads flows by seconds
    while installs take milliseconds.  Sweeping the per-rule latency
    through 4 ms (hardware), 100 ms (slow software switch) and 5 s
    (pathological) shows fallback-to-ECMP taking over.
    """
    rows = []
    for latency in (0.004, 0.1, 5.0):
        res = run_experiment(
            sort_job(input_gb=12.0),
            scheduler="pythia",
            ratio=ratio,
            seed=seed,
            pythia_config=PythiaConfig(per_rule_latency=latency),
        )
        rows.append(
            AblationRow(
                label=f"{latency * 1000:g}ms/rule",
                jct=res.jct,
                detail=f"fallbacks={res.policy_stats['fallbacks']}",
            )
        )
    return rows


def render_ablation(title: str, rows: list[AblationRow]) -> str:
    """Render one ablation's rows as a titled table."""
    return title + "\n" + format_table(
        ["variant", "JCT (s)", "detail"], [(r.label, r.jct, r.detail) for r in rows]
    )
