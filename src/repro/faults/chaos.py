"""Chaos engine: declarative, seeded fault schedules for the simulator.

The paper's value claim is that predictive scheduling keeps shuffles
fast *under contention and churn*; this module makes churn a first-class
input.  A :class:`ChaosSchedule` is a plain list of fault events — link
flaps with explicit up/down durations, switch (ToR/trunk) outages,
controller crash/restore cycles, link-stats-service staleness windows,
prediction loss/error injection — and :class:`ChaosEngine` drives it
through the :class:`~repro.simnet.engine.Simulator`.

Two properties make chaos runs usable as *tests* rather than demos:

* **Determinism.**  Random schedules come from
  :func:`random_schedule` with an explicit seed, and every injection is
  scheduled with an explicit event priority (:data:`FAULT_PRIORITY`) so
  that a fault firing at the same instant as application events has a
  *defined* ordering instead of depending on who called ``schedule``
  first.  Two runs of the same (workload seed, chaos seed) are
  bit-identical.
* **Checkability.**  Every injection bumps the ``faults.injected``
  counter and emits a trace event, and the accounting-corruption
  nemesis (:meth:`ChaosEngine.corrupt_accounting`) exists purely to
  prove the invariant checker catches a conservation bug — a checker
  that never fires is itself untested.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np

from repro import obs

#: Faults fire *before* application events sharing their timestamp —
#: an explicit, documented ordering instead of scheduling-order luck.
FAULT_PRIORITY = -10


# ----------------------------------------------------------------------
# declarative fault events
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class LinkFlap:
    """Fail the ``a``–``b`` cable at ``at`` and restore after ``down``."""

    at: float
    down: float
    a: str
    b: str


@dataclass(frozen=True)
class SwitchOutage:
    """Fail every cable touching a switch, restoring after ``down``."""

    at: float
    down: float
    switch: str


@dataclass(frozen=True)
class ControllerOutage:
    """Crash the controller at ``at``; restart (with resync) after ``down``."""

    at: float
    down: float


@dataclass(frozen=True)
class StatsFreeze:
    """Link-stats-service lag: samples are skipped for ``duration``."""

    at: float
    duration: float


@dataclass(frozen=True)
class PredictionFault:
    """Window of prediction loss and/or size error at the collector.

    ``drop_prob`` drops whole per-map messages; ``error_scale`` (sigma
    of a lognormal factor) perturbs the predicted per-reducer bytes —
    stale or mis-estimated intent, which the scheduler must survive.
    """

    at: float
    duration: float
    drop_prob: float = 0.0
    error_scale: float = 0.0


@dataclass(frozen=True)
class AccountingCorruption:
    """Nemesis: steal ``nbytes`` from a live flow's sent counter.

    Deliberately violates byte conservation — injected only by negative
    tests to prove the invariant checker actually fires.
    """

    at: float
    nbytes: float = 1e6


FaultEvent = Union[
    LinkFlap, SwitchOutage, ControllerOutage, StatsFreeze,
    PredictionFault, AccountingCorruption,
]


@dataclass
class ChaosSchedule:
    """A seeded, declarative fault plan: just an ordered list of events."""

    events: list[FaultEvent] = field(default_factory=list)
    seed: Optional[int] = None

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)


def random_schedule(
    topology,
    seed: int,
    *,
    flaps: int = 2,
    switch_outages: int = 0,
    controller_outages: int = 1,
    stats_freezes: int = 1,
    prediction_faults: int = 0,
    drop_prob: float = 0.2,
    error_scale: float = 0.3,
    horizon: tuple[float, float] = (5.0, 40.0),
    down_range: tuple[float, float] = (0.5, 5.0),
) -> ChaosSchedule:
    """Draw a reproducible fault schedule for a topology.

    Link flaps target inter-switch cables (trunks/spines) — the paths
    where placement matters; switch outages target non-ToR switches so
    hosts never lose their only uplink (a partitioned host cannot
    complete by definition and would make every assertion vacuous).
    """
    rng = np.random.default_rng(seed)
    lo, hi = horizon
    events: list[FaultEvent] = []

    def when() -> float:
        return float(rng.uniform(lo, hi))

    def down() -> float:
        return float(rng.uniform(*down_range))

    from repro.simnet.topology import NodeKind

    trunk_cables = sorted(
        {
            tuple(sorted((l.src, l.dst)))
            for l in topology.links
            if topology.nodes[l.src].kind is NodeKind.SWITCH
            and topology.nodes[l.dst].kind is NodeKind.SWITCH
        }
    )
    core_switches = sorted(
        {
            n.name
            for n in topology.switches()
            if not any(
                topology.nodes[l.dst].kind is NodeKind.HOST
                for lid in topology.adjacency[n.name]
                for l in [topology.links[lid]]
            )
        }
    )
    for _ in range(flaps):
        if not trunk_cables:
            break
        a, b = trunk_cables[int(rng.integers(len(trunk_cables)))]
        events.append(LinkFlap(at=when(), down=down(), a=a, b=b))
    for _ in range(switch_outages):
        if not core_switches:
            break
        sw = core_switches[int(rng.integers(len(core_switches)))]
        events.append(SwitchOutage(at=when(), down=down(), switch=sw))
    for _ in range(controller_outages):
        events.append(ControllerOutage(at=when(), down=down()))
    for _ in range(stats_freezes):
        events.append(StatsFreeze(at=when(), duration=down()))
    for _ in range(prediction_faults):
        events.append(
            PredictionFault(
                at=when(), duration=down(),
                drop_prob=drop_prob, error_scale=error_scale,
            )
        )
    events.sort(key=lambda e: e.at)
    return ChaosSchedule(events=events, seed=seed)


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------

class ChaosEngine:
    """Applies a :class:`ChaosSchedule` to a built experiment stack."""

    def __init__(
        self,
        sim,
        network,
        controller=None,
        collector=None,
        seed: int = 0,
    ) -> None:
        self.sim = sim
        self.network = network
        self.controller = controller
        self.collector = collector
        self._rng = np.random.default_rng(seed)
        #: per-kind injection counts, e.g. {"link_flap": 2}.
        self.injected: dict[str, int] = {}
        registry = obs.get_registry()
        self._tracer = obs.get_tracer()
        self._m_injected = registry.counter("faults.injected")

    # ------------------------------------------------------------------
    def apply(self, schedule: ChaosSchedule) -> None:
        """Schedule every fault in the plan onto the simulator."""
        for ev in schedule:
            if isinstance(ev, LinkFlap):
                self._at(ev.at, self._inject_link_down, ev.a, ev.b)
                self._at(ev.at + ev.down, self._inject_link_up, ev.a, ev.b)
            elif isinstance(ev, SwitchOutage):
                self._at(ev.at, self._inject_switch_down, ev.switch)
                self._at(ev.at + ev.down, self._inject_switch_up, ev.switch)
            elif isinstance(ev, ControllerOutage):
                self._at(ev.at, self._inject_controller_crash)
                self._at(ev.at + ev.down, self._inject_controller_restore)
            elif isinstance(ev, StatsFreeze):
                self._at(ev.at, self._inject_stats_freeze)
                self._at(ev.at + ev.duration, self._inject_stats_unfreeze)
            elif isinstance(ev, PredictionFault):
                self._at(ev.at, self._inject_prediction_fault, ev)
                self._at(ev.at + ev.duration, self._clear_prediction_fault)
            elif isinstance(ev, AccountingCorruption):
                self._at(ev.at, self._inject_corruption, ev.nbytes)
            else:  # pragma: no cover — the union is closed
                raise TypeError(f"unknown fault event {ev!r}")

    def _at(self, at: float, fn, *args) -> None:
        self.sim.schedule_at(max(at, self.sim.now), fn, *args, priority=FAULT_PRIORITY)

    def _record(self, kind: str, **payload) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1
        self._m_injected.inc()
        if self._tracer is not None:
            self._tracer.emit(self.sim.now, "faults", kind, **payload)

    @property
    def total_injected(self) -> int:
        """Total fault injections performed so far."""
        return sum(self.injected.values())

    # ------------------------------------------------------------------
    # injections
    # ------------------------------------------------------------------
    def _inject_link_down(self, a: str, b: str) -> None:
        self.network.topology.fail_cable(a, b)
        self._record("link_flap", a=a, b=b, state="down")

    def _inject_link_up(self, a: str, b: str) -> None:
        self.network.topology.restore_cable(a, b)
        self._record("link_flap", a=a, b=b, state="up")

    def _switch_neighbours(self, switch: str) -> list[str]:
        topo = self.network.topology
        return sorted({topo.links[lid].dst for lid in topo.adjacency[switch]})

    def _inject_switch_down(self, switch: str) -> None:
        for peer in self._switch_neighbours(switch):
            self.network.topology.fail_cable(switch, peer)
        self._record("switch_outage", switch=switch, state="down")

    def _inject_switch_up(self, switch: str) -> None:
        for peer in self._switch_neighbours(switch):
            self.network.topology.restore_cable(switch, peer)
        self._record("switch_outage", switch=switch, state="up")

    def _inject_controller_crash(self) -> None:
        if self.controller is not None:
            self.controller.crash()
            self._record("controller_outage", state="down")

    def _inject_controller_restore(self) -> None:
        if self.controller is not None:
            self.controller.restore()
            self._record("controller_outage", state="up")

    def _inject_stats_freeze(self) -> None:
        if self.controller is not None:
            self.controller.stats_service.freeze()
            self._record("stats_freeze", state="frozen")

    def _inject_stats_unfreeze(self) -> None:
        if self.controller is not None:
            self.controller.stats_service.unfreeze()
            self._record("stats_freeze", state="live")

    def _inject_prediction_fault(self, ev: PredictionFault) -> None:
        if self.collector is None:
            return
        rng = self._rng

        def fault_filter(msg):
            if ev.drop_prob > 0.0 and rng.random() < ev.drop_prob:
                return None
            if ev.error_scale > 0.0:
                factor = rng.lognormal(mean=0.0, sigma=ev.error_scale)
                msg = type(msg)(
                    job=msg.job,
                    map_id=msg.map_id,
                    src_server=msg.src_server,
                    reducer_bytes=msg.reducer_bytes * factor,
                    created_at=msg.created_at,
                )
            return msg

        self.collector.fault_filter = fault_filter
        self._record(
            "prediction_fault",
            drop_prob=ev.drop_prob,
            error_scale=ev.error_scale,
            state="on",
        )

    def _clear_prediction_fault(self) -> None:
        if self.collector is None:
            return
        self.collector.fault_filter = None
        self._record("prediction_fault", state="off")

    def _inject_corruption(self, nbytes: float) -> None:
        """Steal bytes from the first live elastic flow (nemesis)."""
        arena = self.network._arena
        alive = np.flatnonzero(arena.alive[: arena.n])
        if not alive.size:
            return
        slot = int(alive[0])
        arena.sent[slot] -= nbytes
        # mark the victim's links dirty so the next settle point (where
        # the invariant checker hooks) scopes in the corrupted component
        # and observes the broken accounting even under delta checking
        flow = arena.flows[slot]
        self.network.touch_links(flow.path or [] if flow is not None else [])
        self._record("accounting_corruption", slot=slot, nbytes=nbytes)
