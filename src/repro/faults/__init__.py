"""Fault injection and runtime invariant checking.

Two halves, designed to be used together:

* :mod:`repro.faults.chaos` — a chaos engine that drives a declarative,
  seeded schedule of faults (link flaps, switch and controller outages,
  stats staleness, prediction loss/error) through the simulator.
* :mod:`repro.faults.invariants` — an always-available invariant
  checker hooked into the network's settle points, asserting byte
  conservation, capacity limits, arena/flow-set agreement and
  switch-table/controller-intent agreement; toggleable process-wide
  like :mod:`repro.obs` (see :mod:`repro.faults.runtime`).

Quick use::

    from repro.experiments.common import run_experiment
    from repro.faults import random_schedule
    from repro.workloads import sort_job

    res = run_experiment(
        sort_job(input_gb=3.0),
        chaos=lambda topo: random_schedule(topo, seed=7),
        invariants=True,
    )

or, from the shell: ``python -m repro chaos run --seed 7``.
"""

from repro.faults.chaos import (
    AccountingCorruption,
    ChaosEngine,
    ChaosSchedule,
    ControllerOutage,
    FAULT_PRIORITY,
    LinkFlap,
    PredictionFault,
    StatsFreeze,
    SwitchOutage,
    random_schedule,
)
from repro.faults.invariants import InvariantChecker, InvariantViolation
from repro.faults.runtime import get_checker, set_checker, use_checker

__all__ = [
    "AccountingCorruption",
    "ChaosEngine",
    "ChaosSchedule",
    "ControllerOutage",
    "FAULT_PRIORITY",
    "InvariantChecker",
    "InvariantViolation",
    "LinkFlap",
    "PredictionFault",
    "StatsFreeze",
    "SwitchOutage",
    "get_checker",
    "random_schedule",
    "set_checker",
    "use_checker",
]
