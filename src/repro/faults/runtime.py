"""Process-wide invariant-checker context (the ``repro.obs`` pattern).

Subsystems that can be watched (the :class:`~repro.simnet.network.Network`
and the :class:`~repro.sdn.controller.Controller`) consult this module at
construction time and register themselves with the active checker, if
any.  The default is no checker, which costs one ``None`` check per
constructor — nothing on any hot path.  Enable checking for a run by
building the stack inside :func:`use_checker`::

    from repro.faults import InvariantChecker, use_checker

    with use_checker(InvariantChecker()) as checker:
        result = run_experiment(...)

``run_experiment(invariants=True)`` and the ``repro chaos run`` CLI do
this for you; setting the ``REPRO_INVARIANTS`` environment variable
turns the checker on for every experiment run in the process (e.g. the
whole test suite) without touching call sites.

This module deliberately imports nothing from the simulator so that
``repro.simnet.network`` can import it without a cycle.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Protocol


class Watcher(Protocol):
    """What the runtime expects of an installed invariant checker."""

    def watch_network(self, network) -> None: ...

    def watch_controller(self, controller) -> None: ...


_active_checker: Optional[Watcher] = None


def get_checker() -> Optional[Watcher]:
    """The checker new subsystems should register with (None = off)."""
    return _active_checker


def set_checker(checker: Optional[Watcher]) -> None:
    """Install a process-wide checker (None disables checking)."""
    global _active_checker
    _active_checker = checker


@contextmanager
def use_checker(checker: Optional[Watcher]) -> Iterator[Optional[Watcher]]:
    """Scoped override of the invariant-checker context."""
    global _active_checker
    prev = _active_checker
    _active_checker = checker
    try:
        yield checker
    finally:
        _active_checker = prev
