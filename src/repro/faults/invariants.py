"""Runtime invariant checker for the fluid network and the SDN layer.

The chaos engine (:mod:`repro.faults.chaos`) makes adversarial event
orderings *reachable*; this module makes them *checkable*.  A
:class:`InvariantChecker` registers itself on the network's settle
points (every fair-share recompute) and, at each checkpoint, verifies
the physical-consistency properties the reproduction's results depend
on:

* **Byte conservation** — for every flow ever admitted,
  ``bytes_sent + remaining == size`` within epsilon, no matter how many
  reroutes, pauses or failures the flow lived through.
* **Capacity** — per link, the elastic allocation never exceeds the
  residual capacity (``max(floor x cap, cap - rigid)``; the floor is the
  documented TCP-vs-CBR goodput floor), and down links carry zero
  elastic traffic.  The checker recomputes per-link loads independently
  from the incidence pairs rather than trusting the engine's own
  ``_lelastic`` mirror — and then also cross-checks that mirror.
* **No ghost slots** — the slot arena, the elastic flow set and the
  link→flow index agree exactly: live slots map 1:1 onto active flows,
  dead slots carry no rate, completed flows hold no arena binding.
* **Switch-table/controller-intent agreement** — walking a probe flow
  hop-by-hop through the per-switch TCAM expansion reproduces the
  end-to-end path of the controller's highest-priority covering rule.
* **Stats-pipeline sanity** — the link-stats EWMAs stay finite and
  non-negative, a frozen service folds no samples, and the frozen-gap
  accounting (pending span, published span, lifetime total) never goes
  negative.  This is what lets the forecast layer trust
  ``last_gap_seconds`` as its discount signal.
* **Background teardown** — once a :class:`BackgroundTraffic` source is
  torn down, none of the CBR streams it ever started may still be
  active (double-teardown during chaos link-restore used to leave — or
  crash on — survivors).

Violations raise :class:`InvariantViolation` carrying every failed
assertion plus a dump of the trace ring (when a tracer is active), so a
chaos run that breaks physics dies loudly with its event history.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro import obs
from repro.simnet.flows import SHUFFLE_PORT, TCP, FiveTuple, Flow

if TYPE_CHECKING:  # pragma: no cover
    from repro.sdn.controller import Controller
    from repro.sdn.stats_service import LinkStatsService
    from repro.sdn.switch_tables import SwitchTableView
    from repro.simnet.background import BackgroundTraffic
    from repro.simnet.network import Network

#: Absolute slack (bytes) allowed on conservation checks, matching the
#: engine's completion epsilon.
_CONS_ATOL = 1e-3
#: Relative slack on capacity checks (floating-point headroom only).
_CAP_RTOL = 1e-6


class InvariantViolation(AssertionError):
    """One or more runtime invariants failed; carries the evidence."""

    def __init__(self, problems: list[str], trace_dump: list[str]) -> None:
        self.problems = problems
        self.trace_dump = trace_dump
        lines = [f"{len(problems)} invariant violation(s):"]
        lines += [f"  - {p}" for p in problems]
        if trace_dump:
            lines.append(f"last {len(trace_dump)} trace events:")
            lines += [f"    {e}" for e in trace_dump]
        super().__init__("\n".join(lines))


class InvariantChecker:
    """Always-available consistency auditor, hooked into settle points.

    Parameters
    ----------
    every:
        Check every Nth settle (1 = every recompute).  Dense checking is
        what the chaos suite wants; experiments that only need an
        end-of-run audit can raise this and call :meth:`check` manually.
    strict:
        Raise :class:`InvariantViolation` on the first failed checkpoint
        (default).  When False, violations accumulate in
        :attr:`violation_log` instead — the CLI uses this to report all
        of them at exit.
    trace_tail:
        How many trailing trace-ring events to attach to a violation.
    scope:
        ``"component"`` (default) audits only the settle's affected
        region — the slots/links the delta engine re-solved plus the
        flows that completed — keeping per-settle verification
        O(component); a whole-fabric audit still runs on full settles,
        every ``full_every``-th checkpoint, and on every manual
        :meth:`check`.  ``"full"`` restores the unconditional
        whole-fabric audit at every checkpoint (``REPRO_INVARIANTS=full``
        selects this from the environment).
    full_every:
        In component scope, run the whole-fabric audit (all watched
        subsystems) every Nth checkpoint regardless of scope.
    """

    def __init__(
        self,
        every: int = 1,
        strict: bool = True,
        trace_tail: int = 40,
        scope: str = "component",
        full_every: int = 64,
    ) -> None:
        if scope not in ("component", "full"):
            raise ValueError(f"scope must be 'component' or 'full': {scope!r}")
        self.every = max(1, every)
        self.strict = strict
        self.trace_tail = trace_tail
        self.scope = scope
        self.full_every = max(1, full_every)
        self.checks_run = 0
        self.checkpoints = 0
        self.violation_log: list[str] = []
        self._settles = 0
        self._checkpoints_since_full = 0
        self._networks: list["Network"] = []
        self._controllers: list[tuple["Controller", "SwitchTableView"]] = []
        self._stats_services: list["LinkStatsService"] = []
        self._backgrounds: list["BackgroundTraffic"] = []
        registry = obs.get_registry()
        self._tracer = obs.get_tracer()
        self._m_checked = registry.counter("invariants.checked")
        self._m_checked_scoped = registry.counter("invariants.checked_scoped")
        self._m_violated = registry.counter("invariants.violated")

    # ------------------------------------------------------------------
    # registration (called by the faults runtime / run_experiment)
    # ------------------------------------------------------------------
    def watch_network(self, network: "Network") -> None:
        """Audit this network at every settle point."""
        self._networks.append(network)
        network.add_settle_hook(self._on_settle)

    def watch_controller(self, controller: "Controller") -> None:
        """Audit this controller's rule table against its switch view."""
        # Imported here, not at module top: the network constructor pulls
        # in this module via the faults runtime, and the sdn package in
        # turn imports the network — watch_controller only ever runs once
        # both are fully initialised.
        from repro.sdn.switch_tables import SwitchTableView

        view = SwitchTableView(controller.network.topology, controller.programmer)
        self._controllers.append((controller, view))
        self.watch_stats(controller.stats_service)

    def watch_stats(self, stats: "LinkStatsService") -> None:
        """Audit this link-stats service's EWMA and gap accounting."""
        if stats not in self._stats_services:
            self._stats_services.append(stats)

    def watch_background(self, background: "BackgroundTraffic") -> None:
        """Assert no stream of this source survives its teardown."""
        self._backgrounds.append(background)

    def _on_settle(self, network: "Network") -> None:
        self._settles += 1
        if self._settles % self.every != 0:
            return
        if self.scope == "full":
            self.check()
            return
        scope = network.last_settle_scope
        self._checkpoints_since_full += 1
        if (
            scope is None
            or scope["full"]
            # An empty region means something requested a settle without
            # marking what it touched (external state surgery) — audit
            # everything rather than trust an unmarked mutation.
            or (not scope["slots"].size and not scope["links"].size)
            or self._checkpoints_since_full >= self.full_every
        ):
            self.check()
        else:
            self.check_scoped(network, scope)

    # ------------------------------------------------------------------
    # checking
    # ------------------------------------------------------------------
    def check(self) -> list[str]:
        """Run every check once; returns (and records) the violations."""
        problems: list[str] = []
        for network in self._networks:
            # a manual call may land between a batched mutation and its
            # coalesced settle; audit the settled state
            network.settle()
            problems += self._check_capacity(network)
            problems += self._check_conservation(network)
            problems += self._check_arena(network)
        for controller, view in self._controllers:
            problems += self._check_tables(controller, view)
        for stats in self._stats_services:
            problems += self._check_stats(stats)
        for background in self._backgrounds:
            problems += self._check_background(background)
        self.checkpoints += 1
        self._checkpoints_since_full = 0
        self._m_checked.inc()
        return self._record_problems(problems)

    def check_scoped(self, network: "Network", scope: dict) -> list[str]:
        """Audit only one settle's affected region (O(component)).

        Covers the delta-solved slots and links plus the flows that
        completed at this settle; everything outside the region was
        frozen by the delta engine, so its state is exactly what the
        last audit covering it saw.
        """
        problems: list[str] = []
        problems += self._check_capacity_scoped(network, scope)
        problems += self._check_conservation_scoped(network, scope)
        problems += self._check_arena_scoped(network, scope)
        self.checkpoints += 1
        self._m_checked_scoped.inc()
        return self._record_problems(problems)

    def _record_problems(self, problems: list[str]) -> list[str]:
        if problems:
            self._m_violated.inc(len(problems))
            self.violation_log += problems
            if self.strict:
                raise InvariantViolation(problems, self._dump_trace())
        return problems

    def _dump_trace(self) -> list[str]:
        if self._tracer is None:
            return []
        events = list(self._tracer.events())[-self.trace_tail:]
        return [
            f"t={e.time:.6f} {e.subsystem}.{e.kind} {e.payload}" for e in events
        ]

    # -- capacity ------------------------------------------------------
    def _check_capacity(self, net: "Network") -> list[str]:
        problems: list[str] = []
        self.checks_run += 1
        arena = net._arena
        n = arena.n
        nlinks = net._nlinks
        cap, rigid, up = net._lcap, net._lrigid, net._lup
        pf, pl = arena.live_pairs()
        if pf.size:
            loads = np.bincount(pl, weights=arena.rate[:n][pf], minlength=nlinks)
        else:
            loads = np.zeros(nlinks)
        from repro.simnet.links import Link

        residual = np.maximum(Link.ELASTIC_FLOOR * cap, cap - rigid)
        residual[~up] = 0.0
        slack = _CAP_RTOL * np.maximum(cap, 1.0)
        over = np.flatnonzero(loads > residual + slack)
        for lid in over.tolist():
            link = net.topology.links[lid]
            problems.append(
                f"capacity: link {lid} ({link.src}->{link.dst}, up={link.up}) "
                f"elastic load {loads[lid]:.1f} exceeds residual {residual[lid]:.1f}"
            )
        # the engine's per-link elastic mirror must match the recompute
        mirror_err = np.flatnonzero(np.abs(net._lelastic - loads) > slack)
        for lid in mirror_err.tolist():
            problems.append(
                f"capacity: link {lid} engine mirror {net._lelastic[lid]:.1f} "
                f"!= recomputed elastic load {loads[lid]:.1f}"
            )
        # rigid bookkeeping: per-link sums of admitted CBR streams
        rigid_check = np.zeros(nlinks)
        for flow in net._rigid:
            for lid in flow.path or []:
                rigid_check[lid] += flow.rigid_rate  # type: ignore[operator]
        rigid_err = np.flatnonzero(np.abs(rigid_check - rigid) > slack)
        for lid in rigid_err.tolist():
            problems.append(
                f"capacity: link {lid} rigid accumulator {rigid[lid]:.1f} "
                f"!= sum of admitted CBR rates {rigid_check[lid]:.1f}"
            )
        return problems

    # -- conservation --------------------------------------------------
    @staticmethod
    def _flow_conservation(flow: Flow) -> list[str]:
        problems: list[str] = []
        size = flow.size
        if size is None:
            if flow.bytes_sent < -_CONS_ATOL:
                problems.append(
                    f"conservation: flow {flow.fid} has negative bytes_sent "
                    f"{flow.bytes_sent:.3f}"
                )
            return problems
        sent, remaining = flow.bytes_sent, flow.remaining
        tol = _CONS_ATOL + 1e-6 * size
        if abs(size - sent - remaining) > tol:
            problems.append(
                f"conservation: flow {flow.fid} {flow.src}->{flow.dst} "
                f"sent {sent:.3f} + remaining {remaining:.3f} != size {size:.3f} "
                f"(error {size - sent - remaining:+.3f})"
            )
        if sent < -tol or sent > size + tol:
            problems.append(
                f"conservation: flow {flow.fid} bytes_sent {sent:.3f} "
                f"outside [0, {size:.3f}]"
            )
        return problems

    def _check_conservation(self, net: "Network") -> list[str]:
        problems: list[str] = []
        self.checks_run += 1
        for flow in net.archive:
            problems += self._flow_conservation(flow)
        return problems

    # -- slot arena / ghost flows --------------------------------------
    def _check_arena(self, net: "Network") -> list[str]:
        problems: list[str] = []
        self.checks_run += 1
        arena = net._arena
        n = arena.n
        alive = arena.alive[:n]
        live_slots = int(alive.sum())
        if live_slots != len(net._elastic):
            problems.append(
                f"arena: {live_slots} live slots but {len(net._elastic)} "
                f"active elastic flows"
            )
        for slot in np.flatnonzero(alive).tolist():
            flow = arena.flows[slot]
            if flow is None:
                problems.append(f"arena: live slot {slot} has no flow object")
                continue
            if flow._state is not arena or flow._slot != slot:
                problems.append(
                    f"arena: flow {flow.fid} binding mismatch "
                    f"(slot {flow._slot} vs {slot})"
                )
            if flow not in net._elastic:
                problems.append(
                    f"arena: ghost slot {slot} — flow {flow.fid} is not an "
                    f"active elastic flow"
                )
            if flow.end_time is not None:
                problems.append(
                    f"arena: completed flow {flow.fid} still occupies slot {slot}"
                )
        dead = np.flatnonzero(~alive).tolist()
        bad_dead = [s for s in dead if arena.rate[s] != 0.0]
        if bad_dead:
            problems.append(f"arena: dead slots {bad_dead} carry non-zero rate")
        for flow in net._elastic:
            if flow._state is not arena:
                problems.append(
                    f"arena: active elastic flow {flow.fid} has no slot binding"
                )
        for flow in net.archive:
            if flow.end_time is not None and flow._state is not None:
                problems.append(
                    f"arena: completed flow {flow.fid} retains an arena binding"
                )
        for lid, bucket in net._flows_by_link.items():
            for flow in bucket:
                if not flow.active:
                    problems.append(
                        f"arena: link index {lid} holds inactive flow {flow.fid}"
                    )
                elif flow.path is None or lid not in flow.path:
                    problems.append(
                        f"arena: link index {lid} holds flow {flow.fid} whose "
                        f"path does not cross it"
                    )
        return problems

    # -- scoped (O(component)) variants --------------------------------
    def _scope_pairs(
        self, net: "Network", slots: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """(link, rate) for every incidence pair of the scoped slots."""
        arena = net._arena
        pl_parts: list[np.ndarray] = []
        rate_parts: list[np.ndarray] = []
        for s in slots.tolist():
            start = int(arena.pair_start[s])
            cnt = int(arena.pair_count[s])
            pl_parts.append(arena.pair_link[start: start + cnt])
            rate_parts.append(np.full(cnt, arena.rate[s]))
        if not pl_parts:
            empty = np.zeros(0)
            return empty.astype(np.intp), empty
        return np.concatenate(pl_parts), np.concatenate(rate_parts)

    def _check_capacity_scoped(self, net: "Network", scope: dict) -> list[str]:
        problems: list[str] = []
        self.checks_run += 1
        links: np.ndarray = scope["links"]
        slots: np.ndarray = scope["slots"]
        if links.size == 0:
            return problems
        from repro.simnet.links import Link

        cap = net._lcap[links]
        rigid = net._lrigid[links]
        up = net._lup[links]
        pl_r, w = self._scope_pairs(net, slots)
        if pl_r.size:
            idx = np.searchsorted(links, pl_r)
            escaped = (idx >= links.size) | (links[np.minimum(idx, links.size - 1)] != pl_r)
            if escaped.any():
                problems.append(
                    f"scope: {int(escaped.sum())} incidence pair(s) of the "
                    f"settle's slots reference links outside its link scope "
                    f"(delta closure broken)"
                )
                keep = ~escaped
                idx, w = idx[keep], w[keep]
            loads = np.bincount(idx, weights=w, minlength=links.size)
        else:
            loads = np.zeros(links.size)
        residual = np.maximum(Link.ELASTIC_FLOOR * cap, cap - rigid)
        residual[~up] = 0.0
        slack = _CAP_RTOL * np.maximum(cap, 1.0)
        for i in np.flatnonzero(loads > residual + slack).tolist():
            lid = int(links[i])
            link = net.topology.links[lid]
            problems.append(
                f"capacity: link {lid} ({link.src}->{link.dst}, up={link.up}) "
                f"elastic load {loads[i]:.1f} exceeds residual {residual[i]:.1f}"
            )
        for i in np.flatnonzero(np.abs(net._lelastic[links] - loads) > slack).tolist():
            lid = int(links[i])
            problems.append(
                f"capacity: link {lid} engine mirror {net._lelastic[lid]:.1f} "
                f"!= recomputed elastic load {loads[i]:.1f}"
            )
        return problems

    def _check_conservation_scoped(self, net: "Network", scope: dict) -> list[str]:
        problems: list[str] = []
        self.checks_run += 1
        arena = net._arena
        for s in scope["slots"].tolist():
            flow = arena.flows[s]
            if flow is not None:
                problems += self._flow_conservation(flow)
        for flow in scope["completed"]:
            problems += self._flow_conservation(flow)
        return problems

    def _check_arena_scoped(self, net: "Network", scope: dict) -> list[str]:
        problems: list[str] = []
        self.checks_run += 1
        arena = net._arena
        for s in scope["slots"].tolist():
            flow = arena.flows[s]
            if not arena.alive[s]:
                problems.append(f"scope: settle scoped a dead slot {s}")
                continue
            if flow is None:
                problems.append(f"arena: live slot {s} has no flow object")
                continue
            if flow._state is not arena or flow._slot != s:
                problems.append(
                    f"arena: flow {flow.fid} binding mismatch "
                    f"(slot {flow._slot} vs {s})"
                )
            if flow not in net._elastic:
                problems.append(
                    f"arena: ghost slot {s} — flow {flow.fid} is not an "
                    f"active elastic flow"
                )
            if flow.end_time is not None:
                problems.append(
                    f"arena: completed flow {flow.fid} still occupies slot {s}"
                )
        for flow in scope["completed"]:
            if flow._state is not None:
                problems.append(
                    f"arena: completed flow {flow.fid} retains an arena binding"
                )
            if flow.end_time is None:
                problems.append(
                    f"arena: flow {flow.fid} reported completed but has no "
                    f"end_time"
                )
        return problems

    # -- switch tables vs controller intent ----------------------------
    def _check_tables(
        self, controller: "Controller", view: "SwitchTableView"
    ) -> list[str]:
        problems: list[str] = []
        self.checks_run += 1
        programmer = controller.programmer
        if programmer.pending_installs:
            return problems  # in-flight batches make disagreement transient
        topo = controller.network.topology
        rules = programmer._rules
        tables = view.tables()
        for rule in rules:
            match = rule.match
            if match.src_ip is None or match.dst_ip is None:
                continue  # prefix (rack-pair) rules have no single probe path
            try:
                src = topo.host_by_ip(match.src_ip).name
                dst = topo.host_by_ip(match.dst_ip).name
            except KeyError:
                problems.append(
                    f"tables: rule matches unknown host "
                    f"{match.src_ip}->{match.dst_ip}"
                )
                continue
            probe = Flow(
                src=src,
                dst=dst,
                size=None,
                five_tuple=FiveTuple(
                    match.src_ip, match.dst_ip,
                    match.src_port if match.src_port is not None else SHUFFLE_PORT,
                    match.dst_port if match.dst_port is not None else 40000,
                    TCP,
                ),
                fid=-1,  # probe: must not consume a real flow id
            )
            best = self._best_cover(rules, probe)
            if best is None or best is not rule:
                continue  # shadowed (or tied) — the winning rule is audited
            if any(not topo.links[lid].up for lid in rule.path):
                continue  # data plane cannot deliver along a down link anyway
            expected = topo.path_nodes(rule.path)
            walked = view.walk(probe, tables=tables)
            if walked != expected:
                problems.append(
                    f"tables: walking {src}->{dst} through the switch tables "
                    f"gives {walked}, controller intent is {expected}"
                )
        return problems

    @staticmethod
    def _best_cover(rules, probe: Flow) -> Optional[object]:
        """Unique best rule covering the probe flow.

        Mirrors ``FlowProgrammer.lookup``'s (priority, specificity)
        tie-break without mutating hit counters; returns None when two
        distinct paths tie (ordering there is ambiguous by design).
        """
        best = None
        tied = False
        for rule in rules:
            if not rule.match.covers(probe):
                continue
            if best is None:
                best = rule
                continue
            key = (rule.priority, rule.match.specificity())
            best_key = (best.priority, best.match.specificity())
            if key > best_key:
                best, tied = rule, False
            elif key == best_key and rule.path != best.path:
                tied = True
        return None if tied else best

    # -- stats pipeline --------------------------------------------------
    def _check_stats(self, stats: "LinkStatsService") -> list[str]:
        problems: list[str] = []
        self.checks_run += 1
        for label, arr in (("ewma", stats._ewma), ("ewma_background", stats._ewma_background)):
            if not np.all(np.isfinite(arr)):
                problems.append(f"stats: {label} contains non-finite values")
            elif np.any(arr < -1e-6):
                problems.append(f"stats: {label} went negative (min {arr.min():.3f})")
        if stats.frozen and stats.samples != stats.samples_at_freeze:
            problems.append(
                f"stats: frozen service folded {stats.samples - stats.samples_at_freeze} "
                f"sample(s) after freeze()"
            )
        if stats._gap_pending < 0 or stats.last_gap_seconds < 0 or stats.frozen_seconds_total < 0:
            problems.append(
                f"stats: negative gap accounting (pending {stats._gap_pending:.3f}, "
                f"last {stats.last_gap_seconds:.3f}, total {stats.frozen_seconds_total:.3f})"
            )
        if stats.frozen_seconds_total + 1e-9 < stats.last_gap_seconds:
            problems.append(
                f"stats: published gap {stats.last_gap_seconds:.3f} exceeds lifetime "
                f"frozen total {stats.frozen_seconds_total:.3f}"
            )
        return problems

    # -- background teardown ---------------------------------------------
    def _check_background(self, background: "BackgroundTraffic") -> list[str]:
        problems: list[str] = []
        self.checks_run += 1
        if not background.torn_down:
            return problems
        survivors = [f.fid for f in background.started_flows if f.active]
        if survivors:
            problems.append(
                f"background: flows {survivors} still active after teardown()"
            )
        if background.flows:
            problems.append(
                f"background: torn-down source still lists {len(background.flows)} "
                f"flow(s) as live"
            )
        return problems

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Summary for run results and the CLI report."""
        return {
            "checkpoints": self.checkpoints,
            "checks_run": self.checks_run,
            "violations": len(self.violation_log),
        }
