"""Per-switch forwarding-table view of the installed rules.

The controller reasons about end-to-end paths, but what actually gets
programmed is one TCAM entry per switch along each path — and switch
TCAM is the scarce resource behind §IV's aggregation discussion ("given
the high cost and thus limited size of the memory part of network
devices storing so called wildcard rules").  This module expands the
rule table into per-switch entries, reports occupancy, and can walk a
flow hop-by-hop through the tables to verify that the distributed state
reproduces the controller's intent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sdn.programming import FlowProgrammer, Match
from repro.simnet.flows import Flow
from repro.simnet.topology import NodeKind, Topology


@dataclass(frozen=True)
class SwitchEntry:
    """One TCAM entry: match -> next hop."""

    match: Match
    priority: int
    out_next_hop: str


class SwitchTableView:
    """Expands end-to-end rules into per-switch forwarding entries."""

    def __init__(self, topology: Topology, programmer: FlowProgrammer) -> None:
        self.topology = topology
        self.programmer = programmer

    # ------------------------------------------------------------------
    def expand(self, rule) -> list[tuple[str, SwitchEntry]]:
        """Per-switch (switch, entry) expansion of one end-to-end rule."""
        out: list[tuple[str, SwitchEntry]] = []
        prefix_rule = rule.match.dst_ip is None
        for lid in rule.path:
            link = self.topology.links[lid]
            if self.topology.nodes[link.src].kind is not NodeKind.SWITCH:
                continue
            # A prefix (rack-pair) rule cannot name the egress host
            # port — edge delivery stays with the switch's default
            # L2 forwarding, so no TCAM entry is spent there.
            if prefix_rule and self.topology.nodes[link.dst].kind is NodeKind.HOST:
                continue
            out.append(
                (
                    link.src,
                    SwitchEntry(
                        match=rule.match,
                        priority=rule.priority,
                        out_next_hop=link.dst,
                    ),
                )
            )
        return out

    def tables(self) -> dict[str, list[SwitchEntry]]:
        """Current per-switch entries (deduplicated)."""
        out: dict[str, set[SwitchEntry]] = {
            s.name: set() for s in self.topology.switches()
        }
        for rule in self.programmer._rules:
            for switch, entry in self.expand(rule):
                out[switch].add(entry)
        return {k: sorted(v, key=lambda e: (-e.priority, repr(e.match))) for k, v in out.items()}

    def missing_rules(self, intent: list) -> list:
        """Rules from ``intent`` whose expansion is absent from the tables.

        The controller's recovery resync must leave this empty: every
        rule the control plane still wants is physically present in the
        distributed forwarding state.
        """
        tables = {k: set(v) for k, v in self.tables().items()}
        missing = []
        for rule in intent:
            for switch, entry in self.expand(rule):
                if entry not in tables.get(switch, set()):
                    missing.append(rule)
                    break
        return missing

    def occupancy(self) -> dict[str, int]:
        """TCAM entries per switch."""
        return {switch: len(entries) for switch, entries in self.tables().items()}

    def max_occupancy(self) -> int:
        """Largest per-switch TCAM occupancy."""
        occ = self.occupancy()
        return max(occ.values()) if occ else 0

    def total_entries(self) -> int:
        """Sum of entries across all switches."""
        return sum(self.occupancy().values())

    # ------------------------------------------------------------------
    def walk(
        self,
        flow: Flow,
        max_hops: int = 32,
        tables: Optional[dict[str, list[SwitchEntry]]] = None,
    ) -> Optional[list[str]]:
        """Forward a flow hop-by-hop through the switch tables.

        Starts at the flow's source host's ToR and follows the highest-
        priority matching entry at each switch.  Returns the node path
        (host..host) or None on a table miss / loop — i.e. exactly what
        the data plane would do without controller involvement.  A
        caller walking many flows can precompute :meth:`tables` once
        and pass it in.
        """
        topo = self.topology
        up = [l for l in topo.up_links_from(flow.src)]
        if not up:
            return None
        path = [flow.src, up[0].dst]
        if tables is None:
            tables = self.tables()
        for _ in range(max_hops):
            here = path[-1]
            if here == flow.dst:
                return path
            node = topo.nodes.get(here)
            if node is None:
                return None
            if node.kind is NodeKind.HOST:
                return path if here == flow.dst else None
            # default L2 delivery once the destination host is adjacent
            if any(l.dst == flow.dst for l in topo.up_links_from(here)):
                path.append(flow.dst)
                return path
            entries = tables.get(here, [])
            chosen: Optional[SwitchEntry] = None
            for entry in entries:
                if entry.match.covers(flow):
                    if chosen is None or (
                        entry.priority,
                        entry.match.specificity(),
                    ) > (chosen.priority, chosen.match.specificity()):
                        chosen = entry
            if chosen is None:
                return None  # table miss
            if chosen.out_next_hop in path:
                return None  # loop guard
            path.append(chosen.out_next_hop)
        return None
