"""Hedera's natural-demand estimator (Al-Fares et al., NSDI 2010).

Hedera schedules flows by their *natural demand* — the rate each flow
would get if limited only by its source and destination NICs under
max-min fairness, independent of current in-network throttling.  The
published estimator alternates two passes until a fixed point:

* ``est_src``: every source distributes its remaining capacity equally
  among its not-yet-converged flows (these demands become tentative);
* ``est_dst``: every receiver checks whether tentative demands exceed
  its capacity; if so it computes the receiver-limited equal share,
  excluding flows whose demand is already below it, and *converges*
  the receiver-limited flows at that share.

Demands are computed in normalised units (NIC capacity = 1.0) exactly
as in the paper, then scaled by the per-host NIC rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

#: fixed-point iteration cap (the estimator converges in a handful of
#: passes; the cap only guards against numerical ping-pong).
_MAX_PASSES = 100
_EPS = 1e-12


@dataclass
class _FlowState:
    src: str
    dst: str
    demand: float = 0.0
    converged: bool = False
    receiver_limited: bool = False


def estimate_demands(
    pairs: Sequence[tuple[str, str]],
    nic_rate: Mapping[str, float] | float = 1.0,
) -> list[float]:
    """Natural max-min demands for host-pair flows.

    Parameters
    ----------
    pairs:
        (src_host, dst_host) per flow; hosts may repeat (multiple flows
        between the same pair each get their own demand).
    nic_rate:
        Per-host NIC capacity in bytes/s, or one scalar for all hosts.

    Returns
    -------
    list[float]
        Estimated demand rate per flow, in the same units as nic_rate.
    """
    flows = [_FlowState(src=s, dst=d) for s, d in pairs]
    if not flows:
        return []
    hosts = {h for s, d in pairs for h in (s, d)}
    if isinstance(nic_rate, Mapping):
        cap = {h: float(nic_rate[h]) for h in hosts}
    else:
        cap = {h: float(nic_rate) for h in hosts}
    # work in normalised units per host: demand_f is a fraction of the
    # *source* NIC; receiver checks convert via absolute rates, so use
    # absolute rates throughout instead (equivalent, simpler with
    # heterogeneous NICs).

    for _ in range(_MAX_PASSES):
        changed = False
        # est_src: distribute source capacity over unconverged flows
        for host in hosts:
            out = [f for f in flows if f.src == host]
            unconv = [f for f in out if not f.converged]
            if not unconv:
                continue
            consumed = sum(f.demand for f in out if f.converged)
            share = max(0.0, cap[host] - consumed) / len(unconv)
            for f in unconv:
                if abs(f.demand - share) > _EPS:
                    f.demand = share
                    changed = True
        # est_dst: receiver-limit flows where the inbound sum overflows
        for host in hosts:
            into = [f for f in flows if f.dst == host]
            if not into:
                continue
            total = sum(f.demand for f in into)
            if total <= cap[host] + _EPS:
                continue
            # all inbound flows are candidates for receiver-limiting
            for f in into:
                f.receiver_limited = True
            remaining_cap = cap[host]
            n_rl = len(into)
            shrinking = True
            while shrinking:
                shrinking = False
                share = remaining_cap / n_rl if n_rl else 0.0
                for f in into:
                    if f.receiver_limited and f.demand < share - _EPS:
                        f.receiver_limited = False
                        remaining_cap -= f.demand
                        n_rl -= 1
                        shrinking = True
            share = remaining_cap / n_rl if n_rl else 0.0
            for f in into:
                if f.receiver_limited:
                    if abs(f.demand - share) > _EPS or not f.converged:
                        changed = True
                    f.demand = share
                    f.converged = True
        if not changed:
            break
    return [f.demand for f in flows]
