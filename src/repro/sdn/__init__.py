"""SDN controller substrate (a miniature OpenDaylight).

Pythia's network half is, per the paper, "implemented in the form of
modular components within ... OpenDaylight" consuming three controller
services: the topology update service, the link-load update service,
and OpenFlow rule programming.  This package provides those services
(:mod:`repro.sdn.topology_service`, :mod:`repro.sdn.stats_service`,
:mod:`repro.sdn.programming`) around an app-hosting controller kernel
(:mod:`repro.sdn.controller`), plus the two non-Pythia schedulers the
paper discusses: ECMP (the baseline, §IV) and a Hedera-style reactive
elephant-flow scheduler (§II).
"""

from repro.sdn.controller import Controller
from repro.sdn.dataplane import TableDrivenPolicy
from repro.sdn.demand import estimate_demands
from repro.sdn.ecmp import EcmpSelector, ecmp_index
from repro.sdn.hedera import HederaScheduler
from repro.sdn.openflow import FlowMod, OpenFlowChannel, SwitchAgent
from repro.sdn.policy import EcmpPolicy, FailureRepairService, PathPolicy
from repro.sdn.programming import FlowProgrammer, Match, Rule
from repro.sdn.stats_service import LinkStatsService
from repro.sdn.switch_tables import SwitchTableView
from repro.sdn.topology_service import TopologyService

__all__ = [
    "Controller",
    "TableDrivenPolicy",
    "estimate_demands",
    "EcmpSelector",
    "ecmp_index",
    "HederaScheduler",
    "FlowMod",
    "OpenFlowChannel",
    "SwitchAgent",
    "PathPolicy",
    "EcmpPolicy",
    "FailureRepairService",
    "FlowProgrammer",
    "Match",
    "Rule",
    "LinkStatsService",
    "SwitchTableView",
    "TopologyService",
]
