"""Controller link-load statistics service.

Stands in for OpenDaylight's link-load update service (§IV): the
controller polls switch port counters on a fixed period and keeps an
exponentially-weighted moving average of per-link utilisation, which is
what the Pythia allocator combines with application intent.  Polling is
pull-based from the fluid model's byte counters, so it measures exactly
what hardware counters would.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro import obs
from repro.simnet.engine import Event, Simulator
from repro.simnet.network import Network


class LinkStatsService:
    """Periodic link-rate sampler with EWMA smoothing."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        period: float = 1.0,
        alpha: float = 0.5,
    ) -> None:
        self.sim = sim
        self.network = network
        self.period = period
        self.alpha = alpha
        nlinks = len(network.topology.links)
        self._ewma = np.zeros(nlinks)
        self._ewma_background = np.zeros(nlinks)
        self._last_bytes = np.zeros(nlinks)
        self._last_time = sim.now
        self._running = False
        #: True while the chaos engine simulates a lagging/stale stats
        #: pipeline: polls fire but fold nothing in, so consumers keep
        #: reading an EWMA that ages.
        self._frozen = False
        #: sim time freeze() was entered, None while thawed.
        self._frozen_at: Optional[float] = None
        #: samples folded as of the last freeze(); while frozen, the
        #: invariant checker asserts this count has not moved.
        self.samples_at_freeze = 0
        #: frozen span waiting to be folded by the first thawed sample.
        self._gap_pending = 0.0
        #: frozen span the most recent sample averaged across (0 when
        #: the last sample was an ordinary contiguous poll).  Forecast
        #: consumers discount their trend state when this is non-zero.
        self.last_gap_seconds = 0.0
        #: cumulative seconds spent frozen over the service's lifetime.
        self.frozen_seconds_total = 0.0
        #: the in-flight periodic poll event, cancelled on stop() so a
        #: stop()/start() cycle cannot leave two live polling chains.
        self._pending_tick: Optional[Event] = None
        #: polling-chain epoch, bumped on every start()/stop().  Each
        #: tick carries the epoch it was scheduled under and drops
        #: itself — exactly once, counted — when the epoch has moved on.
        #: Belt-and-braces on top of event cancellation: a poll that was
        #: scheduled during a controller outage can never survive the
        #: failover resync into a second concurrent polling chain.
        self.epoch = 0
        self.polls_dropped_stale = 0
        #: called as fn(now, dt, gap) after each successfully folded
        #: sample — the forecast pipeline's ingestion point.  Hooks run
        #: in registration order and never fire for skipped/zero-dt
        #: polls.
        self._sample_hooks: list[Callable[[float, float, float], None]] = []
        self.samples = 0
        self.samples_skipped = 0
        self.samples_zero_dt = 0
        registry = obs.get_registry()
        self._m_samples = registry.counter("stats.samples")
        self._m_skipped = registry.counter("stats.samples_skipped")
        self._m_zero_dt = registry.counter("stats.samples_zero_dt")
        self._m_lag = registry.gauge("stats.ewma_lag_seconds")
        self._m_gap = registry.gauge("stats.frozen_gap_seconds")
        self._m_stale = registry.counter("stats.polls_dropped_stale")

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin periodic polling (opens a new epoch)."""
        if self._running:
            return
        self._running = True
        self.epoch += 1
        self._last_time = self.sim.now
        self._last_bytes = self.network.link_bytes()
        self._pending_tick = self.sim.schedule(self.period, self._tick, self.epoch)

    def stop(self) -> None:
        """Stop polling (lets the event queue drain, closes the epoch)."""
        self._running = False
        self.epoch += 1
        if self._pending_tick is not None:
            self._pending_tick.cancel()
            self._pending_tick = None

    def _tick(self, epoch: int) -> None:
        if epoch != self.epoch:
            # A poll from a superseded chain (scheduled before an
            # outage's stop()/start() cycle).  Drop it exactly once —
            # counted — instead of letting it sample *and* reschedule,
            # which would leave two live polling chains after resync.
            self.polls_dropped_stale += 1
            self._m_stale.inc()
            return
        self._pending_tick = None
        if not self._running:
            return
        self.sample()
        self._pending_tick = self.sim.schedule(self.period, self._tick, self.epoch)

    def freeze(self) -> None:
        """Enter staleness: polls are skipped, the EWMA stops updating.

        Models a lagging link-stats pipeline (slow poller, dropped
        counter replies) while the controller itself stays up.  The
        first post-thaw sample averages over the whole frozen window —
        exactly what a late counter diff would measure.
        """
        if self._frozen:
            return
        self._frozen = True
        self._frozen_at = self.sim.now
        self.samples_at_freeze = self.samples

    def unfreeze(self) -> None:
        """Leave staleness; the next poll folds the gap in.

        The frozen span is recorded so that fold can be discounted: the
        first thawed sample publishes it as :attr:`last_gap_seconds`
        (and the ``stats.frozen_gap_seconds`` gauge) and passes it to
        sample hooks, letting the forecaster drop trends fitted across
        the missing window instead of extrapolating them.
        """
        if not self._frozen:
            return
        self._frozen = False
        if self._frozen_at is not None:
            span = self.sim.now - self._frozen_at
            self._gap_pending += span
            self.frozen_seconds_total += span
        self._frozen_at = None

    @property
    def frozen(self) -> bool:
        """True while the stats pipeline is chaos-frozen."""
        return self._frozen

    def add_sample_hook(self, hook: Callable[[float, float, float], None]) -> None:
        """Subscribe ``hook(now, dt, gap)`` to successfully folded samples.

        ``gap`` is the frozen span (seconds) the sample averaged over,
        0.0 for an ordinary contiguous poll.  Skipped (frozen) and
        zero-dt polls do not fire hooks.
        """
        self._sample_hooks.append(hook)

    def staleness(self) -> float:
        """Seconds since the EWMA last absorbed a sample."""
        return self.sim.now - self._last_time

    def sample(self) -> None:
        """Poll byte counters and fold the measured rates into the EWMA.

        Reads come from the network's settled flat link arrays (one
        vectorised call each) rather than a Python scan over link
        objects; ``sample_counters`` is still invoked so the per-link
        hardware-counter mirrors stay fresh at every poll instant.
        """
        if self._frozen:
            self.samples_skipped += 1
            self._m_skipped.inc()
            return
        self.network.sample_counters()
        now = self.sim.now
        counters = self.network.link_bytes()
        dt = now - self._last_time
        if dt <= 0:
            # Two polls at the same instant (restart + scheduled tick,
            # manual sample() from a settle hook): a zero-dt rate is
            # undefined, so fold nothing and — critically — leave
            # ``_last_bytes``/``_last_time`` untouched so the next real
            # poll still diffs against the last *folded* counters.
            self.samples_zero_dt += 1
            self._m_zero_dt.inc()
            return
        rates = (counters - self._last_bytes) / dt
        self._ewma = self.alpha * rates + (1 - self.alpha) * self._ewma
        # Background component: total load minus the shuffle transfers
        # the application layer knows about ("it employs the knowledge
        # of the application-level transfers to differentiate the
        # portion of the network load that is due to shuffle transfers
        # from background traffic", §IV).  Elastic flows are exactly
        # the tracked application transfers in this model.
        bg = np.maximum(
            0.0, self.network.link_load() - self.network.link_elastic_load()
        )
        self._ewma_background = (
            self.alpha * bg + (1 - self.alpha) * self._ewma_background
        )
        self._last_bytes = counters
        self._last_time = now
        self.samples += 1
        self._m_samples.inc()
        # How stale the EWMA was when this sample folded in — the
        # gauge's high-water exposes missed/late polling intervals.
        self._m_lag.set(dt)
        # Publish how much of this fold was a frozen gap (0 normally).
        gap = self._gap_pending
        self._gap_pending = 0.0
        self.last_gap_seconds = gap
        self._m_gap.set(gap)
        for hook in self._sample_hooks:
            hook(now, dt, gap)

    # ------------------------------------------------------------------
    def load(self, lid: int) -> float:
        """Smoothed load (bytes/s) of one link."""
        return float(self._ewma[lid])

    def load_array(self) -> np.ndarray:
        """Smoothed total load per link (bytes/s)."""
        return self._ewma.copy()

    def background_load(self, lid: int) -> float:
        """Smoothed non-shuffle (background) load of one link."""
        return float(self._ewma_background[lid])

    def background_load_array(self) -> np.ndarray:
        """Smoothed non-shuffle load per link (bytes/s)."""
        return self._ewma_background.copy()

    def utilization(self, lid: int) -> float:
        """Smoothed utilisation of one link in [0, 1]."""
        link = self.network.topology.links[lid]
        if link.capacity <= 0:
            return 0.0
        return min(1.0, self.load(lid) / link.capacity)
