"""Controller link-load statistics service.

Stands in for OpenDaylight's link-load update service (§IV): the
controller polls switch port counters on a fixed period and keeps an
exponentially-weighted moving average of per-link utilisation, which is
what the Pythia allocator combines with application intent.  Polling is
pull-based from the fluid model's byte counters, so it measures exactly
what hardware counters would.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import obs
from repro.simnet.engine import Event, Simulator
from repro.simnet.network import Network


class LinkStatsService:
    """Periodic link-rate sampler with EWMA smoothing."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        period: float = 1.0,
        alpha: float = 0.5,
    ) -> None:
        self.sim = sim
        self.network = network
        self.period = period
        self.alpha = alpha
        nlinks = len(network.topology.links)
        self._ewma = np.zeros(nlinks)
        self._ewma_background = np.zeros(nlinks)
        self._last_bytes = np.zeros(nlinks)
        self._last_time = sim.now
        self._running = False
        #: True while the chaos engine simulates a lagging/stale stats
        #: pipeline: polls fire but fold nothing in, so consumers keep
        #: reading an EWMA that ages.
        self._frozen = False
        #: the in-flight periodic poll event, cancelled on stop() so a
        #: stop()/start() cycle cannot leave two live polling chains.
        self._pending_tick: Optional[Event] = None
        self.samples = 0
        self.samples_skipped = 0
        registry = obs.get_registry()
        self._m_samples = registry.counter("stats.samples")
        self._m_skipped = registry.counter("stats.samples_skipped")
        self._m_lag = registry.gauge("stats.ewma_lag_seconds")

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin periodic polling."""
        if self._running:
            return
        self._running = True
        self._last_time = self.sim.now
        self._last_bytes = self.network.link_bytes()
        self._pending_tick = self.sim.schedule(self.period, self._tick)

    def stop(self) -> None:
        """Stop polling (lets the event queue drain)."""
        self._running = False
        if self._pending_tick is not None:
            self._pending_tick.cancel()
            self._pending_tick = None

    def _tick(self) -> None:
        self._pending_tick = None
        if not self._running:
            return
        self.sample()
        self._pending_tick = self.sim.schedule(self.period, self._tick)

    def freeze(self) -> None:
        """Enter staleness: polls are skipped, the EWMA stops updating.

        Models a lagging link-stats pipeline (slow poller, dropped
        counter replies) while the controller itself stays up.  The
        first post-thaw sample averages over the whole frozen window —
        exactly what a late counter diff would measure.
        """
        self._frozen = True

    def unfreeze(self) -> None:
        """Leave staleness; the next poll folds the gap in."""
        self._frozen = False

    def staleness(self) -> float:
        """Seconds since the EWMA last absorbed a sample."""
        return self.sim.now - self._last_time

    def sample(self) -> None:
        """Poll byte counters and fold the measured rates into the EWMA.

        Reads come from the network's settled flat link arrays (one
        vectorised call each) rather than a Python scan over link
        objects; ``sample_counters`` is still invoked so the per-link
        hardware-counter mirrors stay fresh at every poll instant.
        """
        if self._frozen:
            self.samples_skipped += 1
            self._m_skipped.inc()
            return
        self.network.sample_counters()
        now = self.sim.now
        counters = self.network.link_bytes()
        dt = now - self._last_time
        if dt > 0:
            rates = (counters - self._last_bytes) / dt
            self._ewma = self.alpha * rates + (1 - self.alpha) * self._ewma
            # Background component: total load minus the shuffle transfers
            # the application layer knows about ("it employs the knowledge
            # of the application-level transfers to differentiate the
            # portion of the network load that is due to shuffle transfers
            # from background traffic", §IV).  Elastic flows are exactly
            # the tracked application transfers in this model.
            bg = np.maximum(
                0.0, self.network.link_load() - self.network.link_elastic_load()
            )
            self._ewma_background = (
                self.alpha * bg + (1 - self.alpha) * self._ewma_background
            )
            self._last_bytes = counters
            self._last_time = now
            self.samples += 1
            self._m_samples.inc()
            # How stale the EWMA was when this sample folded in — the
            # gauge's high-water exposes missed/late polling intervals.
            self._m_lag.set(dt)

    # ------------------------------------------------------------------
    def load(self, lid: int) -> float:
        """Smoothed load (bytes/s) of one link."""
        return float(self._ewma[lid])

    def load_array(self) -> np.ndarray:
        """Smoothed total load per link (bytes/s)."""
        return self._ewma.copy()

    def background_load(self, lid: int) -> float:
        """Smoothed non-shuffle (background) load of one link."""
        return float(self._ewma_background[lid])

    def background_load_array(self) -> np.ndarray:
        """Smoothed non-shuffle load per link (bytes/s)."""
        return self._ewma_background.copy()

    def utilization(self, lid: int) -> float:
        """Smoothed utilisation of one link in [0, 1]."""
        link = self.network.topology.links[lid]
        if link.capacity <= 0:
            return 0.0
        return min(1.0, self.load(lid) / link.capacity)
