"""Path-selection policy interface shared by all schedulers.

The Hadoop shuffle service asks a :class:`PathPolicy` where to send
each fetch flow; this is the seam between the MapReduce substrate and
the network control plane.  ECMP implements it statelessly; Pythia
implements it by rule-table lookup with ECMP fallback (traffic not
covered by a Pythia rule "is handled through default datacenter
network control processes", §IV).
"""

from __future__ import annotations

from typing import Optional, Protocol

from repro.sdn.ecmp import EcmpSelector
from repro.simnet.flows import Flow
from repro.simnet.topology import Topology


class PathPolicy(Protocol):
    """Decides the forwarding path of a new or broken flow."""

    name: str

    def place(self, flow: Flow) -> list[int]:
        """Return the link-id path for a flow about to start."""
        ...

    def repair(self, flow: Flow) -> Optional[list[int]]:
        """Return a replacement path after a failure, or None if stuck."""
        ...


class EcmpPolicy:
    """Baseline policy: five-tuple hash over the k shortest up paths."""

    name = "ecmp"

    def __init__(self, topology: Topology, k: int = 4) -> None:
        self._selector = EcmpSelector(topology, k=k)
        self._topology = topology

    def place(self, flow: Flow) -> list[int]:
        """Path for a flow about to start (link ids)."""
        return self._selector.path_for(flow)

    def repair(self, flow: Flow) -> Optional[list[int]]:
        """Replacement path after a failure, or None if stuck."""
        # Re-hash over the surviving paths (hardware ECMP re-converges
        # the same way: the hash now indexes a smaller next-hop group).
        from repro.sdn.ecmp import ecmp_index

        paths = self._selector.up_paths(flow.src, flow.dst)
        if not paths:
            return None
        chosen = paths[ecmp_index(flow.five_tuple, len(paths))]
        return self._topology.path_links(chosen)


class FailureRepairService:
    """Reroutes in-flight flows off failed links using their policy.

    Registered once per experiment; listens for topology changes and
    asks the active policy for replacement paths, modelling data-plane
    re-convergence for ECMP and controller-driven repair for Pythia.
    """

    def __init__(self, network, policy: PathPolicy) -> None:
        self.network = network
        self.policy = policy
        self.repairs = 0
        self.stranded = 0
        network.topology.observe(self._on_link_event)

    def _on_link_event(self, link) -> None:
        if link.up:
            return
        for flow in list(self.network.flows_on_link(link.lid)):
            if not flow.active:
                continue
            new_path = self.policy.repair(flow)
            if new_path is None:
                self.stranded += 1
                continue
            self.network.reroute(flow, new_path)
            self.repairs += 1
