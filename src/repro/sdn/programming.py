"""OpenFlow rule tables and switch programming latency.

The paper's timing argument (§V-C) hinges on hardware flow-install
latency: "typically in the order of 3-5 ms/flow installed" — and
prediction arriving seconds earlier makes programming safe.  This
module models exactly that contract: rule installation completes after
``per_rule_latency × rules + rtt`` and only then do flows match.

Rules are wildcard aggregates, as forced by the paper's observation
that a shuffle flow's TCP source port is unknowable at prediction time:
the match is ``(src_ip, dst_ip, dst_port)`` with the source port
wildcarded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro import obs
from repro.simnet.engine import Simulator
from repro.simnet.flows import Flow


@dataclass(frozen=True)
class Match:
    """Wildcard match on addresses and ports; None = any.

    Pythia's shuffle aggregates wildcard the reducer-side ephemeral
    port and pin the mapper-side service port (50060).  Rack/POD-level
    aggregation (§IV's forwarding-state-conservation variant) uses the
    ``src_prefix``/``dst_prefix`` fields instead of exact addresses —
    one TCAM entry covering a whole rack pair.
    """

    src_ip: Optional[str] = None
    dst_ip: Optional[str] = None
    src_port: Optional[int] = None
    dst_port: Optional[int] = None
    #: address-prefix alternatives to the exact-IP fields ("10.0." etc.)
    src_prefix: Optional[str] = None
    dst_prefix: Optional[str] = None

    def covers(self, flow: Flow) -> bool:
        """True if this match admits the flow's five-tuple."""
        ft = flow.five_tuple
        return (
            (self.src_ip is None or self.src_ip == ft.src_ip)
            and (self.dst_ip is None or self.dst_ip == ft.dst_ip)
            and (self.src_prefix is None or ft.src_ip.startswith(self.src_prefix))
            and (self.dst_prefix is None or ft.dst_ip.startswith(self.dst_prefix))
            and (self.src_port is None or self.src_port == ft.src_port)
            and (self.dst_port is None or self.dst_port == ft.dst_port)
        )

    def specificity(self) -> int:
        """Tie-break score: more exact fields rank higher."""
        # exact fields count double so an exact-IP rule beats a prefix
        # rule covering the same flow (longest-prefix-match analogue).
        exact = sum(
            f is not None
            for f in (self.src_ip, self.dst_ip, self.src_port, self.dst_port)
        )
        prefixes = sum(f is not None for f in (self.src_prefix, self.dst_prefix))
        return 2 * exact + prefixes


@dataclass
class Rule:
    """One end-to-end forwarding rule (match -> path)."""
    match: Match
    path: list[int]               # link ids
    priority: int = 0
    installed_at: Optional[float] = None
    hits: int = 0


def rule_sort_key(rule: Rule) -> tuple:
    """Canonical total order over rules (match fields, priority, path).

    Batched diff transactions sort their deletions with this key so a
    replayed batch emits byte-identical FLOW_MOD sequences regardless of
    the dict/set iteration order the caller accumulated the rules in.
    """
    m = rule.match
    return (
        m.src_ip or "",
        m.dst_ip or "",
        m.src_prefix or "",
        m.dst_prefix or "",
        -1 if m.src_port is None else m.src_port,
        -1 if m.dst_port is None else m.dst_port,
        rule.priority,
        tuple(rule.path),
    )


class FlowProgrammer:
    """Installs forwarding rules with realistic programming latency."""

    def __init__(
        self,
        sim: Simulator,
        per_rule_latency: float = 0.004,
        control_rtt: float = 0.002,
        max_install_retries: int = 6,
        retry_backoff: float = 0.05,
    ) -> None:
        self.sim = sim
        self.per_rule_latency = per_rule_latency
        self.control_rtt = control_rtt
        #: install attempts retried while the control channel is down;
        #: each retry doubles the previous delay (bounded exponential
        #: backoff, the standard OpenFlow barrier-timeout treatment).
        self.max_install_retries = max_install_retries
        self.retry_backoff = retry_backoff
        #: False while the controller is crashed: commits cannot reach
        #: the switches and go through the retry path instead.
        self.online = True
        self._rules: list[Rule] = []
        self.rules_installed = 0
        self.install_batches = 0
        self.install_retries = 0
        self.install_failures = 0
        #: batches scheduled but not yet committed or abandoned —
        #: table/intent comparisons are only meaningful when this is 0.
        self.pending_installs = 0
        #: rules whose install was abandoned after the retry budget;
        #: the controller's resync drains this on recovery.
        self.failed_rules: list[Rule] = []
        #: ids of rules in not-yet-committed batches, so a recovery
        #: resync never double-installs a rule that is still retrying.
        self._pending_rule_ids: set[int] = set()
        #: high-water mark of concurrent table occupancy — the
        #: forwarding-state metric §IV's aggregation discussion targets
        #: (switch TCAM is the scarce resource, not install throughput).
        self.peak_table_size = 0
        self._rule_hooks: list[Callable[[str, Rule], None]] = []
        registry = obs.get_registry()
        self._tracer = obs.get_tracer()
        self._m_rules = registry.counter("programmer.rules_installed")
        self._m_install_latency = registry.histogram("programmer.install_seconds")
        self._m_table = registry.gauge("programmer.table_size")
        self._m_retries = registry.counter("programmer.install_retries")
        self._m_failures = registry.counter("programmer.install_failures")

    # ------------------------------------------------------------------
    def add_rule_hook(self, fn: Callable[[str, Rule], None]) -> None:
        """Register ``fn(event, rule)`` for 'install'/'remove' events
        (the OpenFlow channel mirrors these as per-switch FLOW_MODs)."""
        self._rule_hooks.append(fn)

    def _emit(self, event: str, rule: Rule) -> None:
        for fn in self._rule_hooks:
            fn(event, rule)

    # ------------------------------------------------------------------
    def install(
        self,
        rules: list[Rule],
        on_installed: Optional[Callable[[list[Rule]], None]] = None,
        extra_mods: int = 0,
    ) -> float:
        """Install a batch; returns the nominal completion time.

        While the control channel is down (``online`` False) the commit
        retries with bounded exponential backoff; a batch that exhausts
        its retry budget lands in :attr:`failed_rules` for the
        controller's recovery resync instead of being silently lost.
        ``extra_mods`` counts additional flow-mods (deletions) the same
        transaction carries, so diff installs pay for their removals.
        """
        latency = self.control_rtt + self.per_rule_latency * (
            len(rules) + extra_mods
        )
        done_at = self.sim.now + latency
        self.install_batches += 1
        self.pending_installs += 1
        self._pending_rule_ids.update(id(r) for r in rules)
        self._m_install_latency.observe(latency)

        def _commit(attempt: int) -> None:
            if not self.online:
                if attempt < self.max_install_retries:
                    self.install_retries += 1
                    self._m_retries.inc()
                    self.sim.schedule(
                        self.retry_backoff * (2.0 ** attempt), _commit, attempt + 1
                    )
                    return
                self.pending_installs -= 1
                self._pending_rule_ids.difference_update(id(r) for r in rules)
                self.install_failures += len(rules)
                self._m_failures.inc(len(rules))
                self.failed_rules.extend(rules)
                if self._tracer is not None:
                    self._tracer.emit(
                        self.sim.now, "programmer", "install_failed",
                        rules=len(rules), attempts=attempt + 1,
                    )
                return
            self.pending_installs -= 1
            self._pending_rule_ids.difference_update(id(r) for r in rules)
            for rule in rules:
                rule.installed_at = self.sim.now
                self._rules.append(rule)
                self.rules_installed += 1
                self._m_rules.inc()
                self._emit("install", rule)
            self.peak_table_size = max(self.peak_table_size, len(self._rules))
            self._m_table.set(len(self._rules))
            if self._tracer is not None:
                self._tracer.emit(
                    self.sim.now,
                    "programmer",
                    "install",
                    rules=len(rules),
                    latency=latency,
                    table_size=len(self._rules),
                )
            if on_installed is not None:
                on_installed(rules)

        self.sim.schedule(latency, _commit, 0)
        return done_at

    def install_diff(
        self,
        add: list[Rule],
        remove: list[Rule],
        on_installed: Optional[Callable[[list[Rule]], None]] = None,
    ) -> float:
        """One batched flow-mod transaction: deletions plus installs.

        Re-placement passes (the LP re-optimizer) touch many aggregates
        at once; sending the whole diff as a single transaction charges
        one control RTT for the lot while still paying per-rule
        programming latency for every mod, deletions included.
        Deletions take effect immediately (the table stops matching the
        old rules as soon as the controller decides), exactly like the
        incremental path's ``remove`` + ``install`` sequence.  They are
        issued in canonical :func:`rule_sort_key` order — not whatever
        dict order the caller collected them in — so a batched diff
        replays byte-identically in golden traces.
        """
        for rule in sorted(remove, key=rule_sort_key):
            self.remove(rule)
        return self.install(add, on_installed, extra_mods=len(remove))

    def take_failed(self) -> list[Rule]:
        """Drain the abandoned-install backlog (recovery resync)."""
        failed, self.failed_rules = self.failed_rules, []
        return failed

    def remove(self, rule: Rule) -> None:
        """Delete a rule from the table (idempotent)."""
        if rule in self._rules:
            self._rules.remove(rule)
            self._m_table.set(len(self._rules))
            self._emit("remove", rule)

    def clear(self) -> None:
        """Delete every rule, emitting remove events."""
        for rule in list(self._rules):
            self.remove(rule)

    # ------------------------------------------------------------------
    def lookup(self, flow: Flow) -> Optional[Rule]:
        """Highest-priority (then most specific, then newest) matching rule."""
        best: Optional[Rule] = None
        for rule in self._rules:
            if not rule.match.covers(flow):
                continue
            if best is None or (rule.priority, rule.match.specificity()) >= (
                best.priority,
                best.match.specificity(),
            ):
                best = rule
        if best is not None:
            best.hits += 1
        return best

    @property
    def table_size(self) -> int:
        """Rules currently installed."""
        return len(self._rules)
