"""Equal-Cost Multi-Path flow allocation (the paper's baseline).

§IV: "our ECMP implementation uses the five-tuple ... to compute a flow
hash and assigns a path to a flow based on a modulus computation on the
flow hash value and the number of available paths in the routing
graph."  The hash must be stable across processes and runs (unlike
Python's builtin ``hash``), so we CRC-32 the packed tuple — the same
class of cheap hardware hash RFC 2992 assumes.
"""

from __future__ import annotations

import zlib

from repro.simnet.flows import FiveTuple, Flow
from repro.simnet.topology import Topology
from repro.simnet.paths import KPathCache


def ecmp_index(five_tuple: FiveTuple, n_paths: int) -> int:
    """Deterministic path index for a five-tuple."""
    if n_paths < 1:
        raise ValueError("no paths available")
    packed = "|".join(
        (
            five_tuple.src_ip,
            five_tuple.dst_ip,
            str(five_tuple.src_port),
            str(five_tuple.dst_port),
            str(five_tuple.proto),
        )
    ).encode()
    return zlib.crc32(packed) % n_paths


class EcmpSelector:
    """Load-unaware path selection over the k shortest paths.

    Paths come from a :class:`KPathCache` memo keyed on the topology
    version, so they self-invalidate on link churn and structured Clos
    fabrics are served by the O(#paths) up/down enumerator instead of
    repeated Yen searches — mirroring how a routing graph would be
    maintained in the controller.
    """

    name = "ecmp"

    def __init__(self, topology: Topology, k: int = 4) -> None:
        self.topology = topology
        self.k = k
        self._cache = KPathCache(topology, k)

    def paths(self, src: str, dst: str) -> list[list[str]]:
        """Cached k-shortest node paths for a host pair."""
        return self._cache.paths(src, dst)

    def up_paths(self, src: str, dst: str) -> list[list[str]]:
        """The cached paths currently realisable over up links only."""
        out = []
        for p in self.paths(src, dst):
            try:
                self.topology.path_links(p)
            except ValueError:
                continue
            out.append(p)
        return out

    def path_for(self, flow: Flow) -> list[int]:
        """Pick the ECMP path for a flow; returns link ids.

        Hashes over the *live* path set: when a path is down the
        hardware next-hop group shrinks and the modulus re-hashes over
        the survivors (RFC 2992 re-convergence), so link churn degrades
        spreading quality but never strands a placement that has any up
        path.
        """
        paths = self.up_paths(flow.src, flow.dst)
        if not paths:
            raise ValueError(f"no up path {flow.src}->{flow.dst}")
        chosen = paths[ecmp_index(flow.five_tuple, len(paths))]
        return self.topology.path_links(chosen)
