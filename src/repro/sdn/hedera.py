"""Hedera-style reactive elephant-flow scheduler (comparison baseline).

§II argues that "replacing ECMP with a load-aware flow scheduling
scheme (e.g. Hedera) would to some extent avoid adversarial flow
allocations, however still not manage to unleash the entire
optimization potential" — because it reacts *after* a flow is observed
as an elephant and knows nothing about application semantics.  We
implement that class of scheduler faithfully enough to reproduce the
comparison: periodic polling of active elastic flows, elephant
detection by measured demand against a NIC-fraction threshold, and
global first-fit rerouting onto the least-loaded path.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.sdn.controller import Controller
from repro.simnet.flows import Flow


class HederaScheduler:
    """Reactive elephant rescheduler: detect, estimate demand, re-place."""

    name = "hedera"

    def __init__(
        self,
        poll_period: float = 5.0,
        elephant_fraction: float = 0.05,
        min_outstanding_bytes: float = 8e6,
    ) -> None:
        #: Hedera's published control loop runs at ~5 s.
        self.poll_period = poll_period
        #: A flow is an elephant when its *natural demand* (the NSDI'10
        #: host-limited max-min estimate, see :mod:`repro.sdn.demand`)
        #: reaches this fraction of its source NIC.  Hedera's published
        #: threshold is 10%; Hadoop shuffle fetches are mid-sized (one
        #: map partition each), so the default here is tuned lower — a
        #: lenient setting would reduce this baseline to ECMP and make
        #: the comparison a strawman.
        self.elephant_fraction = elephant_fraction
        #: flows with less left than this cannot amortise a reroute.
        self.min_outstanding_bytes = min_outstanding_bytes
        #: transport disruption charged per mid-flight reroute (packet
        #: reordering / congestion-window recovery).
        self.reroute_pause = 0.1
        self.controller: Optional[Controller] = None
        self._running = False
        self.reroutes = 0

    # ------------------------------------------------------------------
    def start(self, controller: Controller) -> None:
        """Begin the periodic control loop."""
        self.controller = controller
        self._running = True
        controller.sim.schedule(self.poll_period, self._tick)

    def stop(self) -> None:
        """Halt the control loop."""
        self._running = False

    # ------------------------------------------------------------------
    def _host_nic_rate(self, host: str) -> float:
        topo = self.controller.network.topology  # type: ignore[union-attr]
        rates = [l.capacity for l in topo.up_links_from(host)]
        return max(rates) if rates else 0.0

    def _tick(self) -> None:
        if not self._running:
            return
        ctrl = self.controller
        assert ctrl is not None
        self._reschedule_elephants()
        ctrl.sim.schedule(self.poll_period, self._tick)

    def _reschedule_elephants(self) -> None:
        ctrl = self.controller
        assert ctrl is not None
        net = ctrl.network
        # The loop below reads flow.rate directly; make sure any
        # same-instant flow event has been folded into the allocation.
        net.settle()
        # Hedera classifies by *estimated natural demand* (NSDI'10
        # host-limited max-min), not the currently observed — possibly
        # throttled — rate: a large transfer crawling through a
        # congested path is exactly the flow that must be rescheduled.
        from repro.sdn.demand import estimate_demands

        candidates = [f for f in net.elastic if f.remaining >= self.min_outstanding_bytes]
        if not candidates:
            return
        demands = estimate_demands(
            [(f.src, f.dst) for f in candidates],
            nic_rate={
                h: self._host_nic_rate(h)
                for f in candidates
                for h in (f.src, f.dst)
            },
        )
        elephants: list[Flow] = []
        for flow, demand in zip(candidates, demands):
            if demand >= self.elephant_fraction * self._host_nic_rate(flow.src):
                elephants.append(flow)
        if not elephants:
            return
        # Largest remaining demand first (global first-fit).
        elephants.sort(key=lambda f: -f.remaining)
        # Use the controller's measured (EWMA) link statistics — the
        # same information basis Pythia's allocator gets, rather than
        # oracular instantaneous rates.
        load = ctrl.stats_service.load_array()
        capacity = net.link_capacity()
        for flow in elephants:
            best = self._best_path(flow, load, capacity)
            if best is None or best == flow.path:
                continue
            # account the move in the working load estimate
            for lid in flow.path or []:
                load[lid] -= flow.rate
            for lid in best:
                load[lid] += flow.rate
            net.reroute(flow, best, pause=self.reroute_pause)
            self.reroutes += 1

    def _best_path(
        self, flow: Flow, load: np.ndarray, capacity: np.ndarray
    ) -> Optional[list[int]]:
        ctrl = self.controller
        assert ctrl is not None
        paths = ctrl.topology_service.k_paths_links(flow.src, flow.dst)
        if not paths:
            return None
        own_rate = flow.rate

        def headroom(path: list[int]) -> float:
            vals = []
            for lid in path:
                l = load[lid]
                if flow.path and lid in flow.path:
                    l -= own_rate  # don't count the flow against itself
                vals.append(capacity[lid] - l)
            return min(vals)

        return max(paths, key=headroom)
