"""OpenFlow 1.0-style control messages and per-switch agents.

The paper programs IBM G8264 ToR switches through "the standard
protocol realization of the SDN concept, namely OpenFlow" (§III).  The
reproduction's control decisions live in :class:`FlowProgrammer`; this
module provides the wire-protocol layer underneath it: FLOW_MOD /
FLOW_REMOVED / BARRIER message types with transaction ids, and a
:class:`SwitchAgent` per switch that applies the mods to its local
table.  A :class:`OpenFlowChannel` attached to a programmer translates
every end-to-end rule install/remove into per-switch FLOW_MODs, so
tests (and curious users) can verify that the distributed switch state
is exactly the controller's intent — the same consistency property a
real deployment relies on.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.sdn.programming import FlowProgrammer, Match, Rule
from repro.simnet.topology import NodeKind, Topology

_xids = itertools.count(1)


class FlowModCommand(enum.Enum):
    """FLOW_MOD verb: add or delete."""
    ADD = "add"
    DELETE = "delete"


@dataclass(frozen=True)
class FlowMod:
    """OFPT_FLOW_MOD: install or delete one entry on one switch."""

    xid: int
    switch: str
    command: FlowModCommand
    match: Match
    priority: int
    out_next_hop: Optional[str]        # actions=[output:port] analogue

    def to_dict(self) -> dict:
        """Serialisable form (what would go on the wire)."""
        return {
            "type": "flow_mod",
            "xid": self.xid,
            "switch": self.switch,
            "command": self.command.value,
            "priority": self.priority,
            "match": {
                k: v
                for k, v in vars(self.match).items()
                if v is not None
            },
            "out": self.out_next_hop,
        }


@dataclass(frozen=True)
class BarrierRequest:
    """OFPT_BARRIER_REQUEST: all prior mods must be applied first."""

    xid: int
    switch: str


@dataclass(frozen=True)
class BarrierReply:
    """OFPT_BARRIER_REPLY acknowledgement."""
    xid: int
    switch: str


@dataclass
class SwitchAgent:
    """The switch-resident half: applies FLOW_MODs to a local table."""

    name: str
    entries: list[FlowMod] = field(default_factory=list)
    mods_applied: int = 0

    def apply(self, mod: FlowMod) -> None:
        """Apply one FLOW_MOD to this switch's table."""
        if mod.switch != self.name:
            raise ValueError(f"mod for {mod.switch!r} sent to {self.name!r}")
        self.mods_applied += 1
        if mod.command is FlowModCommand.ADD:
            self.entries.append(mod)
        else:
            self.entries = [
                e
                for e in self.entries
                if not (e.match == mod.match and e.priority == mod.priority)
            ]

    def barrier(self, req: BarrierRequest) -> BarrierReply:
        """Acknowledge ordering of all prior mods."""
        # the in-order apply() above already guarantees ordering; the
        # reply just acknowledges it, as on a real switch
        return BarrierReply(xid=req.xid, switch=self.name)

    @property
    def table_size(self) -> int:
        """Entries currently on this switch."""
        return len(self.entries)


class OpenFlowChannel:
    """Mirrors a programmer's rule operations as per-switch FLOW_MODs.

    Attach once per experiment; afterwards every installed rule exists
    as concrete switch-local entries, and :meth:`verify_rule` checks
    the distributed state equals the controller's intent.
    """

    def __init__(self, topology: Topology, programmer: FlowProgrammer) -> None:
        self.topology = topology
        self.programmer = programmer
        self.agents: dict[str, SwitchAgent] = {
            s.name: SwitchAgent(s.name) for s in topology.switches()
        }
        self.messages: list[FlowMod] = []
        self.barriers: int = 0
        programmer.add_rule_hook(self._on_rule_event)

    # ------------------------------------------------------------------
    def _mods_for(self, rule: Rule, command: FlowModCommand) -> list[FlowMod]:
        mods: list[FlowMod] = []
        for lid in rule.path:
            link = self.topology.links[lid]
            if self.topology.nodes[link.src].kind is not NodeKind.SWITCH:
                continue
            mods.append(
                FlowMod(
                    xid=next(_xids),
                    switch=link.src,
                    command=command,
                    match=rule.match,
                    priority=rule.priority,
                    out_next_hop=link.dst,
                )
            )
        return mods

    def _on_rule_event(self, event: str, rule: Rule) -> None:
        command = FlowModCommand.ADD if event == "install" else FlowModCommand.DELETE
        touched: set[str] = set()
        for mod in self._mods_for(rule, command):
            self.messages.append(mod)
            self.agents[mod.switch].apply(mod)
            touched.add(mod.switch)
        for switch in sorted(touched):
            req = BarrierRequest(xid=next(_xids), switch=switch)
            reply = self.agents[switch].barrier(req)
            assert reply.xid == req.xid
            self.barriers += 1

    # ------------------------------------------------------------------
    def verify_rule(self, rule: Rule) -> bool:
        """True iff every switch on the rule's path holds its entry."""
        for mod in self._mods_for(rule, FlowModCommand.ADD):
            agent = self.agents[mod.switch]
            if not any(
                e.match == rule.match
                and e.priority == rule.priority
                and e.out_next_hop == mod.out_next_hop
                for e in agent.entries
            ):
                return False
        return True

    def total_entries(self) -> int:
        """Entries across all switch agents."""
        return sum(a.table_size for a in self.agents.values())
