"""Controller kernel: hosts services and applications.

A thin composition root mirroring the OpenDaylight deployment in the
paper: one controller instance per experiment, connected out-of-band
(the management network — modelled as a constant message latency that
never touches the data network's links).
"""

from __future__ import annotations

from typing import Optional, Protocol

from repro.simnet.engine import Simulator
from repro.simnet.network import Network
from repro.sdn.programming import FlowProgrammer
from repro.sdn.stats_service import LinkStatsService
from repro.sdn.topology_service import TopologyService


class ControllerApp(Protocol):
    """An SDN application pluggable into the controller."""

    name: str

    def start(self, controller: "Controller") -> None: ...

    def stop(self) -> None: ...


class Controller:
    """App-hosting controller with topology, stats, programming services."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        *,
        k_paths: int = 4,
        stats_period: float = 1.0,
        stats_alpha: float = 0.5,
        per_rule_latency: float = 0.004,
        control_rtt: float = 0.002,
        mgmt_latency: float = 0.002,
    ) -> None:
        self.sim = sim
        self.network = network
        #: one-way latency of the out-of-band management network that
        #: carries prediction notifications and controller traffic.
        self.mgmt_latency = mgmt_latency
        self.topology_service = TopologyService(network.topology, k=k_paths)
        self.stats_service = LinkStatsService(
            sim, network, period=stats_period, alpha=stats_alpha
        )
        self.programmer = FlowProgrammer(
            sim, per_rule_latency=per_rule_latency, control_rtt=control_rtt
        )
        self.apps: list[ControllerApp] = []
        self._started = False

    def register(self, app: ControllerApp) -> None:
        """Attach an application (started immediately if running)."""
        self.apps.append(app)
        if self._started:
            app.start(self)

    def start(self) -> None:
        """Boot services and every registered application."""
        if self._started:
            return
        self._started = True
        self.stats_service.start()
        for app in self.apps:
            app.start(self)

    def stop(self) -> None:
        """Stop periodic services so the event queue can drain."""
        if not self._started:
            return
        self._started = False
        self.stats_service.stop()
        for app in self.apps:
            app.stop()

    def app(self, name: str) -> Optional[ControllerApp]:
        """Find a registered application by name."""
        for a in self.apps:
            if a.name == name:
                return a
        return None
