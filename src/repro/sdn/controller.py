"""Controller kernel: hosts services and applications.

A thin composition root mirroring the OpenDaylight deployment in the
paper: one controller instance per experiment, connected out-of-band
(the management network — modelled as a constant message latency that
never touches the data network's links).
"""

from __future__ import annotations

from typing import Optional, Protocol

from repro import obs
from repro.faults import runtime as faults_runtime
from repro.simnet.engine import Simulator
from repro.simnet.network import Network
from repro.sdn.programming import FlowProgrammer
from repro.sdn.stats_service import LinkStatsService
from repro.sdn.topology_service import TopologyService


class ControllerApp(Protocol):
    """An SDN application pluggable into the controller."""

    name: str

    def start(self, controller: "Controller") -> None: ...

    def stop(self) -> None: ...


class Controller:
    """App-hosting controller with topology, stats, programming services."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        *,
        k_paths: int = 4,
        stats_period: float = 1.0,
        stats_alpha: float = 0.5,
        per_rule_latency: float = 0.004,
        control_rtt: float = 0.002,
        mgmt_latency: float = 0.002,
    ) -> None:
        self.sim = sim
        self.network = network
        #: one-way latency of the out-of-band management network that
        #: carries prediction notifications and controller traffic.
        self.mgmt_latency = mgmt_latency
        self.topology_service = TopologyService(network.topology, k=k_paths)
        self.stats_service = LinkStatsService(
            sim, network, period=stats_period, alpha=stats_alpha
        )
        self.programmer = FlowProgrammer(
            sim, per_rule_latency=per_rule_latency, control_rtt=control_rtt
        )
        self.apps: list[ControllerApp] = []
        self._started = False
        self._stats_enabled = True
        #: False while crashed: services halt, rule installs retry/fail,
        #: and policies degrade to default (ECMP) behaviour.
        self.online = True
        self.crashes = 0
        self.resyncs = 0
        self.rules_resynced = 0
        registry = obs.get_registry()
        self._tracer = obs.get_tracer()
        self._m_crashes = registry.counter("controller.crashes")
        self._m_resynced = registry.counter("controller.rules_resynced")
        checker = faults_runtime.get_checker()
        if checker is not None:
            checker.watch_controller(self)

    def rule_install_budget(self, nrules: int = 1) -> float:
        """Seconds the control plane needs to program an n-rule batch.

        The window a preemptive re-placement pass (the LP re-optimizer)
        has to produce its answer: any solver that outruns the install
        latency of the rules it would change adds no critical-path
        delay.  CI gates the measured `lp.solve_ms` against this.
        """
        return (
            self.programmer.control_rtt
            + self.programmer.per_rule_latency * max(1, nrules)
        )

    def register(self, app: ControllerApp) -> None:
        """Attach an application (started immediately if running)."""
        self.apps.append(app)
        if self._started:
            app.start(self)

    def start(self, start_stats: bool = True) -> None:
        """Boot services and every registered application.

        ``start_stats=False`` skips the periodic link-stats poller —
        the service harness (``repro serve``) runs with no data-plane
        flows, where an eternally self-rescheduling poll would keep
        the event queue from ever draining.
        """
        if self._started:
            return
        self._started = True
        self._stats_enabled = start_stats
        if start_stats:
            self.stats_service.start()
        for app in self.apps:
            app.start(self)

    def stop(self) -> None:
        """Stop periodic services so the event queue can drain."""
        if not self._started:
            return
        self._started = False
        self.stats_service.stop()
        for app in self.apps:
            app.stop()

    # ------------------------------------------------------------------
    # failure / recovery (driven by the chaos engine)
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Controller outage: halt services, take the control channel down.

        The *data plane keeps forwarding*: rules already in the switch
        tables continue to match (that is the whole point of proactive
        programming), but stats polling stops and new installs fail into
        the programmer's retry/backlog path until :meth:`restore`.
        """
        if not self.online:
            return
        self.online = False
        self.crashes += 1
        self._m_crashes.inc()
        self.stats_service.stop()
        self.programmer.online = False
        if self._tracer is not None:
            self._tracer.emit(self.sim.now, "controller", "crash")

    def restore(self) -> None:
        """Controller restart: resume services and resync switch state.

        Recovery replays the install backlog and asks every application
        that supports it to reconcile the switch tables against its
        current intent (rules whose install was lost mid-outage get
        reinstalled; superseded ones are dropped).
        """
        if self.online:
            return
        self.online = True
        self.programmer.online = True
        if self._started and self._stats_enabled:
            self.stats_service.start()
        self.resyncs += 1
        # Drop the raw backlog: apps reinstall from *current* intent,
        # which supersedes whatever was queued when the outage began.
        abandoned = self.programmer.take_failed()
        resynced = 0
        for app in self.apps:
            resync = getattr(app, "resync", None)
            if resync is not None:
                resynced += resync()
        self.rules_resynced += resynced
        self._m_resynced.inc(resynced)
        if self._tracer is not None:
            self._tracer.emit(
                self.sim.now, "controller", "restore",
                abandoned=len(abandoned), resynced=resynced,
            )

    def app(self, name: str) -> Optional[ControllerApp]:
        """Find a registered application by name."""
        for a in self.apps:
            if a.name == name:
                return a
        return None
