"""Controller topology service.

Mirrors OpenDaylight's topology update service as the paper uses it
(§IV): the routing graph (k-shortest paths between server pairs) is
computed at startup and recomputed *only* when a physical topology
change occurs — keeping routing computation off the data path and
providing fault tolerance on link/switch failure.

Path results are memoised per topology *version* (see
:class:`repro.simnet.paths.KPathCache`): link up/down events bump the
version, so the memo self-invalidates on the next lookup without the
service having to clear anything inside the event callback.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro import obs
from repro.simnet.links import Link
from repro.simnet.paths import KPathCache
from repro.simnet.topology import Topology


class TopologyService:
    """Caches k-shortest paths; invalidates and notifies on link events."""

    def __init__(self, topology: Topology, k: int = 4) -> None:
        self.topology = topology
        self.k = k
        self._cache = KPathCache(topology, k)
        self._listeners: list[Callable[[Link], None]] = []
        self.recomputations = 0
        registry = obs.get_registry()
        self._m_hits = registry.counter("routing.kpath_cache_hits")
        self._m_misses = registry.counter("routing.kpath_cache_misses")
        self._m_size = registry.gauge("routing.kpath_cache_size")
        self._m_structured = registry.counter("routing.kpath_structured_solves")
        self._m_yen = registry.counter("routing.kpath_yen_solves")
        topology.observe(self._on_link_event)

    def on_change(self, fn: Callable[[Link], None]) -> None:
        """Register a topology-change listener (Pythia's routing module)."""
        self._listeners.append(fn)

    def _on_link_event(self, link: Link) -> None:
        self.recomputations += 1
        for fn in list(self._listeners):
            fn(link)

    @property
    def cache_hits(self) -> int:
        """k-path memo hits since construction."""
        return self._cache.hits

    @property
    def cache_misses(self) -> int:
        """k-path memo misses (cold path constructions) since construction."""
        return self._cache.misses

    @property
    def structured_solves(self) -> int:
        """Cold constructions served by the Clos up/down enumerator."""
        return self._cache.structured_solves

    @property
    def yen_solves(self) -> int:
        """Cold constructions that fell back to generic Yen search."""
        return self._cache.yen_solves

    def _count(self, misses: int, structured: int, yen: int) -> None:
        """Fold one cache lookup into the observability instruments."""
        if self._cache.misses != misses:
            self._m_misses.inc()
            self._m_size.set(float(self._cache.size()))
            if self._cache.structured_solves != structured:
                self._m_structured.inc()
            elif self._cache.yen_solves != yen:
                self._m_yen.inc()
        else:
            self._m_hits.inc()

    def _before(self) -> tuple[int, int, int]:
        return (
            self._cache.misses,
            self._cache.structured_solves,
            self._cache.yen_solves,
        )

    def k_paths(self, src: str, dst: str) -> list[list[str]]:
        """k shortest node paths, hop-count metric, memoised per version."""
        before = self._before()
        result = self._cache.paths(src, dst)
        self._count(*before)
        return result

    def k_paths_links(self, src: str, dst: str) -> list[list[int]]:
        """Same paths resolved to link ids (skipping unreachable ones)."""
        before = self._before()
        result = self._cache.paths_links(src, dst)
        self._count(*before)
        return result

    def k_paths_incidence(self, src: str, dst: str) -> tuple[list[list[int]], np.ndarray]:
        """Link-id paths plus the padded path→link incidence matrix.

        The matrix rows are the candidate paths, padded with the
        virtual link id ``len(topology.links)`` — the allocator's
        vectorized scoring gathers per-link arrays (extended by one
        sentinel slot) through it and reduces along axis 1.
        """
        before = self._before()
        result = self._cache.paths_links_incidence(src, dst)
        self._count(*before)
        return result
