"""Controller topology service.

Mirrors OpenDaylight's topology update service as the paper uses it
(§IV): the routing graph (k-shortest paths between server pairs) is
computed at startup and recomputed *only* when a physical topology
change occurs — keeping routing computation off the data path and
providing fault tolerance on link/switch failure.
"""

from __future__ import annotations

from typing import Callable

from repro.simnet.links import Link
from repro.simnet.paths import k_shortest_paths
from repro.simnet.topology import Topology


class TopologyService:
    """Caches k-shortest paths; invalidates and notifies on link events."""

    def __init__(self, topology: Topology, k: int = 4) -> None:
        self.topology = topology
        self.k = k
        self._cache: dict[tuple[str, str], list[list[str]]] = {}
        self._listeners: list[Callable[[Link], None]] = []
        self.recomputations = 0
        topology.observe(self._on_link_event)

    def on_change(self, fn: Callable[[Link], None]) -> None:
        """Register a topology-change listener (Pythia's routing module)."""
        self._listeners.append(fn)

    def _on_link_event(self, link: Link) -> None:
        self._cache.clear()
        self.recomputations += 1
        for fn in list(self._listeners):
            fn(link)

    def k_paths(self, src: str, dst: str) -> list[list[str]]:
        """k shortest node paths, hop-count metric, cached."""
        key = (src, dst)
        if key not in self._cache:
            self._cache[key] = k_shortest_paths(self.topology, src, dst, self.k)
        return self._cache[key]

    def k_paths_links(self, src: str, dst: str) -> list[list[int]]:
        """Same paths resolved to link ids (skipping unreachable ones)."""
        out: list[list[int]] = []
        for p in self.k_paths(src, dst):
            try:
                out.append(self.topology.path_links(p))
            except ValueError:
                continue  # parallel link went down since path computation
        return out
