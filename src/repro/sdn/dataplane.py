"""Table-driven data plane: forwarding decided by switch state.

Everywhere else in the reproduction, policies compute a flow's path
centrally and hand it to the fluid model.  This module closes the loop
the way real OpenFlow hardware does: a flow's path is the hop-by-hop
walk of the *per-switch tables* (expanded from installed rules), and a
table miss punts to the controller, which reactively installs an exact
five-tuple ECMP rule — "the rest of the datacenter traffic is handled
through default datacenter network control processes" (§IV), made
concrete.

Used by tests to prove the distributed state reproduces controller
intent under load, and available as a drop-in
:class:`~repro.sdn.policy.PathPolicy` for experiments that want
data-plane semantics end to end.
"""

from __future__ import annotations

from typing import Optional

from repro.sdn.ecmp import EcmpSelector, ecmp_index
from repro.sdn.programming import FlowProgrammer, Match, Rule
from repro.sdn.switch_tables import SwitchTableView
from repro.simnet.flows import Flow
from repro.simnet.topology import Topology


class TableDrivenPolicy:
    """Forward by switch-table walk; reactive install on miss.

    * **hit**: the walk reaches the destination — the flow follows the
      distributed state (installed Pythia aggregates or previously
      punted reactive entries).
    * **miss**: the first packet would punt to the controller
      (PACKET_IN); the controller picks the ECMP path, installs an
      exact five-tuple rule so later packets and same-tuple flows hit,
      and the flow follows that path.
    """

    name = "table_driven"

    def __init__(
        self,
        topology: Topology,
        programmer: FlowProgrammer,
        k: int = 4,
        reactive_priority: int = 1,
    ) -> None:
        self._topology = topology
        self._programmer = programmer
        self._view = SwitchTableView(topology, programmer)
        self._selector = EcmpSelector(topology, k=k)
        self.reactive_priority = reactive_priority
        self.table_hits = 0
        self.packet_ins = 0

    # ------------------------------------------------------------------
    def place(self, flow: Flow) -> list[int]:
        """Path for a new flow: table walk, or punt on miss."""
        node_path = self._view.walk(flow)
        if node_path is not None:
            try:
                lids = self._topology.path_links(node_path)
            except ValueError:
                lids = None
            if lids is not None:
                self.table_hits += 1
                return lids
        return self._punt(flow)

    def repair(self, flow: Flow) -> Optional[list[int]]:
        """Replacement path after a failure, or None."""
        node_path = self._view.walk(flow)
        if node_path is not None:
            try:
                return self._topology.path_links(node_path)
            except ValueError:
                pass
        paths = [
            p for p in self._selector.paths(flow.src, flow.dst) if self._up(p)
        ]
        if not paths:
            return None
        return self._topology.path_links(paths[ecmp_index(flow.five_tuple, len(paths))])

    # ------------------------------------------------------------------
    def _up(self, node_path: list[str]) -> bool:
        try:
            self._topology.path_links(node_path)
            return True
        except ValueError:
            return False

    def _punt(self, flow: Flow) -> list[int]:
        """PACKET_IN handling: reactive exact-match ECMP install."""
        self.packet_ins += 1
        path = self._selector.path_for(flow)
        ft = flow.five_tuple
        self._programmer.install(
            [
                Rule(
                    match=Match(
                        src_ip=ft.src_ip,
                        dst_ip=ft.dst_ip,
                        src_port=ft.src_port,
                        dst_port=ft.dst_port,
                    ),
                    path=path,
                    priority=self.reactive_priority,
                )
            ]
        )
        return path
