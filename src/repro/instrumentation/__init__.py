"""Pythia's sensor half: transparent tasktracker instrumentation.

One middleware process per Hadoop slave (§III): it watches the local
tasktracker for map-task spawn and spill-file creation, decodes the
intermediate output index into per-reducer shuffle sizes, estimates the
wire volume, and ships prediction messages to the central collector
over the out-of-band management network.  It also reports reducer
launch locations so the collector can late-bind flow destinations.
"""

from repro.instrumentation.decoder import SpillDecoder
from repro.instrumentation.messages import PredictionMessage, ReducerLocationMessage
from repro.instrumentation.middleware import InstrumentationConfig, InstrumentationMiddleware
from repro.instrumentation.overhead import InstrumentationCostModel

__all__ = [
    "SpillDecoder",
    "PredictionMessage",
    "ReducerLocationMessage",
    "InstrumentationConfig",
    "InstrumentationMiddleware",
    "InstrumentationCostModel",
]
