"""Messages exchanged between instrumentation middleware and collector."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PredictionMessage:
    """Per-map shuffle intent: predicted wire bytes per reducer.

    Serialised by the middleware at map-finish time; ``reducer_bytes[r]``
    is the predicted on-the-wire volume of the future flow carrying
    partition ``r`` out of ``src_server``.
    """

    job: str
    map_id: int
    src_server: str
    reducer_bytes: np.ndarray
    created_at: float


@dataclass(frozen=True)
class ReducerLocationMessage:
    """Late-binding info: reducer task -> network location.

    "Since Hadoop normally starts to schedule reducers only after a few
    mappers have been completed ... some flow intention detections will
    have unknown destinations" (§III); these messages fill the gaps.
    """

    job: str
    reducer_id: int
    server: str
    created_at: float
