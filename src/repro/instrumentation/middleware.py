"""The per-server instrumentation process.

Wires tasktracker events to the central collector (§III block diagram):

* ``map_start`` — the middleware "tracks its local tasktracker for
  newly spawned map tasks" and subscribes to the spill directory for
  file-creation notifications.
* ``spill`` — after the notification latency plus index-decode time, a
  :class:`PredictionMessage` with per-reducer predicted wire volume is
  sent to the collector over the management network.
* ``reduce_launch`` — a :class:`ReducerLocationMessage` resolves a
  reducer ID to its server so the collector can complete pending
  shuffle-intent entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from repro.hadoop.jobtracker import JobTracker
from repro.hadoop.spill import SpillFile
from repro.instrumentation.decoder import SpillDecoder
from repro.instrumentation.messages import PredictionMessage, ReducerLocationMessage
from repro.simnet.engine import Simulator


class CollectorEndpoint(Protocol):
    """What the middleware needs from the Pythia collector."""

    def receive_prediction(self, msg: PredictionMessage) -> None: ...

    def receive_reducer_location(self, msg: ReducerLocationMessage) -> None: ...


@dataclass
class InstrumentationConfig:
    """Latency knobs of the sensing path."""

    #: spill-directory file-creation notification latency (inotify-class).
    detection_delay: float = 0.05
    #: one-way management-network latency middleware -> collector.
    mgmt_latency: float = 0.002
    decoder: SpillDecoder = field(default_factory=lambda: SpillDecoder(0.08))


class InstrumentationMiddleware:
    """All per-server monitors of one deployment, plus their statistics."""

    def __init__(
        self,
        sim: Simulator,
        jobtracker: JobTracker,
        collector: CollectorEndpoint,
        config: InstrumentationConfig,
        rng: np.random.Generator,
    ) -> None:
        self.sim = sim
        self.collector = collector
        self.config = config
        self.rng = rng
        self.maps_tracked = 0
        self.predictions_sent = 0
        self.locations_sent = 0
        jobtracker.subscribe_all(self._on_tracker_event)

    # ------------------------------------------------------------------
    def _on_tracker_event(self, event: str, **payload) -> None:
        if event == "map_start":
            # Subscribe to the task's spill path for async notifications.
            self.maps_tracked += 1
        elif event == "spill":
            self._on_spill(payload["job"].job_id, payload["spill"])
        elif event == "reduce_launch":
            self._on_reduce_launch(
                payload["job"].job_id, payload["reducer_id"], payload["node"]
            )

    def _on_spill(self, job: str, spill: SpillFile) -> None:
        decoder = self.config.decoder
        delay = self.config.detection_delay + decoder.decode_time(spill)

        def _send() -> None:
            msg = PredictionMessage(
                job=job,
                map_id=spill.map_id,
                src_server=spill.node,
                reducer_bytes=decoder.decode(spill, self.rng),
                created_at=self.sim.now,
            )
            self.predictions_sent += 1
            self.sim.schedule(
                self.config.mgmt_latency, self.collector.receive_prediction, msg
            )

        self.sim.schedule(delay, _send)

    def _on_reduce_launch(self, job: str, reducer_id: int, node: str) -> None:
        msg = ReducerLocationMessage(
            job=job, reducer_id=reducer_id, server=node, created_at=self.sim.now
        )
        self.locations_sent += 1
        self.sim.schedule(
            self.config.mgmt_latency, self.collector.receive_reducer_location, msg
        )
