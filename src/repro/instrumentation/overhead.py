"""Instrumentation resource-cost model (§V-C).

"Per Hadoop server average CPU and I/O overhead ranged from 2 to 5 %
while memory occupancy overhead was insignificant ... overhead
comprises a constant dc factor stemming from continuous monitoring of
MapReduce task progress and a spike factor stemming from index file
analysis at the event of a map task finish."

The dc factor is applied as a multiplicative inflation of task compute
time on instrumented nodes; the spike factor is the decode time charged
per spill (see :class:`repro.instrumentation.decoder.SpillDecoder`).
The overhead benchmark (§V-C reproduction) runs jobs with the model on
and off to measure the net cost against the scheduling benefit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class InstrumentationCostModel:
    """Per-server CPU cost of running the Pythia middleware."""

    #: continuous-monitoring CPU fraction bounds (the paper's 2-5 % band).
    dc_low: float = 0.02
    dc_high: float = 0.05

    def __post_init__(self) -> None:
        if not 0 <= self.dc_low <= self.dc_high < 1:
            raise ValueError("need 0 <= dc_low <= dc_high < 1")

    def sample_dc_fraction(self, rng: np.random.Generator) -> float:
        """Draw one server's steady-state monitoring cost."""
        return float(rng.uniform(self.dc_low, self.dc_high))

    def mean_dc_fraction(self) -> float:
        """Midpoint of the steady-state CPU cost band."""
        return 0.5 * (self.dc_low + self.dc_high)
