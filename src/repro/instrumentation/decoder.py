"""Spill index decoding and wire-volume estimation.

"Whenever the notification of such an incident is received ... it
decodes the file(s) containing the intermediate map output and
calculates the size of key/value pairs that correspond and will be
shuffled to each one of the job's reducers" (§III).  The decoder then
converts application bytes to predicted *wire* bytes by adding protocol
header overhead "computed based on known protocol header sizes" — the
paper attributes its consistent 3-7 % over-estimate (Fig. 5) to exactly
this conversion, so the estimate here is deliberately a little generous
relative to the transport's true framing cost.
"""

from __future__ import annotations

import numpy as np

from repro.hadoop.spill import SpillFile


class SpillDecoder:
    """Turns a spill's partition index into a per-reducer wire forecast."""

    def __init__(
        self,
        predicted_overhead: float,
        overhead_jitter: float = 0.015,
        decode_base: float = 0.02,
        decode_per_reducer: float = 0.0005,
    ) -> None:
        if predicted_overhead < 0:
            raise ValueError("predicted_overhead must be >= 0")
        self.predicted_overhead = predicted_overhead
        #: per-map variation of the applied header estimate (different
        #: record-size mixes imply different header/payload ratios).
        self.overhead_jitter = overhead_jitter
        self.decode_base = decode_base
        self.decode_per_reducer = decode_per_reducer

    def decode(self, spill: SpillFile, rng: np.random.Generator) -> np.ndarray:
        """Predicted wire bytes per reducer for one spill."""
        jitter = float(rng.uniform(-self.overhead_jitter, self.overhead_jitter))
        factor = 1.0 + max(0.0, self.predicted_overhead + jitter)
        return spill.partition_bytes * factor

    def decode_time(self, spill: SpillFile) -> float:
        """CPU time of the index analysis (the §V-C 'spike factor')."""
        return self.decode_base + self.decode_per_reducer * len(spill.partition_bytes)
