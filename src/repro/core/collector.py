"""Prediction collector: ingestion, late binding, readiness batching.

The collector is the server-side endpoint of the instrumentation
middleware (§III): it receives per-map shuffle-intent predictions, maps
reducer IDs to network locations as those become known ("a collector's
thread monitors for reducer initialization events and fills these
incomplete shuffle intention entries with reducer destination
information as soon as the latter becomes available"), feeds complete
entries to the flow aggregator, and wakes the scheduler once per
message batch.

It also keeps the prediction log that Figure 5's promptness/accuracy
analysis post-processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro import obs
from repro.core.aggregation import AggregateEntry, FlowAggregator
from repro.instrumentation.messages import PredictionMessage, ReducerLocationMessage
from repro.simnet.engine import Simulator


@dataclass(frozen=True)
class PredictionLogEntry:
    """One completed (map, reducer) shuffle intent, for evaluation."""

    job: str
    map_id: int
    reducer_id: int
    src_server: str
    dst_server: str
    predicted_wire_bytes: float
    #: when the prediction message reached the collector.
    predicted_at: float
    #: when both size and destination were known (>= predicted_at).
    completed_at: float


@dataclass
class _PendingIntent:
    job: str
    map_id: int
    reducer_id: int
    src_server: str
    nbytes: float
    predicted_at: float


class PredictionCollector:
    """Central ingestion point for shuffle-intent predictions."""

    def __init__(self, sim: Simulator, aggregator: FlowAggregator) -> None:
        self.sim = sim
        self.aggregator = aggregator
        self.on_ready: Optional[Callable[[list[AggregateEntry]], None]] = None
        self.log: list[PredictionLogEntry] = []
        #: accumulated predicted volume per (job, reducer) — feeds the
        #: weighted-shuffle extension and skew diagnostics.
        self.reducer_volume: dict[tuple[str, int], float] = {}
        self._locations: dict[tuple[str, int], str] = {}
        self._pending: dict[tuple[str, int], list[_PendingIntent]] = {}
        self._wake_scheduled = False
        self.predictions_received = 0
        self.locations_received = 0
        #: chaos-engine injection point: maps an incoming prediction to
        #: a (possibly perturbed) replacement, or None to drop it —
        #: modelling middleware message loss and size mis-estimation.
        self.fault_filter: Optional[
            Callable[[PredictionMessage], Optional[PredictionMessage]]
        ] = None
        self.predictions_dropped = 0
        #: when set (to a list), every incoming message is recorded as
        #: ``(sim.now, kind, msg)`` *before* fault filtering — the
        #: replay tape :mod:`repro.pipeline.replay` serialises.
        self.tape: Optional[list[tuple[float, str, object]]] = None
        registry = obs.get_registry()
        self._tracer = obs.get_tracer()
        self._m_dropped = registry.counter("collector.predictions_dropped")
        self._m_predictions = registry.counter("collector.predictions_received")
        self._m_locations = registry.counter("collector.locations_received")
        self._m_pending = registry.gauge("collector.pending_intents")
        self._m_late_binding = registry.histogram("collector.late_binding_seconds")

    # ------------------------------------------------------------------
    # middleware-facing endpoints
    # ------------------------------------------------------------------
    def receive_prediction(self, msg: PredictionMessage) -> None:
        """Ingest one per-map shuffle-intent message."""
        if self.tape is not None:
            self.tape.append((self.sim.now, "pred", msg))
        if self.fault_filter is not None:
            filtered = self.fault_filter(msg)
            if filtered is None:
                self.predictions_dropped += 1
                self._m_dropped.inc()
                if self._tracer is not None:
                    self._tracer.emit(
                        self.sim.now, "collector", "prediction_dropped",
                        job=msg.job, map_id=msg.map_id,
                    )
                return
            msg = filtered
        self.predictions_received += 1
        for reducer_id, nbytes in enumerate(msg.reducer_bytes):
            intent = _PendingIntent(
                job=msg.job,
                map_id=msg.map_id,
                reducer_id=reducer_id,
                src_server=msg.src_server,
                nbytes=float(nbytes),
                predicted_at=self.sim.now,
            )
            loc = self._locations.get((msg.job, reducer_id))
            if loc is None:
                self._pending.setdefault((msg.job, reducer_id), []).append(intent)
            else:
                self._complete(intent, loc)
        self._m_predictions.inc()
        self._m_pending.set(self.pending_intents)
        self._wake()

    def receive_reducer_location(self, msg: ReducerLocationMessage) -> None:
        """Ingest one reducer-location report, flushing waiters."""
        if self.tape is not None:
            self.tape.append((self.sim.now, "loc", msg))
        self.locations_received += 1
        key = (msg.job, msg.reducer_id)
        self._locations[key] = msg.server
        for intent in self._pending.pop(key, []):
            self._complete(intent, msg.server)
        self._m_locations.inc()
        self._m_pending.set(self.pending_intents)
        self._wake()

    # ------------------------------------------------------------------
    def _complete(self, intent: _PendingIntent, dst_server: str) -> None:
        key = (intent.job, intent.reducer_id)
        self.reducer_volume[key] = self.reducer_volume.get(key, 0.0) + intent.nbytes
        self.log.append(
            PredictionLogEntry(
                job=intent.job,
                map_id=intent.map_id,
                reducer_id=intent.reducer_id,
                src_server=intent.src_server,
                dst_server=dst_server,
                predicted_wire_bytes=intent.nbytes,
                predicted_at=intent.predicted_at,
                completed_at=self.sim.now,
            )
        )
        self._m_late_binding.observe(self.sim.now - intent.predicted_at)
        if self._tracer is not None:
            self._tracer.emit(
                self.sim.now,
                "collector",
                "intent_complete",
                job=intent.job,
                map_id=intent.map_id,
                reducer_id=intent.reducer_id,
                bytes=intent.nbytes,
            )
        if intent.src_server != dst_server:
            self.aggregator.add(
                intent.src_server,
                dst_server,
                intent.map_id,
                intent.reducer_id,
                intent.nbytes,
                job=intent.job,
            )

    def _wake(self) -> None:
        """Coalesce same-instant messages into one scheduler wake-up."""
        if self._wake_scheduled or self.on_ready is None:
            return
        self._wake_scheduled = True
        self.sim.schedule(0.0, self._fire)

    def _fire(self) -> None:
        self._wake_scheduled = False
        if self.on_ready is None:
            return
        dirty = self.aggregator.drain_dirty()
        if dirty:
            self.on_ready(dirty)

    # ------------------------------------------------------------------
    # evaluation helpers
    # ------------------------------------------------------------------
    @property
    def pending_intents(self) -> int:
        """Intents still waiting for a reducer location."""
        return sum(len(v) for v in self._pending.values())

    def pending_for(self, job: str, reducer_id: int) -> int:
        """Intents parked waiting for this one reducer's location —
        the fan-out a location message will release at once (the
        staged pipeline sizes shard-queue headroom with this)."""
        return len(self._pending.get((job, reducer_id), []))

    def predicted_egress(self, server: str, remote_only: bool = True) -> list[tuple[float, float]]:
        """(time, bytes) prediction events sourced at ``server``."""
        out = []
        for e in self.log:
            if e.src_server != server:
                continue
            if remote_only and e.dst_server == e.src_server:
                continue
            out.append((e.completed_at, e.predicted_wire_bytes))
        return sorted(out)
