"""Early skew prediction from shuffle-intent data (§V-C's standalone use).

"Given the value of the communication intent prediction middleware as a
standalone component that could also be used in multiple other runtime
optimizations of the Hadoop infrastructure beyond network scheduling
(e.g. storage or early skew prediction)" — this module is that use:
after only a fraction of the maps have reported, the per-reducer volume
distribution already approximates the job's final skew (maps are
near-iid samples of the key space), so stragglers can be identified
long before the reduce phase starts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.collector import PredictionCollector


@dataclass(frozen=True)
class SkewForecast:
    """Per-reducer volume forecast extrapolated from partial predictions."""

    job: str
    maps_observed: int
    maps_total: int
    #: extrapolated final bytes per reducer (observed / fraction seen).
    predicted_final_bytes: np.ndarray

    @property
    def fraction_observed(self) -> float:
        """Share of maps whose predictions informed the forecast."""
        return self.maps_observed / self.maps_total

    @property
    def imbalance(self) -> float:
        """max/mean of the forecast shares (1.0 = perfectly balanced)."""
        mean = self.predicted_final_bytes.mean()
        if mean <= 0:
            return 1.0
        return float(self.predicted_final_bytes.max() / mean)

    def heavy_reducers(self, threshold: float = 2.0) -> list[int]:
        """Reducers forecast to exceed ``threshold`` x the mean volume."""
        mean = self.predicted_final_bytes.mean()
        if mean <= 0:
            return []
        return [
            int(r)
            for r in np.flatnonzero(self.predicted_final_bytes > threshold * mean)
        ]


class SkewAdvisor:
    """Builds skew forecasts from the collector's prediction log."""

    def __init__(self, collector: PredictionCollector, num_reducers: int, maps_total: int) -> None:
        if num_reducers < 1 or maps_total < 1:
            raise ValueError("need at least one reducer and one map")
        self.collector = collector
        self.num_reducers = num_reducers
        self.maps_total = maps_total

    def forecast(self, job: str) -> SkewForecast:
        """Extrapolate the job's final per-reducer volumes from what has
        been predicted so far."""
        observed = np.zeros(self.num_reducers)
        maps_seen: set[int] = set()
        for entry in self.collector.log:
            if entry.job != job:
                continue
            observed[entry.reducer_id] += entry.predicted_wire_bytes
            maps_seen.add(entry.map_id)
        if not maps_seen:
            raise ValueError(f"no predictions for job {job!r} yet")
        fraction = len(maps_seen) / self.maps_total
        return SkewForecast(
            job=job,
            maps_observed=len(maps_seen),
            maps_total=self.maps_total,
            predicted_final_bytes=observed / fraction,
        )


def forecast_accuracy(forecast: SkewForecast, actual_bytes: np.ndarray) -> float:
    """Mean relative error of the forecast against final actual volumes."""
    actual = np.asarray(actual_bytes, float)
    if actual.shape != forecast.predicted_final_bytes.shape:
        raise ValueError("shape mismatch")
    mask = actual > 0
    if not mask.any():
        return 0.0
    rel = np.abs(forecast.predicted_final_bytes[mask] - actual[mask]) / actual[mask]
    return float(rel.mean())
