"""Predicted-flow path allocation (the paper's bin-packing heuristic).

§IV: "we used a first-fit bin-packing heuristic to jointly allocate
sets of predicted shuffle transfer flows to available paths.  Our
heuristic combines the link utilization information provided by the
[controller] link load update service with the communication intention
information collected by our Pythia monitor ... the aggregated flows
are assigned to the path that has the highest available bandwidth."

Availability here accounts for *both* information sources the paper
names: the measured background load (link-stats service) determines
each path's residual drain rate, and the communication intent (both
the shuffle bytes still in flight and the predicted bytes already
packed onto the path this round) determines how much of that rate is
spoken for.  A path's effective availability for a new aggregate is
therefore its residual rate discounted by its queued bytes — i.e. the
path that would complete the transfer soonest wins.  Entries are
processed in decreasing size order (first-fit decreasing), the
flow-criticality ordering the paper contrasts with Hedera (§VI).

Because §IV notes the design "is modular enough to support further flow
scheduling algorithms", two alternates ship alongside the paper's
heuristic: best-fit (tightest path whose residual still covers the
expected demand) and water-filling (most-balanced post-placement
utilisation); the ablation benchmark compares all three.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.core.aggregation import AggregateEntry
from repro.core.routing import RoutingGraph
from repro.sdn.stats_service import LinkStatsService
from repro.simnet.engine import Simulator
from repro.simnet.network import Network

#: Residual-rate floor (bytes/s) so ETA scores stay finite on saturated paths.
_RATE_FLOOR = 1.0


class _BaseAllocator:
    """Shared machinery: residual rates, queued bytes, demand planning."""

    name = "base"

    def __init__(
        self,
        sim: Simulator,
        routing: RoutingGraph,
        stats: LinkStatsService,
        network: Network,
        demand_horizon: float = 10.0,
        ordering: str = "criticality",
        forecast=None,
    ) -> None:
        self.sim = sim
        self.routing = routing
        self.stats = stats
        self.network = network
        #: optional :class:`repro.forecast.service.ForecastService`;
        #: when set, residuals are scored against the predicted
        #: background at ``now + horizon`` instead of the measured EWMA
        #: (the service itself falls back to the EWMA when stale).
        self.forecast = forecast
        #: how long a placed-but-not-yet-started prediction keeps its
        #: claim on a path before the in-flight byte counters take over.
        self.demand_horizon = demand_horizon
        #: "criticality" = first-fit decreasing (paper); "arrival" =
        #: FIFO, the FlowComb-style contrast of §VI.
        self.ordering = ordering
        self._planned = np.zeros(len(network.topology.links))
        self.allocations = 0
        self._registry = obs.get_registry()
        self._tracer = obs.get_tracer()
        self._m_placements = self._registry.counter("allocator.placements")
        self._m_planned_hw = self._registry.gauge("allocator.planned_load_bytes")

    # ------------------------------------------------------------------
    def scoring_background(self) -> np.ndarray:
        """Per-link background load the allocator scores against.

        The forecast service's prediction when forecasting is on, the
        measured EWMA otherwise — the one place both the greedy path
        scorers and the LP re-optimizer read their load picture from.
        """
        if self.forecast is not None:
            return self.forecast.predict_background()
        return self.stats.background_load_array()

    def scoring_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(capacity, residual, queued) scoring arrays, sentinel-padded.

        Per-link scoring arrays carry one extra sentinel slot at index
        ``nlinks`` — incidence-matrix rows are padded with that id, so
        the pad contributes +inf to a min-residual reduction and 0 to
        a max-queued reduction (queued bytes are never negative).
        Shared between :meth:`allocate` and the LP allocators so both
        score against the identical load picture, in the identical
        floating-point op order.
        """
        capacity = self.network.link_capacity()
        background = self.scoring_background()
        nlinks = len(capacity)
        resid = np.empty(nlinks + 1)
        np.subtract(capacity, background, out=resid[:nlinks])
        resid[nlinks] = np.inf
        queued = np.zeros(nlinks + 1)
        queued[:nlinks] = self._outstanding_bytes() + self._planned
        return capacity, resid, queued

    def allocate(
        self, entries: list[AggregateEntry]
    ) -> list[tuple[AggregateEntry, list[int]]]:
        """Assign each entry a path; largest predicted volume first."""
        _, resid, queued = self.scoring_arrays()
        out: list[tuple[AggregateEntry, list[int]]] = []
        if self.ordering == "criticality":
            ordered = sorted(entries, key=lambda e: -e.predicted_bytes)
        else:
            ordered = list(entries)
        for entry in ordered:
            src, dst = self._representative_pair(entry)
            raw_paths, inc = self.routing.candidate_incidence(src, dst)
            if not raw_paths:
                continue
            raw_headroom = resid[inc].min(axis=1)
            residuals = np.maximum(raw_headroom, _RATE_FLOOR)
            queued_bytes = queued[inc].max(axis=1)
            delta = self._unplanned_bytes(entry)
            # Unrounded, unfloored forecast headroom — only offered as
            # a tie-break signal when forecasting is enabled, so the
            # measured-load pipeline stays bit-identical.
            headroom = raw_headroom if self.forecast is not None else None
            idx = self._choose(
                raw_paths, residuals, queued_bytes, delta, forecast_headroom=headroom
            )
            chosen = raw_paths[idx]
            chosen_arr = np.asarray(chosen, dtype=np.intp)
            self._plan(chosen_arr, delta)
            queued[chosen_arr] += delta
            entry.path = list(chosen)
            entry.allocated_at = self.sim.now
            self.allocations += 1
            self._m_placements.inc()
            # path-choice distribution: which candidate rank won
            self._registry.counter(f"allocator.path_choice.{idx}").inc()
            self._m_planned_hw.set(float(self._planned.max()))
            if self._tracer is not None:
                self._tracer.emit(
                    self.sim.now,
                    "allocator",
                    "placement",
                    key=repr(entry.key),
                    path_rank=idx,
                    bytes=entry.predicted_bytes,
                )
            out.append((entry, list(chosen)))
        return out

    # ------------------------------------------------------------------
    def _representative_pair(self, entry: AggregateEntry) -> tuple[str, str]:
        return min(entry.pairs)  # deterministic representative

    def _outstanding_bytes(self) -> np.ndarray:
        """Bytes still in flight on each link (application transfers)."""
        out = np.zeros(len(self.network.topology.links))
        for flow in self.network.elastic:
            if flow.path and flow.remaining > 0:
                out[np.asarray(flow.path, dtype=np.intp)] += flow.remaining
        return out

    def _unplanned_bytes(self, entry: AggregateEntry) -> float:
        """Entry bytes not yet claimed on any path by earlier rounds."""
        counted = getattr(entry, "_planned_bytes", 0.0)
        delta = max(0.0, entry.predicted_bytes - counted)
        entry._planned_bytes = entry.predicted_bytes  # type: ignore[attr-defined]
        return delta

    def _plan(self, path_idx: np.ndarray, delta: float) -> None:
        if delta <= 0:
            return
        self._planned[path_idx] += delta
        self.sim.schedule(self.demand_horizon, self._expire, path_idx, delta)

    def _expire(self, path_idx: np.ndarray, delta: float) -> None:
        self._planned[path_idx] = np.maximum(0.0, self._planned[path_idx] - delta)

    def planned_load(self) -> np.ndarray:
        """Planned-but-unstarted bytes per link (for tests/inspection)."""
        return self._planned.copy()

    # subclass hook ----------------------------------------------------
    def _choose(
        self,
        paths: list[list[int]],
        residuals: np.ndarray,
        queued_bytes: np.ndarray,
        delta: float,
        forecast_headroom: np.ndarray | None = None,
    ) -> int:
        raise NotImplementedError

    @staticmethod
    def _eta(
        residuals: np.ndarray, queued_bytes: np.ndarray, delta: float
    ) -> np.ndarray:
        """Expected completion of the new bytes behind each path's queue."""
        return (np.asarray(queued_bytes, dtype=float) + delta) / np.asarray(
            residuals, dtype=float
        )


class FirstFitAllocator(_BaseAllocator):
    """The paper's heuristic: the path with the highest effective
    availability (equivalently: the earliest expected completion)."""

    name = "first_fit"

    def _choose(self, paths, residuals, queued_bytes, delta, forecast_headroom=None) -> int:
        etas = self._eta(residuals, queued_bytes, delta)
        return int(np.argmin(etas))


class BestFitAllocator(_BaseAllocator):
    """Tightest residual that still covers the expected demand rate."""

    name = "best_fit"

    def _choose(self, paths, residuals, queued_bytes, delta, forecast_headroom=None) -> int:
        residuals = np.asarray(residuals, dtype=float)
        queued_bytes = np.asarray(queued_bytes, dtype=float)
        demand_rate = delta / self.demand_horizon
        fitting = (residuals >= demand_rate) & (
            queued_bytes / residuals <= self.demand_horizon
        )
        if fitting.any():
            # argmin takes the first occurrence — the same (residual,
            # index) tie-break as the old min-over-tuples scan.
            return int(np.argmin(np.where(fitting, residuals, np.inf)))
        etas = self._eta(residuals, queued_bytes, delta)
        return int(np.argmin(etas))


class WaterFillingAllocator(_BaseAllocator):
    """Balance post-placement queue drain time across paths."""

    name = "water_filling"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._rotation = 0

    def _choose(self, paths, residuals, queued_bytes, delta, forecast_headroom=None) -> int:
        # Identical objective to first-fit for a single entry, but the
        # tie-break spreads equal-ETA entries round-robin rather than
        # always taking the first path.
        etas = self._eta(residuals, queued_bytes, delta)
        # Python round() on the float64 values, exactly as the scalar
        # code did — np.round can differ at half-way points.
        keys = [
            (round(float(e), 6), round(float(q), 6))
            for e, q in zip(etas, queued_bytes)
        ]
        best = min(keys)
        tied = [i for i, k in enumerate(keys) if k == best]
        if forecast_headroom is not None and len(tied) > 1:
            # Forecast-informed tie-break: rounding collapsed the ETA
            # difference, but the unrounded forecast headroom still
            # discriminates — prefer the path with the most predicted
            # slack instead of rotating blindly, which under symmetric
            # Clos fabrics systematically favours early path indices.
            best_h = max(float(forecast_headroom[i]) for i in tied)
            tied = [i for i in tied if float(forecast_headroom[i]) == best_h]
        choice = tied[self._rotation % len(tied)]
        self._rotation += 1
        return choice


_ALLOCATORS = {
    "first_fit": FirstFitAllocator,
    "best_fit": BestFitAllocator,
    "water_filling": WaterFillingAllocator,
}


def make_allocator(
    kind: str,
    sim: Simulator,
    routing: RoutingGraph,
    stats: LinkStatsService,
    network: Network,
    demand_horizon: float,
    ordering: str = "criticality",
    forecast=None,
) -> _BaseAllocator:
    """Factory keyed by :attr:`PythiaConfig.allocation`."""
    try:
        cls = _ALLOCATORS[kind]
    except KeyError:
        raise ValueError(f"unknown allocator {kind!r}") from None
    return cls(
        sim,
        routing,
        stats,
        network,
        demand_horizon=demand_horizon,
        ordering=ordering,
        forecast=forecast,
    )
