"""Global LP re-optimization of live aggregate placements.

The greedy allocators place each predicted aggregate once, against the
residuals of the moment, and never revisit the decision — so early
placements pin later ones onto hot links even when the controller's
own predictions would justify a global re-shuffle (ROADMAP item 2).
This module closes that loop: a path-based linear program re-solves
the placement of *all* live aggregates at once over the routing
graph's cached k-shortest-path candidates.

Formulations (both over one variable per (aggregate, candidate-path)
pair, demands expressed as rates ``predicted-or-remaining bytes /
demand_horizon``):

``min_mlu``
    epigraph form of minimising the maximum link utilisation: variables
    ``x[f,p] in [0, 1]`` (fraction of aggregate *f* on path *p*) plus a
    scalar ``U``; per-aggregate rows ``sum_p x[f,p] = 1`` and per-link
    rows ``sum_{(f,p) using l} d_f x[f,p] - U c_l <= -bg_l`` —
    i.e. demand plus background on every link stays below ``U`` times
    capacity, and ``U`` is minimised.  Unbounded ``U`` keeps overloaded
    instances feasible; genuine infeasibility (every candidate path of
    some aggregate crosses a zero-capacity link) falls back to the
    greedy placement.

``max_throughput``
    variables ``y[f,p] >= 0`` (admitted rate of aggregate *f* on path
    *p*); per-aggregate rows ``sum_p y[f,p] <= d_f`` and per-link rows
    ``sum y <= max(c_l - bg_l, 0)``; total admitted rate is maximised.

Fractional solutions are rounded **largest-variable-first**: variables
are visited in decreasing fractional value and the first variable seen
for each aggregate fixes its path.  A residual-feasibility **repair**
pass then walks the most-utilised link and moves aggregates (largest
demand first) to alternative candidates, accepting only moves that
strictly decrease the planned maximum utilisation — so repair is
monotone and terminates.

scipy is the optional ``[lp]`` extra: this module imports without it
(``HAVE_SCIPY`` false) so the core pipeline stays scipy-free, and the
scheduler refuses to start with ``lp_mode != "off"`` when the solver
is unavailable.  Solver wall time is measured and gated in CI against
the controller's rule-install budget but never fed back into the
simulation — runs stay machine-independent.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro import obs
from repro.core.aggregation import AggregateEntry
from repro.core.routing import LiveIncidence

try:  # pragma: no cover - exercised via the [lp] extra in CI
    from scipy.optimize import linprog as _linprog
    from scipy.sparse import csr_matrix as _csr_matrix

    HAVE_SCIPY = True
except ImportError:  # pragma: no cover
    _linprog = None
    _csr_matrix = None
    HAVE_SCIPY = False

#: numerical slack when comparing utilisations (relative).
_EPS = 1e-9

OBJECTIVES = ("min_mlu", "max_throughput")


@dataclass
class LpSolution:
    """One global re-solve: fractional optimum, rounding and repair."""

    #: "optimal", "infeasible", "error" or "empty" (no variables).
    status: str
    #: the LP optimum — U* (max link utilisation) for min_mlu, total
    #: admitted rate for max_throughput; nan when not solved.
    objective: float
    #: chosen candidate index per entry (None: no candidates, or the
    #: LP admitted nothing for this entry — keep the current path).
    choices: list[Optional[int]]
    #: planned max-link-utilisation of the rounded+repaired placement.
    mlu: float
    #: post-repair: no link's planned load exceeds its capacity.
    feasible: bool
    repair_moves: int
    solve_ms: float


def placement_mlu(
    paths: list[Optional[list[int]]],
    demands: np.ndarray,
    capacity: np.ndarray,
    background: np.ndarray,
) -> float:
    """Planned max-link-utilisation of a concrete placement.

    ``demands`` are rates (bytes/s over the demand horizon); entries
    with ``paths[i] is None`` contribute nothing.  Links with zero
    capacity count as infinitely utilised when loaded at all.
    """
    load = np.clip(np.asarray(background, dtype=float), 0.0, None).copy()
    for d, path in zip(demands, paths):
        if path:
            load[np.asarray(path, dtype=np.intp)] += d
    cap = np.asarray(capacity, dtype=float)
    with np.errstate(divide="ignore", invalid="ignore"):
        util = np.where(cap > 0.0, load / np.where(cap > 0.0, cap, 1.0), np.where(load > 0.0, np.inf, 0.0))
    return float(util.max()) if util.size else 0.0


def _round_largest_first(
    inc: LiveIncidence, frac: np.ndarray
) -> list[Optional[int]]:
    """Largest-variable-first rounding to one candidate per entry."""
    nentries = len(inc.paths)
    choices: list[Optional[int]] = [None] * nentries
    order = np.argsort(-frac, kind="stable")
    var_entry = inc.var_entry
    var_offset = inc.var_offset
    for v in order.tolist():
        if frac[v] <= 0.0:
            break  # remaining variables carry no weight
        e = int(var_entry[v])
        if choices[e] is None:
            choices[e] = v - int(var_offset[e])
    return choices


def _repair(
    inc: LiveIncidence,
    demands: np.ndarray,
    capacity: np.ndarray,
    background: np.ndarray,
    choices: list[Optional[int]],
) -> tuple[int, float, bool]:
    """Move aggregates off the most-utilised link while it strictly helps.

    Mutates ``choices`` in place; every accepted move strictly lowers
    the planned maximum utilisation, so the pass is monotone and the
    iteration bound is never the thing that stops a productive repair.
    Returns (moves, final mlu, capacity-feasible).
    """
    used = inc.used_links
    cap = np.asarray(capacity, dtype=float)[used]
    load = np.clip(np.asarray(background, dtype=float)[used], 0.0, None)
    # entry -> row indices of its chosen path, against the used-link set
    def rows_of(e: int, choice: int) -> np.ndarray:
        path = inc.paths[e][choice]
        return np.searchsorted(used, np.asarray(path, dtype=np.intp))

    for e, choice in enumerate(choices):
        if choice is not None:
            load[rows_of(e, choice)] += demands[e]

    def util(loads: np.ndarray) -> np.ndarray:
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(
                cap > 0.0,
                loads / np.where(cap > 0.0, cap, 1.0),
                np.where(loads > 0.0, np.inf, 0.0),
            )

    moves = 0
    budget = 2 * len(choices)
    by_demand = sorted(
        range(len(choices)), key=lambda i: (-float(demands[i]), i)
    )
    while moves < budget:
        u = util(load)
        mlu = float(u.max()) if u.size else 0.0
        if mlu <= 0.0:
            break
        worst = int(u.argmax())
        improved = False
        for e in by_demand:
            choice = choices[e]
            if choice is None or demands[e] <= 0.0:
                continue
            cur_rows = rows_of(e, choice)
            if worst not in cur_rows:
                continue
            for alt in range(len(inc.paths[e])):
                if alt == choice:
                    continue
                alt_rows = rows_of(e, alt)
                trial = load.copy()
                trial[cur_rows] -= demands[e]
                trial[alt_rows] += demands[e]
                new_mlu = float(util(trial).max())
                if new_mlu < mlu * (1.0 - _EPS):
                    load = trial
                    choices[e] = alt
                    moves += 1
                    improved = True
                    break
            if improved:
                break
        if not improved:
            break
    final_u = util(load)
    mlu = float(final_u.max()) if final_u.size else 0.0
    feasible = bool(np.all(load <= cap * (1.0 + _EPS) + 1e-6))
    return moves, mlu, feasible


def solve_placement(
    inc: LiveIncidence,
    demands: np.ndarray,
    capacity: np.ndarray,
    background: np.ndarray,
    objective: str = "min_mlu",
) -> LpSolution:
    """Solve one global placement instance and round it to paths.

    ``demands`` are per-entry rates; entries with empty candidate sets
    come back with ``choices[i] is None``.  Raises ``RuntimeError``
    when scipy is unavailable.
    """
    if objective not in OBJECTIVES:
        raise ValueError(f"unknown objective {objective!r}")
    if not HAVE_SCIPY:
        raise RuntimeError(
            "scipy is required for LP placement; install the [lp] extra"
        )
    demands = np.asarray(demands, dtype=float)
    nvars = inc.nvars
    nentries = len(inc.paths)
    if nvars == 0:
        return LpSolution(
            status="empty",
            objective=float("nan"),
            choices=[None] * nentries,
            mlu=0.0,
            feasible=True,
            repair_moves=0,
            solve_ms=0.0,
        )
    used = inc.used_links
    nlinks = len(used)
    cap_used = np.asarray(capacity, dtype=float)[used]
    bg_used = np.clip(np.asarray(background, dtype=float)[used], 0.0, None)
    # incidence pairs mapped onto the used-link row space
    row_of_pair = np.searchsorted(used, inc.pair_link)
    d_of_pair = demands[inc.var_entry[inc.pair_var]]
    # entries that actually have candidates (the LP's equality rows)
    has_cands = np.diff(inc.var_offset) > 0
    eq_entries = np.flatnonzero(has_cands)
    eq_row_of_entry = np.full(nentries, -1, dtype=np.intp)
    eq_row_of_entry[eq_entries] = np.arange(len(eq_entries))

    t0 = time.perf_counter()
    try:
        if objective == "min_mlu":
            # columns: x_0..x_{nvars-1}, U at column nvars
            rows = np.concatenate([row_of_pair, np.arange(nlinks)])
            cols = np.concatenate(
                [inc.pair_var, np.full(nlinks, nvars, dtype=np.intp)]
            )
            data = np.concatenate([d_of_pair, -cap_used])
            a_ub = _csr_matrix(
                (data, (rows, cols)), shape=(nlinks, nvars + 1)
            )
            b_ub = -bg_used
            a_eq = _csr_matrix(
                (
                    np.ones(nvars),
                    (eq_row_of_entry[inc.var_entry], np.arange(nvars)),
                ),
                shape=(len(eq_entries), nvars + 1),
            )
            b_eq = np.ones(len(eq_entries))
            c = np.zeros(nvars + 1)
            c[nvars] = 1.0
            bounds = [(0.0, 1.0)] * nvars + [(0.0, None)]
            res = _linprog(
                c,
                A_ub=a_ub,
                b_ub=b_ub,
                A_eq=a_eq,
                b_eq=b_eq,
                bounds=bounds,
                method="highs",
            )
        else:  # max_throughput
            rows = np.concatenate([row_of_pair, nlinks + inc.var_entry])
            cols = np.concatenate([inc.pair_var, np.arange(nvars)])
            data = np.concatenate([np.ones(len(row_of_pair)), np.ones(nvars)])
            a_ub = _csr_matrix(
                (data, (rows, cols)), shape=(nlinks + nentries, nvars)
            )
            b_ub = np.concatenate(
                [np.maximum(cap_used - bg_used, 0.0), demands]
            )
            c = -np.ones(nvars)
            res = _linprog(
                c, A_ub=a_ub, b_ub=b_ub, bounds=(0.0, None), method="highs"
            )
    except Exception:
        solve_ms = (time.perf_counter() - t0) * 1000.0
        return LpSolution(
            status="error",
            objective=float("nan"),
            choices=[None] * nentries,
            mlu=float("inf"),
            feasible=False,
            repair_moves=0,
            solve_ms=solve_ms,
        )
    solve_ms = (time.perf_counter() - t0) * 1000.0
    if res.status == 2:
        return LpSolution(
            status="infeasible",
            objective=float("nan"),
            choices=[None] * nentries,
            mlu=float("inf"),
            feasible=False,
            repair_moves=0,
            solve_ms=solve_ms,
        )
    if res.status != 0 or res.x is None:
        return LpSolution(
            status="error",
            objective=float("nan"),
            choices=[None] * nentries,
            mlu=float("inf"),
            feasible=False,
            repair_moves=0,
            solve_ms=solve_ms,
        )
    if objective == "min_mlu":
        frac = np.asarray(res.x[:nvars], dtype=float)
        lp_objective = float(res.x[nvars])
    else:
        frac = np.asarray(res.x, dtype=float)
        lp_objective = float(-res.fun)
    choices = _round_largest_first(inc, frac)
    moves, mlu, feasible = _repair(inc, demands, capacity, background, choices)
    return LpSolution(
        status="optimal",
        objective=lp_objective,
        choices=choices,
        mlu=mlu,
        feasible=feasible,
        repair_moves=moves,
        solve_ms=solve_ms,
    )


class LpReoptimizer:
    """Drives periodic global re-solves through the control plane.

    Triggers: a configurable period, topology version bumps (failure
    *and* restore), and collector demand updates whose relative change
    exceeds ``lp_demand_delta``.  A solved instance is applied only
    when its planned max utilisation improves on the current
    placement's (hysteresis via ``lp_min_improvement``); changed
    placements churn rules as one batched flow-mod diff and move live
    member flows through the existing reroute-with-pause machinery.
    """

    def __init__(
        self,
        sim,
        config,
        routing,
        aggregator,
        allocator,
        network,
        programmer,
        rules_for: Callable[[AggregateEntry, list[int], list], list],
    ) -> None:
        self.sim = sim
        self.config = config
        self.routing = routing
        self.aggregator = aggregator
        self.allocator = allocator
        self.network = network
        self.programmer = programmer
        #: scheduler-bound (entry, path, removed) -> fresh rules hook;
        #: keeps rule bookkeeping (keys, backbones) in one place.
        self._rules_for = rules_for
        self.objective = config.lp_mode
        self._stopped = False
        self._last_version = routing.topology.version
        #: total demand rate of the last applied instance (delta trigger).
        self._solved_demand: Optional[float] = None
        self.last_solution: Optional[LpSolution] = None
        # plain attributes mirror the obs counters so policy_stats can
        # carry them even when the run has no metrics registry
        self.solves = 0
        self.solve_ms_max = 0.0
        self.placements_changed_total = 0
        self.reroutes_total = 0
        self.infeasible_total = 0
        self.fallback_total = 0
        self.no_improvement_total = 0
        self.budget_exceeded_total = 0
        self.repair_moves_total = 0
        reg = obs.get_registry()
        self._m_solves = reg.counter("lp.solves")
        self._m_triggers = {
            t: reg.counter(f"lp.triggers.{t}")
            for t in ("period", "topology", "demand")
        }
        self._m_infeasible = reg.counter("lp.infeasible")
        self._m_fallbacks = reg.counter("lp.fallbacks")
        self._m_no_improvement = reg.counter("lp.no_improvement")
        self._m_budget_exceeded = reg.counter("lp.budget_exceeded")
        self._m_changed = reg.counter("lp.placements_changed")
        self._m_repair_moves = reg.counter("lp.repair_moves")
        self._m_reroutes = reg.counter("lp.reroutes")
        self._g_solve_ms = reg.gauge("lp.solve_ms")
        self._h_solve = reg.histogram("lp.solve_seconds")

    # ------------------------------------------------------------------
    def start(self) -> None:
        self.sim.schedule(self.config.lp_period, self._tick)

    def stop(self) -> None:
        self._stopped = True

    def _tick(self) -> None:
        if self._stopped:
            return
        self.resolve("period")
        self.sim.schedule(self.config.lp_period, self._tick)

    def on_topology_change(self, link) -> None:
        """Topology-service listener: re-solve on any version bump."""
        if self._stopped:
            return
        version = self.routing.topology.version
        if version != self._last_version:
            self._last_version = version
            self.resolve("topology")

    def note_demand(self) -> None:
        """Collector hook: re-solve when total demand moved enough."""
        if self._stopped:
            return
        total = self._total_demand()
        if self._solved_demand is None:
            return  # nothing solved yet; the periodic tick will
        base = max(self._solved_demand, 1.0)
        if abs(total - self._solved_demand) / base > self.config.lp_demand_delta:
            self.resolve("demand")

    # ------------------------------------------------------------------
    def budget_ms(self, nrules: int) -> float:
        """Solver budget: explicit, or the rule-install window in ms."""
        if self.config.lp_budget_ms is not None:
            return self.config.lp_budget_ms
        return 1000.0 * (
            self.programmer.control_rtt
            + self.programmer.per_rule_latency * max(1, nrules)
        )

    def _total_demand(self) -> float:
        _entries, demands = self._live_instance()
        return float(np.sum(demands)) if len(demands) else 0.0

    def _live_instance(self) -> tuple[list[AggregateEntry], np.ndarray]:
        """Live aggregates and their demand rates, in deterministic order.

        Demand per aggregate is the bytes its member flows still have
        in flight; an aggregate whose flows have not started yet (but
        was placed within the demand horizon) keeps its predicted
        volume.  Fully drained aggregates drop out of the instance.
        """
        remaining_by_pair: dict[tuple[str, str], float] = {}
        for flow in self.network.elastic:
            if flow.is_shuffle() and flow.remaining > 0:
                key = (flow.src, flow.dst)
                remaining_by_pair[key] = (
                    remaining_by_pair.get(key, 0.0) + flow.remaining
                )
        now = self.sim.now
        horizon = self.config.demand_horizon
        entries: list[AggregateEntry] = []
        demands: list[float] = []
        for key in sorted(self.aggregator.entries, key=repr):
            entry = self.aggregator.entries[key]
            if not entry.pairs:
                continue
            live = sum(remaining_by_pair.get(p, 0.0) for p in entry.pairs)
            if live > 0.0:
                bytes_left = live
            elif (
                entry.allocated_at is not None
                and now - entry.allocated_at <= horizon
            ):
                bytes_left = entry.predicted_bytes
            else:
                continue
            if bytes_left <= 0.0:
                continue
            entries.append(entry)
            demands.append(bytes_left / horizon)
        return entries, np.asarray(demands, dtype=float)

    # ------------------------------------------------------------------
    def resolve(self, trigger: str) -> Optional[LpSolution]:
        """Solve the current instance and apply it if it improves."""
        self._m_triggers[trigger].inc()
        entries, demands = self._live_instance()
        if not entries:
            return None
        pairs = [min(e.pairs) for e in entries]
        inc = self.routing.live_incidence(pairs)
        capacity = self.network.link_capacity()
        background = self.allocator.scoring_background()
        try:
            sol = solve_placement(
                inc, demands, capacity, background, self.objective
            )
        except RuntimeError:
            self._m_fallbacks.inc()
            self.fallback_total += 1
            return None
        self.last_solution = sol
        self._m_solves.inc()
        self.solves += 1
        self._g_solve_ms.set(sol.solve_ms)
        self._h_solve.observe(sol.solve_ms / 1000.0)
        self.solve_ms_max = max(self.solve_ms_max, sol.solve_ms)
        if sol.solve_ms > self.budget_ms(len(entries)):
            # observational only: CI gates on this counter, the sim
            # never branches on wall time (machine independence).
            self._m_budget_exceeded.inc()
            self.budget_exceeded_total += 1
        if sol.status == "infeasible":
            self._m_infeasible.inc()
            self._m_fallbacks.inc()
            self.infeasible_total += 1
            self.fallback_total += 1
            return sol
        if sol.status != "optimal":
            self._m_fallbacks.inc()
            self.fallback_total += 1
            return sol
        self._m_repair_moves.inc(sol.repair_moves)
        self.repair_moves_total += sol.repair_moves
        # hysteresis: apply only when the solved placement beats the
        # one we already have (never churn rules to break even).  The
        # comparison masks background to the LP's used-link universe —
        # load on links no candidate path touches is invisible to
        # sol.mlu and must not inflate the incumbent either.
        bg_masked = np.zeros_like(np.asarray(background, dtype=float))
        bg_masked[inc.used_links] = np.asarray(background, dtype=float)[
            inc.used_links
        ]
        current_mlu = placement_mlu(
            [e.path for e in entries], demands, capacity, bg_masked
        )
        min_gain = self.config.lp_min_improvement * max(current_mlu, _EPS)
        if not sol.mlu < current_mlu - min_gain:
            self._m_no_improvement.inc()
            self.no_improvement_total += 1
            self._solved_demand = float(np.sum(demands))
            return sol
        self._apply(entries, demands, inc, sol)
        self._solved_demand = float(np.sum(demands))
        return sol

    def _apply(
        self,
        entries: list[AggregateEntry],
        demands: np.ndarray,
        inc: LiveIncidence,
        sol: LpSolution,
    ) -> None:
        """Push changed placements out: batched rule diff + reroutes."""
        changed: list[tuple[AggregateEntry, list[int]]] = []
        for i, entry in enumerate(entries):
            choice = sol.choices[i]
            if choice is None:
                continue
            new_path = list(inc.paths[i][choice])
            if entry.path == new_path:
                continue
            entry.path = new_path
            entry.allocated_at = self.sim.now
            changed.append((entry, new_path))
        if not changed:
            return
        self._m_changed.inc(len(changed))
        self.placements_changed_total += len(changed)
        removed: list = []
        adds: list = []
        for entry, path in changed:
            adds.extend(self._rules_for(entry, path, removed))
        if adds or removed:
            self.programmer.install_diff(adds, removed)
        self._reroute_live(changed)

    def _reroute_live(
        self, changed: list[tuple[AggregateEntry, list[int]]]
    ) -> None:
        """Move in-flight member flows onto their aggregate's new path."""
        by_pair: dict[tuple[str, str], tuple[AggregateEntry, list[int]]] = {}
        for entry, path in changed:
            for pair in entry.pairs:
                by_pair[pair] = (entry, path)
        pause = self.config.lp_reroute_pause
        for flow in list(self.network.elastic):
            if not flow.is_shuffle() or flow.remaining <= 0:
                continue
            hit = by_pair.get((flow.src, flow.dst))
            if hit is None:
                continue
            entry, agg_path = hit
            if (flow.src, flow.dst) == min(entry.pairs):
                concrete: Optional[list[int]] = list(agg_path)
            else:
                backbone = self.routing.switch_backbone(agg_path)
                concrete = self.routing.path_matching_backbone(
                    flow.src, flow.dst, backbone
                )
            if concrete is None or list(flow.path or []) == concrete:
                continue
            if not all(
                self.routing.topology.links[lid].up for lid in concrete
            ):
                continue
            self.network.reroute(flow, concrete, pause=pause)
            self._m_reroutes.inc()
            self.reroutes_total += 1

    def snapshot(self) -> dict:
        """Plain-attribute stats for ``RunResult.policy_stats``."""
        return {
            "lp_solves": self.solves,
            "lp_solve_ms_max": self.solve_ms_max,
            "lp_placements_changed": self.placements_changed_total,
            "lp_reroutes": self.reroutes_total,
            "lp_infeasible": self.infeasible_total,
            "lp_fallbacks": self.fallback_total,
            "lp_no_improvement": self.no_improvement_total,
            "lp_budget_exceeded": self.budget_exceeded_total,
            "lp_repair_moves": self.repair_moves_total,
        }
