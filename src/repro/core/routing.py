"""Pythia routing module: the maintained multi-path routing graph.

Thin adapter over the controller's topology service (§IV): ingests
topology events, keeps the k-shortest-path sets fresh, and exposes the
candidate path list per aggregate entry.  For rack-pair aggregates the
module picks, for every member server pair, the concrete path whose
switch backbone matches the aggregate's chosen trunk — one routing
decision fanned out to many rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro import obs
from repro.sdn.topology_service import TopologyService
from repro.simnet.links import Link
from repro.simnet.topology import NodeKind, Topology


@dataclass
class LiveIncidence:
    """Flat (variable, link) incidence over a live aggregate set.

    One variable per (entry, candidate-path) pair, in entry order then
    candidate order — the LP allocators consume this directly as their
    constraint matrix.  ``paths[i]`` is entry *i*'s candidate list;
    ``var_entry[v]`` maps variable *v* back to its entry index;
    ``var_offset[i]:var_offset[i+1]`` spans entry *i*'s variables.
    ``pair_var``/``pair_link`` list every (variable, link-id) incidence
    pair, and ``used_links`` the sorted distinct link ids touched.
    """

    paths: list[list[list[int]]]
    var_entry: np.ndarray
    var_offset: np.ndarray
    pair_var: np.ndarray
    pair_link: np.ndarray
    used_links: np.ndarray

    @property
    def nvars(self) -> int:
        return len(self.var_entry)


class RoutingGraph:
    """Candidate-path provider with failure-event propagation."""

    def __init__(self, topology_service: TopologyService) -> None:
        self.service = topology_service
        self.topology: Topology = topology_service.topology
        self._failure_listeners: list[Callable[[Link], None]] = []
        # (src, dst, backbone) -> matching path, valid for one topology
        # version: rack-aggregate fan-out asks the same question for
        # every member pair on every allocation round.
        self._backbone_memo: dict[
            tuple[str, str, tuple[str, ...]], Optional[list[int]]
        ] = {}
        self._backbone_version = -1
        self._m_backbone_hits = obs.get_registry().counter(
            "routing.backbone_memo_hits"
        )
        topology_service.on_change(self._on_change)

    def on_failure(self, fn: Callable[[Link], None]) -> None:
        """Register a link-failure listener."""
        self._failure_listeners.append(fn)

    def _on_change(self, link: Link) -> None:
        if not link.up:
            for fn in list(self._failure_listeners):
                fn(link)

    # ------------------------------------------------------------------
    def candidate_paths(self, src: str, dst: str) -> list[list[int]]:
        """k-shortest link-id paths between two servers, up links only."""
        return self.service.k_paths_links(src, dst)

    def candidate_incidence(
        self, src: str, dst: str
    ) -> tuple[list[list[int]], np.ndarray]:
        """Candidate link-id paths plus their padded incidence matrix."""
        return self.service.k_paths_incidence(src, dst)

    def live_incidence(self, pairs: Sequence[tuple[str, str]]) -> LiveIncidence:
        """Stacked candidate incidence for a set of live aggregates.

        ``pairs[i]`` is the representative (src, dst) server pair of
        aggregate *i*.  Entries whose pair currently has no up path
        contribute zero variables (an empty candidate list) — the LP
        layer must place those by fallback.
        """
        paths: list[list[list[int]]] = []
        var_entry: list[int] = []
        var_offset = [0]
        pair_var: list[int] = []
        pair_link: list[int] = []
        v = 0
        for i, (src, dst) in enumerate(pairs):
            cands = self.candidate_paths(src, dst)
            paths.append(cands)
            for path in cands:
                var_entry.append(i)
                for lid in path:
                    pair_var.append(v)
                    pair_link.append(lid)
                v += 1
            var_offset.append(v)
        link_arr = np.asarray(pair_link, dtype=np.intp)
        return LiveIncidence(
            paths=paths,
            var_entry=np.asarray(var_entry, dtype=np.intp),
            var_offset=np.asarray(var_offset, dtype=np.intp),
            pair_var=np.asarray(pair_var, dtype=np.intp),
            pair_link=link_arr,
            used_links=np.unique(link_arr),
        )

    def switch_backbone(self, lids: list[int]) -> tuple[str, ...]:
        """The switch-only node subsequence of a path (the trunk choice)."""
        nodes = self.topology.path_nodes(lids)
        return tuple(
            n for n in nodes if self.topology.nodes[n].kind is NodeKind.SWITCH
        )

    def path_matching_backbone(
        self, src: str, dst: str, backbone: tuple[str, ...]
    ) -> Optional[list[int]]:
        """A (src, dst) path routed over the same switches, if one exists.

        Memoised per (pair, backbone, topology-version): callers fan a
        single trunk choice out to every member pair of a rack
        aggregate, so the same lookup repeats on every round.
        """
        version = self.topology.version
        if version != self._backbone_version:
            self._backbone_memo.clear()
            self._backbone_version = version
        key = (src, dst, backbone)
        try:
            result = self._backbone_memo[key]
        except KeyError:
            result = None
            for path in self.candidate_paths(src, dst):
                if self.switch_backbone(path) == backbone:
                    result = path
                    break
            self._backbone_memo[key] = result
        else:
            self._m_backbone_hits.inc()
        return result

    @property
    def recomputations(self) -> int:
        """Topology-change-driven routing recomputations so far."""
        return self.service.recomputations
