"""Pythia routing module: the maintained multi-path routing graph.

Thin adapter over the controller's topology service (§IV): ingests
topology events, keeps the k-shortest-path sets fresh, and exposes the
candidate path list per aggregate entry.  For rack-pair aggregates the
module picks, for every member server pair, the concrete path whose
switch backbone matches the aggregate's chosen trunk — one routing
decision fanned out to many rules.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sdn.topology_service import TopologyService
from repro.simnet.links import Link
from repro.simnet.topology import NodeKind, Topology


class RoutingGraph:
    """Candidate-path provider with failure-event propagation."""

    def __init__(self, topology_service: TopologyService) -> None:
        self.service = topology_service
        self.topology: Topology = topology_service.topology
        self._failure_listeners: list[Callable[[Link], None]] = []
        topology_service.on_change(self._on_change)

    def on_failure(self, fn: Callable[[Link], None]) -> None:
        """Register a link-failure listener."""
        self._failure_listeners.append(fn)

    def _on_change(self, link: Link) -> None:
        if not link.up:
            for fn in list(self._failure_listeners):
                fn(link)

    # ------------------------------------------------------------------
    def candidate_paths(self, src: str, dst: str) -> list[list[int]]:
        """k-shortest link-id paths between two servers, up links only."""
        return self.service.k_paths_links(src, dst)

    def switch_backbone(self, lids: list[int]) -> tuple[str, ...]:
        """The switch-only node subsequence of a path (the trunk choice)."""
        nodes = self.topology.path_nodes(lids)
        return tuple(
            n for n in nodes if self.topology.nodes[n].kind is NodeKind.SWITCH
        )

    def path_matching_backbone(
        self, src: str, dst: str, backbone: tuple[str, ...]
    ) -> Optional[list[int]]:
        """A (src, dst) path routed over the same switches, if one exists."""
        for path in self.candidate_paths(src, dst):
            if self.switch_backbone(path) == backbone:
                return path
        return None

    @property
    def recomputations(self) -> int:
        """Topology-change-driven routing recomputations so far."""
        return self.service.recomputations
