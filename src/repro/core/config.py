"""Pythia tunables, gathered in one place.

Defaults reflect the paper's deployment: k=2 usable inter-rack paths on
the testbed (we default k=4 so larger fabrics work unchanged), 3-5 ms
per-rule switch programming, sub-second controller statistics, and a
~10 s shuffle demand horizon for converting predicted bytes into an
expected load when packing paths.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class PythiaConfig:
    """Knobs of the Pythia control plane."""

    #: k in the k-shortest-paths routing graph (§IV).
    k_paths: int = 4
    #: seconds over which a predicted transfer's bytes are assumed to
    #: drain when estimating the load it will put on a path.
    demand_horizon: float = 10.0
    #: controller link-stats sampling period / EWMA weight.
    stats_period: float = 1.0
    stats_alpha: float = 0.5
    #: hardware flow-install latency (3-5 ms/flow, §V-C) and control RTT.
    per_rule_latency: float = 0.004
    control_rtt: float = 0.002
    #: one-way management-network latency (out-of-band, §III).
    mgmt_latency: float = 0.002
    #: rule priority for Pythia aggregates (above the ECMP default of 0).
    rule_priority: int = 10
    #: allocation algorithm: "first_fit" (the paper's heuristic),
    #: "best_fit", or "water_filling" (the §IV "further flow scheduling
    #: algorithms" extension point).
    allocation: str = "first_fit"
    #: aggregation granularity: "server_pair" (paper default) or
    #: "rack_pair" (the §IV forwarding-state-conservation variant).
    aggregation: str = "server_pair"
    #: allocation ordering within a batch: "criticality" (largest
    #: predicted volume first — §VI credits Pythia with "incorporating
    #: flow priority as a criterion ... in addition to flow sizes") or
    #: "arrival" (FIFO, the FlowComb-style variant §VI contrasts).
    ordering: str = "criticality"
    #: weighted-shuffle extension (§II's motivating observation made
    #: actionable): flows toward a skewed reducer get a fair-share
    #: weight proportional to that reducer's predicted volume share, so
    #: "the flows terminated at reducer-0 ... get five times more
    #: network capacity".  Off by default (the paper's prototype routes
    #: but does not rate-weight).
    weighted_shuffle: bool = False
    #: clamp range for per-flow weights when weighted_shuffle is on.
    weight_clamp: tuple = (0.25, 8.0)
    #: background-load forecaster: "off" (score against the measured
    #: EWMA, the paper's prototype behaviour) or a name registered in
    #: :data:`repro.forecast.models.FORECASTERS` ("ewma",
    #: "holt_winters", "ar").  Anything but "off" makes the allocator
    #: score path residuals against forecast(now + forecast_horizon).
    forecast_mode: str = "off"
    #: seconds ahead the forecaster predicts for allocation/rerouting.
    forecast_horizon: float = 5.0
    #: stats staleness beyond which forecasts degrade to the measured
    #: EWMA; None means 3 x stats_period.
    forecast_stale_after: float | None = None
    #: run the proactive elephant rerouter when forecasting is on.
    forecast_reroute: bool = True
    #: forecast utilisation above which a link counts as saturating.
    reroute_threshold: float = 0.85
    #: minimum peak-utilisation improvement a reroute must deliver.
    reroute_margin: float = 0.05
    #: transport stall charged per proactive reroute (same physics as
    #: the Hedera baseline's mid-flight path change).
    reroute_pause: float = 0.1
    #: flows with less left than this cannot amortise a reroute.
    reroute_min_bytes: float = 8e6
    #: seconds a freshly rerouted flow is left alone.
    reroute_cooldown: float = 2.0
    #: global LP re-optimization: "off" (default — the greedy
    #: incremental pipeline, bit-identical to the paper's prototype),
    #: "min_mlu" (minimise the max link utilisation over all live
    #: aggregates at once) or "max_throughput" (maximise admitted
    #: demand rate).  Anything but "off" needs scipy (the ``[lp]``
    #: extra) and periodically re-solves *every* live placement.
    lp_mode: str = "off"
    #: seconds between periodic global re-solves.
    lp_period: float = 5.0
    #: relative change in total predicted demand (vs the last solved
    #: instance) that triggers an immediate re-solve.
    lp_demand_delta: float = 0.25
    #: wall-clock solver budget in milliseconds; None derives it from
    #: the rule-install window the controller has anyway
    #: (control_rtt + per_rule_latency * rules, in ms).  The budget
    #: gates CI and the `lp.budget_exceeded` counter — it never alters
    #: simulation behaviour, so runs stay machine-independent.
    lp_budget_ms: float | None = None
    #: transport stall charged per LP-driven live-flow re-placement
    #: (same physics as reroute_pause).
    lp_reroute_pause: float = 0.1
    #: placements are only moved when the solved instance improves the
    #: objective by at least this relative margin (hysteresis against
    #: churning rules for noise-level gains).
    lp_min_improvement: float = 0.0
    #: prediction-ingestion pipeline: "off" (default — the monolithic
    #: collector → allocate → install chain, bit-identical to the
    #: original control path) or "staged" (bounded queues between
    #: explicit bind/shard/allocate/install stages; see
    #: :mod:`repro.pipeline`).
    pipeline_mode: str = "off"
    #: collector shards in staged mode; each shard owns the aggregate
    #: partitions its (job, destination) hash range maps to.
    pipeline_shards: int = 2
    #: per-queue capacity between stages (items; full queues push back).
    pipeline_queue_capacity: int = 256
    #: max items one stage pump consumes / max flow-mods merged into a
    #: single batched install transaction.
    pipeline_batch_max: int = 64
    #: drop superseded predictions for the same (job, map, reducer) key
    #: within a shard batch before folding them into aggregates.
    pipeline_coalesce: bool = True
    #: record the collector-facing message stream (predictions and
    #: reducer locations) so it can be saved as a replay tape.
    record_messages: bool = False

    def __post_init__(self) -> None:
        if self.k_paths < 1:
            raise ValueError("k_paths must be >= 1")
        if self.demand_horizon <= 0:
            raise ValueError("demand_horizon must be positive")
        if self.allocation not in ("first_fit", "best_fit", "water_filling"):
            raise ValueError(f"unknown allocation {self.allocation!r}")
        if self.aggregation not in ("server_pair", "rack_pair"):
            raise ValueError(f"unknown aggregation {self.aggregation!r}")
        if self.ordering not in ("criticality", "arrival"):
            raise ValueError(f"unknown ordering {self.ordering!r}")
        if self.forecast_mode != "off":
            # Validated against the registry lazily (import cycle: the
            # forecast package imports nothing from core, but config is
            # imported everywhere) — unknown names still fail fast at
            # construction time.
            from repro.forecast.models import FORECASTERS

            if self.forecast_mode not in FORECASTERS:
                raise ValueError(
                    f"unknown forecast_mode {self.forecast_mode!r}; "
                    f"registered: {sorted(FORECASTERS)} (or 'off')"
                )
        if self.forecast_horizon <= 0:
            raise ValueError("forecast_horizon must be positive")
        if self.forecast_stale_after is not None and self.forecast_stale_after <= 0:
            raise ValueError("forecast_stale_after must be positive")
        if not 0.0 < self.reroute_threshold <= 1.5:
            raise ValueError("reroute_threshold must be in (0, 1.5]")
        if self.reroute_margin < 0:
            raise ValueError("reroute_margin must be non-negative")
        if self.lp_mode not in ("off", "min_mlu", "max_throughput"):
            raise ValueError(
                f"unknown lp_mode {self.lp_mode!r}; "
                "choose 'off', 'min_mlu' or 'max_throughput'"
            )
        if self.lp_period <= 0:
            raise ValueError("lp_period must be positive")
        if self.lp_demand_delta <= 0:
            raise ValueError("lp_demand_delta must be positive")
        if self.lp_budget_ms is not None and self.lp_budget_ms <= 0:
            raise ValueError("lp_budget_ms must be positive")
        if self.lp_reroute_pause < 0:
            raise ValueError("lp_reroute_pause must be non-negative")
        if self.lp_min_improvement < 0:
            raise ValueError("lp_min_improvement must be non-negative")
        if self.pipeline_mode not in ("off", "staged"):
            raise ValueError(
                f"unknown pipeline_mode {self.pipeline_mode!r}; "
                "choose 'off' or 'staged'"
            )
        if self.pipeline_mode == "staged" and self.lp_mode != "off":
            # The LP re-optimizer installs rule diffs outside the
            # pipeline's transaction ledger, which would break its
            # exactly-once accounting.
            raise ValueError("pipeline_mode='staged' requires lp_mode='off'")
        if self.pipeline_shards < 1:
            raise ValueError("pipeline_shards must be >= 1")
        if self.pipeline_queue_capacity < 1:
            raise ValueError("pipeline_queue_capacity must be >= 1")
        if self.pipeline_batch_max < 1:
            raise ValueError("pipeline_batch_max must be >= 1")
