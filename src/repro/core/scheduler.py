"""PythiaScheduler: the controller application tying the chain together.

On every batch of newly-completed predictions it (re)allocates the
affected aggregates, fans each aggregate's path decision out to one
wildcard rule per member server pair, and installs the rules ahead of
the flows' arrival.  Shuffle flows that find a rule follow it; anything
else — and any flow arriving before its rule finished installing —
falls back to the default ECMP treatment, exactly as §IV scopes Pythia
to "only flows that are part of communication prediction".
"""

from __future__ import annotations

from typing import Optional

from repro.core.aggregation import (
    AggregateEntry,
    FlowAggregator,
    RackPairAggregation,
    ServerPairAggregation,
)
from repro.core.allocator import make_allocator
from repro.core.collector import PredictionCollector
from repro.core.config import PythiaConfig
from repro.core.routing import RoutingGraph
from repro.sdn.controller import Controller
from repro.sdn.policy import EcmpPolicy
from repro.sdn.programming import FlowProgrammer, Match, Rule
from repro.simnet.flows import SHUFFLE_PORT, Flow


class PythiaPolicy:
    """Path policy backed by the installed Pythia rules, ECMP fallback."""

    name = "pythia"

    def __init__(
        self,
        programmer: FlowProgrammer,
        fallback: EcmpPolicy,
        topology,
        routing,
        weigher=None,
    ) -> None:
        self._programmer = programmer
        self._fallback = fallback
        self._topology = topology
        self._routing = routing
        #: optional callable(flow) -> fair-share weight (weighted shuffle).
        self._weigher = weigher
        self.rule_hits = 0
        self.fallbacks = 0

    def _path_up(self, path: list[int]) -> bool:
        return all(self._topology.links[lid].up for lid in path)

    def _resolve(self, rule: Rule, flow: Flow) -> Optional[list[int]]:
        """Concrete path for this flow under the rule's routing decision.

        Exact-pair rules carry the flow's own path.  Prefix (rack-pair)
        rules carry a representative pair's path; the flow follows the
        same switch backbone between its own endpoints — which is
        exactly what per-switch forwarding entries would do.
        """
        links = rule.path
        if not links:
            return None
        topo = self._topology
        if (
            topo.links[links[0]].src == flow.src
            and topo.links[links[-1]].dst == flow.dst
        ):
            return list(links) if self._path_up(links) else None
        backbone = self._routing.switch_backbone(links)
        path = self._routing.path_matching_backbone(flow.src, flow.dst, backbone)
        if path is not None and self._path_up(path):
            return path
        return None

    def place(self, flow: Flow) -> list[int]:
        """Rule-table path for the flow, ECMP on miss."""
        if self._weigher is not None:
            flow.weight = self._weigher(flow)
        rule = self._programmer.lookup(flow)
        if rule is not None:
            path = self._resolve(rule, flow)
            if path is not None:
                self.rule_hits += 1
                return path
        self.fallbacks += 1
        return self._fallback.place(flow)

    def repair(self, flow: Flow) -> Optional[list[int]]:
        """Rule-table path after failure, ECMP repair on miss.

        Repair is a *controller* action (recompute + reprogram), so it
        degrades to plain data-plane ECMP re-convergence while the
        controller is down — the Pythia plugin cannot help a flow it
        cannot reach.
        """
        if not self._programmer.online:
            return self._fallback.repair(flow)
        rule = self._programmer.lookup(flow)
        if rule is not None:
            path = self._resolve(rule, flow)
            if path is not None:
                return path
        return self._fallback.repair(flow)


class PythiaScheduler:
    """The Pythia OpenDaylight plugin (collector + routing + allocation)."""

    name = "pythia"

    def __init__(self, config: Optional[PythiaConfig] = None) -> None:
        self.config = config or PythiaConfig()
        self.controller: Optional[Controller] = None
        self.collector: Optional[PredictionCollector] = None
        self.aggregator: Optional[FlowAggregator] = None
        self.routing: Optional[RoutingGraph] = None
        self.allocator = None
        #: ForecastService / ProactiveRerouter, wired in start() when
        #: config.forecast_mode != "off"; None otherwise.
        self.forecast = None
        self.rerouter = None
        #: LpReoptimizer, wired in start() when config.lp_mode != "off".
        self.lp = None
        #: PipelineCore + its inline driver, wired in start() when
        #: config.pipeline_mode == "staged"; None otherwise.
        self.pipeline = None
        self._endpoint = None
        self._policy: Optional[PythiaPolicy] = None
        self._rules_by_key: dict[tuple, list[Rule]] = {}
        self._backbone_by_key: dict[tuple, tuple[str, ...]] = {}
        self.reallocations_on_failure = 0

    # ------------------------------------------------------------------
    # ControllerApp interface
    # ------------------------------------------------------------------
    def start(self, controller: Controller) -> None:
        """Wire collector, routing, allocator and policy together."""
        self.controller = controller
        topology = controller.network.topology
        if self.config.aggregation == "rack_pair":
            agg_policy = RackPairAggregation(topology)
        else:
            agg_policy = ServerPairAggregation()
        if self.config.pipeline_mode == "staged":
            # Imported here so the monolithic path never touches the
            # pipeline package (which stays genuinely optional at rest).
            from repro.pipeline import InlinePipelineDriver, PipelineCore

            self.pipeline = PipelineCore(
                controller.sim,
                agg_policy,
                allocate=lambda entries: self.allocator.allocate(entries),
                rules_for=self._rules_for,
                programmer=controller.programmer,
                nshards=self.config.pipeline_shards,
                queue_capacity=self.config.pipeline_queue_capacity,
                batch_max=self.config.pipeline_batch_max,
                coalesce=self.config.pipeline_coalesce,
            )
            # The core owns the bind-stage collector; its router merges
            # the shard aggregator partitions for read-side consumers
            # (failure repair, diagnostics).
            self.collector = self.pipeline.collector
            self.aggregator = self.pipeline.router
            self._endpoint = InlinePipelineDriver(controller.sim, self.pipeline)
        else:
            self.aggregator = FlowAggregator(agg_policy)
            self.collector = PredictionCollector(controller.sim, self.aggregator)
            self.collector.on_ready = self._on_ready
            self._endpoint = self.collector
        if self.config.record_messages:
            self.collector.tape = []
        self.routing = RoutingGraph(controller.topology_service)
        self.routing.on_failure(self._on_link_failure)
        if self.config.forecast_mode != "off":
            # Imported here so the measured-load pipeline never touches
            # the forecast package (core must not depend on it at rest).
            from repro.forecast import ForecastService, ProactiveRerouter, make_forecaster

            forecaster = make_forecaster(
                self.config.forecast_mode,
                nlinks=len(topology.links),
                period=self.config.stats_period,
            )
            self.forecast = ForecastService(
                controller.stats_service,
                forecaster,
                horizon=self.config.forecast_horizon,
                stale_after=self.config.forecast_stale_after,
            )
            if self.config.forecast_reroute:
                self.rerouter = ProactiveRerouter(
                    controller.network,
                    controller.stats_service,
                    self.forecast,
                    controller.topology_service,
                    threshold=self.config.reroute_threshold,
                    margin=self.config.reroute_margin,
                    pause=self.config.reroute_pause,
                    min_remaining_bytes=self.config.reroute_min_bytes,
                    cooldown=self.config.reroute_cooldown,
                )
        self.allocator = make_allocator(
            self.config.allocation,
            controller.sim,
            self.routing,
            controller.stats_service,
            controller.network,
            demand_horizon=self.config.demand_horizon,
            ordering=self.config.ordering,
            forecast=self.forecast,
        )
        self._policy = PythiaPolicy(
            controller.programmer,
            EcmpPolicy(topology, k=self.config.k_paths),
            topology,
            self.routing,
            weigher=self._reducer_weight if self.config.weighted_shuffle else None,
        )
        if self.config.lp_mode != "off":
            # Imported here so the greedy pipeline never touches scipy
            # (the [lp] extra stays genuinely optional).
            from repro.core.lp_allocator import HAVE_SCIPY, LpReoptimizer

            if not HAVE_SCIPY:
                raise RuntimeError(
                    f"lp_mode={self.config.lp_mode!r} requires scipy; "
                    "install the [lp] extra (pip install 'repro[lp]')"
                )
            self.lp = LpReoptimizer(
                controller.sim,
                self.config,
                self.routing,
                self.aggregator,
                self.allocator,
                controller.network,
                controller.programmer,
                rules_for=self._rules_for,
            )
            # version bumps in *either* direction (failure and restore)
            # trigger a global re-solve; the greedy failure repair above
            # still runs first, the LP then cleans up globally.
            controller.topology_service.on_change(self.lp.on_topology_change)
            self.lp.start()

    def stop(self) -> None:
        """Halt the LP re-solve loop; the collector is event-driven."""
        if self.lp is not None:
            self.lp.stop()

    def resync(self) -> int:
        """Reconcile switch tables with current intent after an outage.

        Re-installs every rule the scheduler still wants that is not in
        the table (installs lost while the controller was down); rules
        abandoned mid-outage that are no longer intent stay dead.
        Returns the number of rules re-installed.

        In staged mode the pipeline performs the reconcile: it installs
        the same missing-intent set and additionally adopts in-flight
        transactions whose installs were abandoned mid-outage, so its
        exactly-once intent ledger stays balanced across the failover.
        """
        assert self.controller is not None
        if self.pipeline is not None:
            return self.pipeline.resync(
                rule for rules in self._rules_by_key.values() for rule in rules
            )
        programmer = self.controller.programmer
        installed = {id(r) for r in programmer._rules}
        missing = [
            rule
            for rules in self._rules_by_key.values()
            for rule in rules
            if id(rule) not in installed
            and id(rule) not in programmer._pending_rule_ids
        ]
        if missing:
            programmer.install(missing)
        return len(missing)

    # ------------------------------------------------------------------
    @property
    def policy(self) -> PythiaPolicy:
        """The PathPolicy the Hadoop layer should route through."""
        if self._policy is None:
            raise RuntimeError("scheduler not started")
        return self._policy

    @property
    def collector_endpoint(self):
        """Where the instrumentation middleware should deliver messages:
        the collector itself (monolithic) or the staged pipeline's
        ingress driver."""
        if self._endpoint is None:
            raise RuntimeError("scheduler not started")
        return self._endpoint

    # ------------------------------------------------------------------
    # control chain
    # ------------------------------------------------------------------
    def _on_ready(self, entries: list[AggregateEntry]) -> None:
        assert self.allocator is not None and self.controller is not None
        assignments = self.allocator.allocate(entries)
        rules: list[Rule] = []
        for entry, path in assignments:
            rules.extend(self._rules_for(entry, path))
        if rules:
            self.controller.programmer.install(rules)
        if self.lp is not None:
            self.lp.note_demand()

    def _rules_for(
        self,
        entry: AggregateEntry,
        path: list[int],
        removed: Optional[list[Rule]] = None,
    ) -> list[Rule]:
        """One wildcard rule per member server pair, sharing the backbone.

        Rules are churned only when the routing decision changes: an
        entry that keeps its backbone gets rules installed just for
        member pairs not yet covered, which keeps switch-programming
        traffic and table pressure down (§IV's state-conservation aim).
        When ``removed`` is given, displaced rules are collected there
        instead of being removed immediately — the LP re-optimizer
        sends the whole diff as one batched flow-mod transaction.
        """
        assert self.routing is not None and self.controller is not None
        backbone = self.routing.switch_backbone(path)
        existing = self._rules_by_key.get(entry.key, [])
        if existing and self._backbone_by_key.get(entry.key) == backbone:
            if self.config.aggregation == "rack_pair":
                return []  # the prefix rule already covers any new pair
            covered = {(r.match.src_ip, r.match.dst_ip) for r in existing}
            fresh = self._build_rules(entry, backbone, skip_covered=covered)
            existing.extend(fresh)
            return fresh
        if removed is not None:
            removed.extend(existing)
        else:
            for old in existing:
                self.controller.programmer.remove(old)
        rules = self._build_rules(entry, backbone, skip_covered=set())
        self._rules_by_key[entry.key] = rules
        self._backbone_by_key[entry.key] = backbone
        return rules

    def _build_rules(
        self,
        entry: AggregateEntry,
        backbone: tuple[str, ...],
        skip_covered: set[tuple],
    ) -> list[Rule]:
        assert self.routing is not None
        topology = self.routing.topology
        if self.config.aggregation == "rack_pair":
            # One prefix rule per rack pair: the §IV forwarding-state
            # conservation policy ("routing at the level of server
            # aggregations, e.g. racks").
            src, dst = min(entry.pairs)
            pair_path = self.routing.path_matching_backbone(src, dst, backbone)
            if pair_path is None:
                candidates = self.routing.candidate_paths(src, dst)
                if not candidates:
                    return []
                pair_path = candidates[0]

            def prefix(node: str) -> str:
                ip = topology.nodes[node].ip or node
                return ip.rsplit(".", 1)[0] + "."

            return [
                Rule(
                    match=Match(
                        src_prefix=prefix(src),
                        dst_prefix=prefix(dst),
                        src_port=SHUFFLE_PORT,
                    ),
                    path=pair_path,
                    priority=self.config.rule_priority,
                )
            ]
        rules: list[Rule] = []
        for src, dst in sorted(entry.pairs):
            src_ip = topology.nodes[src].ip
            dst_ip = topology.nodes[dst].ip
            if (src_ip, dst_ip) in skip_covered:
                continue
            pair_path = self.routing.path_matching_backbone(src, dst, backbone)
            if pair_path is None:
                candidates = self.routing.candidate_paths(src, dst)
                if not candidates:
                    continue
                pair_path = candidates[0]
            rules.append(
                Rule(
                    match=Match(
                        src_ip=src_ip,
                        dst_ip=dst_ip,
                        src_port=SHUFFLE_PORT,
                    ),
                    path=pair_path,
                    priority=self.config.rule_priority,
                )
            )
        return rules

    def _reducer_weight(self, flow) -> float:
        """Fair-share weight proportional to the reducer's volume share.

        §II: "if reducer-0 receives five times more data then ... the
        flows terminated at reducer-0 should get five times more
        network capacity (bandwidth) than reducer-1."
        """
        assert self.collector is not None
        job = flow.tags.get("job")
        reducer_id = flow.tags.get("reducer_id")
        if job is None or reducer_id is None:
            return 1.0
        volumes = [
            v for (j, _r), v in self.collector.reducer_volume.items() if j == job
        ]
        own = self.collector.reducer_volume.get((job, reducer_id))
        if not volumes or not own:
            return 1.0
        mean = sum(volumes) / len(volumes)
        if mean <= 0:
            return 1.0
        lo, hi = self.config.weight_clamp
        return float(min(hi, max(lo, own / mean)))

    def _on_link_failure(self, link) -> None:
        """Re-place aggregates routed over the failed link (§IV fault tolerance)."""
        assert self.aggregator is not None and self.allocator is not None
        if self.controller is not None and not self.controller.online:
            return  # crashed controllers cannot react; resync runs on restore
        affected = self.aggregator.entries_on_link(link.lid)
        if not affected:
            return
        self.reallocations_on_failure += len(affected)
        assignments = self.allocator.allocate(affected)
        rules: list[Rule] = []
        for entry, path in assignments:
            rules.extend(self._rules_for(entry, path))
        if rules and self.controller is not None:
            self.controller.programmer.install(rules)
