"""Pythia's actuator half: the SDN network-scheduling plugin (§III-IV).

The control chain mirrors the paper's block diagram: prediction
notifications land in the :class:`~repro.core.collector.PredictionCollector`,
are merged by the flow :mod:`~repro.core.aggregation` module into
(mapper-server, reducer-server) aggregates, routed over the
:class:`~repro.core.routing.RoutingGraph`'s k-shortest paths, packed
onto the path with the highest available bandwidth by the
:class:`~repro.core.allocator.FirstFitAllocator`, and installed as
wildcard forwarding rules by the
:class:`~repro.core.scheduler.PythiaScheduler` controller app.
"""

from repro.core.aggregation import (
    AggregateEntry,
    FlowAggregator,
    RackPairAggregation,
    ServerPairAggregation,
)
from repro.core.allocator import BestFitAllocator, FirstFitAllocator, WaterFillingAllocator
from repro.core.collector import PredictionCollector, PredictionLogEntry
from repro.core.config import PythiaConfig
from repro.core.routing import RoutingGraph
from repro.core.scheduler import PythiaPolicy, PythiaScheduler

__all__ = [
    "AggregateEntry",
    "FlowAggregator",
    "ServerPairAggregation",
    "RackPairAggregation",
    "FirstFitAllocator",
    "BestFitAllocator",
    "WaterFillingAllocator",
    "PredictionCollector",
    "PredictionLogEntry",
    "PythiaConfig",
    "RoutingGraph",
    "PythiaScheduler",
    "PythiaPolicy",
]
