"""Flow aggregation: merging predicted flows into routable entries.

§IV: "the collector aggregates all flows that emanate from a distinct
server (mapper) and are terminated to a distinct reducer server into a
single flow entry that sums up the flow sizes of its constituent
flows" — necessary because a shuffle flow's reducer-side TCP port is
unknown at prediction time, so only wildcard aggregate rules can be
installed.

The aggregation *policy* is pluggable: the paper's default is one entry
per (mapper-server, reducer-server) pair; the rack/POD-pair policy
implements §IV's forwarding-state-conservation extension ("populating
the flow aggregation module with server location-awareness and an
appropriate aggregation policy that maps flows to rack- or POD-pairs").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Protocol

from repro.simnet.topology import Topology


class AggregationPolicy(Protocol):
    """Maps a concrete (src_server, dst_server) pair to an aggregate key."""

    name: str

    def key(self, src: str, dst: str) -> tuple: ...


class ServerPairAggregation:
    """Paper default: one aggregate per server pair."""

    name = "server_pair"

    def key(self, src: str, dst: str) -> tuple:
        return (src, dst)


class RackPairAggregation:
    """Coarser aggregates keyed by (rack, rack): fewer rules on switches."""

    name = "rack_pair"

    def __init__(self, topology: Topology) -> None:
        self._rack = {
            h.name: h.rack if h.rack is not None else h.name for h in topology.hosts()
        }

    def key(self, src: str, dst: str) -> tuple:
        return (("rack", self._rack[src]), ("rack", self._rack[dst]))


@dataclass
class AggregateEntry:
    """One routable unit: the sum of predicted flows under one key."""

    key: tuple
    #: owning job id ("" when the caller didn't scope the flow) — fleet
    #: runs must never fold two jobs' predictions into one entry.
    job: str = ""
    predicted_bytes: float = 0.0
    #: concrete server pairs folded into this entry (rule targets).
    pairs: set[tuple[str, str]] = field(default_factory=set)
    #: constituent (map_id, reducer_id, bytes) members, for accounting.
    members: list[tuple[int, int, float]] = field(default_factory=list)
    path: Optional[list[int]] = None        # link ids, set by the allocator
    allocated_at: Optional[float] = None

    def add(self, src: str, dst: str, map_id: int, reducer_id: int, nbytes: float) -> None:
        """Fold one predicted flow into its aggregate entry."""
        self.pairs.add((src, dst))
        self.members.append((map_id, reducer_id, nbytes))
        self.predicted_bytes += nbytes

    @property
    def member_total(self) -> float:
        """Sum of constituent flow sizes (= predicted_bytes)."""
        return sum(b for _, _, b in self.members)


class FlowAggregator:
    """Accumulates predicted flows into aggregate entries.

    Entries touched since the last :meth:`drain_dirty` call are marked
    dirty; the scheduler drains them to run (re)allocation rounds.
    """

    def __init__(self, policy: AggregationPolicy) -> None:
        self.policy = policy
        self.entries: dict[tuple, AggregateEntry] = {}
        self._dirty: set[tuple] = set()

    def add(
        self,
        src: str,
        dst: str,
        map_id: int,
        reducer_id: int,
        nbytes: float,
        job: str = "",
    ) -> AggregateEntry:
        """Fold one predicted flow into its aggregate entry.

        ``job`` scopes the aggregate: concurrent jobs whose shuffles
        share a server pair must stay in separate entries (separate
        paths, separate rules), so the job id is prepended to the
        policy key.  The empty default keeps bare (src, dst) keys for
        callers that predate fleet runs.
        """
        key = self.policy.key(src, dst)
        if job:
            key = (job, *key)
        entry = self.entries.get(key)
        if entry is None:
            entry = AggregateEntry(key=key, job=job)
            self.entries[key] = entry
        entry.add(src, dst, map_id, reducer_id, nbytes)
        self._dirty.add(key)
        return entry

    def drain_dirty(self) -> list[AggregateEntry]:
        """Entries touched since the last drain, then reset."""
        out = [self.entries[k] for k in sorted(self._dirty, key=repr)]
        self._dirty.clear()
        return out

    def entries_on_link(self, lid: int) -> list[AggregateEntry]:
        """Aggregates whose allocated path crosses a given link."""
        return [e for e in self.entries.values() if e.path and lid in e.path]

    @property
    def total_predicted(self) -> float:
        """Total predicted bytes across all aggregates."""
        return sum(e.predicted_bytes for e in self.entries.values())
