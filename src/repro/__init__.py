"""Pythia (IPDPS 2014) reproduction: predictive SDN optimization for
Hadoop MapReduce shuffle traffic, on a simulated datacenter.

The one-call entry point is :func:`repro.experiments.run_experiment`;
the packages underneath mirror the paper's architecture:

* :mod:`repro.simnet` — fluid flow-level network substrate;
* :mod:`repro.sdn` — controller services and baseline schedulers;
* :mod:`repro.hadoop` — Hadoop 1.x MapReduce execution model;
* :mod:`repro.instrumentation` — Pythia's per-server sensing half;
* :mod:`repro.core` — Pythia's scheduling half (the contribution);
* :mod:`repro.workloads` / :mod:`repro.analysis` /
  :mod:`repro.experiments` — benchmarks, measurement, figure runners.

``python -m repro`` exposes the same functionality as a CLI.
"""

__version__ = "1.0.0"

from repro.core import PythiaConfig, PythiaScheduler
from repro.experiments import RunResult, run_experiment
from repro.hadoop import ClusterConfig, HadoopCluster, JobSpec
from repro.workloads import make_workload

__all__ = [
    "__version__",
    "run_experiment",
    "RunResult",
    "make_workload",
    "JobSpec",
    "ClusterConfig",
    "HadoopCluster",
    "PythiaConfig",
    "PythiaScheduler",
]
