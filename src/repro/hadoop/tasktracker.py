"""Per-node tasktracker: slot bookkeeping and local event emission.

The tasktracker is deliberately thin — the jobtracker drives task
placement (as in Hadoop 1.x, where the jobtracker hands work out in
heartbeat responses) — but it is the entity the Pythia instrumentation
middleware attaches to: every map start, spill write and reduce launch
on a node is observable here, "transparently to applications and the
Hadoop framework itself" (§I).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass
class TaskTracker:
    """Slot accounting for one Hadoop slave node."""

    node: str
    map_slots: int
    reduce_slots: int
    busy_maps: int = 0
    busy_reduces: int = 0
    _listeners: list[Callable[..., None]] = field(default_factory=list)

    @property
    def free_map_slots(self) -> int:
        """Map slots currently available."""
        return self.map_slots - self.busy_maps

    @property
    def free_reduce_slots(self) -> int:
        """Reduce slots currently available."""
        return self.reduce_slots - self.busy_reduces

    def acquire_map_slot(self) -> None:
        """Claim a map slot (raises when none free)."""
        if self.free_map_slots <= 0:
            raise RuntimeError(f"{self.node}: no free map slot")
        self.busy_maps += 1

    def release_map_slot(self) -> None:
        """Return a map slot."""
        if self.busy_maps <= 0:
            raise RuntimeError(f"{self.node}: map slot underflow")
        self.busy_maps -= 1

    def acquire_reduce_slot(self) -> None:
        """Claim a reduce slot (raises when none free)."""
        if self.free_reduce_slots <= 0:
            raise RuntimeError(f"{self.node}: no free reduce slot")
        self.busy_reduces += 1

    def release_reduce_slot(self) -> None:
        """Return a reduce slot."""
        if self.busy_reduces <= 0:
            raise RuntimeError(f"{self.node}: reduce slot underflow")
        self.busy_reduces -= 1

    # ------------------------------------------------------------------
    # instrumentation hook-point
    # ------------------------------------------------------------------
    def subscribe(self, fn: Callable[..., None]) -> None:
        """Register ``fn(event, **payload)`` for local task events."""
        self._listeners.append(fn)

    def emit(self, event: str, **payload: Any) -> None:
        """Broadcast a local task event to subscribers."""
        for fn in list(self._listeners):
            fn(event, **payload)
