"""Jobtracker: job-level orchestration of maps, reducers and the barrier.

Implements Hadoop 1.x's control flow as the paper describes it (§II):
map tasks run over input splits in slot waves; reducers launch once the
slowstart fraction of maps has completed; reducers *discover* finished
maps through heartbeat-paced completion-event polls (this poll latency,
plus fetch queueing, is the window in which Pythia's prediction lands);
each reducer fetches every map's partition, merges, reduces, and the
job completes when the last reducer finishes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.hadoop.cluster import HadoopCluster
from repro.hadoop.hdfs import (
    DATANODE_PORT,
    Block,
    HdfsNamespace,
    replica_preference,
)
from repro.hadoop.job import JobRun, JobSpec, TaskRecord
from repro.hadoop.shuffle import ShuffleFetcher
from repro.hadoop.spill import SpillFile, make_spill
from repro.hadoop.tasktracker import TaskTracker
from repro.simnet.engine import Simulator
from repro.simnet.flows import TCP, FiveTuple, Flow
from repro.simnet.network import Network
from repro.sdn.policy import PathPolicy


@dataclass
class _ReducerState:
    record: TaskRecord
    fetcher: ShuffleFetcher
    polling: bool = False


@dataclass
class _JobState:
    spec: JobSpec
    run: JobRun
    rng: np.random.Generator
    on_complete: Optional[Callable[[JobRun], None]]
    #: owning tenant (fleet scheduling pools slots per tenant).
    tenant: str = ""
    #: submission index — FIFO tie-break within a tenant.
    index: int = 0
    #: live map attempts / running reducers, for fair-share accounting.
    running_maps: int = 0
    running_reduces: int = 0
    map_queue: list[int] = field(default_factory=list)
    #: spill -> the time it becomes visible to reducers: the map
    #: completion is reported on the source tasktracker's *next*
    #: heartbeat, and reducers see it on their own next completion-event
    #: poll after that (Hadoop 1.x's two-hop TaskCompletionEvent path).
    spills: dict[int, tuple[float, SpillFile]] = field(default_factory=dict)
    finished_maps: int = 0
    reducers_started: bool = False
    reducer_launch_queue: list[int] = field(default_factory=list)
    reducers: dict[int, _ReducerState] = field(default_factory=dict)
    reducers_done: int = 0
    #: map id -> input block (populated when HDFS modelling is on).
    blocks: dict[int, Block] = field(default_factory=dict)
    #: map id -> live attempt descriptors (speculative execution).
    attempts: dict[int, list[dict]] = field(default_factory=dict)
    speculation_ticking: bool = False


class JobTracker:
    """Cluster master: accepts jobs, drives tasktrackers to completion."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        cluster: HadoopCluster,
        policy: PathPolicy,
        rng: np.random.Generator,
    ) -> None:
        self.sim = sim
        self.network = network
        self.cluster = cluster
        self.policy = policy
        self.rng = rng
        self.trackers: dict[str, TaskTracker] = {
            node: TaskTracker(
                node,
                map_slots=cluster.config.map_slots,
                reduce_slots=cluster.config.reduce_slots,
            )
            for node in cluster.nodes
        }
        # Each tasktracker heartbeats on its own phase; completion
        # events ride heartbeats, not an instant bus.
        hb = cluster.config.heartbeat
        self._hb_phase: dict[str, float] = {
            node: float(rng.uniform(0.0, hb)) if hb > 0 else 0.0
            for node in cluster.nodes
        }
        # Per-job RNG streams are spawned from the tracker generator's
        # own SeedSequence rather than re-seeding from a drawn integer:
        # ``default_rng(rng.integers(2**63))`` gives birthday-collision
        # odds over many jobs and no stream-independence guarantee,
        # while spawn keys are provably disjoint.
        seed_seq = getattr(rng.bit_generator, "seed_seq", None)
        if seed_seq is None or not isinstance(seed_seq, np.random.SeedSequence):
            seed_seq = np.random.SeedSequence(int(rng.integers(2**63)))
        self._seed_seq: np.random.SeedSequence = seed_seq
        #: tenant name -> (weight, map_quota, reduce_quota); populated by
        #: :meth:`configure_tenants`, defaulting to weight-1 unlimited.
        self._tenant_weights: dict[str, float] = {}
        self._tenant_map_quota: dict[str, Optional[float]] = {}
        self._tenant_reduce_quota: dict[str, Optional[float]] = {}
        self.hdfs: Optional[HdfsNamespace] = None
        if cluster.config.hdfs_enabled:
            self.hdfs = HdfsNamespace(
                racks={
                    node: cluster.topology.nodes[node].rack for node in cluster.nodes
                },
                replication=cluster.config.hdfs_replication,
            )
        self._jobs: list[_JobState] = []

    def _next_heartbeat(self, node: str, after: float) -> float:
        """First heartbeat tick of ``node`` strictly after ``after``."""
        hb = self.cluster.config.heartbeat
        if hb <= 0:
            return after
        phase = self._hb_phase[node]
        k = math.floor((after - phase) / hb) + 1
        return phase + k * hb

    # ------------------------------------------------------------------
    # instrumentation attach point
    # ------------------------------------------------------------------
    def subscribe_all(self, fn: Callable[..., None]) -> None:
        """Attach a listener to every tasktracker (what Pythia deploys)."""
        for tracker in self.trackers.values():
            tracker.subscribe(fn)

    # ------------------------------------------------------------------
    # tenants (fleet scheduling)
    # ------------------------------------------------------------------
    def configure_tenants(self, tenants) -> None:
        """Register tenant fair-share weights and slot quotas.

        ``tenants`` is a sequence of objects with ``name``, ``weight``
        and optional ``map_quota``/``reduce_quota`` attributes (see
        :class:`repro.workloads.cluster.Tenant`).  Unregistered tenants
        schedule at weight 1.0 with no quota.
        """
        for t in tenants:
            self._tenant_weights[t.name] = float(t.weight)
            self._tenant_map_quota[t.name] = getattr(t, "map_quota", None)
            self._tenant_reduce_quota[t.name] = getattr(t, "reduce_quota", None)

    def _tenant_usage(self, kind: str) -> dict[str, int]:
        """Live task count per tenant (``kind`` is 'map' or 'reduce')."""
        usage: dict[str, int] = {}
        for st in self._jobs:
            n = st.running_maps if kind == "map" else st.running_reduces
            usage[st.tenant] = usage.get(st.tenant, 0) + n
        return usage

    def _under_quota(self, tenant: str, kind: str, usage: dict[str, int]) -> bool:
        quota = (self._tenant_map_quota if kind == "map"
                 else self._tenant_reduce_quota).get(tenant)
        if quota is None:
            return True
        total = (self.cluster.total_map_slots if kind == "map"
                 else self.cluster.total_reduce_slots)
        return usage.get(tenant, 0) + 1 <= quota * total

    def _pick_job(self, kind: str, eligible: list[_JobState]) -> Optional[_JobState]:
        """Weighted fair share: lowest usage/weight tenant first, then
        FIFO by submission index (the Hadoop Fair Scheduler shape)."""
        usage = self._tenant_usage(kind)
        candidates = [
            st for st in eligible if self._under_quota(st.tenant, kind, usage)
        ]
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda st: (
                usage.get(st.tenant, 0) / self._tenant_weights.get(st.tenant, 1.0),
                st.tenant,
                st.index,
            ),
        )

    # ------------------------------------------------------------------
    # job admission
    # ------------------------------------------------------------------
    def submit(
        self,
        spec: JobSpec,
        on_complete: Optional[Callable[[JobRun], None]] = None,
        *,
        tenant: str = "",
        seed_key: Optional[int] = None,
    ) -> JobRun:
        """Accept a job; returns its live JobRun record.

        ``seed_key`` pins the job's RNG stream to an explicit
        ``SeedSequence`` spawn key instead of the next sequential spawn:
        key ``k`` yields exactly the stream the ``k``-th keyless
        submission would have received, so a fleet that assigns stable
        keys gets submission-order-independent per-job randomness (and a
        one-job fleet with key 0 is bit-identical to the solo path).
        """
        run = JobRun(
            spec=spec,
            job_id=f"job_{len(self._jobs):04d}_{spec.name}",
            tenant=tenant,
            submitted_at=self.sim.now,
        )
        if seed_key is None:
            job_seed = self._seed_seq.spawn(1)[0]
        else:
            job_seed = np.random.SeedSequence(
                entropy=self._seed_seq.entropy,
                spawn_key=(*self._seed_seq.spawn_key, int(seed_key)),
                pool_size=self._seed_seq.pool_size,
            )
        state = _JobState(
            spec=spec,
            run=run,
            rng=np.random.default_rng(job_seed),
            on_complete=on_complete,
            tenant=tenant,
            index=len(self._jobs),
            map_queue=list(range(spec.num_maps)),
            reducer_launch_queue=list(range(spec.num_reducers)),
        )
        if self.hdfs is not None:
            sizes = [spec.block_bytes(i) for i in range(spec.num_maps)]
            blocks = self.hdfs.create_file(run.job_id, sizes, state.rng)
            state.blocks = dict(enumerate(blocks))
        self._jobs.append(state)
        self.sim.schedule(0.0, self._dispatch_maps)
        if self.cluster.config.speculative_execution:
            state.speculation_ticking = True
            self.sim.schedule(
                self.cluster.config.heartbeat, self._speculation_tick, state
            )
        return run

    # ------------------------------------------------------------------
    # map side
    # ------------------------------------------------------------------
    def _dispatch_maps(self) -> None:
        # Round-robin placement over nodes with free slots; each free
        # slot goes to the fair-share-picked job's best-locality pending
        # map (node-local, then rack-local, then head of queue — the
        # jobtracker's classic locality preference).  With a single live
        # job this replays the classic per-job assignment loop exactly,
        # which the golden traces pin down.
        progress = True
        while progress:
            progress = False
            for node in self.cluster.nodes:
                eligible = [st for st in self._jobs if st.map_queue]
                if not eligible:
                    return
                tracker = self.trackers[node]
                if tracker.free_map_slots > 0:
                    state = self._pick_job("map", eligible)
                    if state is None:
                        continue  # every queued tenant is at quota
                    map_id = self._pick_map(state, node)
                    state.map_queue.remove(map_id)
                    self._start_map(state, map_id, node)
                    progress = True

    def _pick_map(self, state: _JobState, node: str) -> int:
        if self.hdfs is None or not state.blocks:
            return state.map_queue[0]
        return min(
            state.map_queue,
            key=lambda m: (replica_preference(self.hdfs, state.blocks[m], node), m),
        )

    def _jitter(self, state: _JobState) -> float:
        j = state.spec.duration_jitter
        return 1.0 + float(state.rng.uniform(-j, j)) if j > 0 else 1.0

    def _start_map(
        self, state: _JobState, map_id: int, node: str, speculative: bool = False
    ) -> None:
        tracker = self.trackers[node]
        tracker.acquire_map_slot()
        state.running_maps += 1
        attempt = {"node": node, "start": self.sim.now, "event": None, "dead": False}
        state.attempts.setdefault(map_id, []).append(attempt)
        if not speculative:
            record = TaskRecord(kind="map", task_id=map_id, node=node, start=self.sim.now)
            state.run.maps[map_id] = record
        else:
            state.run.speculative_attempts += 1
        tracker.emit("map_start", job=state.run, map_id=map_id, node=node)
        extra_read = 0.0
        if self.hdfs is not None and map_id in state.blocks:
            block = state.blocks[map_id]
            locality = self.hdfs.locality(block, node)
            state.run.map_locality[locality] = state.run.map_locality.get(locality, 0) + 1
            if node in block.replicas:
                extra_read = block.size / self.cluster.config.hdfs_read_rate
            else:
                self._start_block_read(state, map_id, node, block)
                return
        self._begin_map_compute(state, map_id, node, extra_read)

    def _start_block_read(
        self, state: _JobState, map_id: int, node: str, block: Block
    ) -> None:
        """Pull the input block from the closest replica over the network."""
        assert self.hdfs is not None
        src = self.hdfs.closest_replica(block, node)
        flow = Flow(
            src=src,
            dst=node,
            size=block.size * (1.0 + self.cluster.config.wire_overhead),
            five_tuple=FiveTuple(
                self.cluster.node_ip(src),
                self.cluster.node_ip(node),
                DATANODE_PORT,
                int(state.rng.integers(32768, 61000)),
                TCP,
            ),
            tags={"kind": "hdfs_read", "job": state.run.job_id, "map_id": map_id},
        )
        # HDFS reads are not predicted traffic: default network control.
        path = self.policy.place(flow)
        self.network.start_flow(
            flow,
            path,
            on_complete=lambda _f: self._begin_map_compute(state, map_id, node, 0.0),
        )

    def _begin_map_compute(
        self, state: _JobState, map_id: int, node: str, extra_read: float
    ) -> None:
        attempt = self._attempt(state, map_id, node)
        rec = state.run.maps.get(map_id)
        if (rec is not None and rec.end is not None) or (attempt and attempt["dead"]):
            # another attempt already finished this map (e.g. while our
            # HDFS read was in flight) — give the slot back
            self.trackers[node].release_map_slot()
            state.running_maps -= 1
            return
        spec = state.spec
        cfg = self.cluster.config
        duration = extra_read + (
            (cfg.task_startup + spec.map_base + spec.block_bytes(map_id) / spec.map_rate)
            * self._jitter(state)
            * (1.0 + cfg.instrumentation_inflation)
            * cfg.node_slowdown.get(node, 1.0)
        )
        event = self.sim.schedule(duration, self._finish_map, state, map_id, node)
        if attempt is not None:
            attempt["event"] = event

    def _attempt(self, state: _JobState, map_id: int, node: str) -> Optional[dict]:
        for attempt in state.attempts.get(map_id, []):
            if attempt["node"] == node and not attempt["dead"]:
                return attempt
        return None

    def _finish_map(self, state: _JobState, map_id: int, node: str) -> None:
        record = state.run.maps[map_id]
        if record.end is not None:
            # a sibling attempt won while this one was finishing
            self.trackers[node].release_map_slot()
            state.running_maps -= 1
            return
        record.end = self.sim.now
        if record.node != node:
            record.node = node  # a speculative attempt won
        # kill sibling attempts (Hadoop kills the losing attempt)
        for attempt in state.attempts.get(map_id, []):
            if attempt["node"] == node or attempt["dead"]:
                continue
            attempt["dead"] = True
            if attempt["event"] is not None:
                attempt["event"].cancel()
                self.trackers[attempt["node"]].release_map_slot()
                state.running_maps -= 1
        spec = state.spec
        spill = make_spill(
            map_id=map_id,
            node=node,
            created_at=self.sim.now,
            map_output_bytes=spec.block_bytes(map_id) * spec.map_output_ratio,
            reducer_weights=spec.reducer_weights,  # type: ignore[arg-type]
            rng=state.rng,
            sigma=spec.per_map_sigma,
        )
        # Reducers learn of this map on their first poll after the
        # source tasktracker's next heartbeat delivers the event.
        visible_at = self._next_heartbeat(node, self.sim.now)
        state.spills[map_id] = (visible_at, spill)
        state.finished_maps += 1
        self.trackers[node].emit("spill", job=state.run, spill=spill)
        self.trackers[node].release_map_slot()
        state.running_maps -= 1
        self._dispatch_maps()
        if not state.reducers_started and (
            state.finished_maps / spec.num_maps >= self.cluster.config.slowstart
        ):
            state.reducers_started = True
        self._dispatch_reducers()

    # ------------------------------------------------------------------
    # speculative execution
    # ------------------------------------------------------------------
    def _speculation_tick(self, state: _JobState) -> None:
        if not state.speculation_ticking:
            return
        cfg = self.cluster.config
        if state.finished_maps >= state.spec.num_maps:
            state.speculation_ticking = False
            return
        done = [
            r.duration for r in state.run.maps.values() if r.duration is not None
        ]
        if len(done) >= cfg.speculative_min_completed:
            median = sorted(done)[len(done) // 2]
            threshold = cfg.speculative_threshold * median
            for map_id, record in state.run.maps.items():
                if record.end is not None:
                    continue
                live = [a for a in state.attempts.get(map_id, []) if not a["dead"]]
                if len(live) != 1:
                    continue  # already speculating (or nothing to do)
                if self.sim.now - live[0]["start"] <= threshold:
                    continue
                node = self._free_map_node(exclude=live[0]["node"])
                if node is not None:
                    self._start_map(state, map_id, node, speculative=True)
        self.sim.schedule(cfg.heartbeat, self._speculation_tick, state)

    def _free_map_node(self, exclude: str) -> Optional[str]:
        candidates = [
            n
            for n in self.cluster.nodes
            if n != exclude and self.trackers[n].free_map_slots > 0
        ]
        if not candidates:
            return None
        # prefer the fastest known node (lowest slowdown factor)
        slowdown = self.cluster.config.node_slowdown
        return min(candidates, key=lambda n: (slowdown.get(n, 1.0), n))

    # ------------------------------------------------------------------
    # reduce side
    # ------------------------------------------------------------------
    def _dispatch_reducers(self) -> None:
        """Hand each free reduce slot to the fair-share-picked job whose
        slowstart has fired.  Single live job: the classic launch loop."""
        while True:
            eligible = [
                st for st in self._jobs
                if st.reducers_started and st.reducer_launch_queue
            ]
            if not eligible:
                return
            node = self._next_reduce_node()
            if node is None:
                return  # wait for a slot to free up
            state = self._pick_job("reduce", eligible)
            if state is None:
                return  # every waiting tenant is at quota
            self._start_reducer(state, state.reducer_launch_queue.pop(0), node)

    def _next_reduce_node(self) -> Optional[str]:
        candidates = [n for n in self.cluster.nodes if self.trackers[n].free_reduce_slots > 0]
        if not candidates:
            return None
        # Round-robin: prefer the node with the most free slots then name.
        return max(candidates, key=lambda n: (self.trackers[n].free_reduce_slots, n))

    def _start_reducer(self, state: _JobState, reducer_id: int, node: str) -> None:
        tracker = self.trackers[node]
        tracker.acquire_reduce_slot()
        state.running_reduces += 1
        record = TaskRecord(kind="reduce", task_id=reducer_id, node=node, start=self.sim.now)
        record.shuffle_start = self.sim.now
        state.run.reduces[reducer_id] = record
        fetcher = ShuffleFetcher(
            sim=self.sim,
            network=self.network,
            policy=self.policy,
            cluster=self.cluster,
            run=state.run,
            reducer_id=reducer_id,
            node=node,
            num_maps=state.spec.num_maps,
            rng=state.rng,
            on_all_fetched=lambda s=state, r=reducer_id: self._shuffle_complete(s, r),
        )
        rstate = _ReducerState(record=record, fetcher=fetcher, polling=True)
        state.reducers[reducer_id] = rstate
        tracker.emit("reduce_launch", job=state.run, reducer_id=reducer_id, node=node)
        # Reduce-attempt startup (localisation + JVM + copier init),
        # then the first completion-event poll lands within one
        # heartbeat of the reducer's tasktracker.
        delay = self.cluster.config.reduce_startup + float(
            state.rng.uniform(0.0, self.cluster.config.heartbeat)
        )
        self.sim.schedule(delay, self._poll_completion_events, state, reducer_id)

    def _poll_completion_events(self, state: _JobState, reducer_id: int) -> None:
        rstate = state.reducers[reducer_id]
        if not rstate.polling:
            return
        visible = [
            spill
            for visible_at, spill in state.spills.values()
            if visible_at <= self.sim.now
        ]
        rstate.fetcher.offer(visible)
        if rstate.fetcher.all_offered:
            rstate.polling = False
            return
        self.sim.schedule(
            self.cluster.config.heartbeat, self._poll_completion_events, state, reducer_id
        )

    def _shuffle_complete(self, state: _JobState, reducer_id: int) -> None:
        rstate = state.reducers[reducer_id]
        record = rstate.record
        record.shuffle_end = self.sim.now
        cfg = self.cluster.config
        merge_time = rstate.fetcher.total_app_bytes / cfg.merge_rate
        self.sim.schedule(merge_time, self._start_reduce_compute, state, reducer_id)

    def _start_reduce_compute(self, state: _JobState, reducer_id: int) -> None:
        rstate = state.reducers[reducer_id]
        rstate.record.sort_end = self.sim.now
        spec = state.spec
        duration = (
            (spec.reduce_base + rstate.fetcher.total_app_bytes / spec.reduce_rate)
            * self._jitter(state)
        )
        self.sim.schedule(duration, self._finish_reducer, state, reducer_id)

    def _finish_reducer(self, state: _JobState, reducer_id: int) -> None:
        rstate = state.reducers[reducer_id]
        rstate.record.end = self.sim.now
        self.trackers[rstate.record.node].release_reduce_slot()
        state.running_reduces -= 1
        state.reducers_done += 1
        self._dispatch_reducers()
        if state.reducers_done >= state.spec.num_reducers:
            state.run.completed_at = self.sim.now
            if state.on_complete is not None:
                state.on_complete(state.run)
