"""Cluster configuration: nodes, slots, and task cost models.

Defaults mirror the paper's testbed (§V-A): 10 servers with 12 cores
each, two racks, intermediate data held *in memory* ("we decided to
configure Hadoop to store its intermediate data in memory") so disk
never bottlenecks the shuffle — which is why local fetches run at
memory speed here and the network is the contended resource.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simnet.topology import Topology

MiB = 1024.0 * 1024.0
GiB = 1024.0 * MiB


@dataclass
class ClusterConfig:
    """Per-node Hadoop configuration and cost model.

    Rates are bytes/second of one task slot.  ``heartbeat`` is the
    tasktracker→jobtracker reporting period that gates how quickly
    reducers learn about finished maps — the dominant term of the
    map-finish→fetch-start gap that gives Pythia its prediction lead
    (§V-C "the time gap between a map task finish event and the event
    of a reducer task starting to fetch").
    """

    map_slots: int = 8
    reduce_slots: int = 4
    #: JVM spawn + task setup time for map attempts, seconds.
    task_startup: float = 1.0
    #: reduce-attempt startup (job-jar localisation, JVM spawn, shuffle
    #: copier init) before the first completion-event poll, seconds.
    #: Hadoop 1.x reduce attempts routinely took several seconds to
    #: come up; together with the two-hop heartbeat event path this is
    #: the map-finish-to-fetch-start gap that gives Pythia its
    #: multi-second prediction lead (§V-C).
    reduce_startup: float = 4.0
    #: tasktracker heartbeat / completion-event poll period, seconds.
    heartbeat: float = 3.0
    #: fraction of maps that must finish before reducers launch
    #: (mapred.reduce.slowstart.completed.maps; Hadoop 1.x default 0.05).
    slowstart: float = 0.05
    #: concurrent fetches per reducer (mapred.reduce.parallel.copies).
    parallel_copies: int = 5
    #: loopback rate for map outputs fetched on the same node (in-memory).
    local_fetch_rate: float = 2.0 * GiB
    #: sorted-merge throughput once a reducer holds all segments.
    merge_rate: float = 512.0 * MiB
    #: actual transport overhead on the wire (TCP/IP headers seen by
    #: NetFlow at L3: 1500/1460 MSS framing).
    wire_overhead: float = 0.027
    #: multiplicative task-duration inflation applied when the Pythia
    #: instrumentation middleware is active (its 2-5 % CPU cost, §V-C).
    instrumentation_inflation: float = 0.0
    #: model HDFS input reads (rack-aware placement, locality-aware map
    #: scheduling, network block fetches for non-local tasks).  Off by
    #: default: the paper's evaluation holds intermediate data in memory
    #: and its input reads are not on the measured path.
    hdfs_enabled: bool = False
    hdfs_replication: int = 3
    #: streaming rate of a local replica read (in-memory era disks/page
    #: cache; only charged when hdfs_enabled).
    hdfs_read_rate: float = 400.0 * MiB
    #: speculative execution of straggling map attempts (Hadoop 1.x's
    #: mapred.map.tasks.speculative.execution).  A duplicate attempt is
    #: launched on another node once a map has run longer than
    #: ``speculative_threshold`` times the median completed map; the
    #: first attempt to finish wins, the loser is killed.
    speculative_execution: bool = False
    speculative_threshold: float = 1.5
    #: minimum completed maps before speculation may trigger.
    speculative_min_completed: int = 5
    #: per-node task-duration multipliers (heterogeneity / straggler
    #: injection; nodes absent from the map run at factor 1.0).
    node_slowdown: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0 <= self.slowstart <= 1:
            raise ValueError("slowstart must be in [0, 1]")
        if self.parallel_copies < 1:
            raise ValueError("parallel_copies must be >= 1")


@dataclass
class HadoopCluster:
    """A set of topology hosts acting as Hadoop slaves."""

    topology: Topology
    config: ClusterConfig = field(default_factory=ClusterConfig)
    nodes: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.nodes:
            self.nodes = sorted(h.name for h in self.topology.worker_hosts())
        unknown = [n for n in self.nodes if n not in self.topology.nodes]
        if unknown:
            raise KeyError(f"nodes not in topology: {unknown}")

    def node_ip(self, node: str) -> str:
        """Network address of one slave node."""
        ip = self.topology.nodes[node].ip
        if ip is None:
            raise ValueError(f"{node} has no address")
        return ip

    @property
    def total_map_slots(self) -> int:
        """Cluster-wide map slot count."""
        return self.config.map_slots * len(self.nodes)

    @property
    def total_reduce_slots(self) -> int:
        """Cluster-wide reduce slot count."""
        return self.config.reduce_slots * len(self.nodes)
