"""Hadoop 1.x MapReduce execution substrate.

This package stands in for the paper's Hadoop 1.1.2 deployment: a
jobtracker/tasktracker two-level control hierarchy
(:mod:`repro.hadoop.jobtracker`, :mod:`repro.hadoop.tasktracker`), map
tasks that spill partitioned intermediate output at completion
(:mod:`repro.hadoop.spill`), configurable key-space skew
(:mod:`repro.hadoop.partition`), slowstart-gated reducer launch, and a
shuffle service with Hadoop's parallel-copy fetch limit and full-fetch
barrier (:mod:`repro.hadoop.shuffle`).
"""

from repro.hadoop.cluster import ClusterConfig, HadoopCluster
from repro.hadoop.job import JobSpec, JobRun, TaskRecord, FetchRecord
from repro.hadoop.jobtracker import JobTracker
from repro.hadoop.partition import (
    dirichlet_weights,
    explicit_weights,
    uniform_weights,
    zipf_weights,
)
from repro.hadoop.spill import SpillFile

__all__ = [
    "ClusterConfig",
    "HadoopCluster",
    "JobSpec",
    "JobRun",
    "TaskRecord",
    "FetchRecord",
    "JobTracker",
    "SpillFile",
    "uniform_weights",
    "zipf_weights",
    "dirichlet_weights",
    "explicit_weights",
]
