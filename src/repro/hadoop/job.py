"""Job specification and execution records.

A :class:`JobSpec` is the static description of a MapReduce workload
(sizes, skew, cost model); a :class:`JobRun` is the dynamic trace of
one execution — task and fetch records detailed enough to rebuild the
paper's Figure 1a sequence diagram and all job-level metrics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.hadoop.partition import uniform_weights

MiB = 1024.0 * 1024.0
DEFAULT_BLOCK = 128.0 * MiB


@dataclass
class JobSpec:
    """Static description of a MapReduce job.

    ``map_rate``/``reduce_rate`` are the per-slot processing rates in
    bytes/second and encode how compute-heavy the application is —
    sort streams at high rate (network-bound), Nutch indexing crunches
    slowly per byte (compute-bound with many small shuffle flows,
    exactly the contrast §V-B draws between Figures 3 and 4).
    """

    name: str
    input_bytes: float
    num_reducers: int
    block_size: float = DEFAULT_BLOCK
    #: intermediate bytes emitted per input byte (sort: 1.0).
    map_output_ratio: float = 1.0
    #: global per-reducer share of intermediate data (the job skew).
    reducer_weights: Optional[np.ndarray] = None
    #: log-normal sigma of each map's deviation from the global skew.
    per_map_sigma: float = 0.15
    #: per-slot map processing rate, bytes/s.
    map_rate: float = 32.0 * MiB
    #: fixed map-task cost on top of the per-byte cost, seconds.
    map_base: float = 0.5
    #: per-slot reduce processing rate, bytes/s.
    reduce_rate: float = 64.0 * MiB
    reduce_base: float = 0.5
    #: uniform +- fraction applied to each task duration.
    duration_jitter: float = 0.1
    #: header overhead the Pythia decoder *assumes* when converting
    #: application bytes to wire volume (its slight over-estimate is
    #: the source of Figure 5's 3-7 % gap).
    predicted_overhead: float = 0.08

    def __post_init__(self) -> None:
        if self.input_bytes <= 0 or self.block_size <= 0:
            raise ValueError("input and block size must be positive")
        if self.num_reducers < 1:
            raise ValueError("need at least one reducer")
        if self.reducer_weights is None:
            self.reducer_weights = uniform_weights(self.num_reducers)
        self.reducer_weights = np.asarray(self.reducer_weights, dtype=float)
        if len(self.reducer_weights) != self.num_reducers:
            raise ValueError("reducer_weights length != num_reducers")

    @property
    def num_maps(self) -> int:
        """Map task count (ceil of input over block size)."""
        return max(1, math.ceil(self.input_bytes / self.block_size))

    def block_bytes(self, index: int) -> float:
        """Input split size for map ``index`` (last split may be short)."""
        if not 0 <= index < self.num_maps:
            raise IndexError(index)
        if index < self.num_maps - 1:
            return self.block_size
        return self.input_bytes - self.block_size * (self.num_maps - 1)

    @property
    def intermediate_bytes(self) -> float:
        """Total map-output bytes the job will shuffle."""
        return self.input_bytes * self.map_output_ratio


@dataclass
class TaskRecord:
    """One task attempt's lifecycle timestamps."""

    kind: str                     # "map" | "reduce"
    task_id: int
    node: str
    start: Optional[float] = None
    end: Optional[float] = None
    # reduce-only phase boundaries
    shuffle_start: Optional[float] = None
    shuffle_end: Optional[float] = None
    sort_end: Optional[float] = None

    @property
    def duration(self) -> Optional[float]:
        """Task wall time, or None before completion."""
        if self.start is None or self.end is None:
            return None
        return self.end - self.start


@dataclass
class FetchRecord:
    """One shuffle fetch (reducer pulling one map's partition)."""

    map_id: int
    reducer_id: int
    src: str
    dst: str
    app_bytes: float
    wire_bytes: float
    local: bool
    enqueued: float
    start: Optional[float] = None
    end: Optional[float] = None
    flow_id: Optional[int] = None


@dataclass
class JobRun:
    """Execution trace of one job.

    ``job_id`` is assigned by the jobtracker at submission and is
    unique per run (Hadoop's job_yyyyMMddHHmm_NNNN analogue) — the
    collector keys prediction state on it so that two submissions of
    the same spec never alias.
    """

    spec: JobSpec
    job_id: str = ""
    #: owning tenant in a multi-tenant fleet ("" for solo runs).
    tenant: str = ""
    submitted_at: float = 0.0
    completed_at: Optional[float] = None
    maps: dict[int, TaskRecord] = field(default_factory=dict)
    reduces: dict[int, TaskRecord] = field(default_factory=dict)
    fetches: list[FetchRecord] = field(default_factory=list)
    #: map-input locality tally when HDFS modelling is enabled
    #: (node_local / rack_local / off_rack counts).
    map_locality: dict[str, int] = field(default_factory=dict)
    #: duplicate map attempts launched by speculative execution.
    speculative_attempts: int = 0

    @property
    def jct(self) -> float:
        """Job completion time in seconds."""
        if self.completed_at is None:
            raise RuntimeError(f"job {self.spec.name!r} has not completed")
        return self.completed_at - self.submitted_at

    @property
    def started_at(self) -> Optional[float]:
        """First task-start timestamp (queueing delay = started - submitted)."""
        starts = [t.start for t in self.maps.values() if t.start is not None]
        return min(starts) if starts else None

    @property
    def map_phase_span(self) -> tuple[float, float]:
        """(first map start, last map end)."""
        starts = [t.start for t in self.maps.values() if t.start is not None]
        ends = [t.end for t in self.maps.values() if t.end is not None]
        return (min(starts), max(ends))

    @property
    def shuffle_span(self) -> tuple[float, float]:
        """(first fetch start, last fetch end)."""
        starts = [f.start for f in self.fetches if f.start is not None]
        ends = [f.end for f in self.fetches if f.end is not None]
        return (min(starts), max(ends))

    def reducer_bytes(self) -> np.ndarray:
        """Total application bytes fetched per reducer (skew evidence)."""
        out = np.zeros(self.spec.num_reducers)
        for f in self.fetches:
            out[f.reducer_id] += f.app_bytes
        return out

    def remote_fraction(self) -> float:
        """Fraction of shuffle bytes that crossed the network."""
        total = sum(f.app_bytes for f in self.fetches)
        remote = sum(f.app_bytes for f in self.fetches if not f.local)
        return remote / total if total else 0.0
