"""HDFS model: rack-aware block placement and locality-aware map input.

The paper's testbed reads job input from HDFS ("intra-rack data
communication, e.g. shuffling or HDFS block movement, occurs via ...
ToR switches", §III) but holds intermediate data in memory, so HDFS is
not on the critical path of its experiments.  The model here exists for
completeness and for workloads that *do* want input-read traffic:

* :class:`HdfsNamespace` — files as block lists with the classic
  rack-aware replica placement (first replica on the writer's node,
  second on a different rack, third alongside the second);
* :func:`replica_preference` — node-local / rack-local / off-rack
  classification used by the jobtracker's locality-aware map
  scheduling;
* when enabled (``ClusterConfig.hdfs_enabled``), non-local map tasks
  pull their block over the network (DataNode port 50010) before
  computing — traffic Pythia deliberately does *not* manage ("the
  Pythia flow module handles only flows that are part of communication
  prediction", §IV), so it rides the default ECMP treatment.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

#: Hadoop 1.x DataNode data-transfer port.
DATANODE_PORT = 50010

NODE_LOCAL = "node_local"
RACK_LOCAL = "rack_local"
OFF_RACK = "off_rack"

_block_ids = itertools.count(1)


@dataclass(frozen=True)
class Block:
    """One HDFS block and the nodes holding its replicas."""

    block_id: int
    size: float
    replicas: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.replicas:
            raise ValueError("a block needs at least one replica")
        if len(set(self.replicas)) != len(self.replicas):
            raise ValueError("replicas must be on distinct nodes")


@dataclass
class HdfsNamespace:
    """Minimal NameNode: files -> blocks -> replica locations."""

    racks: dict[str, Optional[int]]          # node -> rack id
    replication: int = 3
    files: dict[str, list[Block]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.replication < 1:
            raise ValueError("replication must be >= 1")
        if not self.racks:
            raise ValueError("no datanodes")

    # ------------------------------------------------------------------
    def create_file(
        self,
        name: str,
        block_sizes: Sequence[float],
        rng: np.random.Generator,
    ) -> list[Block]:
        """Write a file: one placement decision per block.

        Placement mirrors HDFS's default policy: first replica on a
        (rotating) writer node, second on a node in a *different* rack,
        third in the same rack as the second, extras random.
        """
        if name in self.files:
            raise ValueError(f"file {name!r} exists")
        nodes = sorted(self.racks)
        blocks: list[Block] = []
        for i, size in enumerate(block_sizes):
            writer = nodes[i % len(nodes)]
            replicas = [writer]
            if self.replication >= 2:
                remote = self._pick(
                    rng, [n for n in nodes if self.racks[n] != self.racks[writer]], replicas
                ) or self._pick(rng, nodes, replicas)
                if remote:
                    replicas.append(remote)
            if self.replication >= 3 and len(replicas) >= 2:
                buddy_rack = self.racks[replicas[1]]
                third = self._pick(
                    rng,
                    [n for n in nodes if self.racks[n] == buddy_rack],
                    replicas,
                ) or self._pick(rng, nodes, replicas)
                if third:
                    replicas.append(third)
            while len(replicas) < min(self.replication, len(nodes)):
                extra = self._pick(rng, nodes, replicas)
                if not extra:
                    break
                replicas.append(extra)
            blocks.append(Block(next(_block_ids), float(size), tuple(replicas)))
        self.files[name] = blocks
        return blocks

    @staticmethod
    def _pick(
        rng: np.random.Generator, candidates: list[str], exclude: list[str]
    ) -> Optional[str]:
        pool = [c for c in candidates if c not in exclude]
        if not pool:
            return None
        return pool[int(rng.integers(len(pool)))]

    # ------------------------------------------------------------------
    def blocks(self, name: str) -> list[Block]:
        """Block list of a file."""
        return self.files[name]

    def locality(self, block: Block, node: str) -> str:
        """Classify reading ``block`` from ``node``."""
        if node in block.replicas:
            return NODE_LOCAL
        node_rack = self.racks.get(node)
        if any(self.racks.get(r) == node_rack for r in block.replicas):
            return RACK_LOCAL
        return OFF_RACK

    def closest_replica(self, block: Block, node: str) -> str:
        """Best replica to read from: local node, then same rack, then any."""
        if node in block.replicas:
            return node
        node_rack = self.racks.get(node)
        same_rack = [r for r in block.replicas if self.racks.get(r) == node_rack]
        if same_rack:
            return sorted(same_rack)[0]
        return sorted(block.replicas)[0]


def replica_preference(namespace: HdfsNamespace, block: Block, node: str) -> int:
    """Lower is better: 0 node-local, 1 rack-local, 2 off-rack."""
    return {NODE_LOCAL: 0, RACK_LOCAL: 1, OFF_RACK: 2}[namespace.locality(block, node)]
