"""Reducer partition-weight models (key-space skew).

MapReduce skew — "non-uniform data distribution in the key space"
(§II) — is what makes some reducers receive multiples of others'
shuffle volume (Figure 1a's reducer-0 gets 5x reducer-1).  These
generators produce the global per-reducer weight vector; per-map
variation is layered on in :mod:`repro.hadoop.spill`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def _normalize(w: np.ndarray) -> np.ndarray:
    w = np.asarray(w, dtype=float)
    if w.ndim != 1 or w.size == 0:
        raise ValueError("weights must be a non-empty 1-D vector")
    if (w < 0).any():
        raise ValueError("weights must be non-negative")
    total = w.sum()
    if total <= 0:
        raise ValueError("weights must not all be zero")
    return w / total


def uniform_weights(num_reducers: int) -> np.ndarray:
    """No skew: every reducer receives the same share."""
    if num_reducers < 1:
        raise ValueError("need at least one reducer")
    return np.full(num_reducers, 1.0 / num_reducers)


def zipf_weights(num_reducers: int, alpha: float = 1.0) -> np.ndarray:
    """Zipfian skew: reducer r gets a share proportional to 1/(r+1)^alpha.

    ``alpha=0`` degenerates to uniform; ``alpha~1`` mirrors the heavy
    key skew measured in production MapReduce traces.
    """
    if alpha < 0:
        raise ValueError("alpha must be >= 0")
    ranks = np.arange(1, num_reducers + 1, dtype=float)
    return _normalize(ranks**-alpha)


def dirichlet_weights(
    num_reducers: int, concentration: float, rng: np.random.Generator
) -> np.ndarray:
    """Random skew: lower concentration = burstier shares."""
    if concentration <= 0:
        raise ValueError("concentration must be > 0")
    return _normalize(rng.dirichlet(np.full(num_reducers, concentration)))


def explicit_weights(shares: Sequence[float]) -> np.ndarray:
    """Caller-specified shares (e.g. Figure 1a's 5:1 two-reducer split)."""
    return _normalize(np.asarray(shares, dtype=float))


def perturbed(
    weights: np.ndarray, rng: np.random.Generator, sigma: float = 0.2
) -> np.ndarray:
    """One map task's view of the global weights (log-normal noise).

    Individual map tasks see different slices of the input, so their
    per-reducer partition sizes jitter around the job-wide skew.
    """
    if sigma < 0:
        raise ValueError("sigma must be >= 0")
    if sigma == 0:
        return np.asarray(weights, dtype=float).copy()
    noise = rng.lognormal(mean=0.0, sigma=sigma, size=len(weights))
    return _normalize(np.asarray(weights) * noise)
