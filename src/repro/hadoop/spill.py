"""Map-output spill files and their partition index.

"Per Hadoop workings, intermediate output files are written to disk at
map task completion time" (§III) — each spill carries an index of how
many bytes belong to each reducer partition.  The Pythia decoder reads
exactly this index; the shuffle service serves fetches from it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hadoop.partition import perturbed


@dataclass
class SpillFile:
    """Intermediate output of one finished map task."""

    map_id: int
    node: str
    created_at: float
    #: application-level bytes destined to each reducer partition.
    partition_bytes: np.ndarray

    @property
    def total_bytes(self) -> float:
        """Total intermediate bytes in this spill."""
        return float(self.partition_bytes.sum())

    def partition(self, reducer_id: int) -> float:
        """Application bytes destined to one reducer."""
        return float(self.partition_bytes[reducer_id])


def make_spill(
    map_id: int,
    node: str,
    created_at: float,
    map_output_bytes: float,
    reducer_weights: np.ndarray,
    rng: np.random.Generator,
    sigma: float,
) -> SpillFile:
    """Partition one map's output across reducers with per-map jitter."""
    weights = perturbed(reducer_weights, rng, sigma=sigma)
    return SpillFile(
        map_id=map_id,
        node=node,
        created_at=created_at,
        partition_bytes=weights * map_output_bytes,
    )
