"""Reducer-side shuffle fetch scheduling.

Reproduces the two Hadoop mechanics the paper's analysis rests on:

* the **parallel-copy limit** — "Hadoop limits the number of parallel
  transfers that each reducer can initiate at every instance of time"
  (§V-C), which queues fetches and widens the prediction lead; and
* the **shuffle barrier** — "a reducer task does not start its
  processing phase until all data produced by the entire set of map
  tasks have been successfully fetched ... even a single flow being
  forwarded through a congested path may delay the overall job
  completion time" (§V-A).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

import numpy as np

from repro.hadoop.cluster import HadoopCluster
from repro.hadoop.job import FetchRecord, JobRun
from repro.hadoop.spill import SpillFile
from repro.simnet.engine import Simulator
from repro.simnet.flows import SHUFFLE_PORT, TCP, FiveTuple, Flow
from repro.simnet.network import Network
from repro.sdn.policy import PathPolicy

#: Partitions below this many application bytes skip the network path
#: (empty or header-only segments complete instantly).
_TINY_FETCH = 1.0


class ShuffleFetcher:
    """Pulls one reducer's map-output segments, few at a time."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        policy: PathPolicy,
        cluster: HadoopCluster,
        run: JobRun,
        reducer_id: int,
        node: str,
        num_maps: int,
        rng: np.random.Generator,
        on_all_fetched: Callable[[], None],
    ) -> None:
        self.sim = sim
        self.network = network
        self.policy = policy
        self.cluster = cluster
        self.run = run
        self.reducer_id = reducer_id
        self.node = node
        self.num_maps = num_maps
        self.rng = rng
        self.on_all_fetched = on_all_fetched
        self._queue: deque[tuple[SpillFile, float]] = deque()  # (spill, enqueued_at)
        self._offered: set[int] = set()
        self._active = 0
        self._fetched = 0
        self.total_app_bytes = 0.0
        self.first_fetch_start: Optional[float] = None
        self.last_fetch_end: Optional[float] = None

    # ------------------------------------------------------------------
    @property
    def all_offered(self) -> bool:
        """True once every map's spill has been offered."""
        return len(self._offered) >= self.num_maps

    @property
    def done(self) -> bool:
        """True once every map's partition has been fetched."""
        return self._fetched >= self.num_maps

    def offer(self, spills: list[SpillFile]) -> None:
        """Tell the fetcher about finished maps (poll/heartbeat delivery)."""
        for spill in spills:
            if spill.map_id in self._offered:
                continue
            self._offered.add(spill.map_id)
            self._queue.append((spill, self.sim.now))
        self._pump()

    # ------------------------------------------------------------------
    def _pump(self) -> None:
        copies = self.cluster.config.parallel_copies
        while self._active < copies and self._queue:
            spill, enqueued_at = self._queue.popleft()
            self._start_fetch(spill, enqueued_at)

    def _start_fetch(self, spill: SpillFile, enqueued_at: float) -> None:
        cfg = self.cluster.config
        app_bytes = spill.partition(self.reducer_id)
        local = spill.node == self.node
        wire_bytes = app_bytes * (1.0 + cfg.wire_overhead)
        record = FetchRecord(
            map_id=spill.map_id,
            reducer_id=self.reducer_id,
            src=spill.node,
            dst=self.node,
            app_bytes=app_bytes,
            wire_bytes=wire_bytes,
            local=local,
            enqueued=enqueued_at,
            start=self.sim.now,
        )
        self.run.fetches.append(record)
        self._active += 1
        if self.first_fetch_start is None:
            self.first_fetch_start = self.sim.now
        if local or app_bytes < _TINY_FETCH:
            duration = app_bytes / cfg.local_fetch_rate
            self.sim.schedule(duration, self._finish_fetch, record)
            return
        ft = FiveTuple(
            src_ip=self.cluster.node_ip(spill.node),
            dst_ip=self.cluster.node_ip(self.node),
            src_port=SHUFFLE_PORT,
            dst_port=int(self.rng.integers(32768, 61000)),
            proto=TCP,
        )
        flow = Flow(
            src=spill.node,
            dst=self.node,
            size=wire_bytes,
            five_tuple=ft,
            tags={
                "kind": "shuffle",
                "job": self.run.job_id,
                "map_id": spill.map_id,
                "reducer_id": self.reducer_id,
            },
        )
        record.flow_id = flow.fid
        path = self.policy.place(flow)
        self.network.start_flow(flow, path, on_complete=lambda _f: self._finish_fetch(record))

    def _finish_fetch(self, record: FetchRecord) -> None:
        record.end = self.sim.now
        self.last_fetch_end = self.sim.now
        self._active -= 1
        self._fetched += 1
        self.total_app_bytes += record.app_bytes
        self._pump()
        if self.done:
            self.on_all_fetched()
