"""Runtime observability: metrics registry + structured trace stream.

Subsystems bind their instruments at construction time from the
process-wide context (:func:`get_registry` / :func:`get_tracer`), which
defaults to a no-op :class:`NullRegistry` and no tracer.  Enable
telemetry for a run by building the stack inside :func:`use`::

    from repro import obs

    with obs.use(registry=obs.MetricsRegistry(), tracer=obs.Tracer()):
        result = run_experiment(...)

``run_experiment`` accepts ``registry=``/``tracer=`` and does this for
you; the ``repro metrics`` and ``repro trace`` CLI commands export the
results as JSON.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.trace import TraceEvent, Tracer, replay

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "TraceEvent",
    "Tracer",
    "replay",
    "get_registry",
    "get_tracer",
    "set_registry",
    "set_tracer",
    "use",
]

_NULL_REGISTRY = NullRegistry()
_active_registry: MetricsRegistry = _NULL_REGISTRY
_active_tracer: Optional[Tracer] = None


def get_registry() -> MetricsRegistry:
    """The registry new subsystems should bind instruments from."""
    return _active_registry


def get_tracer() -> Optional[Tracer]:
    """The tracer new subsystems should emit to (None = tracing off)."""
    return _active_tracer


def set_registry(registry: Optional[MetricsRegistry]) -> None:
    """Install a process-wide registry (None restores the no-op default)."""
    global _active_registry
    _active_registry = registry if registry is not None else _NULL_REGISTRY


def set_tracer(tracer: Optional[Tracer]) -> None:
    """Install a process-wide tracer (None disables tracing)."""
    global _active_tracer
    _active_tracer = tracer


@contextmanager
def use(
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
) -> Iterator[None]:
    """Scoped override of the observability context.

    Only the arguments given are overridden; the previous context is
    restored on exit, so nested experiment runs compose.
    """
    global _active_registry, _active_tracer
    prev_registry, prev_tracer = _active_registry, _active_tracer
    if registry is not None:
        _active_registry = registry
    if tracer is not None:
        _active_tracer = tracer
    try:
        yield
    finally:
        _active_registry, _active_tracer = prev_registry, prev_tracer
