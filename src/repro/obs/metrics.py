"""Metrics registry: counters, gauges and streaming histograms.

The paper's evaluation is measurement-driven (§VI quantifies the
instrumentation overhead itself), so the reproduction carries a uniform
observability layer: every subsystem registers its counters into one
:class:`MetricsRegistry` instead of growing ad-hoc attributes.  The
design constraint, mirroring §VI's overhead discipline, is that
instrumentation must cost (almost) nothing when disabled: the default
process-wide registry is a :class:`NullRegistry` whose instruments are
shared no-op singletons, and hot paths additionally guard wall-clock
measurement behind ``registry.enabled``.

Instruments are created lazily and cached by name, so
``registry.counter("network.flows_started")`` is cheap to call from any
constructor and always yields the same object.  Naming convention:
``<subsystem>.<metric>`` in snake_case (see docs/ARCHITECTURE.md for
the full catalogue).
"""

from __future__ import annotations

import bisect
import json
import math
from typing import Optional


class Counter:
    """Monotonically increasing count (events, bytes, ...)."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def snapshot(self) -> dict:
        return {"type": self.kind, "value": self.value}


class Gauge:
    """Point-in-time level plus its high-water mark (queue depth, lag)."""

    __slots__ = ("name", "value", "high_water")

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.high_water = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.high_water:
            self.high_water = value

    def snapshot(self) -> dict:
        return {"type": self.kind, "value": self.value, "high_water": self.high_water}


#: Default histogram bucket bounds: geometric from 1 µs to ~1000 s, four
#: buckets per decade — wide enough for latencies and byte counts alike.
_DEFAULT_BOUNDS = tuple(10.0 ** (e / 4.0) for e in range(-24, 25))


class Histogram:
    """Streaming histogram: running moments plus geometric bucket counts.

    O(1) memory regardless of sample count; quantiles are estimated by
    linear interpolation inside the winning bucket, which is accurate to
    the bucket resolution (~78% per step here) — plenty for the latency
    distributions the reports embed.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "min", "max")

    kind = "histogram"

    def __init__(self, name: str, bounds: Optional[tuple[float, ...]] = None) -> None:
        self.name = name
        self.bounds = bounds if bounds is not None else _DEFAULT_BOUNDS
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.counts[bisect.bisect_left(self.bounds, value)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate q-quantile (q in [0, 1]) from the bucket counts."""
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            if c == 0:
                continue
            if seen + c >= target:
                lo = self.bounds[i - 1] if i > 0 else self.min
                hi = self.bounds[i] if i < len(self.bounds) else self.max
                lo = max(lo, self.min)
                hi = min(hi, self.max)
                if hi <= lo or c == 0:
                    return lo
                frac = (target - seen) / c
                return lo + frac * (hi - lo)
            seen += c
        return self.max

    def snapshot(self) -> dict:
        if self.count == 0:
            return {"type": self.kind, "count": 0}
        return {
            "type": self.kind,
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """Name-keyed instrument store shared by every subsystem."""

    #: hot paths consult this before paying for wall-clock measurement.
    enabled = True

    def __init__(self) -> None:
        self._instruments: dict[str, object] = {}

    def _get(self, name: str, cls, *args):
        inst = self._instruments.get(name)
        if inst is None:
            inst = cls(name, *args)
            self._instruments[name] = inst
        elif not isinstance(inst, cls):
            raise TypeError(
                f"metric {name!r} already registered as {type(inst).__name__}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(
        self, name: str, bounds: Optional[tuple[float, ...]] = None
    ) -> Histogram:
        if bounds is None:
            return self._get(name, Histogram)
        return self._get(name, Histogram, bounds)

    def snapshot(self) -> dict[str, dict]:
        """All instruments as plain JSON-ready dicts, sorted by name."""
        return {
            name: inst.snapshot()  # type: ignore[attr-defined]
            for name, inst in sorted(self._instruments.items())
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.snapshot(), indent=indent)

    def __len__(self) -> int:
        return len(self._instruments)


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


class NullRegistry(MetricsRegistry):
    """No-op registry: every lookup returns a shared inert instrument.

    This is the process default, so un-instrumented runs pay only an
    attribute load and a no-op call on their hot paths — the benchmark
    ``benchmarks/test_obs_overhead.py`` holds that line.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._counter = _NullCounter("null")
        self._gauge = _NullGauge("null")
        self._histogram = _NullHistogram("null")

    def counter(self, name: str) -> Counter:
        return self._counter

    def gauge(self, name: str) -> Gauge:
        return self._gauge

    def histogram(
        self, name: str, bounds: Optional[tuple[float, ...]] = None
    ) -> Histogram:
        return self._histogram

    def snapshot(self) -> dict[str, dict]:
        return {}
