"""Structured trace-event stream with a bounded ring buffer.

Every instrumented subsystem can emit :class:`TraceEvent` records
(simulation time, subsystem, kind, free-form payload) into one
:class:`Tracer`.  The buffer is a ring: once ``capacity`` events are
held the oldest are dropped (and counted), so tracing an arbitrarily
long run has bounded memory.  ``repro trace`` exports the buffer as
JSON lines for offline replay/inspection.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One structured record on the trace stream."""

    time: float
    subsystem: str
    kind: str
    payload: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "time": self.time,
            "subsystem": self.subsystem,
            "kind": self.kind,
            **({"payload": self.payload} if self.payload else {}),
        }


class Tracer:
    """Bounded collector of trace events.

    The ring holds plain tuples and materialises :class:`TraceEvent`
    records only on read: ``emit`` sits on the simulator's per-event hot
    path, where a tuple append is several times cheaper than building a
    frozen dataclass.
    """

    def __init__(self, capacity: int = 65536) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive: {capacity}")
        self.capacity = capacity
        self._ring: deque[tuple] = deque(maxlen=capacity)
        self.emitted = 0

    def emit(self, time: float, subsystem: str, kind: str, **payload) -> None:
        """Append one event, evicting the oldest when full."""
        self.emitted += 1
        self._ring.append((time, subsystem, kind, payload))

    @property
    def dropped(self) -> int:
        """Events evicted by the ring so far."""
        return self.emitted - len(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(TraceEvent(*raw) for raw in list(self._ring))

    def events(
        self, subsystem: Optional[str] = None, kind: Optional[str] = None
    ) -> list[TraceEvent]:
        """Buffered events, optionally filtered by subsystem and/or kind."""
        return [
            TraceEvent(*raw)
            for raw in self._ring
            if (subsystem is None or raw[1] == subsystem)
            and (kind is None or raw[2] == kind)
        ]

    def to_jsonl(
        self, subsystem: Optional[str] = None, kind: Optional[str] = None
    ) -> str:
        """Export (a filtered view of) the buffer as JSON lines."""
        return "\n".join(
            json.dumps(ev.to_dict()) for ev in self.events(subsystem, kind)
        )


def replay(lines: Iterable[str]) -> list[TraceEvent]:
    """Parse a JSON-lines export back into :class:`TraceEvent` records."""
    out = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        raw = json.loads(line)
        out.append(
            TraceEvent(
                time=raw["time"],
                subsystem=raw["subsystem"],
                kind=raw["kind"],
                payload=raw.get("payload", {}),
            )
        )
    return out
