"""Directed capacitated links with lazy byte accounting.

Every physical cable in the testbed is modelled as two directed links
(one per direction), because shuffle traffic and background load are
directional: an inter-rack trunk can be congested rack0->rack1 while
idle in the opposite direction.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Link:
    """A unidirectional link.

    Attributes
    ----------
    lid:
        Dense integer id; index into the fair-share solver's arrays.
    src, dst:
        Node names (hosts or switches).
    capacity:
        Bytes per second.
    up:
        False once the link has been failed via the topology; failed
        links carry no traffic and are excluded from routing.
    """

    lid: int
    src: str
    dst: str
    capacity: float
    up: bool = True

    # -- instantaneous state (maintained by Network) -------------------
    rigid_rate: float = 0.0       # sum of rigid (UDP CBR) flow rates
    elastic_rate: float = 0.0     # sum of current elastic flow rates
    # -- accounting -----------------------------------------------------
    bytes_carried: float = 0.0
    _last_update: float = field(default=0.0, repr=False)

    @property
    def total_rate(self) -> float:
        """Instantaneous rigid + elastic rate on the link."""
        return self.rigid_rate + self.elastic_rate

    @property
    def utilization(self) -> float:
        """Instantaneous utilisation in [0, 1]."""
        if self.capacity <= 0:
            return 0.0
        return min(1.0, self.total_rate / self.capacity)

    #: Minimum fraction of capacity elastic (TCP) flows can always claim,
    #: even under CBR overload: UDP blasting past line rate loses packets
    #: while TCP's retransmissions sustain a small goodput share.  Keeps
    #: the fluid model free of permanently-starved flows.
    ELASTIC_FLOOR: float = 0.02

    @property
    def residual(self) -> float:
        """Capacity left after rigid traffic — what elastic flows share."""
        return max(self.ELASTIC_FLOOR * self.capacity, self.capacity - self.rigid_rate)

    def advance(self, now: float) -> None:
        """Integrate carried bytes up to ``now`` at the current rate."""
        dt = now - self._last_update
        if dt > 0:
            self.bytes_carried += self.total_rate * dt
            self._last_update = now

    def key(self) -> tuple[str, str]:
        """(src, dst) identifier of the directed link."""
        return (self.src, self.dst)
