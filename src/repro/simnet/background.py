"""Background traffic generation for network over-subscription.

The paper emulates over-subscription ratios "by populating the network
links with background traffic, specifically using the iperf tool to
generate constant bit rate UDP streams" (§V-A).  We reproduce that
mechanism with rigid CBR flows between inter-rack host pairs.

Ratio semantics: an over-subscription ratio of 1:N leaves the Hadoop
cluster an effective inter-rack bandwidth of (aggregate host uplink
bandwidth) / N; background volume is whatever brings the trunk down to
that effective capacity (zero if the nominal network is already at or
below the requested ratio).

Placement: the background volume is spread *unevenly* across the
parallel trunk paths (``imbalance`` fraction on the first path, the
rest geometrically on the others, each path capped just below line
rate).  This is the situation Figure 1b illustrates — one inter-rack
path at 95 % load while the other sits nearly idle — and is what makes
load-unaware ECMP hashing adversarial while leaving every path with a
non-zero residual (real UDP cannot claim more than line rate).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.faults import runtime as faults_runtime
from repro.simnet.engine import Simulator
from repro.simnet.flows import UDP, FiveTuple, Flow
from repro.simnet.network import Network
from repro.simnet.paths import k_shortest_paths
from repro.simnet.topology import NodeKind, Topology

#: No single link is loaded past this fraction by background traffic.
_LINK_CAP_FRACTION = 0.96


def _rack_uplink_aggregate(topo: Topology, rack: int) -> float:
    """Total worker-host->ToR capacity in one rack (the demand side)."""
    total = 0.0
    for host in topo.worker_hosts():
        if host.rack != rack:
            continue
        for link in topo.up_links_from(host.name):
            total += link.capacity
    return total


def _trunk_capacity(topo: Topology, from_rack: int = 0) -> float:
    """Inter-rack capacity leaving ``from_rack``'s ToR switch."""
    tor = f"tor{from_rack}"
    total = 0.0
    for link in topo.up_links_from(tor):
        if topo.nodes[link.dst].kind is NodeKind.SWITCH:
            total += link.capacity
    return total


def oversubscription_background_rate(topo: Topology, ratio: Optional[float]) -> float:
    """Per-direction background rate (bytes/s) for an over-subscription 1:ratio."""
    if ratio is None or ratio <= 0:
        return 0.0
    demand = _rack_uplink_aggregate(topo, rack=0)
    trunk = _trunk_capacity(topo, from_rack=0)
    effective = demand / ratio
    rate = trunk - effective
    return float(np.clip(rate, 0.0, _LINK_CAP_FRACTION * trunk))


def _path_targets(
    path_caps: list[float], total: float, imbalance: float
) -> list[float]:
    """Split ``total`` over paths: geometric imbalance, per-path cap.

    Path i *wants* ``imbalance * (1-imbalance)^i``-proportional load;
    anything past a path's cap spills to the next paths (water-filling
    in reverse), so the requested total is always placed as long as
    aggregate headroom exists.
    """
    n = len(path_caps)
    if n == 0:
        raise ValueError("no paths to place background traffic on")
    raw = np.array([imbalance * (1 - imbalance) ** i for i in range(n)])
    raw[-1] = max(raw[-1], 1.0 - raw[:-1].sum())  # absorb the tail
    want = raw / raw.sum() * total
    caps = np.array([_LINK_CAP_FRACTION * c for c in path_caps])
    placed = np.minimum(want, caps)
    leftover = total - placed.sum()
    for i in range(n):
        if leftover <= 1e-9:
            break
        room = caps[i] - placed[i]
        take = min(room, leftover)
        placed[i] += take
        leftover -= take
    return [float(p) for p in placed]


@dataclass
class BackgroundTraffic:
    """Unbounded rigid CBR streams emulating datacenter cross-traffic."""

    network: Network
    rng: np.random.Generator
    streams_per_path: int = 2
    k_paths: int = 4
    #: fraction of the per-direction volume directed at the first trunk
    #: path (Figure 1b's hot-path situation).  At 0.6 the hot path's
    #: residual keeps shrinking across the paper's ratio sweep instead
    #: of pinning at the line-rate cap early.
    imbalance: float = 0.6
    flows: list[Flow] = field(default_factory=list)
    #: every stream ever started, teardown-audit trail for the
    #: invariant checker (flows is pruned; this list never is).
    started_flows: list[Flow] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._torn_down = False
        checker = faults_runtime.get_checker()
        if checker is not None and hasattr(checker, "watch_background"):
            checker.watch_background(self)

    @property
    def torn_down(self) -> bool:
        """True once teardown() has run (further starts are refused)."""
        return self._torn_down

    def populate(self, ratio: Optional[float]) -> list[Flow]:
        """Install background streams for over-subscription 1:ratio."""
        topo = self.network.topology
        rate = oversubscription_background_rate(topo, ratio)
        if rate <= 0:
            return []
        racks = sorted(
            {h.rack for h in topo.hosts() if h.rack is not None}
        )
        if len(racks) < 2:
            raise ValueError("background traffic needs at least two racks")
        for src_rack, dst_rack in ((racks[0], racks[1]), (racks[1], racks[0])):
            self._populate_direction(topo, src_rack, dst_rack, rate)
        return self.flows

    def _populate_direction(
        self, topo: Topology, src_rack: int, dst_rack: int, rate: float
    ) -> None:
        # Prefer dedicated traffic-generator hosts (cross-datacenter
        # traffic enters via the ToR, not the Hadoop slaves' NICs);
        # fall back to worker hosts on topologies without generators.
        def rack_hosts(rack: int) -> list[str]:
            gens = sorted(h.name for h in topo.generator_hosts() if h.rack == rack)
            if gens:
                return gens
            return sorted(h.name for h in topo.worker_hosts() if h.rack == rack)

        src_hosts = rack_hosts(src_rack)
        dst_hosts = rack_hosts(dst_rack)
        # Representative pair enumerates the distinct trunk paths.
        paths = k_shortest_paths(topo, src_hosts[0], dst_hosts[0], self.k_paths)
        caps = [
            min(topo.links[lid].capacity for lid in topo.path_links(p)) for p in paths
        ]
        targets = _path_targets(caps, rate, self.imbalance)
        for pidx, (path, target) in enumerate(zip(paths, targets)):
            if target <= 0:
                continue
            per_stream = target / self.streams_per_path
            backbone = [n for n in path if topo.nodes[n].kind is NodeKind.SWITCH]
            for s in range(self.streams_per_path):
                src = src_hosts[(pidx + s) % len(src_hosts)]
                dst = dst_hosts[int(self.rng.integers(len(dst_hosts)))]
                node_path = [src, *backbone, dst]
                ft = FiveTuple(
                    topo.nodes[src].ip or src,
                    topo.nodes[dst].ip or dst,
                    int(self.rng.integers(32768, 61000)),
                    5001,  # iperf default port
                    UDP,
                )
                flow = Flow(
                    src=src,
                    dst=dst,
                    size=None,
                    five_tuple=ft,
                    rigid_rate=per_stream,
                    tags={"kind": "background", "path_index": pidx},
                )
                self.network.start_flow(flow, topo.path_links(node_path))
                self.flows.append(flow)
                self.started_flows.append(flow)

    # ------------------------------------------------------------------
    # step/ramp scenario (forecast efficacy)
    # ------------------------------------------------------------------
    def schedule_ramp(self, sim: Simulator, ramp: "BackgroundRamp") -> None:
        """Schedule a stepped background surge onto one trunk path.

        Starting at ``ramp.at``, ``ramp.steps`` CBR streams of
        ``ramp.rate / steps`` each come up evenly spaced across
        ``ramp.duration`` on trunk path ``ramp.path_index`` (both
        directions) — the forecastable "link about to saturate"
        situation: a trend-aware forecaster sees the first steps and
        predicts the saturation; a measured-load allocator only reacts
        once the link is already hot.  Steps firing after teardown()
        are dropped.
        """
        if ramp.steps < 1:
            raise ValueError("ramp needs at least one step")
        spacing = ramp.duration / ramp.steps
        per_step = ramp.rate / ramp.steps
        for i in range(ramp.steps):
            sim.schedule_at(
                ramp.at + i * spacing, self._ramp_step, per_step, ramp.path_index
            )

    def _ramp_step(self, rate: float, path_index: int) -> None:
        if self._torn_down:
            return
        topo = self.network.topology
        racks = sorted({h.rack for h in topo.hosts() if h.rack is not None})
        if len(racks) < 2:
            raise ValueError("background ramp needs at least two racks")
        for src_rack, dst_rack in ((racks[0], racks[1]), (racks[1], racks[0])):

            def rack_hosts(rack: int) -> list[str]:
                gens = sorted(h.name for h in topo.generator_hosts() if h.rack == rack)
                if gens:
                    return gens
                return sorted(h.name for h in topo.worker_hosts() if h.rack == rack)

            src_hosts = rack_hosts(src_rack)
            dst_hosts = rack_hosts(dst_rack)
            paths = k_shortest_paths(topo, src_hosts[0], dst_hosts[0], self.k_paths)
            path = paths[min(path_index, len(paths) - 1)]
            backbone = [n for n in path if topo.nodes[n].kind is NodeKind.SWITCH]
            src = src_hosts[0]
            dst = dst_hosts[int(self.rng.integers(len(dst_hosts)))]
            ft = FiveTuple(
                topo.nodes[src].ip or src,
                topo.nodes[dst].ip or dst,
                int(self.rng.integers(32768, 61000)),
                5001,
                UDP,
            )
            flow = Flow(
                src=src,
                dst=dst,
                size=None,
                five_tuple=ft,
                rigid_rate=rate,
                tags={"kind": "background", "path_index": path_index, "ramp": True},
            )
            self.network.start_flow(flow, topo.path_links([src, *backbone, dst]))
            self.flows.append(flow)
            self.started_flows.append(flow)

    def teardown(self) -> None:
        """Stop every background stream (lets the event queue drain).

        Idempotent: a second call — e.g. chaos link-restore racing the
        experiment epilogue — is a no-op, and streams that already
        completed or were stopped individually are skipped rather than
        re-stopped (stopping a dead flow raises from the slot arena).
        """
        if self._torn_down:
            return
        self._torn_down = True
        for flow in self.flows:
            if flow.active:
                self.network.stop_flow(flow)
        self.flows.clear()


@dataclass(frozen=True)
class BackgroundRamp:
    """A stepped background surge (the forecastable step scenario).

    Frozen dataclass so sweep cells carrying one stay hashable and
    cacheable through ``repro.runner``'s content-addressed cache.
    """

    #: sim time the first step comes up.
    at: float
    #: window over which all steps come up.
    duration: float
    #: total per-direction CBR rate (bytes/s) once fully ramped.
    rate: float
    #: number of equal increments.
    steps: int = 4
    #: trunk path (by k-shortest index) the surge lands on.
    path_index: int = 1
