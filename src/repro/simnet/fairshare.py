"""Vectorised progressive-filling max-min fair rate allocation.

Elastic (TCP) flows share each link's residual capacity (capacity minus
rigid background load) max-min fairly: all unfrozen flows ramp up at
the same rate until some link saturates, the flows crossing that link
freeze at the current level, and filling continues.  This is the
standard fluid approximation of per-flow TCP fairness and is the part
of the simulator that runs on every flow arrival/departure, so it is
written with flat numpy arrays (``np.bincount`` over a precomputed
(flow, link) incidence list) rather than per-flow Python objects.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

#: Links with less than this fraction of residual headroom count as saturated.
_REL_EPS = 1e-9


class FairShareScratch:
    """Grow-only working buffers for the per-settle fair-share solve.

    The delta engine settles thousands of times per run, and every solve
    used to allocate about a dozen arena/fabric-sized arrays (component
    closure labels, remap tables, progressive-filling state).  A caller
    that owns one of these passes it through
    :func:`maxmin_rates_componentwise`; results are bit-identical to the
    scratchless path because every buffer is fully (re)initialised
    before use.  ``scratch=None`` (the default everywhere) preserves the
    allocate-per-call behaviour for one-shot callers.

    Buffers double on growth and never shrink; :attr:`grows` counts
    reallocations so no-allocation gates can assert that a warmed-up
    solve path has stopped allocating (``on_grow`` lets an owner fold
    the count into its own gauge, e.g. ``Network.scratch_grows``).
    """

    def __init__(self, on_grow: Optional[Callable[[], None]] = None) -> None:
        self.grows = 0
        self.on_grow = on_grow
        self._slabs: dict[str, np.ndarray] = {}

    def _slab(self, name: str, n: int, dtype) -> np.ndarray:
        arr = self._slabs.get(name)
        if arr is None or arr.shape[0] < n:
            cap = max(64, n)
            if arr is not None:
                cap = max(cap, 2 * arr.shape[0])
            new = np.empty(cap, dtype=dtype)
            if name == "iota":
                new[:] = np.arange(cap, dtype=dtype)
            elif name == "ones":
                new.fill(1.0)
            self._slabs[name] = new
            self.grows += 1
            if self.on_grow is not None:
                self.on_grow()
            arr = new
        return arr

    def empty(self, name: str, n: int, dtype=float) -> np.ndarray:
        """Uninitialised length-``n`` view of the named slab."""
        return self._slab(name, n, dtype)[:n]

    def zeros(self, name: str, n: int, dtype=float) -> np.ndarray:
        """Zero-filled length-``n`` view of the named slab."""
        out = self.empty(name, n, dtype)
        out.fill(0)
        return out

    def iota(self, n: int) -> np.ndarray:
        """``arange(n)`` view of the shared iota slab (treat read-only)."""
        return self._slab("iota", n, np.intp)[:n]

    def ones(self, n: int) -> np.ndarray:
        """All-ones length-``n`` view (treat read-only)."""
        return self._slab("ones", n, float)[:n]

    def buffer_ids(self) -> dict[str, int]:
        """Identity of every live slab, for hoisting gates."""
        return {name: id(arr) for name, arr in sorted(self._slabs.items())}


def maxmin_rates_pairs(
    pair_flow: np.ndarray,
    pair_link: np.ndarray,
    nflows: int,
    residual: np.ndarray,
    weights: Optional[np.ndarray] = None,
    scratch: Optional[FairShareScratch] = None,
) -> np.ndarray:
    """Core progressive-filling solver over a flat (flow, link) incidence.

    Pair *i* says "flow ``pair_flow[i]`` traverses link ``pair_link[i]``".
    This entry point exists so a caller that maintains the incidence
    arrays *persistently* (the :class:`~repro.simnet.network.Network`
    hot path) can solve without re-concatenating per-flow path arrays on
    every recompute; :func:`maxmin_rates` is the list-of-paths wrapper.

    Flow ids may be sparse: an id in ``[0, nflows)`` that appears in no
    pair simply keeps rate 0 (the caller uses this for dead slots in a
    lazily-compacted arena).

    Parameters
    ----------
    pair_flow, pair_link:
        Equal-length integer arrays of the incidence pairs.
    nflows:
        Size of the returned rate vector (flow-slot arena size).
    residual:
        Per-link residual capacity in bytes/second (already net of
        rigid traffic; down links should be passed as 0).
    weights:
        Optional positive per-flow weights.  Unfrozen flow *i* ramps at
        ``weights[i] x level`` — weighted max-min, the fluid analogue
        of per-flow WFQ/QoS queues.  §II motivates exactly this: "if
        reducer-0 receives five times more data then ... the flows
        terminated at reducer-0 should get five times more network
        capacity (bandwidth) than reducer-1".
    scratch:
        Optional :class:`FairShareScratch`; reuses grow-only buffers for
        the solver state instead of allocating per call (bit-identical).
    """
    rates = np.zeros(nflows) if scratch is None else scratch.zeros("p_rates", nflows)
    if nflows == 0 or pair_flow.size == 0:
        return rates
    nlinks = residual.shape[0]
    if weights is None:
        w = np.ones(nflows) if scratch is None else scratch.ones(nflows)
    else:
        w = np.asarray(weights, dtype=float)
        if w.shape != (nflows,):
            raise ValueError("weights must have one entry per flow")
        if (w[np.unique(pair_flow)] <= 0).any():
            raise ValueError("weights must be positive")
    pair_weight = w[pair_flow]

    if scratch is None:
        cap = residual.astype(float).copy()
        # Per-link saturation threshold: relative to that link's own
        # residual so a tiny link next to a huge one is not frozen early.
        eps = _REL_EPS * np.maximum(cap, 1.0)
        active = np.zeros(nflows, dtype=bool)
        sat_buf = None
    else:
        cap = scratch.empty("p_cap", nlinks)
        np.copyto(cap, residual)
        eps = scratch.empty("p_eps", nlinks)
        np.maximum(cap, 1.0, out=eps)
        eps *= _REL_EPS
        active = scratch.zeros("p_active", nflows, bool)
        sat_buf = scratch.empty("p_sat", nlinks, bool)
    active[pair_flow] = True
    level = 0.0

    # Each iteration saturates at least one link carrying an active flow
    # and freezes its flows, so this terminates in <= nlinks iterations.
    for _ in range(nlinks + 1):
        live_pairs = active[pair_flow]
        if not live_pairs.any():
            break
        # per-link sum of active weights replaces the plain flow count
        wsum = np.bincount(
            pair_link[live_pairs], weights=pair_weight[live_pairs], minlength=nlinks
        )
        loaded = wsum > 0
        headroom = cap[loaded] / wsum[loaded]
        delta = float(headroom.min())
        if delta > 0:
            level += delta
            cap[loaded] -= delta * wsum[loaded]
        if sat_buf is None:
            saturated = np.zeros(nlinks, dtype=bool)
        else:
            saturated = sat_buf
            saturated.fill(False)
        saturated[loaded] = cap[loaded] <= eps[loaded]
        frozen_pairs = live_pairs & saturated[pair_link]
        # Duplicate flow ids are fine below: fancy assignment writes the
        # same value for every duplicate, so deduplication (np.unique,
        # which sorts) would only add cost to the hot loop.
        frozen_flows = pair_flow[frozen_pairs]
        if frozen_flows.size == 0:
            # Numerical corner: no link crossed the eps threshold.  Force
            # the tightest link to saturate to guarantee progress.
            loaded_idx = np.flatnonzero(loaded)
            tight = loaded_idx[int(np.argmin(cap[loaded_idx] / wsum[loaded_idx]))]
            frozen_flows = pair_flow[live_pairs & (pair_link == tight)]
        rates[frozen_flows] = level * w[frozen_flows]
        active[frozen_flows] = False
    return rates


def incidence_components(
    pair_flow: np.ndarray,
    pair_link: np.ndarray,
    nflows: int,
    nlinks: int,
    scratch: Optional[FairShareScratch] = None,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Connected components of the bipartite (flow, link) incidence graph.

    Two flows are in the same component when a chain of shared links
    joins them; a link belongs to the component of the flows crossing
    it.  This is exactly the independence structure of max-min fairness:
    progressive filling inside one component never reads or writes
    another component's links, so the solver may run per component (and,
    incrementally, only on the components a mutation touched).

    Returns ``(flow_comp, link_comp, ncomp)``: labels in ``[0, ncomp)``,
    with ``-1`` for flows that appear in no pair and links no flow
    crosses.  Labels are ordered by each component's smallest flow id,
    so the labelling is deterministic for a given incidence.

    Implementation: vectorised min-label propagation — each sweep pulls
    every link's label down to the minimum of its flows' labels and
    back; sweeps needed = half the graph diameter (small on Clos
    fabrics, where any two flows sharing a pod meet within a few hops).
    """
    if scratch is None:
        flow_lab = np.arange(nflows, dtype=np.intp)
        link_lab = np.full(nlinks, np.iinfo(np.intp).max, dtype=np.intp)
        prev = None
    else:
        flow_lab = scratch.empty("c_flow_lab", nflows, np.intp)
        np.copyto(flow_lab, scratch.iota(nflows))
        link_lab = scratch.empty("c_link_lab", nlinks, np.intp)
        link_lab.fill(np.iinfo(np.intp).max)
        prev = scratch.empty("c_prev_lab", nflows, np.intp)
    if pair_flow.size:
        while True:
            np.minimum.at(link_lab, pair_link, flow_lab[pair_flow])
            if prev is None:
                before = flow_lab.copy()
            else:
                before = prev
                np.copyto(before, flow_lab)
            np.minimum.at(flow_lab, pair_flow, link_lab[pair_link])
            if np.array_equal(before, flow_lab):
                break
    if scratch is None:
        has_pairs = np.zeros(nflows, dtype=bool)
    else:
        has_pairs = scratch.zeros("c_has_pairs", nflows, bool)
    has_pairs[pair_flow] = True
    roots = np.unique(flow_lab[has_pairs])  # sorted ⇒ ordered by min flow id
    if scratch is None:
        remap = np.full(nflows, -1, dtype=np.intp)
        remap[roots] = np.arange(roots.size, dtype=np.intp)
        flow_comp = np.where(has_pairs, remap[flow_lab], -1)
        link_comp = np.full(nlinks, -1, dtype=np.intp)
    else:
        remap = scratch.empty("c_remap", nflows, np.intp)
        remap.fill(-1)
        remap[roots] = scratch.iota(roots.size)
        flow_comp = scratch.empty("c_flow_comp", nflows, np.intp)
        np.take(remap, flow_lab, out=flow_comp)
        flow_comp[~has_pairs] = -1
        link_comp = scratch.empty("c_link_comp", nlinks, np.intp)
        link_comp.fill(-1)
    if pair_link.size:
        link_comp[pair_link] = flow_comp[pair_flow]
    return flow_comp, link_comp, int(roots.size)


def maxmin_rates_componentwise(
    pair_flow: np.ndarray,
    pair_link: np.ndarray,
    nflows: int,
    residual: np.ndarray,
    weights: Optional[np.ndarray] = None,
    scratch: Optional[FairShareScratch] = None,
) -> np.ndarray:
    """Canonical component-decomposed max-min solve.

    Discovers the connected components of the incidence graph and runs
    :func:`maxmin_rates_pairs` over each in isolation.  The result is
    the same max-min allocation as one global progressive fill — the
    allocation inside a component depends only on that component — but
    every float operation now reads only component-local state, which
    is what makes *delta* solves possible: re-running this function
    over any subset of the pairs that covers whole components yields
    bit-identical rates for those components' flows.  (The interleaved
    global fill accumulated its water level across components, so its
    low-order bits depended on unrelated traffic; this form does not.)

    Flows outside every component in the given pairs keep rate 0 — the
    incremental caller overwrites only the slots it scoped.

    With ``scratch``, all solver state (including the component-closure
    labels) lives in grow-only buffers; the returned array is a view
    into one, valid until the next solve against the same scratch.
    """
    rates = np.zeros(nflows) if scratch is None else scratch.zeros("w_rates", nflows)
    if nflows == 0 or pair_flow.size == 0:
        return rates
    nlinks = residual.shape[0]
    flow_comp, link_comp, ncomp = incidence_components(
        pair_flow, pair_link, nflows, nlinks, scratch=scratch
    )
    if ncomp == 1:
        # Identical to the sliced path (same loaded set, same order) —
        # skips the remap when the incidence is one component anyway.
        return maxmin_rates_pairs(
            pair_flow, pair_link, nflows, residual, weights=weights, scratch=scratch
        )
    w = None if weights is None else np.asarray(weights, dtype=float)
    pair_comp = flow_comp[pair_flow]
    # Stable grouping preserves within-component pair order, so each
    # component's bincount accumulation order — and therefore its bits —
    # matches a solve that never saw the other components' pairs.
    order = np.argsort(pair_comp, kind="stable")
    bounds = np.searchsorted(pair_comp[order], np.arange(ncomp + 1))
    for c in range(ncomp):
        sel = order[bounds[c]: bounds[c + 1]]
        pf_c, pl_c = pair_flow[sel], pair_link[sel]
        slots = np.flatnonzero(flow_comp == c)
        links = np.flatnonzero(link_comp == c)
        local = maxmin_rates_pairs(
            np.searchsorted(slots, pf_c),
            np.searchsorted(links, pl_c),
            slots.size,
            residual[links],
            weights=None if w is None else w[slots],
            scratch=scratch,
        )
        rates[slots] = local
    return rates


def maxmin_rates(
    flow_links: list[np.ndarray],
    residual: np.ndarray,
    weights: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Compute (weighted) max-min fair rates from per-flow path lists.

    Parameters
    ----------
    flow_links:
        For each flow, the integer link indices it traverses.  Every
        flow must traverse at least one link.
    residual:
        Per-link residual capacity in bytes/second (already net of
        rigid traffic; down links should be passed as 0).
    weights:
        Optional positive per-flow weights (see
        :func:`maxmin_rates_pairs`).

    Returns
    -------
    np.ndarray
        Rate per flow.  Flows crossing a zero-residual link get 0.

    Raises
    ------
    ValueError
        If a flow's link list is empty (the documented precondition) —
        such a flow would otherwise silently freeze at rate 0.
    """
    nflows = len(flow_links)
    for f, links in enumerate(flow_links):
        if len(links) == 0:
            raise ValueError(f"flow {f} has an empty link list")
    if nflows == 0:
        return np.zeros(0)
    nlinks = residual.shape[0]
    if weights is not None:
        w = np.asarray(weights, dtype=float)
        if w.shape != (nflows,):
            raise ValueError("weights must have one entry per flow")
        if (w <= 0).any():
            raise ValueError("weights must be positive")
    # Flat incidence: pair i says "flow pair_flow[i] uses link pair_link[i]".
    pair_flow = np.concatenate(
        [np.full(len(l), f, dtype=np.intp) for f, l in enumerate(flow_links)]
    )
    pair_link = np.concatenate([np.asarray(l, dtype=np.intp) for l in flow_links])
    if pair_link.size and (pair_link.max() >= nlinks or pair_link.min() < 0):
        raise IndexError("flow references a link outside the residual array")
    return maxmin_rates_pairs(pair_flow, pair_link, nflows, residual, weights=weights)


def path_available_bandwidth(load: np.ndarray, capacity: np.ndarray, lids: list[int]) -> float:
    """Available bandwidth of a path = min over its links of (capacity - load).

    An empty path is a caller bug (it used to yield ``inf``, which made
    a mis-built path look infinitely attractive to allocation); enforce
    the same non-empty precondition as :func:`maxmin_rates`.
    """
    if not lids:
        raise ValueError("path has an empty link list")
    idx = np.asarray(lids, dtype=np.intp)
    return float(np.min(capacity[idx] - load[idx]))
