"""Shortest-path and k-shortest-simple-path routing primitives.

The paper's flow-allocation module "computes the k-shortest paths among
all server pairs ... using successive calls to the Dijkstra
shortest-path algorithm" with hop count as the metric (§IV).  We
implement this from scratch — no networkx — so that the routing
behaviour is fully pinned down, in three layers:

* :func:`shortest_path` — hop-count search (BFS layers are Dijkstra's
  dist array under a unit metric) with a deterministic lexicographic
  tie-break, used as Yen's spur oracle;
* :func:`k_shortest_paths` — Yen's algorithm, the generic solver that
  works on any graph;
* :class:`ClosIndex` — the structured fast path: on the declared Clos
  fabrics (two-rack, leaf-spine, three-tier, fat-tree) every
  host-to-host path is an up-segment to a common ancestor tier times a
  down-segment back, so the k shortest paths can be *enumerated* in
  O(#paths) instead of searched for.  The index only answers when the
  enumeration is provably identical to Yen's output (path for path,
  including order); every other case — irregular graphs, degraded
  fabrics, k exceeding the LCA-tier path count — falls back to Yen.

:class:`KPathCache` memoises either solver's results per topology
version and additionally materialises the padded path→link incidence
matrix the flow allocator's vectorized scoring consumes.
"""

from __future__ import annotations

import heapq
from typing import Optional

import numpy as np

from repro.simnet.topology import Topology


def shortest_path(
    topo: Topology,
    src: str,
    dst: str,
    *,
    banned_nodes: Optional[set[str]] = None,
    banned_links: Optional[set[int]] = None,
) -> Optional[list[str]]:
    """Hop-count shortest path as a node list, or None if unreachable.

    Ties are broken by the lexicographic node sequence so that the same
    topology always yields the same path regardless of dict ordering.
    Two passes: a backward BFS from ``dst`` labels every node with its
    exact hop distance (the parent-pointer form of Dijkstra under the
    unit metric — no path tuples on a heap, no membership scans over
    partial paths), then a forward greedy walk picks, at each hop, the
    lexicographically smallest neighbour that still lies on a shortest
    path — which yields exactly the lexicographically minimal shortest
    node sequence.
    """
    banned_nodes = banned_nodes or ()
    banned_links = banned_links or ()
    if src in banned_nodes or dst in banned_nodes:
        return None
    if src == dst:
        return [src]
    dist: dict[str, int] = {dst: 0}
    frontier = [dst]
    depth = 0
    while frontier and src not in dist:
        depth += 1
        nxt: list[str] = []
        for node in frontier:
            for link in topo.up_links_to(node):
                prev = link.src
                if prev in dist or link.lid in banned_links or prev in banned_nodes:
                    continue
                dist[prev] = depth
                nxt.append(prev)
        frontier = nxt
    remaining = dist.get(src)
    if remaining is None:
        return None
    path = [src]
    node = src
    while node != dst:
        remaining -= 1
        best: Optional[str] = None
        for link in topo.up_links_from(node):
            if link.lid in banned_links or link.dst in banned_nodes:
                continue
            if dist.get(link.dst) == remaining and (best is None or link.dst < best):
                best = link.dst
        assert best is not None  # dist certifies a continuation exists
        path.append(best)
        node = best
    return path


def k_shortest_paths(topo: Topology, src: str, dst: str, k: int) -> list[list[str]]:
    """Yen's algorithm: up to k loop-free node paths, sorted by hop count.

    Deterministic: candidate ties resolve by the node-sequence order.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    first = shortest_path(topo, src, dst)
    if first is None:
        return []
    paths: list[list[str]] = [first]
    candidates: list[tuple[int, tuple[str, ...]]] = []
    seen: set[tuple[str, ...]] = {tuple(first)}
    while len(paths) < k:
        prev = paths[-1]
        for i in range(len(prev) - 1):
            spur_node = prev[i]
            root = prev[: i + 1]
            banned_links: set[int] = set()
            for p in paths:
                if len(p) > i and p[: i + 1] == root:
                    # ban the link this accepted path takes out of the spur
                    for link in topo.links_between(p[i], p[i + 1]):
                        banned_links.add(link.lid)
            banned_nodes = set(root[:-1])
            spur = shortest_path(
                topo, spur_node, dst, banned_nodes=banned_nodes, banned_links=banned_links
            )
            if spur is None:
                continue
            total = tuple(root[:-1]) + tuple(spur)
            if total not in seen:
                seen.add(total)
                heapq.heappush(candidates, (len(total) - 1, total))
        if not candidates:
            break
        _, chosen = heapq.heappop(candidates)
        paths.append(list(chosen))
    return paths


class ClosIndex:
    """Structured up/down path enumerator for declared Clos fabrics.

    Built per topology version (``fresh()`` tells the caller when to
    rebuild).  For a host pair the k shortest paths in an intact Clos
    are the lexicographically first k combinations of (ascent to the
    lowest common-ancestor tier) × (descent to the destination): every
    ascent/descent pair of equal apex gives one path of length
    ``2 * apex_tier``, any path that descends and re-climbs ("valley"
    routing) or peaks higher is at least two hops longer.  Enumeration
    is therefore exact — *provided* the LCA tier offers at least k
    paths (or exactly one forced path through a shared edge switch).
    When it does not, :meth:`k_paths` returns None and the caller runs
    Yen, whose generic search also surfaces the longer detours.

    Ascent sets are memoised per node, so all-pairs construction costs
    O(hosts × paths-per-host) instead of all-pairs Dijkstra sweeps.
    """

    __slots__ = ("topology", "version", "ok", "_tiers", "_top", "_up", "_ascents")

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        self.version = topology.version
        self.ok = topology.structured_ok
        if not self.ok:
            return
        assert topology.structure is not None
        self._tiers = {name: node.tier for name, node in topology.nodes.items()}
        self._top = topology.structure.top_tier
        # distinct up-tier neighbours per node, lexicographically sorted
        # so enumeration order is independent of link insertion order.
        self._up: dict[str, list[str]] = {}
        for name in topology.nodes:
            here = self._tiers[name]
            nbrs = {
                link.dst
                for link in topology.up_links_from(name)
                if self._tiers[link.dst] == here + 1
            }
            self._up[name] = sorted(nbrs)
        self._ascents: dict[str, list[dict[str, list[tuple[str, ...]]]]] = {}

    def fresh(self) -> bool:
        """Whether the index still matches the topology it was built from."""
        return self.ok and self.topology.version == self.version

    def _ascents_from(self, node: str) -> list[dict[str, list[tuple[str, ...]]]]:
        """Strictly-ascending paths from ``node``, per tier, per apex."""
        cached = self._ascents.get(node)
        if cached is None:
            levels: list[dict[str, list[tuple[str, ...]]]] = [{node: [(node,)]}]
            for _ in range(self._top):
                nxt: dict[str, list[tuple[str, ...]]] = {}
                for apex, paths in levels[-1].items():
                    for nbr in self._up[apex]:
                        bucket = nxt.setdefault(nbr, [])
                        for p in paths:
                            bucket.append(p + (nbr,))
                levels.append(nxt)
            self._ascents[node] = cached = levels
        return cached

    def k_paths(self, src: str, dst: str, k: int) -> Optional[list[list[str]]]:
        """The exact k-shortest node paths, or None if Yen must decide."""
        if not self.ok:
            return None
        tiers = self._tiers
        if src == dst or tiers.get(src) != 0 or tiers.get(dst) != 0:
            return None
        up = self._ascents_from(src)
        down = self._ascents_from(dst)
        for tier in range(1, self._top + 1):
            joins: list[tuple[str, ...]] = []
            for apex in up[tier].keys() & down[tier].keys():
                for pa in up[tier][apex]:
                    pa_nodes = set(pa[:-1])
                    for pb in down[tier][apex]:
                        if pa_nodes.isdisjoint(pb[:-1]):
                            joins.append(pa + tuple(reversed(pb[:-1])))
            if not joins:
                continue
            if len(joins) >= k:
                joins.sort()
                return [list(p) for p in joins[:k]]
            if tier == 1:
                # Both hosts hang off the same edge switch; since hosts
                # are single-homed this is the only simple path at all.
                joins.sort()
                return [list(p) for p in joins]
            # Fewer than k equal-length paths through the LCA tier: the
            # remaining entries are longer detours only Yen enumerates.
            return None
        return None


def compute_k_paths(
    topo: Topology,
    src: str,
    dst: str,
    k: int,
    index: Optional[ClosIndex] = None,
) -> list[list[str]]:
    """k shortest paths via structured enumeration, Yen otherwise.

    Pass a cached :class:`ClosIndex` to amortise its construction over
    many pairs; a stale or absent index is rebuilt on the fly.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if index is None or not index.fresh():
        index = ClosIndex(topo)
    if index.ok:
        result = index.k_paths(src, dst, k)
        if result is not None:
            return result
    return k_shortest_paths(topo, src, dst, k)


def all_pairs_k_shortest(
    topo: Topology, pairs: list[tuple[str, str]], k: int
) -> dict[tuple[str, str], list[list[str]]]:
    """Precompute k-shortest paths for the given (src, dst) pairs."""
    index = ClosIndex(topo)
    return {(s, d): compute_k_paths(topo, s, d, k, index=index) for s, d in pairs}


class KPathCache:
    """Topology-version-keyed memo for k-shortest-path routing.

    Path construction dominates allocation-time routing cost, yet its
    result only depends on the topology's up/down shape — tracked by
    ``Topology.version``.  The cache therefore never needs explicit
    invalidation hooks: every lookup compares the stored version with
    the topology's current one and drops the memo wholesale when it
    moved.  Hit/miss counts are kept for observability, and
    ``structured_solves``/``yen_solves`` record which solver served
    each cold computation (the structured enumerator only answers when
    its output provably equals Yen's — see :class:`ClosIndex`).
    """

    __slots__ = (
        "topology",
        "k",
        "_version",
        "_paths",
        "_links",
        "_inc",
        "_clos",
        "hits",
        "misses",
        "structured_solves",
        "yen_solves",
    )

    def __init__(self, topology: Topology, k: int) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.topology = topology
        self.k = k
        self._version = topology.version
        self._paths: dict[tuple[str, str], list[list[str]]] = {}
        self._links: dict[tuple[str, str], list[list[int]]] = {}
        self._inc: dict[tuple[str, str], tuple[list[list[int]], np.ndarray]] = {}
        self._clos: Optional[ClosIndex] = None
        self.hits = 0
        self.misses = 0
        self.structured_solves = 0
        self.yen_solves = 0

    def _check_version(self) -> None:
        current = self.topology.version
        if current != self._version:
            self._paths.clear()
            self._links.clear()
            self._inc.clear()
            self._version = current

    def size(self) -> int:
        """Number of memoised (src, dst) path sets at the current version."""
        self._check_version()
        return len(self._paths)

    def paths(self, src: str, dst: str) -> list[list[str]]:
        """k shortest node paths, memoised per topology version."""
        self._check_version()
        key = (src, dst)
        cached = self._paths.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        return self._compute_paths(key)

    def _compute_paths(self, key: tuple[str, str]) -> list[list[str]]:
        clos = self._clos
        if clos is None or not clos.fresh():
            clos = self._clos = ClosIndex(self.topology)
        result: Optional[list[list[str]]] = None
        if clos.ok:
            result = clos.k_paths(key[0], key[1], self.k)
        if result is not None:
            self.structured_solves += 1
        else:
            self.yen_solves += 1
            result = k_shortest_paths(self.topology, key[0], key[1], self.k)
        self._paths[key] = result
        return result

    def paths_links(self, src: str, dst: str) -> list[list[int]]:
        """Same paths resolved to link ids, memoised per topology version.

        Safe to memoise alongside the node paths: ``path_links`` picks
        the first *up* parallel link, and any up/down change bumps the
        topology version, which clears this memo too.  Each public
        lookup counts exactly one hit or miss.
        """
        self._check_version()
        key = (src, dst)
        cached = self._links.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        return self._compute_links(key)

    def _compute_links(self, key: tuple[str, str]) -> list[list[int]]:
        node_paths = self._paths.get(key)
        if node_paths is None:
            node_paths = self._compute_paths(key)
        out: list[list[int]] = []
        for p in node_paths:
            try:
                out.append(self.topology.path_links(p))
            except ValueError:
                continue  # parallel link went down since path computation
        self._links[key] = out
        return out

    def paths_links_incidence(
        self, src: str, dst: str
    ) -> tuple[list[list[int]], np.ndarray]:
        """Link-id paths plus their padded path→link incidence matrix.

        The matrix has one row per candidate path and one column per
        hop up to the longest candidate; short rows are padded with the
        virtual link id ``len(topology.links)``.  Callers gather from
        per-link arrays extended by one sentinel slot (+inf residual /
        zero queue) and reduce along axis 1 — scoring every candidate
        path of an entry in a single vector operation.
        """
        self._check_version()
        key = (src, dst)
        cached = self._inc.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        links = self._links.get(key)
        if links is None:
            links = self._compute_links(key)
        pad = len(self.topology.links)
        if links:
            width = max(len(p) for p in links)
            matrix = np.full((len(links), width), pad, dtype=np.intp)
            for i, p in enumerate(links):
                matrix[i, : len(p)] = p
        else:
            matrix = np.empty((0, 0), dtype=np.intp)
        result = (links, matrix)
        self._inc[key] = result
        return result
