"""Shortest-path and k-shortest-simple-path routing primitives.

The paper's flow-allocation module "computes the k-shortest paths among
all server pairs ... using successive calls to the Dijkstra
shortest-path algorithm" with hop count as the metric (§IV).  We
implement Dijkstra with deterministic tie-breaking plus Yen's
k-shortest simple paths on top, from scratch — no networkx — so that
the routing behaviour is fully pinned down.
"""

from __future__ import annotations

import heapq
from typing import Optional

from repro.simnet.topology import Topology


def shortest_path(
    topo: Topology,
    src: str,
    dst: str,
    *,
    banned_nodes: Optional[set[str]] = None,
    banned_links: Optional[set[int]] = None,
) -> Optional[list[str]]:
    """Hop-count Dijkstra returning a node path, or None if unreachable.

    Ties are broken by the lexicographic node sequence so that the same
    topology always yields the same path regardless of dict ordering.
    """
    banned_nodes = banned_nodes or set()
    banned_links = banned_links or set()
    if src in banned_nodes or dst in banned_nodes:
        return None
    # heap entries: (hops, path-as-tuple) — the tuple doubles as the
    # deterministic tie-breaker.
    heap: list[tuple[int, tuple[str, ...]]] = [(0, (src,))]
    best: dict[str, int] = {src: 0}
    while heap:
        hops, path = heapq.heappop(heap)
        node = path[-1]
        if node == dst:
            return list(path)
        if hops > best.get(node, float("inf")):
            continue
        for link in topo.up_links_from(node):
            if link.lid in banned_links or link.dst in banned_nodes:
                continue
            if link.dst in path:  # keep paths simple
                continue
            nh = hops + 1
            if nh < best.get(link.dst, float("inf")):
                best[link.dst] = nh
                heapq.heappush(heap, (nh, path + (link.dst,)))
    return None


def k_shortest_paths(topo: Topology, src: str, dst: str, k: int) -> list[list[str]]:
    """Yen's algorithm: up to k loop-free node paths, sorted by hop count.

    Deterministic: candidate ties resolve by the node-sequence order.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    first = shortest_path(topo, src, dst)
    if first is None:
        return []
    paths: list[list[str]] = [first]
    candidates: list[tuple[int, tuple[str, ...]]] = []
    seen: set[tuple[str, ...]] = {tuple(first)}
    while len(paths) < k:
        prev = paths[-1]
        for i in range(len(prev) - 1):
            spur_node = prev[i]
            root = prev[: i + 1]
            banned_links: set[int] = set()
            for p in paths:
                if len(p) > i and p[: i + 1] == root:
                    # ban the link this accepted path takes out of the spur
                    for link in topo.links_between(p[i], p[i + 1]):
                        banned_links.add(link.lid)
            banned_nodes = set(root[:-1])
            spur = shortest_path(
                topo, spur_node, dst, banned_nodes=banned_nodes, banned_links=banned_links
            )
            if spur is None:
                continue
            total = tuple(root[:-1]) + tuple(spur)
            if total not in seen:
                seen.add(total)
                heapq.heappush(candidates, (len(total) - 1, total))
        if not candidates:
            break
        _, chosen = heapq.heappop(candidates)
        paths.append(list(chosen))
    return paths


def all_pairs_k_shortest(
    topo: Topology, pairs: list[tuple[str, str]], k: int
) -> dict[tuple[str, str], list[list[str]]]:
    """Precompute k-shortest paths for the given (src, dst) pairs."""
    return {(s, d): k_shortest_paths(topo, s, d, k) for s, d in pairs}
