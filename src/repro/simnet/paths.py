"""Shortest-path and k-shortest-simple-path routing primitives.

The paper's flow-allocation module "computes the k-shortest paths among
all server pairs ... using successive calls to the Dijkstra
shortest-path algorithm" with hop count as the metric (§IV).  We
implement Dijkstra with deterministic tie-breaking plus Yen's
k-shortest simple paths on top, from scratch — no networkx — so that
the routing behaviour is fully pinned down.
"""

from __future__ import annotations

import heapq
from typing import Optional

from repro.simnet.topology import Topology


def shortest_path(
    topo: Topology,
    src: str,
    dst: str,
    *,
    banned_nodes: Optional[set[str]] = None,
    banned_links: Optional[set[int]] = None,
) -> Optional[list[str]]:
    """Hop-count Dijkstra returning a node path, or None if unreachable.

    Ties are broken by the lexicographic node sequence so that the same
    topology always yields the same path regardless of dict ordering.
    """
    banned_nodes = banned_nodes or set()
    banned_links = banned_links or set()
    if src in banned_nodes or dst in banned_nodes:
        return None
    # heap entries: (hops, path-as-tuple) — the tuple doubles as the
    # deterministic tie-breaker.
    heap: list[tuple[int, tuple[str, ...]]] = [(0, (src,))]
    best: dict[str, int] = {src: 0}
    while heap:
        hops, path = heapq.heappop(heap)
        node = path[-1]
        if node == dst:
            return list(path)
        if hops > best.get(node, float("inf")):
            continue
        for link in topo.up_links_from(node):
            if link.lid in banned_links or link.dst in banned_nodes:
                continue
            if link.dst in path:  # keep paths simple
                continue
            nh = hops + 1
            if nh < best.get(link.dst, float("inf")):
                best[link.dst] = nh
                heapq.heappush(heap, (nh, path + (link.dst,)))
    return None


def k_shortest_paths(topo: Topology, src: str, dst: str, k: int) -> list[list[str]]:
    """Yen's algorithm: up to k loop-free node paths, sorted by hop count.

    Deterministic: candidate ties resolve by the node-sequence order.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    first = shortest_path(topo, src, dst)
    if first is None:
        return []
    paths: list[list[str]] = [first]
    candidates: list[tuple[int, tuple[str, ...]]] = []
    seen: set[tuple[str, ...]] = {tuple(first)}
    while len(paths) < k:
        prev = paths[-1]
        for i in range(len(prev) - 1):
            spur_node = prev[i]
            root = prev[: i + 1]
            banned_links: set[int] = set()
            for p in paths:
                if len(p) > i and p[: i + 1] == root:
                    # ban the link this accepted path takes out of the spur
                    for link in topo.links_between(p[i], p[i + 1]):
                        banned_links.add(link.lid)
            banned_nodes = set(root[:-1])
            spur = shortest_path(
                topo, spur_node, dst, banned_nodes=banned_nodes, banned_links=banned_links
            )
            if spur is None:
                continue
            total = tuple(root[:-1]) + tuple(spur)
            if total not in seen:
                seen.add(total)
                heapq.heappush(candidates, (len(total) - 1, total))
        if not candidates:
            break
        _, chosen = heapq.heappop(candidates)
        paths.append(list(chosen))
    return paths


def all_pairs_k_shortest(
    topo: Topology, pairs: list[tuple[str, str]], k: int
) -> dict[tuple[str, str], list[list[str]]]:
    """Precompute k-shortest paths for the given (src, dst) pairs."""
    return {(s, d): k_shortest_paths(topo, s, d, k) for s, d in pairs}


class KPathCache:
    """Topology-version-keyed memo for :func:`k_shortest_paths`.

    Yen's algorithm dominates allocation-time routing cost, yet its
    result only depends on the topology's up/down shape — tracked by
    ``Topology.version``.  The cache therefore never needs explicit
    invalidation hooks: every lookup compares the stored version with
    the topology's current one and drops the memo wholesale when it
    moved.  Hit/miss counts are kept for observability.
    """

    __slots__ = ("topology", "k", "_version", "_paths", "_links", "hits", "misses")

    def __init__(self, topology: Topology, k: int) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.topology = topology
        self.k = k
        self._version = topology.version
        self._paths: dict[tuple[str, str], list[list[str]]] = {}
        self._links: dict[tuple[str, str], list[list[int]]] = {}
        self.hits = 0
        self.misses = 0

    def _check_version(self) -> None:
        current = self.topology.version
        if current != self._version:
            self._paths.clear()
            self._links.clear()
            self._version = current

    def paths(self, src: str, dst: str) -> list[list[str]]:
        """k shortest node paths, memoised per topology version."""
        self._check_version()
        key = (src, dst)
        cached = self._paths.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        return self._compute_paths(key)

    def _compute_paths(self, key: tuple[str, str]) -> list[list[str]]:
        result = k_shortest_paths(self.topology, key[0], key[1], self.k)
        self._paths[key] = result
        return result

    def paths_links(self, src: str, dst: str) -> list[list[int]]:
        """Same paths resolved to link ids, memoised per topology version.

        Safe to memoise alongside the node paths: ``path_links`` picks
        the first *up* parallel link, and any up/down change bumps the
        topology version, which clears this memo too.  Each public
        lookup counts exactly one hit or miss.
        """
        self._check_version()
        key = (src, dst)
        cached = self._links.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        node_paths = self._paths.get(key)
        if node_paths is None:
            node_paths = self._compute_paths(key)
        out: list[list[int]] = []
        for p in node_paths:
            try:
                out.append(self.topology.path_links(p))
            except ValueError:
                continue  # parallel link went down since path computation
        self._links[key] = out
        return out
