"""Deterministic discrete-event simulation engine.

The whole reproduction — network, Hadoop runtime, instrumentation,
SDN controller — runs on one :class:`Simulator` instance.  Events are
ordered by ``(time, sequence-number)`` so that simultaneous events fire
in scheduling order, which makes every run bit-reproducible for a given
seed (a property the test-suite checks).

The queue is a *calendar queue* (heap of time buckets) rather than one
global binary heap: an event lands in bucket ``floor(time / width)``
with an O(1) append, buckets are heapified lazily when the clock first
reaches them, and a small min-heap of bucket keys picks the next bucket
to drain.  With 100k pending completions a schedule touches one list
append instead of a 17-level sift, and cancellations are reclaimed
per-bucket (tombstone compaction) instead of draining through the
global heap.  The execution order is exactly the ``(time, priority,
seq)`` total order of the old single heap — same key, same ties — so
traces are bit-identical.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro import obs

#: Buckets smaller than this are never compacted (the scan isn't worth it).
_COMPACT_MIN = 8


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, priority, seq)``; the payload fields are
    excluded from ordering.  ``priority`` defaults to 0, so ordinary
    same-instant events keep firing in scheduling order; callers that
    need an *explicit* ordering among events sharing a timestamp (fault
    injection, invariant sweeps) pass a non-zero priority instead of
    relying on the incidental order their ``schedule`` calls were made
    in.  Cancelled events stay in their bucket but are skipped when
    popped (lazy deletion); a bucket that accumulates tombstones past
    half its size is compacted eagerly.
    """

    time: float
    priority: int
    seq: int
    fn: Callable[..., Any] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)
    _sim: Optional["Simulator"] = field(compare=False, default=None, repr=False)
    _key: float = field(compare=False, default=0.0, repr=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        if not self.cancelled:
            self.cancelled = True
            if self._sim is not None:
                self._sim._note_cancel(self)


class Simulator:
    """Calendar-queue driven event loop with a monotonically advancing clock.

    Parameters
    ----------
    bucket_width:
        Seconds of simulated time per calendar bucket.  Purely a
        performance knob — any positive width yields the identical
        execution order (a single overfull bucket degrades gracefully
        to the old binary-heap behaviour).
    """

    def __init__(self, bucket_width: float = 1.0) -> None:
        if bucket_width <= 0:
            raise ValueError(f"bucket_width must be positive: {bucket_width!r}")
        self._width = float(bucket_width)
        #: bucket key -> unordered (until heapified) list of events
        self._buckets: dict[float, list[Event]] = {}
        #: min-heap of bucket keys; may hold stale duplicates, cleaned
        #: lazily in :meth:`_min_bucket`
        self._key_heap: list[float] = []
        #: keys whose bucket has been heapified (the clock reached it)
        self._heaped: set[float] = set()
        #: per-bucket tombstone counts driving eager compaction
        self._dead: dict[float, int] = {}
        self._size = 0               # queued events incl. tombstones
        self._seq = itertools.count()
        self.now: float = 0.0
        self._events_processed = 0
        #: tombstoned events reclaimed by bucket compaction (machine
        #: independent; also published as ``sim.events_tombstoned``)
        self.events_tombstoned = 0
        #: live (non-cancelled) queued events, maintained so ``pending``
        #: — read inside experiment loops and the obs gauge path — is
        #: O(1) instead of a scan over the queue.
        self._live = 0
        # Observability is bound at construction: when the active
        # registry is the no-op default and no tracer is installed,
        # the event loop keeps its bare fast path (one None check).
        registry = obs.get_registry()
        self.tracer = obs.get_tracer()
        self._instrumented = registry.enabled or self.tracer is not None
        self._m_events = registry.counter("sim.events_processed")
        self._m_depth = registry.gauge("sim.queue_depth")
        self._m_cb_time = registry.histogram("sim.callback_wall_seconds")
        self._m_tombstoned = registry.counter("sim.events_tombstoned")

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self, delay: float, fn: Callable[..., Any], *args: Any, priority: int = 0
    ) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now.

        ``priority`` breaks ties among events sharing a timestamp:
        lower values fire first (default 0 preserves scheduling order).
        """
        if delay < 0:
            raise ValueError(f"negative delay: {delay!r}")
        return self.schedule_at(self.now + delay, fn, *args, priority=priority)

    def schedule_at(
        self, time: float, fn: Callable[..., Any], *args: Any, priority: int = 0
    ) -> Event:
        """Schedule ``fn(*args)`` at an absolute simulation time."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        ev = Event(
            time=time, priority=priority, seq=next(self._seq), fn=fn, args=args, _sim=self
        )
        # inf // width is nan, so unbounded timers get the inf bucket
        key = time // self._width if not math.isinf(time) else time
        ev._key = key
        bucket = self._buckets.get(key)
        if bucket is None:
            self._buckets[key] = [ev]
            heapq.heappush(self._key_heap, key)
        elif key in self._heaped:
            heapq.heappush(bucket, ev)
        else:
            bucket.append(ev)
        self._size += 1
        self._live += 1
        return ev

    # ------------------------------------------------------------------
    # queue internals
    # ------------------------------------------------------------------
    def _min_bucket(self) -> Optional[tuple[float, list[Event]]]:
        """Front bucket with a live event at its head, or None when empty.

        Cleans as it goes: stale key-heap entries are dropped, empty
        buckets deleted, the front bucket is heapified on first touch,
        and cancelled events at its head are popped.
        """
        key_heap = self._key_heap
        buckets = self._buckets
        while key_heap:
            key = key_heap[0]
            bucket = buckets.get(key)
            if not bucket:
                heapq.heappop(key_heap)
                if bucket is not None:
                    del buckets[key]
                    self._heaped.discard(key)
                    self._dead.pop(key, None)
                continue
            if key not in self._heaped:
                heapq.heapify(bucket)
                self._heaped.add(key)
            while bucket and bucket[0].cancelled:
                heapq.heappop(bucket)
                self._size -= 1
                dead = self._dead.get(key)
                if dead:
                    self._dead[key] = dead - 1
            if not bucket:
                continue
            return key, bucket
        return None

    def _note_cancel(self, ev: Event) -> None:
        """Book-keeping for a cancellation; compacts tombstone-heavy buckets."""
        self._live -= 1
        key = ev._key
        bucket = self._buckets.get(key)
        if bucket is None:
            return
        dead = self._dead.get(key, 0) + 1
        if len(bucket) >= _COMPACT_MIN and dead * 2 > len(bucket):
            self._compact_bucket(key, bucket)
        else:
            self._dead[key] = dead

    def _compact_bucket(self, key: float, bucket: list[Event]) -> None:
        live = [e for e in bucket if not e.cancelled]
        removed = len(bucket) - len(live)
        self._size -= removed
        self.events_tombstoned += removed
        self._m_tombstoned.inc(removed)
        self._dead.pop(key, None)
        if live:
            if key in self._heaped:
                heapq.heapify(live)
            self._buckets[key] = live
        else:
            del self._buckets[key]
            self._heaped.discard(key)
            # the stale key-heap entry is dropped lazily by _min_bucket

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next pending event.  Returns False when queue is empty."""
        front = self._min_bucket()
        if front is None:
            return False
        key, bucket = front
        ev = heapq.heappop(bucket)
        self._size -= 1
        self._live -= 1
        self.now = ev.time
        self._events_processed += 1
        if self._instrumented:
            self._execute_instrumented(ev)
        else:
            ev.fn(*ev.args)
        return True

    def _execute_instrumented(self, ev: Event) -> None:
        start = time.perf_counter()
        ev.fn(*ev.args)
        self._m_cb_time.observe(time.perf_counter() - start)
        self._m_events.inc()
        self._m_depth.set(self._size)
        if self.tracer is not None:
            self.tracer.emit(
                self.now,
                "sim",
                "event",
                fn=getattr(ev.fn, "__qualname__", repr(ev.fn)),
                seq=ev.seq,
            )

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Drain the event queue.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time (the clock is left
            at ``until``; the event that would have run stays queued).
        max_events:
            Safety valve for tests — at most this many events execute;
            a further pending live event raises.
        """
        processed = 0
        instrumented = self._instrumented
        while True:
            front = self._min_bucket()
            if front is None:
                break
            key, bucket = front
            ev = bucket[0]
            if until is not None and ev.time > until:
                self.now = until
                return
            if max_events is not None and processed >= max_events:
                raise RuntimeError(f"exceeded max_events={max_events} (runaway simulation?)")
            heapq.heappop(bucket)
            self._size -= 1
            self._live -= 1
            self.now = ev.time
            self._events_processed += 1
            if instrumented:
                self._execute_instrumented(ev)
            else:
                ev.fn(*ev.args)
            processed += 1
        if until is not None and until > self.now:
            self.now = until

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued (O(1))."""
        return self._live

    @property
    def events_processed(self) -> int:
        """Total events executed so far."""
        return self._events_processed
