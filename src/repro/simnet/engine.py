"""Deterministic discrete-event simulation engine.

The whole reproduction — network, Hadoop runtime, instrumentation,
SDN controller — runs on one :class:`Simulator` instance.  Events are
ordered by ``(time, sequence-number)`` so that simultaneous events fire
in scheduling order, which makes every run bit-reproducible for a given
seed (a property the test-suite checks).
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro import obs


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, priority, seq)``; the payload fields are
    excluded from ordering.  ``priority`` defaults to 0, so ordinary
    same-instant events keep firing in scheduling order; callers that
    need an *explicit* ordering among events sharing a timestamp (fault
    injection, invariant sweeps) pass a non-zero priority instead of
    relying on the incidental order their ``schedule`` calls were made
    in.  Cancelled events stay in the heap but are skipped when popped
    (lazy deletion).
    """

    time: float
    priority: int
    seq: int
    fn: Callable[..., Any] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)
    _sim: Optional["Simulator"] = field(compare=False, default=None, repr=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        if not self.cancelled:
            self.cancelled = True
            if self._sim is not None:
                self._sim._live -= 1


class Simulator:
    """Min-heap driven event loop with a monotonically advancing clock."""

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self.now: float = 0.0
        self._events_processed = 0
        #: live (non-cancelled) queued events, maintained so ``pending``
        #: — read inside experiment loops and the obs gauge path — is
        #: O(1) instead of a scan over the heap.
        self._live = 0
        # Observability is bound at construction: when the active
        # registry is the no-op default and no tracer is installed,
        # the event loop keeps its bare fast path (one None check).
        registry = obs.get_registry()
        self.tracer = obs.get_tracer()
        self._instrumented = registry.enabled or self.tracer is not None
        self._m_events = registry.counter("sim.events_processed")
        self._m_depth = registry.gauge("sim.queue_depth")
        self._m_cb_time = registry.histogram("sim.callback_wall_seconds")

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self, delay: float, fn: Callable[..., Any], *args: Any, priority: int = 0
    ) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now.

        ``priority`` breaks ties among events sharing a timestamp:
        lower values fire first (default 0 preserves scheduling order).
        """
        if delay < 0:
            raise ValueError(f"negative delay: {delay!r}")
        return self.schedule_at(self.now + delay, fn, *args, priority=priority)

    def schedule_at(
        self, time: float, fn: Callable[..., Any], *args: Any, priority: int = 0
    ) -> Event:
        """Schedule ``fn(*args)`` at an absolute simulation time."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        ev = Event(
            time=time, priority=priority, seq=next(self._seq), fn=fn, args=args, _sim=self
        )
        heapq.heappush(self._queue, ev)
        self._live += 1
        return ev

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next pending event.  Returns False when queue is empty."""
        while self._queue:
            ev = heapq.heappop(self._queue)
            if ev.cancelled:
                continue
            self._live -= 1
            self.now = ev.time
            self._events_processed += 1
            if self._instrumented:
                self._execute_instrumented(ev)
            else:
                ev.fn(*ev.args)
            return True
        return False

    def _execute_instrumented(self, ev: Event) -> None:
        start = time.perf_counter()
        ev.fn(*ev.args)
        self._m_cb_time.observe(time.perf_counter() - start)
        self._m_events.inc()
        self._m_depth.set(len(self._queue))
        if self.tracer is not None:
            self.tracer.emit(
                self.now,
                "sim",
                "event",
                fn=getattr(ev.fn, "__qualname__", repr(ev.fn)),
                seq=ev.seq,
            )

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Drain the event queue.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time (the clock is left
            at ``until``; the event that would have run stays queued).
        max_events:
            Safety valve for tests — at most this many events execute;
            a further pending live event raises.
        """
        processed = 0
        instrumented = self._instrumented
        while self._queue:
            ev = self._queue[0]
            if ev.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and ev.time > until:
                self.now = until
                return
            if max_events is not None and processed >= max_events:
                raise RuntimeError(f"exceeded max_events={max_events} (runaway simulation?)")
            heapq.heappop(self._queue)
            self._live -= 1
            self.now = ev.time
            self._events_processed += 1
            if instrumented:
                self._execute_instrumented(ev)
            else:
                ev.fn(*ev.args)
            processed += 1
        if until is not None and until > self.now:
            self.now = until

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued (O(1))."""
        return self._live

    @property
    def events_processed(self) -> int:
        """Total events executed so far."""
        return self._events_processed
