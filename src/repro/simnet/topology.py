"""Datacenter topology model and reference builders.

The paper's testbed is two racks of five servers each, joined by two
OpenFlow ToR switches with *two* inter-rack cables — the minimal
multi-path network where flow placement matters.  :func:`two_rack`
rebuilds exactly that; :func:`leaf_spine` and :func:`fat_tree` provide
the larger multi-path fabrics the paper targets ("typical datacenter
network topologies", §IV) for the scaling ablations.

Hosts get synthetic addresses ``10.<rack>.<index>`` so that five-tuple
hashing behaves like it would on real IPs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.simnet.links import Link

GBPS = 125_000_000.0  # bytes per second in one gigabit


class NodeKind(enum.Enum):
    """Host or switch."""
    HOST = "host"
    SWITCH = "switch"


@dataclass
class Node:
    """One vertex of the topology graph."""
    name: str
    kind: NodeKind
    ip: Optional[str] = None     # hosts only
    rack: Optional[int] = None   # hosts and ToR switches
    #: traffic-generator hosts source background cross-traffic and are
    #: not eligible as Hadoop slaves.
    generator: bool = False
    #: Clos tier (0 = host, 1 = edge/ToR/leaf, 2 = agg/spine/trunk, ...)
    #: set by the structured builders; None on hand-built nodes.
    tier: Optional[int] = None


@dataclass(frozen=True)
class ClosStructure:
    """Marker that a topology is a proper multi-rooted Clos hierarchy.

    Declared by the reference builders (:func:`two_rack`,
    :func:`leaf_spine`, :func:`three_tier`, :func:`fat_tree`) once the
    fabric is fully wired.  "Proper" means the builder guarantees the
    tree property the up/down path enumerator's shortcuts rely on: the
    host sets reachable downward from two distinct switches of the same
    tier are disjoint or identical, so any simple host-to-host path
    must climb at least to the pair's lowest common-ancestor tier.

    ``declare_clos`` machine-checks the local conditions (tier labels
    everywhere, links only between adjacent tiers, single-homed hosts);
    the subtree property is the builder's promise.  Structured routing
    additionally requires the link set untouched (``n_links``) and
    every link up — see :meth:`Topology.structured_ok`.
    """

    top_tier: int
    n_links: int


@dataclass
class Topology:
    """Mutable directed multigraph of hosts, switches and links.

    Links are created in pairs (one per direction) by :meth:`add_cable`.
    Observers (the SDN topology service) register callbacks and are
    notified on link failure/recovery, which is how the paper's
    OpenDaylight topology-update service triggers routing-graph
    recomputation (§IV).
    """

    nodes: dict[str, Node] = field(default_factory=dict)
    links: list[Link] = field(default_factory=list)
    adjacency: dict[str, list[int]] = field(default_factory=dict)  # node -> outgoing link ids
    in_adjacency: dict[str, list[int]] = field(default_factory=dict)  # node -> incoming link ids
    #: monotonically increasing structure version: bumped whenever the
    #: routing-relevant shape changes (links added, link up/down), so
    #: path caches can be invalidated by comparison instead of hooks.
    version: int = 0
    #: Clos declaration from the reference builders, None for ad-hoc graphs.
    structure: Optional[ClosStructure] = None
    _observers: list[Callable[[Link], None]] = field(default_factory=list)
    _down_links: int = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_host(
        self, name: str, ip: str, rack: Optional[int] = None, generator: bool = False
    ) -> Node:
        """Add a host node with an address (hosts sit at Clos tier 0)."""
        return self._add_node(
            Node(name, NodeKind.HOST, ip=ip, rack=rack, generator=generator, tier=0)
        )

    def add_switch(
        self, name: str, rack: Optional[int] = None, tier: Optional[int] = None
    ) -> Node:
        """Add a switch node, optionally with its Clos tier."""
        return self._add_node(Node(name, NodeKind.SWITCH, rack=rack, tier=tier))

    def _add_node(self, node: Node) -> Node:
        if node.name in self.nodes:
            raise ValueError(f"duplicate node {node.name!r}")
        self.nodes[node.name] = node
        self.adjacency[node.name] = []
        self.in_adjacency[node.name] = []
        return node

    def add_cable(self, a: str, b: str, capacity: float) -> tuple[Link, Link]:
        """Add a bidirectional cable as two directed links."""
        return (self._add_link(a, b, capacity), self._add_link(b, a, capacity))

    def _add_link(self, src: str, dst: str, capacity: float) -> Link:
        for end in (src, dst):
            if end not in self.nodes:
                raise KeyError(f"unknown node {end!r}")
        link = Link(lid=len(self.links), src=src, dst=dst, capacity=capacity)
        self.links.append(link)
        self.adjacency[src].append(link.lid)
        self.in_adjacency[dst].append(link.lid)
        self.version += 1
        return link

    def declare_clos(self) -> None:
        """Mark this topology as a proper Clos (see :class:`ClosStructure`).

        Called by the reference builders after wiring.  Validates the
        locally-checkable regularity conditions and records the link
        count so that any later :meth:`add_cable` permanently drops the
        declaration (the graph is no longer the builder's fabric).
        """
        tiers = {}
        for node in self.nodes.values():
            if node.tier is None:
                raise ValueError(f"node {node.name!r} has no Clos tier")
            tiers[node.name] = node.tier
        for link in self.links:
            if abs(tiers[link.src] - tiers[link.dst]) != 1:
                raise ValueError(
                    f"link {link.src}->{link.dst} is not tier-adjacent"
                )
        for node in self.nodes.values():
            if node.tier == 0:
                nbrs = {self.links[lid].dst for lid in self.adjacency[node.name]}
                if len(nbrs) != 1:
                    raise ValueError(f"host {node.name!r} must be single-homed")
        self.structure = ClosStructure(
            top_tier=max(tiers.values()), n_links=len(self.links)
        )

    @property
    def structured_ok(self) -> bool:
        """Whether structured (up/down) routing is currently exact.

        True only while the declared Clos fabric is intact: no links
        added since declaration and every link up.  Degraded fabrics
        fall back to generic Yen search until the failure is restored.
        """
        return (
            self.structure is not None
            and len(self.links) == self.structure.n_links
            and self._down_links == 0
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def hosts(self) -> list[Node]:
        """All host nodes."""
        return [n for n in self.nodes.values() if n.kind is NodeKind.HOST]

    def worker_hosts(self) -> list[Node]:
        """Hosts eligible as Hadoop slaves (excludes traffic generators)."""
        return [n for n in self.hosts() if not n.generator]

    def generator_hosts(self) -> list[Node]:
        """Background traffic-generator hosts."""
        return [n for n in self.hosts() if n.generator]

    def switches(self) -> list[Node]:
        """All switch nodes."""
        return [n for n in self.nodes.values() if n.kind is NodeKind.SWITCH]

    def host_by_ip(self, ip: str) -> Node:
        """Resolve a host by its address."""
        for node in self.nodes.values():
            if node.ip == ip:
                return node
        raise KeyError(ip)

    def link(self, lid: int) -> Link:
        """Link object by id."""
        return self.links[lid]

    def links_between(self, a: str, b: str) -> list[Link]:
        """Directed links from a to b."""
        return [self.links[lid] for lid in self.adjacency[a] if self.links[lid].dst == b]

    def up_links_from(self, node: str) -> Iterable[Link]:
        """Outgoing links that are currently up."""
        for lid in self.adjacency[node]:
            link = self.links[lid]
            if link.up:
                yield link

    def up_links_to(self, node: str) -> Iterable[Link]:
        """Incoming links that are currently up."""
        for lid in self.in_adjacency[node]:
            link = self.links[lid]
            if link.up:
                yield link

    def path_links(self, node_path: list[str]) -> list[int]:
        """Resolve a node path to concrete link ids (first up parallel link)."""
        lids: list[int] = []
        for a, b in zip(node_path, node_path[1:]):
            candidates = [l for l in self.links_between(a, b) if l.up]
            if not candidates:
                raise ValueError(f"no up link {a}->{b}")
            lids.append(candidates[0].lid)
        return lids

    def path_nodes(self, lids: list[int]) -> list[str]:
        """Inverse of :meth:`path_links`."""
        if not lids:
            return []
        nodes = [self.links[lids[0]].src]
        for lid in lids:
            nodes.append(self.links[lid].dst)
        return nodes

    # ------------------------------------------------------------------
    # failure events
    # ------------------------------------------------------------------
    def observe(self, fn: Callable[[Link], None]) -> None:
        """Register a link-state-change callback."""
        self._observers.append(fn)

    def set_link_state(self, lid: int, up: bool) -> None:
        """Set one directed link up/down, notifying observers."""
        link = self.links[lid]
        if link.up == up:
            return
        link.up = up
        self._down_links += -1 if up else 1
        self.version += 1
        for fn in list(self._observers):
            fn(link)

    def fail_cable(self, a: str, b: str) -> None:
        """Fail both directions of every parallel cable between a and b."""
        for link in self.links_between(a, b) + self.links_between(b, a):
            self.set_link_state(link.lid, False)

    def restore_cable(self, a: str, b: str) -> None:
        """Bring both directions of a cable back up."""
        for link in self.links_between(a, b) + self.links_between(b, a):
            self.set_link_state(link.lid, True)


# ----------------------------------------------------------------------
# reference builders
# ----------------------------------------------------------------------

def two_rack(
    hosts_per_rack: int = 5,
    trunk_cables: int = 2,
    link_rate: float = GBPS,
    trunk_rate: Optional[float] = None,
    traffic_generators: bool = True,
) -> Topology:
    """The paper's testbed: 2 ToR switches, N servers each, parallel trunks.

    Parallel inter-rack cables are modelled through per-cable
    intermediate "trunk" switches so that the two paths are distinct
    node sequences (k-shortest-path and ECMP then see genuinely
    different paths, as on the real wire).

    When ``traffic_generators`` is set, each rack also gets one
    generator host with an uplink fat enough to fill every trunk — the
    source/sink of the over-subscription background traffic, standing
    in for the rest of the datacenter's cross-traffic so that the
    background loads the inter-rack trunks without squatting on the
    Hadoop slaves' own NICs.
    """
    topo = Topology()
    trunk_rate = trunk_rate if trunk_rate is not None else link_rate
    for rack in range(2):
        topo.add_switch(f"tor{rack}", rack=rack, tier=1)
        for i in range(hosts_per_rack):
            name = f"h{rack}{i}"
            topo.add_host(name, ip=f"10.{rack}.{i}", rack=rack)
            topo.add_cable(name, f"tor{rack}", link_rate)
    for t in range(trunk_cables):
        mid = f"trunk{t}"
        topo.add_switch(mid, tier=2)
        topo.add_cable("tor0", mid, trunk_rate)
        topo.add_cable(mid, "tor1", trunk_rate)
    if traffic_generators:
        fat = 2.0 * trunk_rate * trunk_cables
        for rack in range(2):
            name = f"bg{rack}"
            topo.add_host(name, ip=f"10.{rack}.250", rack=rack, generator=True)
            topo.add_cable(name, f"tor{rack}", fat)
    topo.declare_clos()
    return topo


def leaf_spine(
    leaves: int = 4,
    spines: int = 2,
    hosts_per_leaf: int = 4,
    link_rate: float = GBPS,
    spine_rate: Optional[float] = None,
) -> Topology:
    """Standard 2-tier Clos: every leaf connects to every spine."""
    topo = Topology()
    spine_rate = spine_rate if spine_rate is not None else link_rate
    for s in range(spines):
        topo.add_switch(f"spine{s}", tier=2)
    # compact two-digit names ("h00") stay for small fabrics; larger
    # ones need a separator or h{1}{10} and h{11}{0} would collide.
    sep = "_" if leaves > 10 or hosts_per_leaf > 10 else ""
    for leaf in range(leaves):
        topo.add_switch(f"leaf{leaf}", rack=leaf, tier=1)
        for i in range(hosts_per_leaf):
            name = f"h{leaf}{sep}{i}"
            topo.add_host(name, ip=f"10.{leaf}.{i}", rack=leaf)
            topo.add_cable(name, f"leaf{leaf}", link_rate)
        for s in range(spines):
            topo.add_cable(f"leaf{leaf}", f"spine{s}", spine_rate)
    topo.declare_clos()
    return topo


def three_tier(
    pods: int = 2,
    racks_per_pod: int = 2,
    hosts_per_rack: int = 4,
    cores: int = 2,
    link_rate: float = GBPS,
    agg_rate: Optional[float] = None,
    core_rate: Optional[float] = None,
) -> Topology:
    """Classic 3-tier datacenter: core <- aggregation <- edge (ToR).

    Each pod has one aggregation switch connected to every core switch;
    each rack's ToR connects to its pod's aggregation switch.  The
    multi-path diversity lives at the core layer (one path per core
    switch between pods).
    """
    topo = Topology()
    agg_rate = agg_rate if agg_rate is not None else link_rate
    core_rate = core_rate if core_rate is not None else agg_rate
    sep = "_" if pods * racks_per_pod > 10 or hosts_per_rack > 10 else ""
    for c in range(cores):
        topo.add_switch(f"core{c}", tier=3)
    rack_id = 0
    for pod in range(pods):
        agg = f"agg{pod}"
        topo.add_switch(agg, tier=2)
        for c in range(cores):
            topo.add_cable(agg, f"core{c}", core_rate)
        for r in range(racks_per_pod):
            tor = f"tor{rack_id}"
            topo.add_switch(tor, rack=rack_id, tier=1)
            topo.add_cable(tor, agg, agg_rate)
            for h in range(hosts_per_rack):
                name = f"h{rack_id}{sep}{h}"
                topo.add_host(name, ip=f"10.{rack_id}.{h}", rack=rack_id)
                topo.add_cable(name, tor, link_rate)
            rack_id += 1
    topo.declare_clos()
    return topo


def fat_tree(k: int = 4, link_rate: float = GBPS) -> Topology:
    """Canonical k-ary fat-tree (k pods, k^3/4 hosts), k even."""
    if k % 2 or k < 2:
        raise ValueError("fat-tree arity must be even and >= 2")
    topo = Topology()
    half = k // 2
    cores = [[f"core{i}{j}" for j in range(half)] for i in range(half)]
    for row in cores:
        for name in row:
            topo.add_switch(name, tier=3)
    for pod in range(k):
        aggs = [f"agg{pod}_{a}" for a in range(half)]
        edges = [f"edge{pod}_{e}" for e in range(half)]
        for name in aggs:
            topo.add_switch(name, rack=pod, tier=2)
        for name in edges:
            topo.add_switch(name, rack=pod, tier=1)
        for a, agg in enumerate(aggs):
            for j in range(half):
                topo.add_cable(agg, cores[a][j], link_rate)
            for edge in edges:
                topo.add_cable(agg, edge, link_rate)
        for e, edge in enumerate(edges):
            for h in range(half):
                name = f"h{pod}_{e}{h}"
                topo.add_host(name, ip=f"10.{pod}.{e * half + h}", rack=pod)
                topo.add_cable(name, edge, link_rate)
    topo.declare_clos()
    return topo
