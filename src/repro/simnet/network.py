"""Active-flow manager: admission, fluid rate recomputation, completion.

The :class:`Network` owns every in-flight flow.  Whenever the flow set
changes (arrival, departure, reroute, link failure) it re-solves the
max-min allocation, integrates the bytes carried since the previous
change, and schedules a single "next completion" event.  Stale
completion events are invalidated with a generation counter rather than
heap surgery.

Three structural choices keep the per-event cost flat as experiments
scale (see docs/ARCHITECTURE.md "Network engine internals"):

* **Persistent incidence state.**  Elastic flows live in a slot arena
  (:class:`_SlotArena`): flat ``rate``/``remaining``/``sent``/``weight``
  vectors plus append-only ``(flow, link)`` incidence pair arrays that
  are compacted lazily when enough slots have died.  The fair-share
  solve consumes these arrays directly instead of re-concatenating
  every flow's path on each recompute, and byte integration is a single
  vectorised ``remaining -= rates * dt``.
* **Coalesced recomputation.**  Flow events mark the network *dirty*
  and schedule one zero-delay settle event; all mutations that share a
  timestamp are solved once.  The deterministic ``(time, seq)`` event
  semantics are preserved — the settle fires at the same simulated
  instant, after the mutations that requested it — and every public
  rate-reading accessor settles on demand so no caller can observe a
  stale allocation.
* **Indexed membership.**  ``flows_on_link`` is served from a
  maintained link→flow index, and the elastic/rigid collections are
  insertion-ordered dicts so completion waves no longer pay
  ``list.remove`` per flow.
* **Indexed completion scheduling.**  Each slot caches its absolute
  completion instants (``eta0`` — remaining hits zero, ``etaE`` — it
  crosses the done-epsilon), recomputed only when the slot's solved
  rate actually changes, and the network tracks the arena-wide minimum
  of each: a settle folds the dirty component's candidate minimum in
  O(1) after a vectorised argmin over just the rate-changed slots, and
  a full (C-speed, allocation-free) rescan happens only when the
  tracked minimum slot itself was re-rated or departed.  Dead slots
  park their etas at +inf so rescans are a bare ``np.argmin``.
"""

from __future__ import annotations

import itertools
import os
import time
from typing import Callable, Optional

import numpy as np

from repro import obs
from repro.faults import runtime as faults_runtime
from repro.simnet.engine import Simulator
from repro.simnet.fairshare import FairShareScratch, maxmin_rates_componentwise
from repro.simnet.flows import Flow
from repro.simnet.links import Link
from repro.simnet.topology import Topology

#: Remaining-bytes slack under which a flow counts as finished.
_DONE_EPS = 1e-3

#: shared empty index array for no-scope settles (never mutated).
_EMPTY_SLOTS = np.zeros(0, dtype=np.intp)


class _SlotArena:
    """Flat per-flow state and (flow, link) incidence for elastic flows.

    Each admitted elastic flow occupies one *slot*: an index into the
    ``rate``/``remaining``/``sent``/``weight`` vectors and a contiguous
    run ``[pair_start, pair_start + pair_count)`` of the incidence pair
    arrays.  Slots are append-only; departures mark the slot dead and
    the arena compacts (preserving slot order of the survivors) once
    dead slots or dead pairs dominate, so arrival/departure storms cost
    amortised O(path length) each instead of O(flows × links).
    """

    __slots__ = (
        "n", "rate", "remaining", "sent", "weight", "alive",
        "pair_start", "pair_count", "flows",
        "pn", "pair_flow", "pair_link", "dead", "dead_pairs", "network",
        "eta0", "etaE", "rate_scratch",
    )

    def __init__(self) -> None:
        cap, pcap = 64, 256
        #: backref so a bound Flow.rate read can settle a pending
        #: coalesced recompute (set by the owning Network).
        self.network: Optional["Network"] = None
        self.n = 0
        self.rate = np.zeros(cap)
        self.remaining = np.zeros(cap)
        self.sent = np.zeros(cap)
        self.weight = np.ones(cap)
        self.alive = np.zeros(cap, dtype=bool)
        self.pair_start = np.zeros(cap, dtype=np.intp)
        self.pair_count = np.zeros(cap, dtype=np.intp)
        self.flows: list[Optional[Flow]] = []
        self.pn = 0
        self.pair_flow = np.zeros(pcap, dtype=np.intp)
        self.pair_link = np.zeros(pcap, dtype=np.intp)
        self.dead = 0
        self.dead_pairs = 0
        #: absolute completion instants under the slot's current rate:
        #: ``eta0`` is when remaining reaches zero (inf while rate is 0
        #: or remaining already <= 0), ``etaE`` when remaining crosses
        #: the done-epsilon (-inf when already there with zero rate).
        #: NaN marks a freshly admitted slot whose eta is still unset;
        #: dead slots park at +inf so min-rescans need no alive mask.
        self.eta0 = np.full(cap, np.nan)
        self.etaE = np.full(cap, np.nan)
        #: pre-solve rate snapshot for change detection (full solves).
        self.rate_scratch = np.zeros(cap)

    # -- growth --------------------------------------------------------
    def _grow_slots(self) -> None:
        cap = len(self.rate) * 2
        for name in ("rate", "remaining", "sent", "weight", "alive",
                     "pair_start", "pair_count", "eta0", "etaE",
                     "rate_scratch"):
            old = getattr(self, name)
            new = np.zeros(cap, dtype=old.dtype)
            new[: old.shape[0]] = old
            setattr(self, name, new)

    def _grow_pairs(self, need: int) -> None:
        cap = len(self.pair_flow)
        while cap < need:
            cap *= 2
        for name in ("pair_flow", "pair_link"):
            old = getattr(self, name)
            new = np.zeros(cap, dtype=np.intp)
            new[: old.shape[0]] = old
            setattr(self, name, new)

    # -- lifecycle -----------------------------------------------------
    def add(self, flow: Flow) -> int:
        """Admit ``flow`` (using its current path) and bind it to a slot."""
        slot = self.n
        if slot == len(self.rate):
            self._grow_slots()
        lids = flow.path or []
        npairs = len(lids)
        if self.pn + npairs > len(self.pair_flow):
            self._grow_pairs(self.pn + npairs)
        self.rate[slot] = flow.rate
        self.remaining[slot] = flow.remaining
        self.sent[slot] = flow.bytes_sent
        self.weight[slot] = flow.weight
        self.alive[slot] = True
        self.eta0[slot] = np.nan
        self.etaE[slot] = np.nan
        self.pair_start[slot] = self.pn
        self.pair_count[slot] = npairs
        self.pair_flow[self.pn: self.pn + npairs] = slot
        self.pair_link[self.pn: self.pn + npairs] = lids
        self.pn += npairs
        self.flows.append(flow)
        self.n += 1
        flow._state = self
        flow._slot = slot
        return slot

    def add_batch(self, flows: list[Flow]) -> None:
        """Admit a whole wave of flows with one set of array writes.

        Same slot/pair layout as calling :meth:`add` once per flow in
        list order (slot order is admission order, pairs are appended
        path-by-path), but the vector fields are written as slabs and
        the pair arrays grow at most once — one arena append per wave
        instead of per flow.  Reads the flows' scalar fields directly
        (the flows are unbound, and going through the properties could
        re-enter a settle).
        """
        m = len(flows)
        if not m:
            return
        while self.n + m > len(self.rate):
            self._grow_slots()
        paths = [f.path or [] for f in flows]
        counts = np.array([len(p) for p in paths], dtype=np.intp)
        total = int(counts.sum())
        if self.pn + total > len(self.pair_flow):
            self._grow_pairs(self.pn + total)
        s0, p0 = self.n, self.pn
        sl = slice(s0, s0 + m)
        self.rate[sl] = [f._rate for f in flows]
        self.remaining[sl] = [f._remaining for f in flows]
        self.sent[sl] = [f._bytes_sent for f in flows]
        self.weight[sl] = [f.weight for f in flows]
        self.alive[sl] = True
        self.eta0[sl] = np.nan
        self.etaE[sl] = np.nan
        starts = p0 + np.concatenate(([0], np.cumsum(counts[:-1]))) if m else p0
        self.pair_start[sl] = starts
        self.pair_count[sl] = counts
        self.pair_flow[p0: p0 + total] = np.repeat(
            np.arange(s0, s0 + m, dtype=np.intp), counts
        )
        if total:
            self.pair_link[p0: p0 + total] = np.concatenate(
                [np.asarray(p, dtype=np.intp) for p in paths if p]
            )
        self.pn += total
        self.flows.extend(flows)
        self.n += m
        for slot, flow in enumerate(flows, start=s0):
            flow._state = self
            flow._slot = slot
            flow._pending = None

    def kill(self, flow: Flow) -> None:
        """Release the flow's slot, writing final values back to it."""
        slot = flow._slot
        flow._state = None
        flow._slot = -1
        flow._rate = float(self.rate[slot])
        flow._remaining = float(self.remaining[slot])
        flow._bytes_sent = float(self.sent[slot])
        self.rate[slot] = 0.0
        self.alive[slot] = False
        self.eta0[slot] = np.inf
        self.etaE[slot] = np.inf
        self.flows[slot] = None
        self.dead += 1
        self.dead_pairs += int(self.pair_count[slot])

    def set_path_inplace(self, flow: Flow, lids: list[int]) -> bool:
        """Swap the slot's incidence pairs for an equal-length path.

        Returns False when the new path has a different hop count (the
        caller then re-admits the flow into a fresh slot).
        """
        slot = flow._slot
        cnt = int(self.pair_count[slot])
        if len(lids) != cnt:
            return False
        start = int(self.pair_start[slot])
        self.pair_link[start: start + cnt] = lids
        return True

    def maybe_compact(self) -> None:
        """Reclaim dead slots/pairs once they outnumber the live ones."""
        if self.dead > max(16, self.n - self.dead) or (
            self.dead_pairs > max(64, self.pn - self.dead_pairs)
        ):
            self._compact()

    def _compact(self) -> None:
        n, pn = self.n, self.pn
        keep = np.flatnonzero(self.alive[:n])
        remap = np.full(n, -1, dtype=np.intp)
        remap[keep] = np.arange(keep.size, dtype=np.intp)
        pair_keep = self.alive[self.pair_flow[:pn]]
        new_pf = remap[self.pair_flow[:pn][pair_keep]]
        new_pl = self.pair_link[:pn][pair_keep]
        for name in ("rate", "remaining", "sent", "weight", "alive",
                     "pair_count", "eta0", "etaE"):
            arr = getattr(self, name)
            arr[: keep.size] = arr[keep]
        counts = self.pair_count[: keep.size]
        self.pair_start[: keep.size] = np.concatenate(
            ([0], np.cumsum(counts[:-1]))
        ) if keep.size else 0
        self.pair_flow[: new_pf.size] = new_pf
        self.pair_link[: new_pl.size] = new_pl
        survivors: list[Optional[Flow]] = []
        for slot in keep.tolist():
            flow = self.flows[slot]
            assert flow is not None
            flow._slot = len(survivors)
            survivors.append(flow)
        self.flows = survivors
        self.n = keep.size
        self.pn = int(new_pf.size)
        self.dead = 0
        self.dead_pairs = 0

    # -- fluid math ----------------------------------------------------
    def integrate(self, dt: float) -> None:
        """Vectorised byte credit: ``remaining -= rates * dt``."""
        n = self.n
        if n:
            delta = self.rate[:n] * dt
            self.sent[:n] += delta
            self.remaining[:n] -= delta

    def live_pairs(self) -> tuple[np.ndarray, np.ndarray]:
        """(pair_flow, pair_link) views restricted to live slots."""
        pf = self.pair_flow[: self.pn]
        pl = self.pair_link[: self.pn]
        if self.dead_pairs:
            live = self.alive[pf]
            return pf[live], pl[live]
        return pf, pl

    def solve(
        self, residual: np.ndarray, scratch=None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Solve max-min over the live incidence; returns the live pairs.

        Componentwise (see :func:`maxmin_rates_componentwise`): each
        connected component of the incidence is filled in isolation, so
        a later *delta* solve of any one component reproduces these
        rates bit-for-bit.  ``scratch`` (a
        :class:`~repro.simnet.fairshare.FairShareScratch`) reuses the
        owner's grow-only solver buffers.
        """
        pf, pl = self.live_pairs()
        n = self.n
        rates = maxmin_rates_componentwise(
            pf, pl, n, residual, weights=self.weight[:n], scratch=scratch
        )
        self.rate[:n] = rates
        return pf, pl


class Network:
    """Fluid-model network: rigid CBR streams + max-min elastic flows.

    Parameters
    ----------
    delta:
        Enable topology-local (delta) settles: re-solve only the
        connected components of the incidence graph a mutation touched,
        keeping every other component's rates frozen (bit-identical by
        the componentwise solve contract).  ``None`` (default) reads
        the ``REPRO_DELTA`` environment variable — any value other than
        ``"off"``/``"0"`` leaves delta mode on.
    """

    def __init__(
        self, sim: Simulator, topology: Topology, *, delta: Optional[bool] = None
    ) -> None:
        self.sim = sim
        self.topology = topology
        if delta is None:
            delta = os.environ.get("REPRO_DELTA", "") not in ("off", "0")
        self._delta = bool(delta)
        self._elastic: dict[Flow, None] = {}
        self._rigid: dict[Flow, None] = {}
        self.archive: list[Flow] = []        # every flow ever admitted
        self._on_complete: dict[int, Callable[[Flow], None]] = {}
        self._generation = 0
        self._last_integration = sim.now
        self._flow_hooks: list[Callable[[str, Flow], None]] = []
        self._arena = _SlotArena()
        self._arena.network = self
        self._dirty = False
        self._order = itertools.count()
        self._flows_by_link: dict[int, set[Flow]] = {}
        self._nlinks = 0
        #: tracked arena-wide minima of the cached completion instants:
        #: (value, witness slot) per eta kind.  A witness is trusted only
        #: while it is alive and its cached eta still equals the value;
        #: otherwise the next query rescans (slot -1 forces that).
        self._min0_val = np.inf
        self._min0_slot = -1
        self._minE_val = np.inf
        self._minE_slot = -1
        #: grow-only settle scratch (see scratch_buffer_ids): region
        #: discovery visited flags + output index buffers.  The visited
        #: slot flags double as the scoped solve's membership mask.
        self._vis_slots = np.zeros(64, dtype=bool)
        self._vis_links = np.zeros(0, dtype=bool)
        self._region_slots = np.zeros(64, dtype=np.intp)
        self._region_links = np.zeros(0, dtype=np.intp)
        self._region_stack: list[int] = []
        #: maintained per-link elastic residual (refreshed only for
        #: dirtied links each settle; recomputed wholesale on rebuild).
        self._residual = np.zeros(0)
        #: reallocations of any hoisted scratch buffer — the storm
        #: microbench asserts this stops moving after warm-up.
        self.scratch_grows = 0
        #: grow-only fair-share solver workspace (component-closure
        #: labels + progressive-filling state), shared by the full and
        #: scoped settle solves; its reallocations count as scratch
        #: grows so the no-allocation gates cover it too.
        self._fs_scratch = FairShareScratch(on_grow=self._note_scratch_grow)
        #: links whose residual or flow membership changed since the
        #: last settle — the seeds of the next delta solve's scope.
        self._dirty_links: set[int] = set()
        #: force the next settle to solve the whole fabric (topology
        #: grew, or delta mode is off).
        self._dirty_all = True
        #: admissions batched since the last settle; materialised as one
        #: arena append when the settle fires.
        self._pending_admits: list[Flow] = []
        #: flows completed by the tick that triggered the current
        #: settle — handed to scoped invariant checks, then cleared.
        self._last_completed: list[Flow] = []
        #: scope of the most recent settle, for component-scoped
        #: invariant checking: dict with ``full`` (bool), ``slots`` /
        #: ``links`` (index arrays, empty when full) and ``completed``.
        self.last_settle_scope: Optional[dict] = None
        self._rebuild_link_arrays()
        registry = obs.get_registry()
        self._tracer = obs.get_tracer()
        self._measure_recompute = registry.enabled
        self._m_arrivals = registry.counter("network.flow_arrivals")
        self._m_departures = registry.counter("network.flow_departures")
        self._m_recomputes = registry.counter("network.fair_share_recomputes")
        self._m_coalesced = registry.counter("network.recompute_coalesced")
        self._m_recompute_time = registry.histogram("network.fair_share_wall_seconds")
        self._m_solves_scoped = registry.counter("network.solves_scoped")
        self._m_solves_full = registry.counter("network.solves_full")
        self._m_comp_flows = registry.counter("network.delta_component_flows")
        self._m_comp_links = registry.counter("network.delta_component_links")
        #: callbacks fired after every settle (rate recompute) — the
        #: natural checkpoint where all fluid state is self-consistent.
        self._settle_hooks: list[Callable[["Network"], None]] = []
        topology.observe(self._on_link_state_change)
        checker = faults_runtime.get_checker()
        if checker is not None:
            checker.watch_network(self)

    # ------------------------------------------------------------------
    # public views (insertion-ordered, matching historical list semantics)
    # ------------------------------------------------------------------
    @property
    def elastic(self) -> list[Flow]:
        """Active elastic flows in admission order (paused flows excluded)."""
        return list(self._elastic)

    @property
    def rigid(self) -> list[Flow]:
        """Active rigid flows in admission order."""
        return list(self._rigid)

    # ------------------------------------------------------------------
    # observers
    # ------------------------------------------------------------------
    def add_flow_hook(self, fn: Callable[[str, Flow], None]) -> None:
        """Register ``fn(event, flow)`` for events 'start'/'end'/'reroute'."""
        self._flow_hooks.append(fn)

    def add_settle_hook(self, fn: Callable[["Network"], None]) -> None:
        """Register ``fn(network)`` to run after every rate recompute.

        Settle points are where the fluid state is fully consistent
        (bytes integrated, rates solved, completions scheduled) — the
        invariant checker audits here.  Hooks must not mutate flows.
        """
        self._settle_hooks.append(fn)

    def _emit(self, event: str, flow: Flow) -> None:
        if event == "start":
            self._m_arrivals.inc()
        elif event == "end":
            self._m_departures.inc()
        if self._tracer is not None:
            self._tracer.emit(
                self.sim.now,
                "network",
                f"flow_{event}",
                fid=flow.fid,
                src=flow.src,
                dst=flow.dst,
                bytes=flow.bytes_sent,
            )
        for fn in self._flow_hooks:
            fn(event, flow)

    # ------------------------------------------------------------------
    # admission / teardown
    # ------------------------------------------------------------------
    def start_flow(
        self,
        flow: Flow,
        path: list[int],
        on_complete: Optional[Callable[[Flow], None]] = None,
    ) -> Flow:
        """Admit a flow on an explicit link-id path."""
        if flow.start_time is not None:
            raise ValueError(f"flow {flow.fid} already started")
        self._validate_path(flow, path)
        flow.path = list(path)
        flow.start_time = self.sim.now
        flow.remaining = flow.size if flow.size is not None else float("inf")
        if on_complete is not None:
            self._on_complete[flow.fid] = on_complete
        self.archive.append(flow)
        if flow.elastic:
            self._admit_elastic(flow)
            self._flows_changed()
        else:
            self._admit_rigid(flow)
        self._emit("start", flow)
        return flow

    def _admit_elastic(self, flow: Flow) -> None:
        self._elastic[flow] = None
        flow._order = next(self._order)  # type: ignore[attr-defined]
        # Same-wave admissions are batched: the flow joins the pending
        # list now and receives its arena slot (one slab append for the
        # whole wave) when the coalesced settle fires.  Slot order is
        # still admission order, so the solve sees the same layout an
        # admit-immediately engine would.
        flow._pending = self
        self._pending_admits.append(flow)
        self._index_add(flow)
        self._dirty_links.update(flow.path or [])

    def _admit_rigid(self, flow: Flow) -> None:
        assert flow.rigid_rate is not None
        self._integrate()
        flow.rate = flow.rigid_rate
        for lid in flow.path or []:
            self.topology.links[lid].rigid_rate += flow.rigid_rate
            self._lrigid[lid] += flow.rigid_rate
        self._rigid[flow] = None
        flow._order = next(self._order)  # type: ignore[attr-defined]
        self._index_add(flow)
        self._dirty_links.update(flow.path or [])
        if flow.size is not None:
            duration = flow.size / flow.rigid_rate
            self.sim.schedule(duration, self._complete_rigid, flow)
        self._flows_changed()

    def stop_flow(self, flow: Flow) -> None:
        """Tear down an unbounded rigid flow (e.g. background stream)."""
        if flow.elastic:
            raise ValueError("elastic flows complete on their own")
        if flow.end_time is not None:
            return
        self._complete_rigid(flow)

    def _complete_rigid(self, flow: Flow) -> None:
        if flow.end_time is not None:
            return
        self._integrate()
        for lid in flow.path or []:
            self.topology.links[lid].rigid_rate -= flow.rigid_rate  # type: ignore[operator]
            self._lrigid[lid] -= flow.rigid_rate  # type: ignore[operator]
        self._dirty_links.update(flow.path or [])
        flow.end_time = self.sim.now
        flow.rate = 0.0
        del self._rigid[flow]
        self._index_remove(flow)
        self._finish(flow)
        self._flows_changed()

    def _finish(self, flow: Flow) -> None:
        cb = self._on_complete.pop(flow.fid, None)
        self._emit("end", flow)
        if cb is not None:
            cb(flow)

    # ------------------------------------------------------------------
    # rerouting and failures
    # ------------------------------------------------------------------
    def reroute(self, flow: Flow, new_path: list[int], pause: float = 0.0) -> None:
        """Move an in-flight flow onto a new path (Hedera-style or repair).

        ``pause`` models the transport-level disruption of a mid-flight
        path change (packet reordering, duplicate ACKs, cwnd recovery):
        the flow carries no traffic for that long before resuming on
        the new path.
        """
        if not flow.active:
            return
        self._validate_path(flow, new_path, allow_down=False)
        self._integrate()
        self._index_remove(flow)
        if not flow.elastic:
            for lid in flow.path or []:
                self.topology.links[lid].rigid_rate -= flow.rigid_rate  # type: ignore[operator]
                self._lrigid[lid] -= flow.rigid_rate  # type: ignore[operator]
            for lid in new_path:
                self.topology.links[lid].rigid_rate += flow.rigid_rate  # type: ignore[operator]
                self._lrigid[lid] += flow.rigid_rate  # type: ignore[operator]
        self._dirty_links.update(flow.path or [])   # vacated links
        self._dirty_links.update(new_path)          # newly loaded links
        flow.path = list(new_path)
        in_elastic = flow in self._elastic
        pending = flow._state is None
        if flow.elastic and in_elastic and not pending:
            # Equal hop count (the common case on Clos fabrics) swaps
            # the incidence pairs in place; otherwise re-slot.
            if not self._arena.set_path_inplace(flow, flow.path):
                self._arena.kill(flow)
                self._arena.add(flow)
        # A pending (batched, not yet slotted) flow only needed its path
        # list updated — add_batch reads it at the flush.
        if not flow.elastic or in_elastic:
            # paused flows rejoin the index on resume
            self._index_add(flow)
        self._emit("reroute", flow)
        if pause > 0 and flow.elastic and in_elastic:
            del self._elastic[flow]
            self._index_remove(flow)
            if pending:
                self._pending_admits.remove(flow)
                flow._pending = None
            else:
                self._arena.kill(flow)
            flow.rate = 0.0
            self.sim.schedule(pause, self._resume, flow)
        self._flows_changed()

    def _resume(self, flow: Flow) -> None:
        if flow.end_time is not None or flow in self._elastic:
            return
        self._elastic[flow] = None
        flow._order = next(self._order)  # type: ignore[attr-defined]
        flow._pending = self
        self._pending_admits.append(flow)
        self._index_add(flow)
        self._dirty_links.update(flow.path or [])
        self._flows_changed()

    def flows_on_link(self, lid: int) -> list[Flow]:
        """Active flows whose path crosses the given link.

        Served from a maintained link→flow index; ordering matches the
        historical scan of ``elastic + rigid`` in admission order.
        """
        members = self._flows_by_link.get(lid)
        if not members:
            return []
        return sorted(
            members,
            key=lambda f: (not f.elastic, f._order),  # type: ignore[attr-defined]
        )

    def _index_add(self, flow: Flow) -> None:
        by_link = self._flows_by_link
        for lid in flow.path or []:
            bucket = by_link.get(lid)
            if bucket is None:
                bucket = by_link[lid] = set()
            bucket.add(flow)

    def _index_remove(self, flow: Flow) -> None:
        by_link = self._flows_by_link
        for lid in flow.path or []:
            bucket = by_link.get(lid)
            if bucket is not None:
                bucket.discard(flow)

    def _on_link_state_change(self, link: Link) -> None:
        # Down links contribute zero residual, so affected elastic flows
        # stall at rate 0 until somebody (the SDN layer) reroutes them.
        if link.lid >= self._nlinks:
            self._rebuild_link_arrays()
            self._dirty_all = True
        else:
            self._lup[link.lid] = link.up
            self._dirty_links.add(link.lid)
        self._flows_changed()

    def _validate_path(self, flow: Flow, path: list[int], allow_down: bool = True) -> None:
        if not path:
            raise ValueError("empty path")
        links = self.topology.links
        if len(links) != self._nlinks:
            self._rebuild_link_arrays()
        if links[path[0]].src != flow.src or links[path[-1]].dst != flow.dst:
            raise ValueError(
                f"path endpoints {links[path[0]].src}->{links[path[-1]].dst} "
                f"do not match flow {flow.src}->{flow.dst}"
            )
        for a, b in zip(path, path[1:]):
            if links[a].dst != links[b].src:
                raise ValueError("discontiguous path")
        if not allow_down and any(not links[l].up for l in path):
            raise ValueError("path crosses a down link")

    def _rebuild_link_arrays(self) -> None:
        """(Re)mirror per-link state into flat arrays.

        Called at construction and if the topology ever grows links
        after the network is built.  The byte/elastic accumulators are
        owned by the network once it is live (link objects are synced
        lazily), so a rebuild preserves the existing prefix.
        """
        links = self.topology.links
        old_n = self._nlinks
        self._lcap = np.array([l.capacity for l in links], dtype=float)
        self._lup = np.array([l.up for l in links], dtype=bool)
        self._lrigid = np.array([l.rigid_rate for l in links], dtype=float)
        lelastic = np.array([l.elastic_rate for l in links], dtype=float)
        lbytes = np.array([l.bytes_carried for l in links], dtype=float)
        if old_n:
            lelastic[:old_n] = self._lelastic
            lbytes[:old_n] = self._lbytes
        self._lelastic = lelastic
        self._lbytes = lbytes
        self._nlinks = len(links)
        # Maintained residual + link-sized scratch follow the link count.
        self._residual = np.maximum(
            Link.ELASTIC_FLOOR * self._lcap, self._lcap - self._lrigid
        )
        self._residual[~self._lup] = 0.0
        self._vis_links = np.zeros(self._nlinks, dtype=bool)
        self._region_links = np.zeros(self._nlinks, dtype=np.intp)
        self.scratch_grows += 1

    # ------------------------------------------------------------------
    # fluid dynamics
    # ------------------------------------------------------------------
    def _flows_changed(self) -> None:
        """Invalidate scheduled completions and request one settle.

        Every mutation bumps the generation (stale completion ticks are
        skipped exactly as before); the expensive solve itself is
        coalesced — the first mutation at a timestamp schedules a
        zero-delay settle event and subsequent ones ride along.
        """
        self._generation += 1
        if self._dirty:
            self._m_coalesced.inc()
            return
        self._dirty = True
        self.sim.schedule(0.0, self._settle_event)

    def _settle_event(self) -> None:
        if self._dirty:
            self._settle()

    def settle(self) -> None:
        """Solve max-min now if a flow event is pending a recompute.

        Idempotent; every public rate-reading accessor calls this, so
        callers that consume instantaneous rates never observe a
        pre-settle allocation.
        """
        if self._dirty:
            self._settle()

    def _integrate(self) -> None:
        """Credit bytes carried since the last rate change."""
        now = self.sim.now
        dt = now - self._last_integration
        if dt <= 0:
            return
        self._arena.integrate(dt)
        for flow in self._rigid:
            flow.bytes_sent += flow.rate * dt
            if flow.size is not None:
                flow.remaining -= flow.rate * dt
        self._lbytes += (self._lelastic + self._lrigid) * dt
        self._last_integration = now

    def _flush_admits(self) -> None:
        """Materialise the batched admissions as one arena slab append."""
        if self._pending_admits:
            pending = self._pending_admits
            self._pending_admits = []
            self._arena.add_batch(pending)

    def _note_scratch_grow(self) -> None:
        """Fold fair-share workspace reallocations into the grow gauge."""
        self.scratch_grows += 1

    def _ensure_slot_scratch(self) -> None:
        """Grow the slot-sized scratch to the arena's slot capacity."""
        cap = len(self._arena.rate)
        if len(self._vis_slots) < cap:
            self._vis_slots = np.zeros(cap, dtype=bool)
            self._region_slots = np.zeros(cap, dtype=np.intp)
            self.scratch_grows += 1

    def _affected_region(self) -> tuple[np.ndarray, np.ndarray]:
        """Closure of the dirty links under the live flow-link incidence.

        Breadth-first over the bipartite incidence graph starting from
        the links dirtied since the previous settle: every live elastic
        flow crossing a reached link joins the region, and drags every
        link on its path in.  The result is a union of whole connected
        components — exactly the set whose max-min rates can have
        changed — returned as sorted (slot, link) index arrays.

        The returned arrays are views into grow-only scratch buffers
        (valid until the next settle), and the visited-slot flags are
        left set so the scoped solve can reuse them as its membership
        mask; ``_settle`` clears both flag sets once done.
        """
        arena = self._arena
        self._ensure_slot_scratch()
        nlinks = self._nlinks
        vis_l = self._vis_links
        vis_s = self._vis_slots
        out_l = self._region_links
        out_s = self._region_slots
        stack = self._region_stack
        nl = ns = 0
        for lid in self._dirty_links:
            if 0 <= lid < nlinks and not vis_l[lid]:
                vis_l[lid] = True
                out_l[nl] = lid
                nl += 1
                stack.append(lid)
        by_link = self._flows_by_link
        pair_link = arena.pair_link
        while stack:
            lid = stack.pop()
            for flow in by_link.get(lid, ()):
                if flow._state is not arena:
                    continue  # rigid, paused, or not yet slotted
                slot = flow._slot
                if vis_s[slot]:
                    continue
                vis_s[slot] = True
                out_s[ns] = slot
                ns += 1
                start = int(arena.pair_start[slot])
                stop = start + int(arena.pair_count[slot])
                for l in pair_link[start:stop].tolist():
                    if not vis_l[l]:
                        vis_l[l] = True
                        out_l[nl] = l
                        nl += 1
                        stack.append(l)
        slots = out_s[:ns]
        links = out_l[:nl]
        slots.sort()
        links.sort()
        return slots, links

    def touch_links(self, lids) -> None:
        """Mark links dirty and request a settle (fault injection hook).

        External mutators that bypass the flow API (e.g. the chaos
        engine corrupting arena state) call this so the delta scope
        covers the components they touched.
        """
        self._dirty_links.update(int(l) for l in lids)
        self._flows_changed()

    def _settle(self) -> None:
        """Re-solve max-min rates and schedule the next completion.

        Delta mode re-solves only the *affected region*: the connected
        components of the live incidence reachable from the links
        dirtied since the previous settle.  Rates and per-link elastic
        loads outside the region are left untouched — bit-identical to
        a whole-fabric componentwise solve, because a component's fill
        never reads another component's state
        (:func:`~repro.simnet.fairshare.maxmin_rates_componentwise`).
        """
        start = time.perf_counter() if self._measure_recompute else 0.0
        self._integrate()
        self._dirty = False
        self._m_recomputes.inc()
        if len(self.topology.links) != self._nlinks:
            self._rebuild_link_arrays()
            self._dirty_all = True
        self._flush_admits()
        self._refresh_residual()
        residual = self._residual
        arena = self._arena
        n = arena.n
        full = not self._delta or self._dirty_all
        upd = _EMPTY_SLOTS
        if full:
            if self._elastic:
                prev = arena.rate_scratch
                prev[:n] = arena.rate[:n]
                pf, pl = arena.solve(residual, scratch=self._fs_scratch)
                self._lelastic = np.bincount(
                    pl, weights=arena.rate[:n][pf], minlength=self._nlinks
                )
                # Untouched components re-solve to bit-identical rates
                # (the componentwise contract), so value comparison
                # finds exactly the slots whose trajectory moved — the
                # same set a delta engine would re-solve.
                upd = np.flatnonzero(
                    arena.alive[:n]
                    & ((arena.rate[:n] != prev[:n]) | np.isnan(arena.eta0[:n]))
                )
            else:
                self._lelastic = np.zeros(self._nlinks)
            self._m_solves_full.inc()
            scope_slots = scope_links = _EMPTY_SLOTS
        else:
            scope_slots, scope_links = self._affected_region()
            if scope_slots.size:
                pf_all = arena.pair_flow[: arena.pn]
                pl_all = arena.pair_link[: arena.pn]
                # region discovery left _vis_slots marking exactly the
                # scoped slots — dead slots are never in the region
                mask = self._vis_slots[pf_all]
                pf_r = pf_all[mask]
                pl_r = pl_all[mask]
                rates_r = maxmin_rates_componentwise(
                    pf_r, pl_r, n, residual,
                    weights=arena.weight[:n], scratch=self._fs_scratch,
                )
                new_rates = rates_r[scope_slots]
                upd = scope_slots[
                    (new_rates != arena.rate[scope_slots])
                    | np.isnan(arena.eta0[scope_slots])
                ]
                arena.rate[scope_slots] = new_rates
                self._lelastic[scope_links] = np.bincount(
                    np.searchsorted(scope_links, pl_r),
                    weights=rates_r[pf_r],
                    minlength=scope_links.size,
                )
            elif scope_links.size:
                # dirtied links with no live elastic flows left on them
                self._lelastic[scope_links] = 0.0
            self._vis_slots[scope_slots] = False
            self._vis_links[scope_links] = False
            self._m_solves_scoped.inc()
            self._m_comp_flows.inc(int(scope_slots.size))
            self._m_comp_links.inc(int(scope_links.size))
        # Completion scheduling stays global: the next finisher may sit
        # in an untouched component (rates there are frozen, not gone).
        # The tracked minima index cached absolute etas, refreshed above
        # only for rate-changed slots — no per-settle scan over every
        # live flow.
        if n:
            now = self.sim.now
            if upd.size:
                self._refresh_etas(upd, now)
            eta = self._min_eta0()
            if eta < np.inf:
                self.sim.schedule_at(
                    eta if eta > now else now, self._completion_tick, self._generation
                )
            # flows already at/below the done-epsilon complete immediately
            if self._min_etaE() <= now:
                self.sim.schedule(0.0, self._completion_tick, self._generation)
        self.last_settle_scope = {
            "full": full,
            "slots": scope_slots,
            "links": scope_links,
            "completed": self._last_completed,
        }
        self._dirty_links.clear()
        self._dirty_all = False
        self._last_completed = []
        if self._measure_recompute:
            self._m_recompute_time.observe(time.perf_counter() - start)
        for hook in self._settle_hooks:
            hook(self)

    # ------------------------------------------------------------------
    # indexed completion scheduling
    # ------------------------------------------------------------------
    def _refresh_residual(self) -> None:
        """Refresh the maintained residual for links dirtied since last settle.

        Every residual input (capacity, rigid rate, up/down state) is
        changed only through paths that add the link to ``_dirty_links``
        (or rebuild the arrays wholesale), so touching just the dirty
        entries keeps the array bit-identical to a full recompute.
        """
        dl = self._dirty_links
        if not dl:
            return
        lids = np.fromiter(dl, dtype=np.intp, count=len(dl))
        lids = lids[(lids >= 0) & (lids < self._nlinks)]
        if not lids.size:
            return
        c = self._lcap[lids]
        r = np.maximum(Link.ELASTIC_FLOOR * c, c - self._lrigid[lids])
        r[~self._lup[lids]] = 0.0
        self._residual[lids] = r

    def _refresh_etas(self, slots: np.ndarray, now: float) -> None:
        """Recompute cached completion instants for rate-changed slots.

        ``eta0`` (remaining hits zero) feeds the next-completion event;
        ``etaE`` (remaining crosses the done-epsilon) feeds the done
        scan.  Both are absolute times — invariant under integration
        while the rate is unchanged, which is what makes caching sound.
        The dirty set's own minimum then folds into the tracked global
        minimum in O(1): every eta outside ``slots`` is unchanged, so
        the new global minimum is min(old tracked value, dirty-set
        candidate) — unless the tracked witness itself was re-rated or
        has died, in which case the next query rescans.
        """
        arena = self._arena
        r = arena.rate[slots]
        rem = arena.remaining[slots]
        pos = r > 0.0
        q0 = np.divide(rem, r, out=np.full(slots.size, np.inf), where=pos)
        eta0 = np.where(rem > 0.0, now + q0, np.inf)
        qE = np.divide(rem - _DONE_EPS, r, out=np.full(slots.size, np.inf), where=pos)
        etaE = np.where(
            pos, now + qE, np.where(rem <= _DONE_EPS, -np.inf, np.inf)
        )
        arena.eta0[slots] = eta0
        arena.etaE[slots] = etaE
        n = arena.n
        alive = arena.alive
        j = int(np.argmin(eta0))
        ptr = self._min0_slot
        if 0 <= ptr < n and alive[ptr] and arena.eta0[ptr] == self._min0_val:
            if eta0[j] < self._min0_val:
                self._min0_val = float(eta0[j])
                self._min0_slot = int(slots[j])
        else:
            self._min0_slot = -1
        k = int(np.argmin(etaE))
        ptr = self._minE_slot
        if 0 <= ptr < n and alive[ptr] and arena.etaE[ptr] == self._minE_val:
            if etaE[k] < self._minE_val:
                self._minE_val = float(etaE[k])
                self._minE_slot = int(slots[k])
        else:
            self._minE_slot = -1

    def _min_eta0(self) -> float:
        """Arena-wide minimum cached zero-crossing eta (inf when none).

        O(1) while the tracked witness slot is still alive with an
        unchanged eta; otherwise one allocation-free ``np.argmin`` over
        the cached array (dead slots park at +inf, so no mask).  A
        compaction may leave the witness index pointing at a different
        slot — that is still sound: the value-match check only passes
        when *some* alive slot holds exactly the tracked value, and the
        tracked value stays a lower bound across kills (etas only move
        to +inf) and compactions (a permutation).
        """
        arena = self._arena
        n = arena.n
        ptr = self._min0_slot
        if 0 <= ptr < n and arena.alive[ptr] and arena.eta0[ptr] == self._min0_val:
            return self._min0_val
        if not n:
            self._min0_slot = -1
            return np.inf
        eta = arena.eta0[:n]
        j = int(np.argmin(eta))
        self._min0_slot = j
        self._min0_val = v = float(eta[j])
        return v

    def _min_etaE(self) -> float:
        """Arena-wide minimum cached eps-crossing eta (inf when none)."""
        arena = self._arena
        n = arena.n
        ptr = self._minE_slot
        if 0 <= ptr < n and arena.alive[ptr] and arena.etaE[ptr] == self._minE_val:
            return self._minE_val
        if not n:
            self._minE_slot = -1
            return np.inf
        eta = arena.etaE[:n]
        j = int(np.argmin(eta))
        self._minE_slot = j
        self._minE_val = v = float(eta[j])
        return v

    def scratch_buffer_ids(self) -> dict[str, int]:
        """Identities of the hoisted settle scratch buffers.

        The storm microbench captures these after warm-up and asserts
        they stay put — i.e. the per-settle path performs no fresh
        allocation of any fabric- or arena-sized working array.
        """
        ids = {
            "residual": id(self._residual),
            "vis_slots": id(self._vis_slots),
            "vis_links": id(self._vis_links),
            "region_slots": id(self._region_slots),
            "region_links": id(self._region_links),
            "rate_scratch": id(self._arena.rate_scratch),
        }
        for name, bid in self._fs_scratch.buffer_ids().items():
            ids[f"fairshare.{name}"] = bid
        return ids

    def _completion_tick(self, generation: int) -> None:
        if generation != self._generation:
            return  # superseded by a later recompute
        self._integrate()
        arena = self._arena
        n = arena.n
        now = self.sim.now
        # The tracked minimum answers "anything at/past its eps-crossing?"
        # in O(1); only a productive tick pays the vectorised collection
        # scan (dead slots park at +inf, so no alive mask is needed).
        # Ascending slot order preserves the historical callback order.
        if not n or self._min_etaE() > now:
            return
        done_idx = np.flatnonzero(arena.etaE[:n] <= now)
        if not done_idx.size:
            return
        done: list[Flow] = []
        for slot in done_idx.tolist():
            flow = arena.flows[slot]
            assert flow is not None
            del self._elastic[flow]
            self._index_remove(flow)
            self._dirty_links.update(flow.path or [])
            arena.kill(flow)
            flow.end_time = now
            flow.rate = 0.0
            flow.remaining = 0.0
            if flow.size is not None:
                flow.bytes_sent = flow.size
            done.append(flow)
        arena.maybe_compact()
        # Recompute before callbacks so new flows started from callbacks
        # see post-departure rates.  Settle synchronously (dirty cannot
        # already be set here, or the generation guard would have fired)
        # rather than via a zero-delay event, so no extra event is spent.
        self._generation += 1
        self._dirty = True
        self._last_completed = done
        self._settle()
        for flow in done:
            self._finish(flow)

    # ------------------------------------------------------------------
    # measurement
    # ------------------------------------------------------------------
    def link_load(self) -> np.ndarray:
        """Instantaneous total rate per link (bytes/s)."""
        self.settle()
        return self._lelastic + self._lrigid

    def link_elastic_load(self) -> np.ndarray:
        """Instantaneous elastic (tracked-transfer) rate per link."""
        self.settle()
        return self._lelastic.copy()

    def link_capacity(self) -> np.ndarray:
        """Per-link capacity (0 for down links)."""
        if len(self.topology.links) != self._nlinks:
            self._rebuild_link_arrays()
        return np.where(self._lup, self._lcap, 0.0)

    def link_bytes(self) -> np.ndarray:
        """Cumulative bytes carried per link, current to this instant."""
        self._integrate()
        return self._lbytes.copy()

    def sample_counters(self) -> None:
        """Bring per-flow/link byte counters up to the current instant."""
        self._integrate()
        now = self.sim.now
        links = self.topology.links
        if len(links) != self._nlinks:
            self._rebuild_link_arrays()
        for link, carried, erate in zip(
            links, self._lbytes.tolist(), self._lelastic.tolist()
        ):
            link.bytes_carried = carried
            link.elastic_rate = erate
            link._last_update = now
