"""Active-flow manager: admission, fluid rate recomputation, completion.

The :class:`Network` owns every in-flight flow.  Whenever the flow set
changes (arrival, departure, reroute, link failure) it re-solves the
max-min allocation, integrates the bytes carried since the previous
change, and schedules a single "next completion" event.  Stale
completion events are invalidated with a generation counter rather than
heap surgery.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

import numpy as np

from repro import obs
from repro.simnet.engine import Simulator
from repro.simnet.fairshare import maxmin_rates
from repro.simnet.flows import Flow
from repro.simnet.topology import Topology

#: Remaining-bytes slack under which a flow counts as finished.
_DONE_EPS = 1e-3


class Network:
    """Fluid-model network: rigid CBR streams + max-min elastic flows."""

    def __init__(self, sim: Simulator, topology: Topology) -> None:
        self.sim = sim
        self.topology = topology
        self.elastic: list[Flow] = []
        self.rigid: list[Flow] = []
        self.archive: list[Flow] = []        # every flow ever admitted
        self._on_complete: dict[int, Callable[[Flow], None]] = {}
        self._generation = 0
        self._last_integration = sim.now
        self._flow_hooks: list[Callable[[str, Flow], None]] = []
        registry = obs.get_registry()
        self._tracer = obs.get_tracer()
        self._measure_recompute = registry.enabled
        self._m_arrivals = registry.counter("network.flow_arrivals")
        self._m_departures = registry.counter("network.flow_departures")
        self._m_recomputes = registry.counter("network.fair_share_recomputes")
        self._m_recompute_time = registry.histogram("network.fair_share_wall_seconds")
        topology.observe(self._on_link_state_change)

    # ------------------------------------------------------------------
    # observers
    # ------------------------------------------------------------------
    def add_flow_hook(self, fn: Callable[[str, Flow], None]) -> None:
        """Register ``fn(event, flow)`` for events 'start'/'end'/'reroute'."""
        self._flow_hooks.append(fn)

    def _emit(self, event: str, flow: Flow) -> None:
        if event == "start":
            self._m_arrivals.inc()
        elif event == "end":
            self._m_departures.inc()
        if self._tracer is not None:
            self._tracer.emit(
                self.sim.now,
                "network",
                f"flow_{event}",
                fid=flow.fid,
                src=flow.src,
                dst=flow.dst,
                bytes=flow.bytes_sent,
            )
        for fn in self._flow_hooks:
            fn(event, flow)

    # ------------------------------------------------------------------
    # admission / teardown
    # ------------------------------------------------------------------
    def start_flow(
        self,
        flow: Flow,
        path: list[int],
        on_complete: Optional[Callable[[Flow], None]] = None,
    ) -> Flow:
        """Admit a flow on an explicit link-id path."""
        if flow.start_time is not None:
            raise ValueError(f"flow {flow.fid} already started")
        self._validate_path(flow, path)
        flow.path = list(path)
        flow.start_time = self.sim.now
        flow.remaining = flow.size if flow.size is not None else float("inf")
        if on_complete is not None:
            self._on_complete[flow.fid] = on_complete
        self.archive.append(flow)
        if flow.elastic:
            self.elastic.append(flow)
            self._recompute()
        else:
            self._admit_rigid(flow)
        self._emit("start", flow)
        return flow

    def _admit_rigid(self, flow: Flow) -> None:
        assert flow.rigid_rate is not None
        self._integrate()
        flow.rate = flow.rigid_rate
        for lid in flow.path or []:
            self.topology.links[lid].rigid_rate += flow.rigid_rate
        self.rigid.append(flow)
        if flow.size is not None:
            duration = flow.size / flow.rigid_rate
            self.sim.schedule(duration, self._complete_rigid, flow)
        self._recompute()

    def stop_flow(self, flow: Flow) -> None:
        """Tear down an unbounded rigid flow (e.g. background stream)."""
        if flow.elastic:
            raise ValueError("elastic flows complete on their own")
        if flow.end_time is not None:
            return
        self._complete_rigid(flow)

    def _complete_rigid(self, flow: Flow) -> None:
        if flow.end_time is not None:
            return
        self._integrate()
        for lid in flow.path or []:
            self.topology.links[lid].rigid_rate -= flow.rigid_rate  # type: ignore[operator]
        flow.end_time = self.sim.now
        flow.rate = 0.0
        self.rigid.remove(flow)
        self._finish(flow)
        self._recompute()

    def _finish(self, flow: Flow) -> None:
        cb = self._on_complete.pop(flow.fid, None)
        self._emit("end", flow)
        if cb is not None:
            cb(flow)

    # ------------------------------------------------------------------
    # rerouting and failures
    # ------------------------------------------------------------------
    def reroute(self, flow: Flow, new_path: list[int], pause: float = 0.0) -> None:
        """Move an in-flight flow onto a new path (Hedera-style or repair).

        ``pause`` models the transport-level disruption of a mid-flight
        path change (packet reordering, duplicate ACKs, cwnd recovery):
        the flow carries no traffic for that long before resuming on
        the new path.
        """
        if not flow.active:
            return
        self._validate_path(flow, new_path, allow_down=False)
        self._integrate()
        if not flow.elastic:
            for lid in flow.path or []:
                self.topology.links[lid].rigid_rate -= flow.rigid_rate  # type: ignore[operator]
            for lid in new_path:
                self.topology.links[lid].rigid_rate += flow.rigid_rate  # type: ignore[operator]
        flow.path = list(new_path)
        flow._path_np = None  # type: ignore[attr-defined]  # invalidate cache
        self._emit("reroute", flow)
        if pause > 0 and flow.elastic and flow in self.elastic:
            self.elastic.remove(flow)
            flow.rate = 0.0
            self.sim.schedule(pause, self._resume, flow)
        self._recompute()

    def _resume(self, flow: Flow) -> None:
        if flow.end_time is not None or flow in self.elastic:
            return
        self.elastic.append(flow)
        self._recompute()

    def flows_on_link(self, lid: int) -> list[Flow]:
        """Active flows whose path crosses the given link."""
        return [f for f in self.elastic + self.rigid if f.path and lid in f.path]

    def _on_link_state_change(self, link) -> None:
        # Down links contribute zero residual, so affected elastic flows
        # stall at rate 0 until somebody (the SDN layer) reroutes them.
        self._recompute()

    def _validate_path(self, flow: Flow, path: list[int], allow_down: bool = True) -> None:
        if not path:
            raise ValueError("empty path")
        links = self.topology.links
        if links[path[0]].src != flow.src or links[path[-1]].dst != flow.dst:
            raise ValueError(
                f"path endpoints {links[path[0]].src}->{links[path[-1]].dst} "
                f"do not match flow {flow.src}->{flow.dst}"
            )
        for a, b in zip(path, path[1:]):
            if links[a].dst != links[b].src:
                raise ValueError("discontiguous path")
        if not allow_down and any(not links[l].up for l in path):
            raise ValueError("path crosses a down link")

    # ------------------------------------------------------------------
    # fluid dynamics
    # ------------------------------------------------------------------
    def _integrate(self) -> None:
        """Credit bytes carried since the last rate change."""
        now = self.sim.now
        dt = now - self._last_integration
        if dt <= 0:
            return
        for flow in self.elastic:
            sent = flow.rate * dt
            flow.bytes_sent += sent
            flow.remaining -= sent
        for flow in self.rigid:
            flow.bytes_sent += flow.rate * dt
            if flow.size is not None:
                flow.remaining -= flow.rate * dt
        for link in self.topology.links:
            link.advance(now)
        self._last_integration = now

    def _recompute(self) -> None:
        """Re-solve max-min rates and schedule the next completion."""
        start = time.perf_counter() if self._measure_recompute else 0.0
        self._integrate()
        self._m_recomputes.inc()
        self._generation += 1
        links = self.topology.links
        residual = np.array(
            [l.residual if l.up else 0.0 for l in links], dtype=float
        )
        for link in links:
            link.elastic_rate = 0.0
        if self.elastic:
            # path index arrays are cached per flow: recompute runs on
            # every flow event, so avoiding the per-flow re-allocation
            # measurably cuts experiment wall time (see DESIGN.md §5)
            paths = []
            for f in self.elastic:
                cached = getattr(f, "_path_np", None)
                if cached is None:
                    cached = np.asarray(f.path, dtype=np.intp)
                    f._path_np = cached  # type: ignore[attr-defined]
                paths.append(cached)
            weights = np.array([f.weight for f in self.elastic])
            rates = maxmin_rates(paths, residual, weights=weights)
            next_done = float("inf")
            for flow, rate in zip(self.elastic, rates):
                flow.rate = float(rate)
                for lid in flow.path:  # type: ignore[union-attr]
                    links[lid].elastic_rate += flow.rate
                if flow.rate > 0 and flow.remaining > 0:
                    next_done = min(next_done, flow.remaining / flow.rate)
            if next_done < float("inf"):
                self.sim.schedule(next_done, self._completion_tick, self._generation)
        # flows already at/below zero remaining complete immediately
        if any(f.remaining <= _DONE_EPS for f in self.elastic):
            self.sim.schedule(0.0, self._completion_tick, self._generation)
        if self._measure_recompute:
            self._m_recompute_time.observe(time.perf_counter() - start)

    def _completion_tick(self, generation: int) -> None:
        if generation != self._generation:
            return  # superseded by a later recompute
        self._integrate()
        done = [f for f in self.elastic if f.remaining <= _DONE_EPS]
        if not done:
            return
        for flow in done:
            self.elastic.remove(flow)
            flow.end_time = self.sim.now
            flow.rate = 0.0
            flow.remaining = 0.0
            if flow.size is not None:
                flow.bytes_sent = flow.size
        # Recompute before callbacks so new flows started from callbacks
        # see post-departure rates.
        self._recompute()
        for flow in done:
            self._finish(flow)

    # ------------------------------------------------------------------
    # measurement
    # ------------------------------------------------------------------
    def link_load(self) -> np.ndarray:
        """Instantaneous total rate per link (bytes/s)."""
        return np.array([l.total_rate for l in self.topology.links])

    def link_capacity(self) -> np.ndarray:
        """Per-link capacity (0 for down links)."""
        return np.array(
            [l.capacity if l.up else 0.0 for l in self.topology.links]
        )

    def sample_counters(self) -> None:
        """Bring per-flow/link byte counters up to the current instant."""
        self._integrate()
