"""NetFlow-style measurement probes.

§V-C of the paper deploys NetFlow probes on every server plus a central
collector, then post-processes the traces into *cumulative per-server
sourced shuffle volume over time* — the measured curve of Figure 5.
This module reproduces that pipeline: periodic byte-counter sampling of
every flow whose destination port is the Hadoop shuffle port, keyed by
sourcing server.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.simnet.engine import Simulator
from repro.simnet.flows import Flow
from repro.simnet.network import Network


@dataclass
class _Series:
    times: list[float]
    values: list[float]


class NetFlowCollector:
    """Samples cumulative shuffle egress per server.

    Sampling happens on a fixed export interval while shuffle flows are
    active, plus at every flow start/end so phase boundaries are sharp.
    The sampler stops rescheduling itself when the network goes idle,
    so it never keeps the event queue alive after a job finishes.
    """

    def __init__(self, sim: Simulator, network: Network, interval: float = 1.0) -> None:
        self.sim = sim
        self.network = network
        self.interval = interval
        self._flows_by_src: dict[str, list[Flow]] = defaultdict(list)
        self._series: dict[str, _Series] = defaultdict(lambda: _Series([], []))
        self._ticking = False
        network.add_flow_hook(self._on_flow_event)

    # ------------------------------------------------------------------
    def _on_flow_event(self, event: str, flow: Flow) -> None:
        if not flow.is_shuffle():
            return
        if event == "start":
            self._flows_by_src[flow.src].append(flow)
            if not self._ticking:
                self._ticking = True
                self.sim.schedule(0.0, self._tick)
            else:
                self._sample()
        elif event == "end":
            self._sample()

    def _tick(self) -> None:
        self._sample()
        if any(f.active for flows in self._flows_by_src.values() for f in flows):
            self.sim.schedule(self.interval, self._tick)
        else:
            self._ticking = False

    def _sample(self) -> None:
        self.network.sample_counters()
        now = self.sim.now
        for src, flows in self._flows_by_src.items():
            total = sum(f.bytes_sent for f in flows)
            series = self._series[src]
            if series.times and series.times[-1] == now:
                series.values[-1] = total
            else:
                series.times.append(now)
                series.values.append(total)

    # ------------------------------------------------------------------
    # trace post-processing (the paper's collector-side analysis)
    # ------------------------------------------------------------------
    def servers(self) -> list[str]:
        """Servers that sourced shuffle traffic, sorted."""
        return sorted(self._series)

    def series(self, server: str) -> tuple[np.ndarray, np.ndarray]:
        """(times, cumulative bytes) actually sourced by ``server``."""
        s = self._series[server]
        return np.asarray(s.times), np.asarray(s.values)

    def total_sourced(self, server: str) -> float:
        """Final cumulative shuffle bytes sourced by one server."""
        s = self._series[server]
        return s.values[-1] if s.values else 0.0

    def traffic_matrix(self) -> dict[tuple[str, str], float]:
        """Final shuffle bytes exchanged per (src, dst) server pair."""
        matrix: dict[tuple[str, str], float] = defaultdict(float)
        for flows in self._flows_by_src.values():
            for f in flows:
                matrix[(f.src, f.dst)] += f.bytes_sent
        return dict(matrix)
