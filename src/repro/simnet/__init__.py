"""Flow-level datacenter network simulation substrate.

This package provides the network model that stands in for the paper's
2-rack physical OpenFlow testbed: a deterministic discrete-event engine
(:mod:`repro.simnet.engine`), a capacitated multi-path topology
(:mod:`repro.simnet.topology`), a fluid max-min fair bandwidth-sharing
model for elastic (TCP) flows alongside rigid (UDP CBR) background
traffic (:mod:`repro.simnet.fairshare`, :mod:`repro.simnet.network`),
and NetFlow-style measurement probes (:mod:`repro.simnet.netflow`).
"""

from repro.simnet.engine import Simulator, Event
from repro.simnet.topology import (
    NodeKind,
    Topology,
    fat_tree,
    leaf_spine,
    three_tier,
    two_rack,
)
from repro.simnet.links import Link
from repro.simnet.flows import Flow, FiveTuple, SHUFFLE_PORT
from repro.simnet.network import Network
from repro.simnet.paths import k_shortest_paths, shortest_path
from repro.simnet.background import BackgroundTraffic, oversubscription_background_rate
from repro.simnet.netflow import NetFlowCollector

__all__ = [
    "Simulator",
    "Event",
    "Topology",
    "NodeKind",
    "two_rack",
    "leaf_spine",
    "fat_tree",
    "three_tier",
    "Link",
    "Flow",
    "FiveTuple",
    "SHUFFLE_PORT",
    "Network",
    "k_shortest_paths",
    "shortest_path",
    "BackgroundTraffic",
    "oversubscription_background_rate",
    "NetFlowCollector",
]
