"""Flow records: elastic (TCP) transfers and rigid (UDP CBR) streams.

A flow is the unit the whole paper operates on — ECMP hashes it, the
Pythia allocator routes it, NetFlow measures it.  The shuffle service
port is 50060, matching Hadoop 1.x's tasktracker HTTP port that the
paper filtered on when post-processing its NetFlow traces.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import NamedTuple, Optional

SHUFFLE_PORT = 50060
TCP = 6
UDP = 17

_flow_ids = itertools.count(1)


class FiveTuple(NamedTuple):
    """Classical transport five-tuple used for ECMP hashing (RFC 2992)."""

    src_ip: str
    dst_ip: str
    src_port: int
    dst_port: int
    proto: int


@dataclass
class Flow:
    """A point-to-point transfer between two hosts.

    Elastic flows (``rigid_rate is None``) have a finite ``size`` in
    bytes and receive a max-min fair share of their path's residual
    bandwidth.  Rigid flows model iperf-style UDP constant-bit-rate
    background traffic: they send at ``rigid_rate`` regardless of
    congestion and may be unbounded (``size is None``).
    """

    src: str
    dst: str
    size: Optional[float]
    five_tuple: FiveTuple
    rigid_rate: Optional[float] = None
    tags: dict = field(default_factory=dict)
    #: weighted-fair-share weight (per-flow QoS queue analogue); the
    #: Pythia weighted-shuffle extension sets this from the reducer's
    #: predicted volume share.
    weight: float = 1.0
    fid: int = field(default_factory=lambda: next(_flow_ids))

    # -- runtime state (owned by Network) --------------------------------
    path: Optional[list[int]] = None          # link ids, set at admission
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    # While a flow is an *active elastic* flow, its rate/remaining/
    # bytes_sent live in the owning Network's flat slot arrays (so byte
    # integration and the fair-share solve stay fully vectorised); the
    # properties below read through the binding.  Outside that window
    # (before admission, after completion, rigid flows, paused flows)
    # the scalar fields are authoritative.
    _rate: float = field(default=0.0, repr=False)
    _remaining: float = field(default=0.0, repr=False)
    _bytes_sent: float = field(default=0.0, repr=False)
    _state: Optional[object] = field(default=None, repr=False)   # slot arena
    _slot: int = field(default=-1, repr=False)
    #: owning Network while the flow is admitted but its arena slot has
    #: not been materialised yet (same-wave admissions are batched into
    #: one arena append at the settle); a rate read settles first, so
    #: the deferral is unobservable.
    _pending: Optional[object] = field(default=None, repr=False)

    @property
    def rate(self) -> float:
        """Current instantaneous rate (bytes/s).

        Rates are the one piece of runtime state that can be pending a
        coalesced recompute, so the bound read settles the owning
        network first — a reader between a same-instant flow event and
        its settle observes exactly what an always-synchronous engine
        would have produced.  A flow whose admission is still batched
        (no arena slot yet) settles through its owning network, which
        materialises the slot before solving.
        """
        state = self._state
        if state is not None:
            network = state.network
            if network is not None and network._dirty:
                network._settle()
            return float(state.rate[self._slot])
        pending = self._pending
        if pending is not None:
            pending.settle()
            state = self._state
            if state is not None:
                return float(state.rate[self._slot])
        return self._rate

    @rate.setter
    def rate(self, value: float) -> None:
        state = self._state
        if state is not None:
            state.rate[self._slot] = value
        else:
            self._rate = value

    @property
    def remaining(self) -> float:
        """Bytes left to send."""
        state = self._state
        if state is not None:
            return float(state.remaining[self._slot])
        return self._remaining

    @remaining.setter
    def remaining(self, value: float) -> None:
        state = self._state
        if state is not None:
            state.remaining[self._slot] = value
        else:
            self._remaining = value

    @property
    def bytes_sent(self) -> float:
        """Bytes carried so far."""
        state = self._state
        if state is not None:
            return float(state.sent[self._slot])
        return self._bytes_sent

    @bytes_sent.setter
    def bytes_sent(self, value: float) -> None:
        state = self._state
        if state is not None:
            state.sent[self._slot] = value
        else:
            self._bytes_sent = value

    @property
    def elastic(self) -> bool:
        """True for TCP-like flows that share bandwidth fairly."""
        return self.rigid_rate is None

    @property
    def active(self) -> bool:
        """True while the flow is admitted but not finished."""
        return self.start_time is not None and self.end_time is None

    @property
    def duration(self) -> Optional[float]:
        """Transfer time, or None before completion."""
        if self.start_time is None or self.end_time is None:
            return None
        return self.end_time - self.start_time

    def arena_bound(self) -> bool:
        """True while the flow's runtime state lives in a slot arena."""
        return self._state is not None

    def conservation_error(self) -> float:
        """``|size - bytes_sent - remaining|`` in bytes (0 for unbounded).

        Physically meaningful at any instant: the fluid engine credits
        every byte it debits, so any drift beyond float noise means the
        accounting was corrupted (the invariant checker asserts this at
        every settle point).
        """
        if self.size is None:
            return 0.0
        return abs(self.size - self.bytes_sent - self.remaining)

    def is_shuffle(self) -> bool:
        """True if either endpoint is the Hadoop shuffle service port.

        On the wire the data-carrying direction runs *from* the mapper's
        tasktracker HTTP server (source port 50060) to the reducer's
        ephemeral port, so the source port is the service side.
        """
        return SHUFFLE_PORT in (self.five_tuple.src_port, self.five_tuple.dst_port)

    def __hash__(self) -> int:       # flows are identity objects
        return self.fid

    def __eq__(self, other: object) -> bool:
        return self is other


def make_five_tuple(
    src_ip: str,
    dst_ip: str,
    *,
    src_port: int,
    dst_port: int = SHUFFLE_PORT,
    proto: int = TCP,
) -> FiveTuple:
    """Convenience constructor mirroring a TCP connect to a known service."""
    return FiveTuple(src_ip, dst_ip, src_port, dst_port, proto)
