"""Flow records: elastic (TCP) transfers and rigid (UDP CBR) streams.

A flow is the unit the whole paper operates on — ECMP hashes it, the
Pythia allocator routes it, NetFlow measures it.  The shuffle service
port is 50060, matching Hadoop 1.x's tasktracker HTTP port that the
paper filtered on when post-processing its NetFlow traces.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import NamedTuple, Optional

SHUFFLE_PORT = 50060
TCP = 6
UDP = 17

_flow_ids = itertools.count(1)


class FiveTuple(NamedTuple):
    """Classical transport five-tuple used for ECMP hashing (RFC 2992)."""

    src_ip: str
    dst_ip: str
    src_port: int
    dst_port: int
    proto: int


@dataclass
class Flow:
    """A point-to-point transfer between two hosts.

    Elastic flows (``rigid_rate is None``) have a finite ``size`` in
    bytes and receive a max-min fair share of their path's residual
    bandwidth.  Rigid flows model iperf-style UDP constant-bit-rate
    background traffic: they send at ``rigid_rate`` regardless of
    congestion and may be unbounded (``size is None``).
    """

    src: str
    dst: str
    size: Optional[float]
    five_tuple: FiveTuple
    rigid_rate: Optional[float] = None
    tags: dict = field(default_factory=dict)
    #: weighted-fair-share weight (per-flow QoS queue analogue); the
    #: Pythia weighted-shuffle extension sets this from the reducer's
    #: predicted volume share.
    weight: float = 1.0
    fid: int = field(default_factory=lambda: next(_flow_ids))

    # -- runtime state (owned by Network) --------------------------------
    path: Optional[list[int]] = None          # link ids, set at admission
    rate: float = 0.0                         # current instantaneous rate
    remaining: float = 0.0                    # bytes left to send
    bytes_sent: float = 0.0
    start_time: Optional[float] = None
    end_time: Optional[float] = None

    @property
    def elastic(self) -> bool:
        """True for TCP-like flows that share bandwidth fairly."""
        return self.rigid_rate is None

    @property
    def active(self) -> bool:
        """True while the flow is admitted but not finished."""
        return self.start_time is not None and self.end_time is None

    @property
    def duration(self) -> Optional[float]:
        """Transfer time, or None before completion."""
        if self.start_time is None or self.end_time is None:
            return None
        return self.end_time - self.start_time

    def is_shuffle(self) -> bool:
        """True if either endpoint is the Hadoop shuffle service port.

        On the wire the data-carrying direction runs *from* the mapper's
        tasktracker HTTP server (source port 50060) to the reducer's
        ephemeral port, so the source port is the service side.
        """
        return SHUFFLE_PORT in (self.five_tuple.src_port, self.five_tuple.dst_port)

    def __hash__(self) -> int:       # flows are identity objects
        return self.fid

    def __eq__(self, other: object) -> bool:
        return self is other


def make_five_tuple(
    src_ip: str,
    dst_ip: str,
    *,
    src_port: int,
    dst_port: int = SHUFFLE_PORT,
    proto: int = TCP,
) -> FiveTuple:
    """Convenience constructor mirroring a TCP connect to a known service."""
    return FiveTuple(src_ip, dst_ip, src_port, dst_port, proto)
