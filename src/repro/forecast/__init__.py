"""Predictive per-link load forecasting (ROADMAP item 3).

Closes Pythia's measurement-side prediction loop: forecasters model
each link's background occupancy from the stats service's sample
stream, the :class:`ForecastService` serves horizon-out predictions
with measured-EWMA fallback under staleness, and the
:class:`ProactiveRerouter` moves elephants off links forecast to
saturate before they actually do.
"""

from repro.forecast.models import (
    ARForecaster,
    EwmaExtrapolationForecaster,
    FORECASTERS,
    HoltWintersForecaster,
    LinkLoadForecaster,
    make_forecaster,
    register_forecaster,
)
from repro.forecast.reroute import ProactiveRerouter
from repro.forecast.service import ForecastService

__all__ = [
    "ARForecaster",
    "EwmaExtrapolationForecaster",
    "FORECASTERS",
    "ForecastService",
    "HoltWintersForecaster",
    "LinkLoadForecaster",
    "ProactiveRerouter",
    "make_forecaster",
    "register_forecaster",
]
