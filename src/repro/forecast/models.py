"""Per-link background-load forecasters.

Pythia predicts *shuffle* demand from application intent; the other
half of the picture — background occupancy on each link — is only ever
measured (:class:`~repro.sdn.stats_service.LinkStatsService`'s EWMA).
This module closes the loop from the measurement side: a
:class:`LinkLoadForecaster` consumes the stats service's smoothed
per-link background series, one observation per poll, and predicts the
per-link occupancy a *horizon* into the future, so the allocator can
score path residuals against where the network is going rather than
where it last was ("Predictive networking and optimization for
flow-based networks"; "Methods for Predicting Behavior of Elephant
Flows in Data Center Networks").

Every model is vectorised across links — state is a handful of
``(nlinks,)`` arrays, one ``observe`` per stats poll — and every model
follows the same discipline after a frozen-stats gap: :meth:`reset`
drops trend/window state (the series across the gap is not a
contiguous sample) while keeping the last level, so the first post-thaw
predictions degrade to level-extrapolation instead of extrapolating a
trend fitted across missing data.

Models register themselves in :data:`FORECASTERS`;
:attr:`~repro.core.config.PythiaConfig.forecast_mode` is validated
against that registry, and new models (learned predictors, e.g. the
TCN link-bandwidth model of HuaZheng's FYP) plug in via
:func:`register_forecaster` without touching the allocator.
"""

from __future__ import annotations

from typing import Callable, Protocol, runtime_checkable

import numpy as np


@runtime_checkable
class LinkLoadForecaster(Protocol):
    """One-step-fed, h-seconds-out per-link load predictor."""

    name: str

    def observe(self, now: float, values: np.ndarray) -> None:
        """Feed one poll's smoothed per-link loads (bytes/s)."""
        ...

    def predict(self, horizon: float) -> np.ndarray:
        """Per-link load (bytes/s) ``horizon`` seconds past the last
        observation.  Only meaningful when :meth:`ready` is true."""
        ...

    def ready(self) -> bool:
        """True once enough history has been observed to predict."""
        ...

    def reset(self) -> None:
        """Discount accumulated trend/window state (frozen-stats gap)."""
        ...


class EwmaExtrapolationForecaster:
    """Flat extrapolation of an EWMA level — the measured-load baseline.

    Predicting "the future equals the current smoothed level" is
    exactly what the allocator assumed before forecasting existed, so
    this model is the control arm of every efficacy comparison: any
    JCT gain a trend-aware model shows is measured against it.  With
    ``alpha=1`` it degenerates to last-observation-carried-forward.
    """

    name = "ewma"

    def __init__(self, nlinks: int, period: float = 1.0, alpha: float = 0.5) -> None:
        if nlinks < 1:
            raise ValueError("nlinks must be >= 1")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.period = period
        self.alpha = alpha
        self._level = np.zeros(nlinks)
        self._observations = 0

    def observe(self, now: float, values: np.ndarray) -> None:
        if self._observations == 0:
            self._level = np.asarray(values, dtype=float).copy()
        else:
            self._level = self.alpha * values + (1.0 - self.alpha) * self._level
        self._observations += 1

    def predict(self, horizon: float) -> np.ndarray:
        return self._level.copy()

    def ready(self) -> bool:
        return self._observations >= 1

    def reset(self) -> None:
        # A flat level has no trend to discount; keep it.
        pass


class HoltWintersForecaster:
    """Holt's damped double exponential smoothing (level + trend per link).

    The standard damped-trend recurrence, one step per stats poll::

        level' = alpha * x + (1 - alpha) * (level + phi * trend)
        trend' = beta * (level' - level) + (1 - beta) * phi * trend
        predict(h) = level' + (phi + phi^2 + ... + phi^steps) * trend'

    where ``steps = h / period``.  No seasonal term: datacenter
    background load over a 10-second allocation horizon is
    trend-dominated, and the stats period gives the step-to-seconds
    conversion.  The damping factor ``phi`` (Gardner–McKenzie) matters
    here more than in most settings because the input series is already
    EWMA-smoothed — an undamped trend extrapolated several steps
    overshoots every load change badly enough to misplace allocations;
    ``phi=1`` recovers classic undamped Holt.  Initialisation follows
    the textbook form (level = x0, trend = x1 - x0 after two samples),
    so tests can assert closed-form expectations exactly.
    """

    name = "holt_winters"

    def __init__(
        self,
        nlinks: int,
        period: float = 1.0,
        alpha: float = 0.5,
        beta: float = 0.3,
        phi: float = 0.8,
    ) -> None:
        if nlinks < 1:
            raise ValueError("nlinks must be >= 1")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if not 0.0 < beta <= 1.0:
            raise ValueError("beta must be in (0, 1]")
        if not 0.0 < phi <= 1.0:
            raise ValueError("phi must be in (0, 1]")
        self.period = period
        self.alpha = alpha
        self.beta = beta
        self.phi = phi
        self._level = np.zeros(nlinks)
        self._trend = np.zeros(nlinks)
        self._observations = 0

    def observe(self, now: float, values: np.ndarray) -> None:
        x = np.asarray(values, dtype=float)
        if self._observations == 0:
            self._level = x.copy()
        elif self._observations == 1:
            self._trend = x - self._level
            self._level = x.copy()
        else:
            prev = self._level
            damped = self.phi * self._trend
            self._level = self.alpha * x + (1.0 - self.alpha) * (prev + damped)
            self._trend = self.beta * (self._level - prev) + (1.0 - self.beta) * damped
        self._observations += 1

    def predict(self, horizon: float) -> np.ndarray:
        steps = horizon / self.period
        if self.phi == 1.0:
            weight = steps
        else:
            # sum of phi^i for i = 1..steps, extended to fractional
            # steps through the continuous geometric partial sum.
            weight = self.phi * (1.0 - self.phi**steps) / (1.0 - self.phi)
        return self._level + weight * self._trend

    def ready(self) -> bool:
        return self._observations >= 2

    def reset(self) -> None:
        # Keep the level (it is still the best point estimate) but drop
        # the trend: it was fitted on samples from before the gap.
        self._trend = np.zeros_like(self._trend)
        self._observations = min(self._observations, 1)


class ARForecaster:
    """Per-link AR(p) fitted by ridge-regularised least squares.

    Keeps a sliding window of the last ``window`` observations per link
    and, on demand, fits ``x_t = c + sum_i phi_i * x_(t-i)`` over that
    window.  Multi-step prediction iterates the one-step model.  The
    fit is batched across links through the normal equations (one
    ``(p+1, p+1)`` solve per link, vectorised with ``np.linalg.solve``
    on a stacked array); a tiny ridge term keeps constant series —
    singular design matrices — well-posed, and the solution then
    reproduces the constant exactly.
    """

    name = "ar"

    def __init__(
        self,
        nlinks: int,
        period: float = 1.0,
        order: int = 3,
        window: int = 32,
        ridge: float = 1e-6,
    ) -> None:
        if nlinks < 1:
            raise ValueError("nlinks must be >= 1")
        if order < 1:
            raise ValueError("order must be >= 1")
        if window < 2 * order + 2:
            raise ValueError("window must be >= 2 * order + 2")
        self.period = period
        self.order = order
        self.window = window
        self.ridge = ridge
        self._history = np.zeros((window, nlinks))
        self._count = 0

    def observe(self, now: float, values: np.ndarray) -> None:
        self._history = np.roll(self._history, -1, axis=0)
        self._history[-1] = np.asarray(values, dtype=float)
        self._count = min(self._count + 1, self.window)

    def ready(self) -> bool:
        return self._count >= 2 * self.order + 2

    def reset(self) -> None:
        self._count = 0

    def _fit(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Coefficients ``(c, phi)`` and the scale used to condition them."""
        p = self.order
        series = self._history[self.window - self._count:]  # (n, nlinks)
        n, nlinks = series.shape
        # Normalise each link by its own scale so the ridge term is
        # dimensionless (byte-rate magnitudes would otherwise swamp it).
        scale = np.maximum(np.abs(series).max(axis=0), 1.0)
        s = series / scale
        rows = n - p
        # Design tensor: X[k] is link k's (rows, p+1) lagged matrix.
        x = np.empty((nlinks, rows, p + 1))
        x[:, :, 0] = 1.0
        for i in range(1, p + 1):
            x[:, :, i] = s[p - i: n - i].T
        y = s[p:].T  # (nlinks, rows)
        xtx = np.einsum("kri,krj->kij", x, x)
        xtx += self.ridge * np.eye(p + 1)
        xty = np.einsum("kri,kr->ki", x, y)
        # (nlinks, p+1, 1) rhs: batched solve needs an explicit column.
        coef = np.linalg.solve(xtx, xty[:, :, None])[:, :, 0]
        return coef[:, 0], coef[:, 1:], scale

    def predict(self, horizon: float) -> np.ndarray:
        p = self.order
        steps = max(1, int(round(horizon / self.period)))
        c, phi, scale = self._fit()
        # lags[:, 0] is x_(t), lags[:, i] is x_(t-i)
        lags = (self._history[-p:] / scale)[::-1].T.copy()  # (nlinks, p)
        for _ in range(steps):
            nxt = c + np.einsum("ki,ki->k", phi, lags)
            lags = np.concatenate([nxt[:, None], lags[:, :-1]], axis=1)
        return lags[:, 0] * scale


#: model-name -> factory(nlinks, period, **kwargs) registry.
FORECASTERS: dict[str, Callable[..., LinkLoadForecaster]] = {}


def register_forecaster(name: str, factory: Callable[..., LinkLoadForecaster]) -> None:
    """Add (or replace) a forecaster factory under ``name``."""
    FORECASTERS[name] = factory


def make_forecaster(name: str, nlinks: int, period: float = 1.0, **kwargs) -> LinkLoadForecaster:
    """Instantiate a registered forecaster by name."""
    try:
        factory = FORECASTERS[name]
    except KeyError:
        raise ValueError(
            f"unknown forecaster {name!r}; registered: {sorted(FORECASTERS)}"
        ) from None
    return factory(nlinks=nlinks, period=period, **kwargs)


register_forecaster("ewma", EwmaExtrapolationForecaster)
register_forecaster("holt_winters", HoltWintersForecaster)
register_forecaster("ar", ARForecaster)
