"""Proactive elephant rerouting on forecast link saturation.

Hedera (``repro.sdn.hedera``) reroutes *after* a link is observed
congested; this rerouter moves elephants *before* the congestion
arrives.  At every stats poll it asks the
:class:`~repro.forecast.service.ForecastService` where each link's
background load will be one horizon out, adds the instantaneous elastic
load, and when a link is forecast to exceed the utilisation threshold
it re-places the live shuffle flows crossing that link onto the
candidate path with the lowest forecast peak utilisation — reusing the
same reroute-with-pause machinery (and paying the same transport
disruption cost) as the reactive baseline.

Guard rails keep the loop from thrashing:

* **hysteresis** — a move must improve the flow's worst predicted link
  utilisation by at least ``margin``, or it stays put;
* **cooldown** — a flow just rerouted is left alone for
  ``cooldown`` seconds (each reroute already costs a ``pause``-long
  transport stall);
* **stale forecasts** — when the forecast service is degraded (frozen
  stats, cold start) the rerouter does nothing at all, so behaviour
  falls back to the purely reactive allocator path.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.forecast.service import ForecastService
from repro.sdn.stats_service import LinkStatsService
from repro.sdn.topology_service import TopologyService
from repro.simnet.flows import Flow
from repro.simnet.network import Network


class ProactiveRerouter:
    """Re-place elephants off links forecast to saturate."""

    def __init__(
        self,
        network: Network,
        stats: LinkStatsService,
        forecast: ForecastService,
        topology_service: TopologyService,
        threshold: float = 0.85,
        margin: float = 0.05,
        pause: float = 0.1,
        min_remaining_bytes: float = 8e6,
        cooldown: float = 2.0,
    ) -> None:
        if not 0.0 < threshold <= 1.5:
            raise ValueError("threshold must be in (0, 1.5]")
        self.network = network
        self.forecast = forecast
        self.topology_service = topology_service
        self.threshold = threshold
        self.margin = margin
        self.pause = pause
        self.min_remaining_bytes = min_remaining_bytes
        self.cooldown = cooldown
        self.reroutes = 0
        self.skipped_stale = 0
        self._last_move: dict[int, float] = {}  # flow.fid -> sim time
        registry = obs.get_registry()
        self._m_reroutes = registry.counter("forecast.reroutes")
        self._m_skipped = registry.counter("forecast.reroute_skipped_stale")
        self._m_hot = registry.gauge("forecast.hot_links")
        # Registered after the ForecastService's own hook (the scheduler
        # wires the service first), so every pass sees a forecaster that
        # has already absorbed this poll.
        stats.add_sample_hook(self._on_sample)

    # ------------------------------------------------------------------
    def _on_sample(self, now: float, dt: float, gap: float) -> None:
        if self.forecast.degraded():
            self.skipped_stale += 1
            self._m_skipped.inc()
            return
        net = self.network
        net.settle()
        capacity = net.link_capacity()
        predicted = self.forecast.predict_background() + net.link_elastic_load()
        util = predicted / np.maximum(capacity, 1.0)
        hot = np.flatnonzero((util > self.threshold) & (capacity > 0))
        self._m_hot.set(len(hot))
        if hot.size == 0:
            return
        hot_set = set(int(lid) for lid in hot)
        movers = [
            f
            for f in net.elastic
            if f.is_shuffle()
            and f.remaining >= self.min_remaining_bytes
            and f.path
            and hot_set.intersection(f.path)
            and now - self._last_move.get(f.fid, -np.inf) >= self.cooldown
        ]
        # Biggest elephants first: they relieve the most forecast load
        # per (pause-costed) move.
        movers.sort(key=lambda f: -f.remaining)
        for flow in movers:
            moved = self._try_move(flow, predicted, capacity, now)
            if moved:
                self.reroutes += 1
                self._m_reroutes.inc()

    def _try_move(
        self, flow: Flow, predicted: np.ndarray, capacity: np.ndarray, now: float
    ) -> bool:
        paths = self.topology_service.k_paths_links(flow.src, flow.dst)
        if len(paths) < 2:
            return False
        own = flow.rate

        def peak_util(path: list[int]) -> float:
            # ``predicted`` already counts this flow on its current
            # path; moving it means subtracting there, adding here.
            worst = 0.0
            for lid in path:
                load = predicted[lid] + own
                if flow.path and lid in flow.path:
                    load -= own
                worst = max(worst, load / max(capacity[lid], 1.0))
            return worst

        assert flow.path is not None
        current = peak_util(flow.path)
        best = min(paths, key=peak_util)
        if best == flow.path or peak_util(best) > current - self.margin:
            return False
        # Account the move in the working prediction so later movers in
        # this same pass don't all pile onto the same cool path.
        for lid in flow.path:
            predicted[lid] -= own
        for lid in best:
            predicted[lid] += own
        self.network.reroute(flow, best, pause=self.pause)
        self._last_move[flow.fid] = now
        return True
