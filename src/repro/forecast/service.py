"""ForecastService: ties a forecaster to the link-stats sample stream.

One instance per controller.  It subscribes to the
:class:`~repro.sdn.stats_service.LinkStatsService` sample hook, feeds
every folded poll's smoothed background vector to the configured
:class:`~repro.forecast.models.LinkLoadForecaster`, and answers the
allocator's and rerouter's one question: *what will each link's
background load be at ``now + horizon``?*

Two safety properties the chaos suite leans on:

* **Graceful degradation.**  When the stats pipeline is stale — frozen
  by the chaos engine, or simply not yet warmed up — predictions fall
  back to the measured EWMA (exactly the pre-forecast behaviour), and
  the ``forecast.stale_fallbacks`` counter records every such answer.
  Staleness is judged by :meth:`LinkStatsService.staleness` against
  ``stale_after`` (default: three poll periods).
* **Gap discounting.**  The stats service reports the frozen span the
  first post-thaw sample folded in; the service then ``reset()``s the
  forecaster so trends fitted across the missing window are discarded
  rather than extrapolated (the §IV staleness failure mode the chaos
  engine exposed).

The service also scores itself with the paper's own
prediction-efficacy methodology (§V-B judges predictions by lead time
and accuracy): at every poll it files the forecaster's ``horizon``-out
prediction, and when simulated time catches up it compares that
prediction against the measured background, maintaining a streaming
MAE (``forecast.mae_bytes`` gauge, :meth:`mae`).
"""

from __future__ import annotations

from collections import deque
from typing import Optional

import numpy as np

from repro import obs
from repro.forecast.models import LinkLoadForecaster
from repro.sdn.stats_service import LinkStatsService


class ForecastService:
    """Predicted per-link background occupancy with measured fallback."""

    def __init__(
        self,
        stats: LinkStatsService,
        forecaster: LinkLoadForecaster,
        horizon: float = 5.0,
        stale_after: Optional[float] = None,
        max_pending: int = 256,
    ) -> None:
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        self.stats = stats
        self.forecaster = forecaster
        self.horizon = horizon
        #: forecasts older than this many seconds of stats silence are
        #: not trusted; answers degrade to the measured EWMA.
        self.stale_after = stale_after if stale_after is not None else 3.0 * stats.period
        #: (target_time, predicted_background) awaiting self-evaluation.
        self._pending: deque[tuple[float, np.ndarray]] = deque(maxlen=max_pending)
        self.predictions = 0
        self.stale_fallbacks = 0
        self.gap_resets = 0
        self.evaluations = 0
        self._abs_error_total = 0.0
        registry = obs.get_registry()
        self._m_predictions = registry.counter("forecast.predictions")
        self._m_fallbacks = registry.counter("forecast.stale_fallbacks")
        self._m_gap_resets = registry.counter("forecast.gap_resets")
        self._m_mae = registry.gauge("forecast.mae_bytes")
        registry.gauge("forecast.horizon_seconds").set(horizon)
        stats.add_sample_hook(self._on_sample)

    # ------------------------------------------------------------------
    # sample ingestion
    # ------------------------------------------------------------------
    def _on_sample(self, now: float, dt: float, gap: float) -> None:
        background = self.stats.background_load_array()
        if gap > 0.0:
            # The sample that just folded averaged over a frozen window;
            # whatever trend the forecaster held straddles missing data.
            self.forecaster.reset()
            self.gap_resets += 1
            self._m_gap_resets.inc()
            self._pending.clear()
        else:
            self._score_matured(now, background)
        self.forecaster.observe(now, background)
        if self.forecaster.ready():
            self._pending.append(
                (now + self.horizon, self.forecaster.predict(self.horizon))
            )

    def _score_matured(self, now: float, measured: np.ndarray) -> None:
        while self._pending and self._pending[0][0] <= now:
            _target, predicted = self._pending.popleft()
            self._abs_error_total += float(np.abs(predicted - measured).mean())
            self.evaluations += 1
        if self.evaluations:
            self._m_mae.set(self._abs_error_total / self.evaluations)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def degraded(self) -> bool:
        """True when answers are currently measured-EWMA fallbacks."""
        return (
            not self.forecaster.ready()
            or self.stats.staleness() > self.stale_after
        )

    def predict_background(self, horizon: Optional[float] = None) -> np.ndarray:
        """Per-link background load (bytes/s) at ``now + horizon``.

        Degrades to the measured EWMA when the forecaster has no usable
        history or the stats pipeline has gone stale; predictions are
        clipped at zero (occupancy cannot be negative).
        """
        if self.degraded():
            self.stale_fallbacks += 1
            self._m_fallbacks.inc()
            return self.stats.background_load_array()
        self.predictions += 1
        self._m_predictions.inc()
        h = self.horizon if horizon is None else horizon
        return np.maximum(0.0, self.forecaster.predict(h))

    def mae(self) -> float:
        """Streaming mean absolute error (bytes/s) of matured forecasts."""
        if not self.evaluations:
            return 0.0
        return self._abs_error_total / self.evaluations

    def snapshot(self) -> dict:
        """Summary for RunResult.policy_stats and the CLI report."""
        return {
            "forecast_mode": getattr(self.forecaster, "name", "?"),
            "forecast_horizon": self.horizon,
            "forecast_predictions": self.predictions,
            "forecast_stale_fallbacks": self.stale_fallbacks,
            "forecast_gap_resets": self.gap_resets,
            "forecast_evaluations": self.evaluations,
            "forecast_mae_bytes": self.mae(),
        }
