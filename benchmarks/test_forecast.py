"""Forecast-efficacy regression gates (companion to BENCH_forecast.json).

Machine-independent gates for the predictive link-load pipeline: the
wall-clock-free quantities — forecast MAE on closed-form series, the
step-background JCT ordering, proactive reroute-count bounds, and
frozen-stats graceful degradation — are asserted here; the measured
JCT/MAE numbers behind them are recorded in BENCH_forecast.json.

Everything runs on the two-rack testbed at a small sort scale, so the
whole file is a CI smoke (<10 s), not a benchmark-harness run.
"""

import numpy as np
import pytest

from repro.core.config import PythiaConfig
from repro.experiments.common import run_experiment
from repro.experiments.forecast_efficacy import DEFAULT_RAMP
from repro.faults.chaos import ChaosSchedule, StatsFreeze
from repro.forecast.models import make_forecaster
from repro.workloads import sort_job

SEEDS = (1, 2)


def _jct(seed, config=None):
    return run_experiment(
        sort_job(input_gb=0.8),
        "pythia",
        ratio=5,
        seed=seed,
        pythia_config=config,
        background_ramp=DEFAULT_RAMP,
    )


# ----------------------------------------------------------------------
# forecast accuracy on closed-form series (no simulator, no wall clock)
# ----------------------------------------------------------------------
def _mae_on_series(model, series, horizon_steps):
    """One-shot backtest: observe the prefix, predict h steps out."""
    errors = []
    for t in range(len(series) - horizon_steps):
        model.observe(float(t), np.array([series[t]]))
        if model.ready():
            pred = float(model.predict(float(horizon_steps))[0])
            errors.append(abs(pred - series[t + horizon_steps]))
    return float(np.mean(errors))


def test_trend_forecasters_beat_ewma_on_ramp():
    """The gate that justifies the subsystem: on a ramp (the step
    scenario's leading edge) trend-aware models must beat the flat-EWMA
    baseline's 3-step-ahead error — damped HW by >=40% (the phi=0.8
    damping deliberately under-extrapolates), AR essentially exactly."""
    series = [10.0 * t for t in range(24)]
    ewma = _mae_on_series(make_forecaster("ewma", nlinks=1), series, 3)
    hw = _mae_on_series(make_forecaster("holt_winters", nlinks=1), series, 3)
    ar = _mae_on_series(make_forecaster("ar", nlinks=1), series, 3)
    assert hw < 0.6 * ewma, f"holt_winters {hw:.1f} vs ewma {ewma:.1f}"
    assert ar < 0.01 * ewma, f"ar {ar:.4f} vs ewma {ewma:.1f}"


def test_forecast_mae_bounded_on_step_series():
    """A step is the hardest case for trend models (damping exists for
    exactly this reason): the damped HW error may exceed EWMA's but
    must stay within 2x of it, and both must converge post-step."""
    series = [0.0] * 12 + [100.0] * 12
    ewma = _mae_on_series(make_forecaster("ewma", nlinks=1), series, 3)
    hw = _mae_on_series(make_forecaster("holt_winters", nlinks=1), series, 3)
    assert hw <= 2.0 * ewma, f"damped HW {hw:.1f} vs ewma {ewma:.1f}"
    # converged tails: both models within 5% of the plateau
    for name in ("ewma", "holt_winters"):
        model = make_forecaster(name, nlinks=1)
        for t, x in enumerate(series):
            model.observe(float(t), np.array([x]))
        assert float(model.predict(3.0)[0]) == pytest.approx(100.0, rel=0.05)


# ----------------------------------------------------------------------
# step-background JCT gate (the issue's acceptance criterion)
# ----------------------------------------------------------------------
def test_forecast_improves_step_background_jct():
    """pythia+ar mean JCT <= measured-load pythia mean JCT under the
    stepped background surge, averaged over the CI seeds."""
    base, fc = [], []
    for seed in SEEDS:
        base.append(_jct(seed).jct)
        result = _jct(seed, PythiaConfig(forecast_mode="ar"))
        fc.append(result.jct)
        # reroute-count bounds: proactive moves happened, but the
        # cooldown kept them to a handful (not reroute thrash)
        reroutes = result.policy_stats["forecast_reroutes"]
        assert 1 <= reroutes <= 10, f"seed {seed}: {reroutes} reroutes"
    print(f"\nstep-background JCT  pythia {np.mean(base):.2f}s  "
          f"pythia+ar {np.mean(fc):.2f}s  (seeds {SEEDS})")
    assert np.mean(fc) <= np.mean(base), f"{np.mean(fc):.2f} > {np.mean(base):.2f}"


def test_forecast_off_is_bit_identical_to_default():
    """forecast_mode='off' must not perturb the measured-load pipeline:
    same seed, same JCT, no forecast counters in the run stats."""
    for seed in SEEDS:
        default = _jct(seed)
        off = _jct(seed, PythiaConfig(forecast_mode="off"))
        assert off.jct == default.jct
        assert "forecast_mode" not in off.policy_stats
        assert "forecast_mode" not in default.policy_stats


# ----------------------------------------------------------------------
# frozen-stats chaos: graceful degradation
# ----------------------------------------------------------------------
def test_frozen_stats_degrades_gracefully():
    """A mid-job stats freeze with forecasting on must complete without
    crashing or violating invariants, and the forecast service must
    record the degradation (fallbacks and/or a gap reset) rather than
    acting on stale trends."""
    freeze = ChaosSchedule(events=[StatsFreeze(at=4.0, duration=6.0)])
    for seed in SEEDS:
        result = run_experiment(
            sort_job(input_gb=0.8),
            "pythia",
            ratio=5,
            seed=seed,
            pythia_config=PythiaConfig(forecast_mode="holt_winters"),
            background_ramp=DEFAULT_RAMP,
            chaos=lambda topo: freeze,
            invariants=True,
        )
        assert result.run.completed_at is not None
        assert result.invariants["violations"] == 0
        stats = result.policy_stats
        assert stats["forecast_gap_resets"] >= 1  # the thaw was discounted
        # one StatsFreeze event = two recorded transitions (frozen, live)
        assert result.faults_injected.get("stats_freeze", 0) == 2


def test_frozen_stats_forecast_matches_measured_fallback():
    """While degraded the forecast answers ARE the measured EWMA, so a
    fully frozen run must end with JCT close to the measured-load
    baseline's (same placements modulo pre-freeze reroutes)."""
    freeze = ChaosSchedule(events=[StatsFreeze(at=0.5, duration=60.0)])
    for seed in SEEDS:
        base = run_experiment(
            sort_job(input_gb=0.8),
            "pythia",
            ratio=5,
            seed=seed,
            background_ramp=DEFAULT_RAMP,
            chaos=lambda topo: freeze,
        )
        fc = run_experiment(
            sort_job(input_gb=0.8),
            "pythia",
            ratio=5,
            seed=seed,
            pythia_config=PythiaConfig(forecast_mode="ar"),
            background_ramp=DEFAULT_RAMP,
            chaos=lambda topo: freeze,
        )
        assert fc.run.completed_at is not None and base.run.completed_at is not None
        # frozen from t=0.5: the forecaster never becomes ready, every
        # answer is a measured fallback, and no proactive moves happen
        assert fc.policy_stats["forecast_reroutes"] == 0
        assert fc.jct == pytest.approx(base.jct, rel=1e-9)
