"""Benchmark: iterative PageRank chain (per-round savings compound)."""

from benchmarks.conftest import run_once
from repro.analysis.report import format_table
from repro.experiments.chain import run_chain
from repro.workloads.pagerank import pagerank_chain


def test_pagerank_chain(benchmark, scale, seeds):
    iterations = 4

    def run_both():
        out = {}
        for scheduler in ("ecmp", "pythia"):
            chain = pagerank_chain(
                graph_gb=8.0 * scale, iterations=iterations, num_reducers=20
            )
            out[scheduler] = run_chain(chain, scheduler=scheduler, ratio=10, seed=seeds[0])
        return out

    results = run_once(benchmark, run_both)
    print()
    print(f"PageRank chain — {iterations} iterations at 1:10 over-subscription")
    rows = []
    for name, r in results.items():
        rows.append((name, r.total_seconds, r.mean_iteration))
    print(format_table(["scheduler", "chain total (s)", "mean iteration (s)"], rows))
    per_iter = [
        e - p
        for e, p in zip(
            results["ecmp"].iteration_jcts, results["pythia"].iteration_jcts
        )
    ]
    print("per-iteration savings (s):", [f"{s:.1f}" for s in per_iter])
    assert results["pythia"].total_seconds < results["ecmp"].total_seconds * 0.85
    assert sum(1 for s in per_iter if s > 0) >= iterations - 1
