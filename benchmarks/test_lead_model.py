"""Benchmark: the §V-C prediction-timeliness model and its sweep.

The paper's stated on-going work — "modeling the problem using relevant
Hadoop parameters as input and designing experiments to confirm this
insensitivity" — realised: prints the analytical bounds next to the
measured minimum lead while sweeping ``parallel_copies`` (conjectured
insensitive) and ``heartbeat`` (the real driver).
"""

from benchmarks.conftest import run_once
from repro.analysis.lead_model import lead_sensitivity_sweep, predicted_lead_bounds
from repro.analysis.report import format_table
from repro.hadoop.cluster import ClusterConfig


def test_lead_model_and_sensitivity(benchmark, seeds):
    samples = run_once(
        benchmark,
        lambda: lead_sensitivity_sweep(
            parallel_copies=(2, 5, 10),
            heartbeats=(1.0, 3.0, 5.0),
            seed=seeds[0],
            input_gb=6.0,
        ),
    )
    bounds = predicted_lead_bounds(ClusterConfig())
    print()
    print(
        "Prediction-lead model: lower bound "
        f"{bounds.lower:.2f}s, expected {bounds.expected:.2f}s (defaults)"
    )
    print(
        format_table(
            ["parameter", "value", "measured min lead (s)"],
            [(s.parameter, s.value, s.min_lead) for s in samples],
        )
    )
    pc = [s.min_lead for s in samples if s.parameter == "parallel_copies"]
    hb = {s.value: s.min_lead for s in samples if s.parameter == "heartbeat"}
    # the paper's conjecture: leads are flat in the parallel-copy limit
    assert max(pc) / min(pc) < 1.6
    # and driven by the heartbeat
    assert hb[5.0] > hb[1.0] * 0.9
    assert all(lead > 0.5 for lead in pc)
