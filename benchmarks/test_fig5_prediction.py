"""Benchmark F5: regenerate Figure 5 (prediction promptness/accuracy).

Shape assertions: predictions lead the measured traffic by seconds
(comfortably above the 3-5 ms/flow programming budget), never lag it,
and over-estimate the sourced volume by a few percent (paper: 3-7 %).
"""

from benchmarks.conftest import run_once
from repro.experiments.fig5_prediction import run_fig5


def test_fig5_prediction_efficacy(benchmark, scale, seeds):
    result = run_once(
        benchmark, lambda: run_fig5(input_gb=60.0 * scale, seed=seeds[0])
    )
    print()
    print(result.render())
    assert result.never_lags, "prediction must never lag the wire (§V-C)"
    assert result.min_lead_seconds > 1.0, "lead must be seconds, not ms"
    assert result.min_lead_seconds / 0.005 > 100, "wide margin over install budget"
    lo, hi = result.overestimate_range
    assert 0.02 <= lo and hi <= 0.08, f"overestimate band {lo:.3f}..{hi:.3f}"
