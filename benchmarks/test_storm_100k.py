"""The 100k-flow pod-local storm: the delta engine's headline workload.

One hundred arrival waves, 0.25 s apart, each targeting a single pod of
a fat-tree k=8 fabric.  Pod-local traffic is the delta engine's best
case *and* the shape Clos fabrics are built for: each wave's flows form
connected components confined to one pod (plus whatever earlier waves
are still draining there), so a topology-local settle re-solves a
pod-sized component while the other seven pods' rates stay frozen.

Every gate here is machine-independent — solve/event/component *counts*,
not wall time — so the same assertions hold on a laptop and in CI:

* scoped solves dominate: at most a handful of full-fabric solves ever
  run (arena rebuilds), against thousands of scoped ones;
* the mean re-solved component stays pod-sized — a small fraction of
  the fabric's flows and links — which is the whole point of the
  tentpole (full-per-wave solving would put *every* live flow in every
  solve);
* the event count stays linear in the flow count (one admission, one
  completion, a bounded number of reschedules per flow — the calendar
  queue makes these O(1) but the *count* gate catches scheduling
  regressions independent of queue implementation);
* every byte is conserved and every flow completes.

The CI-sized run (6k flows, ~15 s) executes on every push from the
benchmark-smoke job; the full 100k-flow run is `slow`-marked and runs
from the nightly workflow.  Wall-time history lives in
BENCH_network.json.
"""

import numpy as np
import pytest

from repro import obs
from repro.obs.metrics import MetricsRegistry
from repro.simnet.engine import Simulator
from repro.simnet.flows import TCP, FiveTuple, Flow
from repro.simnet.network import Network
from repro.simnet.paths import KPathCache
from repro.simnet.topology import fat_tree

K = 8
WAVES = 100
WAVE_SPACING = 0.25
CI_NFLOWS = 6_000
FULL_NFLOWS = 100_000


def _run_storm(nflows: int, delta: bool = True, on_network=None) -> dict:
    """Pod-local arrival/departure storm; returns counters for gating."""
    obs.set_registry(MetricsRegistry())
    sim = Simulator()
    topo = fat_tree(K)
    net = Network(sim, topo, delta=delta)
    if on_network is not None:
        on_network(net)
    hosts = [h.name for h in topo.hosts()]
    per_pod = len(hosts) // K
    cache = KPathCache(topo, 4)
    rng = np.random.default_rng(7)
    flows = []
    for i in range(nflows):
        wave = i % WAVES
        pod = wave % K
        base = pod * per_pod
        a, b = rng.choice(per_pod, size=2, replace=False)
        src, dst = hosts[base + int(a)], hosts[base + int(b)]
        paths = cache.paths_links(src, dst)
        lids = paths[int(rng.integers(0, len(paths)))]
        f = Flow(
            src=src,
            dst=dst,
            size=float(2e7 + 1e6 * wave),
            five_tuple=FiveTuple(f"ip{src}", f"ip{dst}", 50060, 30000 + i, TCP),
        )
        sim.schedule(wave * WAVE_SPACING, net.start_flow, f, lids)
        flows.append(f)
    sim.run(max_events=50 * nflows)
    reg = obs.get_registry()
    counters = {
        name: reg.counter(f"network.{name}").value
        for name in (
            "solves_full",
            "solves_scoped",
            "delta_component_flows",
            "delta_component_links",
        )
    }
    return {
        "flows": flows,
        "nlinks": len(topo.links),
        "events": sim.events_processed,
        "tombstoned": sim.events_tombstoned,
        "pending": sim.pending,
        **counters,
    }


def _assert_storm_gates(r: dict, nflows: int) -> None:
    flows = r["flows"]
    # -- liveness: the storm drains completely ------------------------
    assert all(f.end_time is not None for f in flows)
    # -- byte conservation at scale -----------------------------------
    sent = sum(f.bytes_sent for f in flows)
    expected = sum(f.size for f in flows)
    assert abs(sent - expected) <= 1e-6 * expected
    assert all(f.remaining == 0.0 for f in flows)
    # -- scoped solves dominate ---------------------------------------
    # The whole run needs one full-fabric solve (the first settle) plus
    # at most a few rebuild-triggered ones; per-wave full solving would
    # put `solves_full` in the hundreds.
    assert r["solves_full"] <= WAVES // 10
    assert r["solves_scoped"] > 50 * max(1.0, r["solves_full"])
    # -- components stay pod-sized ------------------------------------
    # Pod-local traffic can never couple more than one pod's flows into
    # a component, so the mean re-solved component must be well under a
    # pod's share of the storm (nflows / K).  A full-per-wave engine
    # would average every live flow (~nflows / 3 at peak overlap).
    avg_flows = r["delta_component_flows"] / r["solves_scoped"]
    assert avg_flows < nflows / K
    # Scope links stay inside one pod + its core uplinks — a fraction
    # of the fabric's link set.
    avg_links = r["delta_component_links"] / r["solves_scoped"]
    assert avg_links < r["nlinks"] / 4
    # -- event budget is linear in flows ------------------------------
    # one admission + one completion tick per flow, plus coalesced
    # settles and a bounded number of completion reschedules.
    assert r["events"] <= 2 * nflows
    # -- the queue drained --------------------------------------------
    assert r["pending"] == 0


def test_storm_pod_local_gates(benchmark):
    """CI-sized storm (6k flows): every delta-engine gate, every push."""
    r = benchmark.pedantic(
        lambda: _run_storm(CI_NFLOWS), rounds=1, iterations=1, warmup_rounds=0
    )
    _assert_storm_gates(r, CI_NFLOWS)


def test_settle_scratch_is_hoisted():
    """Post-warmup settles reuse the same hoisted scratch buffers.

    The settle hot path works entirely in grow-only buffers (residual,
    region/visited scratch, the arena rate snapshot): once the storm's
    peak live-flow count has been reached, no settle may reallocate any
    fabric- or arena-sized working array.  The gate records the buffer
    identities at every settle and requires them frozen over the whole
    back 40% of the run — growth is doubling, so it has long plateaued
    by then — and the total grow count bounded by the doubling schedule.
    """
    history: list[tuple[dict, int]] = []

    def hook(net):
        history.append((net.scratch_buffer_ids(), net.scratch_grows))

    _run_storm(2_000, on_network=lambda net: net.add_settle_hook(hook))
    assert len(history) > 100
    tail = history[int(len(history) * 0.6):]
    ids0, grows0 = tail[0]
    for ids, grows in tail:
        assert ids == ids0, "a settle reallocated a hoisted scratch buffer"
        assert grows == grows0, "a settle grew scratch after warm-up"
    # one initial link-array build plus a handful of doubling steps
    assert grows0 < 32


@pytest.mark.slow
def test_storm_100k_flows(benchmark):
    """The full 100k-flow storm — nightly / on-demand (`-m slow`)."""
    r = benchmark.pedantic(
        lambda: _run_storm(FULL_NFLOWS), rounds=1, iterations=1, warmup_rounds=0
    )
    _assert_storm_gates(r, FULL_NFLOWS)
