"""Benchmark-harness configuration.

Each ``test_fig*`` benchmark regenerates one of the paper's figures:
it executes the experiment once under ``benchmark.pedantic`` (the
interesting number is the figure's content, not the harness's wall
time) and prints the same rows/series the paper reports, so running

    pytest benchmarks/ --benchmark-only -s

reproduces the full evaluation section on stdout.

Environment knobs:

* ``REPRO_BENCH_SCALE`` — workload scale factor (default 0.5 of the
  benchmark defaults; set 1.0 for paper-sized inputs).
* ``REPRO_BENCH_SEEDS`` — comma-separated seed list (default "1,2").
"""

import os

import pytest


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))


def bench_seeds() -> tuple[int, ...]:
    raw = os.environ.get("REPRO_BENCH_SEEDS", "1,2")
    return tuple(int(s) for s in raw.split(","))


@pytest.fixture()
def scale() -> float:
    return bench_scale()


@pytest.fixture()
def seeds() -> tuple[int, ...]:
    return bench_seeds()


def run_once(benchmark, fn):
    """Run an experiment exactly once under the benchmark harness."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
