"""Benchmark M1: multi-tenant fleet gates.

Fleet cells must be exactly as cacheable and bit-reproducible as
single-job cells: a warm rerun of the arrival-rate grid executes zero
cells, and the parallel pool agrees with the serial loop digest-for-
digest.  On top of the plumbing gates sit the efficacy gates the
multi-tenant experiment exists for: under contention Pythia's fleet
p50/p99 JCT must beat ECMP's, and the winning numbers are published
into ``BENCH_sweep.json`` (section ``multi_tenant``) next to the
sweep-runner figures.
"""

import json
from pathlib import Path

from benchmarks.conftest import run_once
from repro.experiments.multi_tenant import fleet_grid, multi_tenant_sweep
from repro.runner import run_cells

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"

#: one contended point is enough for a smoke gate — ~a job every 20 s
#: against 3-job fleets keeps several jobs live on the fabric at once.
RATE = 0.05
N_JOBS = 3


def _digests(report):
    return [(s.jct, s.events_processed, tuple(sorted(s.fleet.items())))
            for s in report.summaries]


def test_fleet_sweep_cache_accounting(benchmark, tmp_path):
    cells = fleet_grid(
        arrival_rates=(RATE,), schedulers=("ecmp", "pythia"),
        seeds=(1,), n_jobs=N_JOBS,
    )
    serial = run_cells(cells, workers=1)
    cold = run_cells(cells, workers=2, cache_dir=tmp_path)
    assert cold.executed == len(cells)
    assert _digests(cold) == _digests(serial), "parallel diverged from serial"

    warm = run_once(
        benchmark, lambda: run_cells(cells, workers=2, cache_dir=tmp_path)
    )
    assert warm.executed == 0, "warm fleet sweep must not re-simulate"
    assert warm.hit_rate >= 0.9
    assert _digests(warm) == _digests(cold)


def test_fleet_pythia_beats_ecmp_under_contention(benchmark, tmp_path):
    rows, report = run_once(
        benchmark,
        lambda: multi_tenant_sweep(
            arrival_rates=(RATE,), schedulers=("ecmp", "pythia"),
            seeds=(1,), n_jobs=N_JOBS, cache_dir=tmp_path,
        ),
    )
    fleets = {row["scheduler"]: row["fleet"] for row in rows}
    ecmp, pythia = fleets["ecmp"], fleets["pythia"]
    assert pythia["p50_jct"] < ecmp["p50_jct"], (
        f"fleet p50 gate: pythia {pythia['p50_jct']:.1f}s vs "
        f"ecmp {ecmp['p50_jct']:.1f}s"
    )
    assert pythia["p99_jct"] < ecmp["p99_jct"], (
        f"fleet p99 gate: pythia {pythia['p99_jct']:.1f}s vs "
        f"ecmp {ecmp['p99_jct']:.1f}s"
    )
    assert pythia["mean_slowdown"] <= ecmp["mean_slowdown"]
    for fleet in (ecmp, pythia):
        assert 0 < fleet["jain_fairness"] <= 1.0

    # merge the gate numbers into BENCH_sweep.json beside the runner
    # figures (the simulator is deterministic, so these are
    # machine-independent)
    payload = json.loads(BENCH_PATH.read_text()) if BENCH_PATH.exists() else {}
    payload["multi_tenant"] = {
        "description": (
            "Fleet-level gates from benchmarks/test_multi_tenant.py: a "
            f"{N_JOBS}-job Poisson stream at {RATE:g} jobs/s shared by two "
            "tenants, ecmp vs pythia, seed 1.  Deterministic on any machine."
        ),
        "arrival_rate": RATE,
        "n_jobs": N_JOBS,
        "gates": {
            scheduler: {
                "p50_jct_seconds": round(fleet["p50_jct"], 3),
                "p99_jct_seconds": round(fleet["p99_jct"], 3),
                "mean_slowdown": round(fleet["mean_slowdown"], 3),
                "jain_fairness": round(fleet["jain_fairness"], 4),
                "makespan_seconds": round(fleet["makespan"], 3),
            }
            for scheduler, fleet in fleets.items()
        },
        "p50_speedup_pythia_vs_ecmp": round(
            ecmp["p50_jct"] / pythia["p50_jct"], 2
        ),
        "p99_speedup_pythia_vs_ecmp": round(
            ecmp["p99_jct"] / pythia["p99_jct"], 2
        ),
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
