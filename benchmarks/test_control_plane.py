"""Control-plane scaling gates: structured enumeration + vectorized scoring.

Companion to BENCH_control_plane.json.  Wall-clock numbers live there;
this file keeps the *machine-independent* regression gates — per-pair
path-count formulas, solver-dispatch counts, allocator/cache call
counts — plus the one relative-time gate the issue demands (structured
all-pairs construction on fat_tree(k=8) at least 5x faster than the
Yen baseline, measured as a same-process ratio so hardware speed
cancels out).
"""

import itertools
import time

import numpy as np

from repro.core.aggregation import AggregateEntry
from repro.core.allocator import make_allocator
from repro.core.routing import RoutingGraph
from repro.sdn.stats_service import LinkStatsService
from repro.sdn.topology_service import TopologyService
from repro.simnet.engine import Simulator
from repro.simnet.network import Network
from repro.simnet.paths import ClosIndex, KPathCache, k_shortest_paths
from repro.simnet.topology import fat_tree, leaf_spine

K = 4  # the controller's default k_paths


def _host_pairs(topo):
    hosts = [h.name for h in topo.hosts()]
    return list(itertools.permutations(hosts, 2))


def test_fat_tree8_all_pairs_solved_structurally():
    """On an intact fat_tree(8), every one of the 128*127 host pairs is
    answered by the O(#paths) enumerator — zero Yen invocations."""
    topo = fat_tree(8)
    pairs = _host_pairs(topo)
    assert len(pairs) == 128 * 127
    cache = KPathCache(topo, K)
    for s, d in pairs:
        assert len(cache.paths(s, d)) >= 1
    assert cache.structured_solves == len(pairs)
    assert cache.yen_solves == 0
    assert cache.size() == len(pairs)


def test_fat_tree8_path_count_formulas():
    """Equal-length path counts follow the fat-tree algebra (k=8:
    half=4): 1 within an edge switch, half within a pod, half^2 across
    pods.  The enumerator must surface exactly those sets when asked
    for exactly that many paths."""
    topo = fat_tree(8)
    idx = ClosIndex(topo)
    assert len(idx.k_paths("h0_00", "h0_01", 1)) == 1       # same edge
    assert len(idx.k_paths("h0_00", "h0_10", 4)) == 4       # same pod: half
    assert len(idx.k_paths("h0_00", "h1_00", 16)) == 16     # inter-pod: half^2
    # ...and declines (Yen territory) when k exceeds the tier's supply
    assert idx.k_paths("h0_00", "h0_10", 5) is None


def test_leaf_spine_16x8_path_count_formulas():
    topo = leaf_spine(leaves=16, spines=8, hosts_per_leaf=16)
    assert len(topo.worker_hosts()) == 256
    idx = ClosIndex(topo)
    assert len(idx.k_paths("h0_0", "h15_15", 8)) == 8  # one per spine
    assert len(idx.k_paths("h0_0", "h0_15", 4)) == 1   # same leaf: unique


def test_degraded_fat_tree_falls_back_to_yen():
    """One failed core cable disables the structural promise fabric-wide:
    every cold solve goes through Yen and still matches it exactly."""
    topo = fat_tree(4)
    topo.fail_cable("agg0_0", "core00")
    cache = KPathCache(topo, K)
    rng = np.random.default_rng(11)
    pairs = _host_pairs(topo)
    for i in rng.choice(len(pairs), size=40, replace=False):
        s, d = pairs[i]
        assert cache.paths(s, d) == k_shortest_paths(topo, s, d, K)
    assert cache.structured_solves == 0
    assert cache.yen_solves > 0
    topo.restore_cable("agg0_0", "core00")
    s, d = pairs[0]
    cache.paths(s, d)
    assert cache.structured_solves == 1  # restore re-arms the enumerator


def test_allocator_call_counts_on_fat_tree():
    """Allocation rounds must be cache-fed: cold path construction once
    per distinct pair, every later round served from the memo, one
    placement per entry per round."""
    sim = Simulator()
    topo = fat_tree(4)
    net = Network(sim, topo)
    stats = LinkStatsService(sim, net, period=0.5, alpha=1.0)
    svc = TopologyService(topo, k=K)
    alloc = make_allocator(
        "first_fit", sim, RoutingGraph(svc), stats, net, demand_horizon=10.0
    )
    hosts = [h.name for h in topo.hosts()]
    rng = np.random.default_rng(3)
    pair_list = []
    for _ in range(60):
        a, b = rng.choice(len(hosts), size=2, replace=False)
        pair_list.append((hosts[a], hosts[b]))
    distinct = len(set(pair_list))
    rounds = 5
    for r in range(rounds):
        entries = []
        for i, (s, d) in enumerate(pair_list):
            e = AggregateEntry(key=(s, d))
            e.add(s, d, map_id=r, reducer_id=i, nbytes=1e6)
            entries.append(e)
        placed = alloc.allocate(entries)
        assert len(placed) == len(entries)
    assert alloc.allocations == rounds * len(pair_list)
    assert svc.cache_misses == distinct
    assert svc.cache_hits == rounds * len(pair_list) - distinct
    # fat_tree(4) pair classes: same-edge (1 path) and inter-pod (4
    # paths) are enumerated; same-pod-cross-edge has only 2 equal-length
    # paths < k=4, so exactly those pairs go through Yen.
    def pod_edge(h):
        pod, rest = h[1:].split("_")
        return pod, rest[0]

    cross_edge_same_pod = sum(
        1
        for s, d in set(pair_list)
        if pod_edge(s)[0] == pod_edge(d)[0] and pod_edge(s)[1] != pod_edge(d)[1]
    )
    assert svc.structured_solves == distinct - cross_edge_same_pod
    assert svc.yen_solves == cross_edge_same_pod


def test_structured_all_pairs_speedup_gate():
    """The issue's relative gate: cold all-pairs construction on
    fat_tree(8) at least 5x faster structured than Yen.  The Yen side is
    measured on a deterministic 60-pair sample and extrapolated — the
    full 16k-pair baseline takes ~17 s and would dominate the suite."""
    topo = fat_tree(8)
    pairs = _host_pairs(topo)

    cache = KPathCache(topo, K)
    t0 = time.perf_counter()
    for s, d in pairs:
        cache.paths_links_incidence(s, d)
    structured_s = time.perf_counter() - t0
    assert cache.yen_solves == 0

    rng = np.random.default_rng(7)
    sample = [pairs[i] for i in rng.choice(len(pairs), size=60, replace=False)]
    t0 = time.perf_counter()
    for s, d in sample:
        k_shortest_paths(topo, s, d, K)
    yen_s = (time.perf_counter() - t0) / len(sample) * len(pairs)

    speedup = yen_s / structured_s
    print(
        f"\nfat_tree(8) all-pairs k={K}: structured {structured_s:.3f}s, "
        f"Yen (extrapolated) {yen_s:.1f}s, speedup {speedup:.1f}x"
    )
    assert speedup >= 5.0
