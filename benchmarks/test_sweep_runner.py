"""Benchmark S1: the sweep runner's machine-independent gates.

Wall-clock parallel speedup is core-bound and machine-relative (see
``benchmarks/sweep_speedup.py`` / ``BENCH_sweep.json`` for measured
numbers); what must hold everywhere is the *work accounting*: a warm
rerun of any grid executes zero cells and serves >= 90 % of them from
cache, while producing bit-identical digests.
"""

from benchmarks.conftest import run_once
from repro.runner import run_cells, sweep_grid
from repro.workloads import sort_job


def _digests(report):
    return [(s.jct, s.events_processed) for s in report.summaries]


def test_sweep_cache_accounting(benchmark, tmp_path):
    cells = sweep_grid(
        lambda: sort_job(input_gb=1.5, num_reducers=4),
        ("ecmp", "pythia"), (None, 10.0), (1, 2),
    )
    cold = run_cells(cells, workers=2, cache_dir=tmp_path)
    assert cold.executed == len(cells)

    warm = run_once(
        benchmark, lambda: run_cells(cells, workers=2, cache_dir=tmp_path)
    )
    assert warm.executed == 0, "warm sweep must not invoke run_experiment"
    assert warm.hit_rate >= 0.9
    assert _digests(warm) == _digests(cold)
