"""Benchmark F4: regenerate Figure 4 (Sort JCT vs over-subscription).

Shape assertions: Pythia outperforms ECMP at every loaded ratio (the
paper reports up to 43 %), but — unlike Nutch — cannot hold sort flat,
because sort's shuffle volume exceeds any single path's residual.
"""

from benchmarks.conftest import run_once
from repro.experiments.fig4_sort import render_fig4, run_fig4


def test_fig4_sort_sweep(benchmark, scale, seeds):
    rows = run_once(
        benchmark, lambda: run_fig4(input_gb=48.0 * scale, seeds=seeds)
    )
    print()
    print(render_fig4(rows))
    by_label = {r.label: r for r in rows}
    unloaded = by_label["none"]
    for label in ("1:10", "1:20"):
        assert by_label[label].speedup > 0.2, f"pythia must clearly win at {label}"
    # sort is NOT flat under Pythia (the Fig 3 vs Fig 4 contrast)
    assert by_label["1:20"].t_pythia > unloaded.t_pythia * 1.8
    # near-idle point: no meaningful regression
    assert abs(unloaded.speedup) < 0.08
