"""Hot-path regression gates for the incremental fair-share engine.

The 1000-flow fat-tree arrival/departure storm is the workload the
engine rework targets (see BENCH_network.json for the before/after
numbers).  Wall time is tracked by pytest-benchmark; correctness of the
*algorithmic* improvements is gated with machine-independent counts so
a regression fails the suite even on noisy CI hardware:

* recompute coalescing — one max-min solve per mutation timestamp, not
  one per flow event;
* the O(1) live-event counter — the storm's event total stays at the
  coalesced level;
* the topology-version k-path memo — repeated route lookups hit.
"""

import numpy as np

from repro import obs
from repro.sdn.topology_service import TopologyService
from repro.simnet.engine import Simulator
from repro.simnet.flows import TCP, FiveTuple, Flow
from repro.simnet.network import Network
from repro.simnet.paths import k_shortest_paths
from repro.simnet.topology import fat_tree

NFLOWS = 1000
WAVES = 50


def _build(registry=None):
    """1000 flows in 50 waves over a k=4 fat tree, seeded."""
    with obs.use(registry=registry):
        sim = Simulator()
        topo = fat_tree(4)
        net = Network(sim, topo)
    hosts = [h.name for h in topo.hosts()]
    rng = np.random.default_rng(7)
    memo: dict[tuple[str, str], list[list[int]]] = {}
    flows = []
    for i in range(NFLOWS):
        a, b = rng.choice(len(hosts), size=2, replace=False)
        src, dst = hosts[a], hosts[b]
        key = (src, dst)
        if key not in memo:
            memo[key] = [
                topo.path_links(p) for p in k_shortest_paths(topo, src, dst, 4)
            ]
        lids = memo[key][int(rng.integers(0, len(memo[key])))]
        f = Flow(
            src=src,
            dst=dst,
            size=float(rng.uniform(1e6, 2e8)),
            five_tuple=FiveTuple(f"ip{src}", f"ip{dst}", 50060, 30000 + i, TCP),
        )
        sim.schedule((i % WAVES) * 0.25, net.start_flow, f, lids)
        flows.append(f)
    return sim, net, flows


def test_storm_wall_time(benchmark):
    """Wall time of the full storm (the BENCH_network.json headline)."""

    def storm():
        sim, net, flows = _build()
        sim.run(max_events=2_000_000)
        assert all(f.end_time is not None for f in flows)
        return sim.events_processed

    benchmark.pedantic(storm, rounds=3, iterations=1, warmup_rounds=1)


def test_storm_coalesces_recomputes():
    """Machine-independent gate: solves scale with mutation *timestamps*
    (arrival waves + completion instants), not with flow events."""
    registry = obs.MetricsRegistry()
    with obs.use(registry=registry):
        sim, net, flows = _build()
        sim.run(max_events=2_000_000)
    assert all(f.end_time is not None for f in flows)
    snap = registry.snapshot()
    solves = snap["network.fair_share_recomputes"]["value"]
    coalesced = snap["network.recompute_coalesced"]["value"]
    # 1000 arrivals land on 50 wave timestamps: at least 950 arrival
    # mutations must have ridden along with an already-pending solve.
    assert coalesced >= NFLOWS - WAVES
    # Upper bound: one solve per arrival wave plus one per completion
    # instant (completions can also coalesce, so this is conservative).
    assert solves <= WAVES + NFLOWS
    # The pre-rework engine solved once per arrival *and* once per
    # completion event: regression means solves ~ 2 * NFLOWS.
    assert solves + coalesced <= 3 * NFLOWS
    assert solves < 1.5 * NFLOWS


def test_storm_event_budget():
    """The coalesced engine spends about two events per flow (its
    arrival and a shared completion tick) plus one settle per
    timestamp; the old engine burned ~3 per flow."""
    sim, net, flows = _build()
    sim.run(max_events=2_000_000)
    assert all(f.end_time is not None for f in flows)
    assert sim.events_processed <= int(2.5 * NFLOWS)
    assert sim.pending == 0  # live-event counter drained exactly


def test_byte_conservation_at_scale():
    sim, net, flows = _build()
    sim.run(max_events=2_000_000)
    total = sum(f.size for f in flows)
    sent = sum(f.bytes_sent for f in flows)
    assert abs(sent - total) <= 1e-6 * total


def test_storm_is_deterministic():
    sim1, _, flows1 = _build()
    sim1.run(max_events=2_000_000)
    sim2, _, flows2 = _build()
    sim2.run(max_events=2_000_000)
    assert [f.end_time for f in flows1] == [f.end_time for f in flows2]
    assert sim1.events_processed == sim2.events_processed


def test_kpath_memo_serves_repeat_lookups():
    """Routing regression gate: the per-version memo absorbs repeated
    pair lookups, and a topology change invalidates it exactly once."""
    registry = obs.MetricsRegistry()
    with obs.use(registry=registry):
        topo = fat_tree(4)
        svc = TopologyService(topo, k=4)
        hosts = [h.name for h in topo.hosts()]
        rng = np.random.default_rng(3)
        seen: set[tuple[str, str]] = set()
        pairs = []
        for _ in range(50):
            a, b = rng.choice(len(hosts), size=2, replace=False)
            if (hosts[a], hosts[b]) not in seen:
                seen.add((hosts[a], hosts[b]))
                pairs.append((hosts[a], hosts[b]))
        for _ in range(10):
            for s, d in pairs:
                svc.k_paths_links(s, d)
        assert svc.cache_misses <= len(pairs)
        assert svc.cache_hits >= 9 * len(pairs)
        hits_before = svc.cache_hits
        topo.set_link_state(0, False)  # version bump drops the memo
        topo.set_link_state(0, True)
        for s, d in pairs:
            svc.k_paths_links(s, d)
        assert svc.cache_misses <= 2 * len(pairs)
        assert svc.cache_hits == hits_before
    snap = registry.snapshot()
    assert snap["routing.kpath_cache_hits"]["value"] == svc.cache_hits
    assert snap["routing.kpath_cache_misses"]["value"] >= 1
