"""Benchmark V-C: regenerate the instrumentation-overhead analysis."""

from benchmarks.conftest import run_once
from repro.experiments.overhead import render_overhead, run_overhead
from repro.workloads import nutch_indexing_job, sort_job


def test_instrumentation_overhead(benchmark, scale, seeds):
    def run_rows():
        return [
            run_overhead(lambda: sort_job(input_gb=24.0 * scale), ratio=10, seed=seeds[0]),
            run_overhead(lambda: nutch_indexing_job(pages=5e6 * scale), ratio=10, seed=seeds[0]),
        ]

    rows = run_once(benchmark, run_rows)
    print()
    print(render_overhead(rows))
    for row in rows:
        # the direct CPU cost shows up in the map phase, inside the band
        assert 0.0 < row.map_inflation < 0.06
        # the job-level impact is bounded by (and usually far below) it
        assert abs(row.jct_impact) < 0.06
        # and the scheduling benefit must survive paying for it
        assert row.net_speedup_vs_ecmp > 0.0
