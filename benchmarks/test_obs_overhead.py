"""Observability overhead: the §VI discipline applied to ourselves.

The paper quantifies its own instrumentation cost (§VI: the Pythia
middleware stays within a few percent of job time); the reproduction
holds its telemetry layer to the same standard.  Two properties are
checked here:

* **Disabled = free.**  With the default :class:`NullRegistry` and no
  tracer the simulator keeps its bare event loop (structural check: no
  per-event wall-clock measurement, shared inert instruments).
* **Enabled <= 10%.**  A full registry + tracer on the sort microbench
  costs at most 10% wall time over the uninstrumented run.

Timing uses interleaved min-of-N: scheduling noise only ever adds
time, so the minimum is the faithful estimator of each variant's cost.
"""

import time

from repro import obs
from repro.experiments.common import run_experiment
from repro.simnet.engine import Simulator
from repro.workloads import sort_job

_REPS = 7


def _microbench(registry=None, tracer=None) -> float:
    start = time.perf_counter()
    run_experiment(
        sort_job(input_gb=4.0, num_reducers=12),
        scheduler="pythia",
        ratio=10,
        seed=1,
        registry=registry,
        tracer=tracer,
    )
    return time.perf_counter() - start


def test_noop_registry_keeps_bare_event_loop():
    """Disabled instrumentation must not touch the per-event hot path."""
    sim = Simulator()
    assert not sim._instrumented
    assert sim.tracer is None
    registry = obs.get_registry()
    assert isinstance(registry, obs.NullRegistry)
    assert not registry.enabled
    # all no-op instruments are shared singletons: no per-name allocation
    assert registry.counter("a") is registry.counter("b")
    assert registry.histogram("a") is registry.histogram("b")
    # and they discard their inputs
    registry.counter("a").inc(10)
    assert registry.counter("a").value == 0.0
    assert registry.snapshot() == {}


def test_enabled_overhead_under_10_percent():
    """Full metrics + tracing stay within 10% of the bare run."""
    _microbench()  # warm caches outside the measurement
    baseline, instrumented = [], []
    for _ in range(_REPS):
        baseline.append(_microbench())
        instrumented.append(
            _microbench(registry=obs.MetricsRegistry(), tracer=obs.Tracer())
        )
    base, inst = min(baseline), min(instrumented)
    ratio = inst / base
    print(f"\nobs overhead: baseline {base:.3f}s, instrumented {inst:.3f}s, "
          f"ratio {ratio:.3f}")
    assert ratio <= 1.10, (
        f"instrumentation overhead {100 * (ratio - 1):.1f}% exceeds the 10% budget"
    )


def test_disabled_run_not_slower_than_itself():
    """The no-op registry run must be statistically flat: two disabled
    batches interleaved should land within noise of each other."""
    _microbench()
    first, second = [], []
    for _ in range(_REPS):
        first.append(_microbench())
        second.append(_microbench())
    ratio = min(second) / min(first)
    print(f"\nnoop self-ratio: {ratio:.3f}")
    # generous band: this guards against systematic (not noise) drift
    assert 0.8 <= ratio <= 1.2
