"""Microbenchmarks of the simulator's hot paths.

These are classic pytest-benchmark loops (many iterations) over the
three routines that dominate experiment wall time — the max-min
solver, Yen's k-shortest paths, and the ECMP hash — so performance
regressions in the substrate show up directly in the benchmark table.
"""

import itertools

import numpy as np

from repro.core.aggregation import AggregateEntry
from repro.core.allocator import make_allocator
from repro.core.routing import RoutingGraph
from repro.sdn.ecmp import ecmp_index
from repro.sdn.stats_service import LinkStatsService
from repro.sdn.topology_service import TopologyService
from repro.simnet.engine import Simulator
from repro.simnet.fairshare import maxmin_rates
from repro.simnet.flows import TCP, FiveTuple, Flow
from repro.simnet.network import Network
from repro.simnet.paths import ClosIndex, KPathCache, compute_k_paths, k_shortest_paths
from repro.simnet.topology import fat_tree, two_rack


def _flow_set(nflows: int, nlinks: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    paths = [
        np.sort(rng.choice(nlinks, size=4, replace=False)).astype(np.intp)
        for _ in range(nflows)
    ]
    caps = rng.uniform(1e7, 1.25e8, nlinks)
    return paths, caps


def _fat_tree_flow_set(nflows: int, seed: int = 0):
    """Real fat-tree k-path routes (not synthetic link draws)."""
    topo = fat_tree(4)
    hosts = [h.name for h in topo.hosts()]
    rng = np.random.default_rng(seed)
    memo: dict[tuple[str, str], list[list[int]]] = {}
    paths = []
    for _ in range(nflows):
        a, b = rng.choice(len(hosts), size=2, replace=False)
        key = (hosts[a], hosts[b])
        if key not in memo:
            memo[key] = [
                topo.path_links(p) for p in k_shortest_paths(topo, *key, 4)
            ]
        choice = memo[key][int(rng.integers(0, len(memo[key])))]
        paths.append(np.asarray(choice, dtype=np.intp))
    caps = np.array([l.capacity for l in topo.links])
    return paths, caps


def test_maxmin_100_flows(benchmark):
    paths, caps = _flow_set(100, 48)
    rates = benchmark(maxmin_rates, paths, caps)
    assert rates.min() > 0


def test_maxmin_1000_flows(benchmark):
    paths, caps = _flow_set(1000, 48)
    rates = benchmark(maxmin_rates, paths, caps)
    assert rates.min() > 0


def test_maxmin_1000_flows_fat_tree(benchmark):
    """1000 flows on genuine fat-tree routes: the allocation problem the
    engine's hot path solves at scale."""
    paths, caps = _fat_tree_flow_set(1000)
    rates = benchmark(maxmin_rates, paths, caps)
    assert rates.min() > 0


def test_network_arrival_departure_storm(benchmark):
    """End-to-end Network storm: admissions, coalesced solves, byte
    integration, completion waves — the whole engine hot path."""

    def storm():
        sim = Simulator()
        topo = fat_tree(4)
        net = Network(sim, topo)
        hosts = [h.name for h in topo.hosts()]
        rng = np.random.default_rng(5)
        memo: dict[tuple[str, str], list[list[int]]] = {}
        flows = []
        for i in range(300):
            a, b = rng.choice(len(hosts), size=2, replace=False)
            src, dst = hosts[a], hosts[b]
            key = (src, dst)
            if key not in memo:
                memo[key] = [
                    topo.path_links(p) for p in k_shortest_paths(topo, src, dst, 4)
                ]
            lids = memo[key][int(rng.integers(0, len(memo[key])))]
            f = Flow(
                src=src,
                dst=dst,
                size=float(rng.uniform(1e6, 5e7)),
                five_tuple=FiveTuple(f"ip{src}", f"ip{dst}", 50060, 30000 + i, TCP),
            )
            sim.schedule((i % 20) * 0.25, net.start_flow, f, lids)
            flows.append(f)
        sim.run(max_events=200_000)
        assert all(f.end_time is not None for f in flows)
        return sim.events_processed

    events = benchmark.pedantic(storm, rounds=3, iterations=1, warmup_rounds=1)
    assert events > 0


# -- event queue: calendar buckets vs a plain binary heap ----------------

_QUEUE_N = 100_000


def _heapq_reference(times):
    """The pre-calendar engine's core loop: one global binary heap."""
    import heapq

    heap = []
    for seq, t in enumerate(times):
        heapq.heappush(heap, (t, 0, seq))
    drained = 0
    while heap:
        heapq.heappop(heap)
        drained += 1
    return drained


def _queue_times(n=_QUEUE_N, seed=11):
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, 250.0, n).tolist()


def test_event_queue_heapq_reference(benchmark):
    """Baseline: schedule+drain 100k events through a bare binary heap."""
    times = _queue_times()
    drained = benchmark.pedantic(
        _heapq_reference, args=(times,), rounds=3, iterations=1, warmup_rounds=1
    )
    assert drained == _QUEUE_N


def test_event_queue_calendar_schedule_drain(benchmark):
    """Calendar queue: same 100k schedule+drain through the Simulator."""
    times = _queue_times()

    def run():
        sim = Simulator()
        hits = [0]

        def cb():
            hits[0] += 1

        for t in times:
            sim.schedule(t, cb)
        sim.run()
        return hits[0]

    drained = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert drained == _QUEUE_N


def test_event_queue_calendar_cancellation(benchmark):
    """Schedule 100k, cancel two thirds, drain the rest: tombstone
    compaction must reclaim the dead majority without a global drain."""
    times = _queue_times()

    def run():
        sim = Simulator()

        def cb():
            pass

        events = [sim.schedule(t, cb) for t in times]
        for i, ev in enumerate(events):
            if i % 3:
                ev.cancel()
        sim.run()
        return sim.events_processed, sim.events_tombstoned

    processed, tombstoned = benchmark.pedantic(
        run, rounds=3, iterations=1, warmup_rounds=1
    )
    assert processed == _QUEUE_N // 3 + (_QUEUE_N % 3 > 0)
    assert tombstoned > _QUEUE_N // 4  # compaction actually reclaimed


def test_component_discovery_fat_tree(benchmark):
    """incidence_components over 2000 pod-local fat-tree flows — the
    per-settle labelling cost of the delta engine."""
    from repro.simnet.fairshare import incidence_components

    topo = fat_tree(8)
    hosts = [h.name for h in topo.hosts()]
    per_pod = len(hosts) // 8
    cache = KPathCache(topo, 4)
    rng = np.random.default_rng(13)
    paths = []
    for i in range(2000):
        pod = i % 8
        base = pod * per_pod
        a, b = rng.choice(per_pod, size=2, replace=False)
        pp = cache.paths_links(hosts[base + int(a)], hosts[base + int(b)])
        paths.append(pp[int(rng.integers(0, len(pp)))])
    pair_flow = np.concatenate(
        [np.full(len(p), i, dtype=np.intp) for i, p in enumerate(paths)]
    )
    pair_link = np.concatenate([np.asarray(p, dtype=np.intp) for p in paths])
    nlinks = len(topo.links)
    flow_comp, link_comp, ncomp = benchmark(
        incidence_components, pair_flow, pair_link, len(paths), nlinks
    )
    # pod-local traffic decomposes into at least one component per pod
    assert ncomp >= 8
    assert flow_comp.shape == (len(paths),)
    assert link_comp.shape == (nlinks,)


def test_yen_two_rack(benchmark):
    topo = two_rack()
    paths = benchmark(k_shortest_paths, topo, "h00", "h14", 4)
    assert len(paths) == 2


def test_yen_fat_tree(benchmark):
    topo = fat_tree(4)
    hosts = [h.name for h in topo.hosts()]
    paths = benchmark(k_shortest_paths, topo, hosts[0], hosts[-1], 4)
    assert len(paths) == 4


def test_ecmp_hash(benchmark):
    ft = FiveTuple("10.0.0", "10.1.4", 50060, 48231, TCP)
    idx = benchmark(ecmp_index, ft, 4)
    assert 0 <= idx < 4


def test_structured_pair_fat_tree(benchmark):
    """Same lookup as test_yen_fat_tree, but through the warm ClosIndex
    enumerator — the per-pair cost the structured path replaces."""
    topo = fat_tree(4)
    hosts = [h.name for h in topo.hosts()]
    index = ClosIndex(topo)
    compute_k_paths(topo, hosts[0], hosts[-1], 4, index=index)  # warm ascents
    paths = benchmark(compute_k_paths, topo, hosts[0], hosts[-1], 4, index=index)
    assert paths == k_shortest_paths(topo, hosts[0], hosts[-1], 4)


def test_structured_all_pairs_fat_tree8(benchmark):
    """Cold all-pairs k-path construction on the 128-host fabric — the
    BENCH_control_plane.json headline (Yen extrapolates to ~18 s)."""
    topo = fat_tree(8)
    pairs = list(itertools.permutations([h.name for h in topo.hosts()], 2))

    def all_pairs():
        cache = KPathCache(topo, 4)
        for s, d in pairs:
            cache.paths_links_incidence(s, d)
        assert cache.yen_solves == 0
        return cache.size()

    n = benchmark.pedantic(all_pairs, rounds=3, iterations=1, warmup_rounds=0)
    assert n == len(pairs)


def test_allocator_round_fat_tree(benchmark):
    """One warm allocation round over 48 entries: the vectorized
    incidence-matrix scoring path."""
    sim = Simulator()
    topo = fat_tree(4)
    net = Network(sim, topo)
    stats = LinkStatsService(sim, net, period=0.5, alpha=1.0)
    alloc = make_allocator(
        "first_fit",
        sim,
        RoutingGraph(TopologyService(topo, k=4)),
        stats,
        net,
        demand_horizon=10.0,
    )
    hosts = [h.name for h in topo.hosts()]
    rng = np.random.default_rng(9)
    pair_list = [
        tuple(hosts[i] for i in rng.choice(len(hosts), size=2, replace=False))
        for _ in range(48)
    ]

    def one_round():
        entries = []
        for i, (s, d) in enumerate(pair_list):
            e = AggregateEntry(key=(s, d, i))
            e.add(s, d, map_id=0, reducer_id=i, nbytes=1e6)
            entries.append(e)
        return alloc.allocate(entries)

    placed = benchmark(one_round)
    assert len(placed) == len(pair_list)
