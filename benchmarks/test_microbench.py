"""Microbenchmarks of the simulator's hot paths.

These are classic pytest-benchmark loops (many iterations) over the
three routines that dominate experiment wall time — the max-min
solver, Yen's k-shortest paths, and the ECMP hash — so performance
regressions in the substrate show up directly in the benchmark table.
"""

import numpy as np

from repro.sdn.ecmp import ecmp_index
from repro.simnet.fairshare import maxmin_rates
from repro.simnet.flows import TCP, FiveTuple
from repro.simnet.paths import k_shortest_paths
from repro.simnet.topology import fat_tree, two_rack


def _flow_set(nflows: int, nlinks: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    paths = [
        np.sort(rng.choice(nlinks, size=4, replace=False)).astype(np.intp)
        for _ in range(nflows)
    ]
    caps = rng.uniform(1e7, 1.25e8, nlinks)
    return paths, caps


def test_maxmin_100_flows(benchmark):
    paths, caps = _flow_set(100, 48)
    rates = benchmark(maxmin_rates, paths, caps)
    assert rates.min() > 0


def test_maxmin_1000_flows(benchmark):
    paths, caps = _flow_set(1000, 48)
    rates = benchmark(maxmin_rates, paths, caps)
    assert rates.min() > 0


def test_yen_two_rack(benchmark):
    topo = two_rack()
    paths = benchmark(k_shortest_paths, topo, "h00", "h14", 4)
    assert len(paths) == 2


def test_yen_fat_tree(benchmark):
    topo = fat_tree(4)
    hosts = [h.name for h in topo.hosts()]
    paths = benchmark(k_shortest_paths, topo, hosts[0], hosts[-1], 4)
    assert len(paths) == 4


def test_ecmp_hash(benchmark):
    ft = FiveTuple("10.0.0", "10.1.4", 50060, 48231, TCP)
    idx = benchmark(ecmp_index, ft, 4)
    assert 0 <= idx < 4
