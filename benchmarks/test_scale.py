"""Benchmark: fabric-scaling study (control-plane footprint vs size)."""

from benchmarks.conftest import run_once
from repro.analysis.report import format_table
from repro.experiments.scale import run_scale_study


def test_scale_study(benchmark, seeds):
    points = run_once(benchmark, lambda: run_scale_study(seed=seeds[0]))
    print()
    print("Fabric scaling — constant per-host load, Pythia, unloaded network")
    print(
        format_table(
            ["fabric", "hosts", "JCT (s)", "predictions", "rule installs",
             "peak rules", "fallbacks"],
            [
                (p.label, p.hosts, p.jct, p.predictions, p.rules_installed,
                 p.peak_rules, p.fallbacks)
                for p in points
            ],
        )
    )
    by_hosts = sorted(points, key=lambda p: p.hosts)
    # constant per-host load: JCT must not blow up with fabric size
    assert by_hosts[-1].jct < by_hosts[0].jct * 2.5
    # control-plane state grows with the server-pair count, but every
    # run must stay rule-driven (no fallback storm at scale)
    for p in points:
        assert p.fallbacks <= 0.05 * max(1, p.predictions * 2)
