"""Benchmark: fabric-scaling study (control-plane footprint vs size)."""

import pytest

from benchmarks.conftest import run_once
from repro.analysis.report import format_table
from repro.experiments.scale import LARGE_FABRICS, XL_FABRICS, run_scale_study


def test_scale_study(benchmark, seeds):
    points = run_once(benchmark, lambda: run_scale_study(seed=seeds[0]))
    print()
    print("Fabric scaling — constant per-host load, Pythia, unloaded network")
    print(
        format_table(
            ["fabric", "hosts", "JCT (s)", "predictions", "rule installs",
             "peak rules", "fallbacks"],
            [
                (p.label, p.hosts, p.jct, p.predictions, p.rules_installed,
                 p.peak_rules, p.fallbacks)
                for p in points
            ],
        )
    )
    by_hosts = sorted(points, key=lambda p: p.hosts)
    # constant per-host load: JCT must not blow up with fabric size
    assert by_hosts[-1].jct < by_hosts[0].jct * 2.5
    # control-plane state grows with the server-pair count, but every
    # run must stay rule-driven (no fallback storm at scale)
    for p in points:
        assert p.fallbacks <= 0.05 * max(1, p.predictions * 2)


def test_scale_study_large_fabrics(benchmark, seeds):
    """The 128/256-host points the structured control plane unlocks.

    Lighter per-host load than the testbed sweep: shuffle flow count
    grows as maps x reducers, so the small-fabric load level would put
    O(10^5) flows on the 256-host fabric and benchmark the fluid engine
    rather than the control plane.
    """
    points = run_once(
        benchmark,
        lambda: run_scale_study(
            gb_per_host=0.05,
            seed=seeds[0],
            fabrics=LARGE_FABRICS,
            reducers_per_host=0.5,
        ),
    )
    print()
    print("Large-fabric scaling — light per-host load, Pythia, unloaded network")
    print(
        format_table(
            ["fabric", "hosts", "JCT (s)", "predictions", "rule installs",
             "peak rules", "fallbacks"],
            [
                (p.label, p.hosts, p.jct, p.predictions, p.rules_installed,
                 p.peak_rules, p.fallbacks)
                for p in points
            ],
        )
    )
    assert [p.hosts for p in points] == [128, 256]
    for p in points:
        assert p.fallbacks == 0, "rule-driven even at data-center scale"
        assert p.rules_installed > 0


@pytest.mark.slow
def test_scale_study_fat_tree16(benchmark, seeds):
    """1024 hosts — the point the topology-local delta engine unlocks.

    Per-host load is lighter still than the large-fabric sweep: the
    shuffle is all-to-all (maps x reducers flows), so this point
    exercises the whole-fabric component path of the delta engine plus
    the calendar queue's bulk completion schedule, not pod locality.
    """
    points = run_once(
        benchmark,
        lambda: run_scale_study(
            gb_per_host=0.01,
            seed=seeds[0],
            fabrics=XL_FABRICS,
            reducers_per_host=0.25,
        ),
    )
    print()
    print("XL-fabric smoke — fat-tree k=16, Pythia, unloaded network")
    print(
        format_table(
            ["fabric", "hosts", "JCT (s)", "predictions", "rule installs",
             "peak rules", "fallbacks"],
            [
                (p.label, p.hosts, p.jct, p.predictions, p.rules_installed,
                 p.peak_rules, p.fallbacks)
                for p in points
            ],
        )
    )
    assert [p.hosts for p in points] == [1024]
    for p in points:
        assert p.fallbacks == 0, "rule-driven even at 1024 hosts"
        assert p.rules_installed > 0
        assert p.jct > 0
