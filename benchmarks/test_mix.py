"""Benchmark: multi-tenant job stream (the §I production motivation).

Not a paper figure — the authors evaluated one job at a time — but the
deployment scenario the paper targets: a cluster running a stream of
heterogeneous MapReduce jobs over an over-subscribed fabric.  Reports
mean/p95 job completion time and makespan under ECMP vs Pythia.
"""

from benchmarks.conftest import run_once
from repro.analysis.report import format_table
from repro.experiments.mix import compare_mix


def test_workload_mix_stream(benchmark, seeds):
    results = run_once(benchmark, lambda: compare_mix(ratio=10, n_jobs=8, seed=seeds[0]))
    print()
    print("Workload mix — 8-job stream at 1:10 over-subscription")
    print(
        format_table(
            ["scheduler", "mean JCT (s)", "p95 JCT (s)", "makespan (s)"],
            [
                (name, r.mean_jct, r.p95_jct, r.makespan)
                for name, r in results.items()
            ],
        )
    )
    assert results["pythia"].mean_jct < results["ecmp"].mean_jct * 0.9
    assert results["pythia"].p95_jct < results["ecmp"].p95_jct
