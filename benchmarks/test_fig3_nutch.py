"""Benchmark F3: regenerate Figure 3 (Nutch JCT vs over-subscription).

Shape assertions against the paper: Pythia wins at loaded ratios with
the maximum speedup at 1:20; Pythia's completion time stays close to
its unloaded value (the flat curve) while ECMP's grows.
"""

from benchmarks.conftest import run_once
from repro.experiments.fig3_nutch import render_fig3, run_fig3


def test_fig3_nutch_sweep(benchmark, scale, seeds):
    rows = run_once(benchmark, lambda: run_fig3(pages=5e6 * scale, seeds=seeds))
    print()
    print(render_fig3(rows))
    by_label = {r.label: r for r in rows}
    r20 = by_label["1:20"]
    r10 = by_label["1:10"]
    unloaded = by_label["none"]
    assert r20.speedup > 0.15, "paper: 46% at 1:20 — must stay double-digit"
    assert r20.speedup >= r10.speedup * 0.9, "speedup peaks toward 1:20"
    # the flat-Pythia claim: "comparable to the ... job completion time
    # measured in a network without over-subscription"
    assert r20.t_pythia < unloaded.t_pythia * 1.6
    assert r20.t_ecmp > unloaded.t_ecmp * 1.4, "ECMP must visibly degrade"
