"""Ablation benchmarks A1-A3 (design choices called out in DESIGN.md)."""

from benchmarks.conftest import run_once
from repro.experiments.ablations import (
    ablate_aggregation,
    ablate_allocators,
    ablate_install_latency,
    ablate_k_paths,
    ablate_ordering,
    ablate_schedulers,
    ablate_weighted_shuffle,
    render_ablation,
)


def test_a1_aggregation_policy(benchmark, seeds):
    rows = run_once(benchmark, lambda: ablate_aggregation(ratio=10, seed=seeds[0]))
    print()
    print(render_ablation("A1 — aggregation granularity (nutch, 1:10)", rows))
    by = {r.label: r for r in rows}
    def peak(r):
        return int(r.detail.split()[0].split("=")[1])

    # rack-pair conserves forwarding state (the §IV motivation)...
    assert peak(by["rack_pair"]) < peak(by["server_pair"]) / 4
    # ...at a bounded JCT cost
    assert by["rack_pair"].jct < by["server_pair"].jct * 1.5


def test_a2_scheduler_families(benchmark, seeds):
    rows = run_once(benchmark, lambda: ablate_schedulers(ratio=10, seed=seeds[0]))
    print()
    print(render_ablation("A2 — scheduler families (sort 12GB, 1:10)", rows))
    print(
        "(note: on elephant-only sort an idealised reactive rescheduler is\n"
        " competitive with prediction; Pythia's structural edge is on small-\n"
        " flow shuffles — see the Nutch assertion in the integration tests)"
    )
    by = {r.label: r for r in rows}
    assert by["pythia"].jct < by["ecmp"].jct * 0.8
    assert by["hedera"].jct < by["ecmp"].jct * 0.8


def test_a2b_ordering(benchmark, seeds):
    rows = run_once(benchmark, lambda: ablate_ordering(ratio=10, seed=seeds[0]))
    print()
    print(render_ablation("A2b — allocation ordering (skewed sort, 1:10)", rows))
    by = {r.label: r for r in rows}
    # §VI: criticality-aware ordering must not lose to FIFO packing
    assert by["criticality (pythia)"].jct <= by["arrival (flowcomb-style)"].jct * 1.02


def test_a1b_allocation_algorithms(benchmark, seeds):
    rows = run_once(benchmark, lambda: ablate_allocators(ratio=10, seed=seeds[0]))
    print()
    print(render_ablation("A1b — allocation algorithms (sort 12GB, 1:10)", rows))
    jcts = [r.jct for r in rows]
    # all three are load-aware: none should collapse to ECMP-like times
    assert max(jcts) < min(jcts) * 1.5


def test_w1_weighted_shuffle(benchmark, seeds):
    rows = run_once(benchmark, lambda: ablate_weighted_shuffle(ratio=10))
    print()
    print(render_ablation("W1 — weighted shuffle (5:1 skewed sort, 1:10)", rows))
    by = {r.label: r for r in rows}
    # no-harm at the job level; the mechanism shows in fetch durations
    assert by["weighted"].jct <= by["unweighted"].jct * 1.05


def test_a3a_k_paths(benchmark, seeds):
    rows = run_once(benchmark, lambda: ablate_k_paths(seed=seeds[0]))
    print()
    print(render_ablation("A3a — k-shortest-paths fan-out (leaf-spine, 4 spines)", rows))
    by = {r.label: r for r in rows}
    # more paths, more usable bisection: k=4 must beat k=1
    assert by["k=4"].jct < by["k=1"].jct


def test_a3b_install_latency(benchmark, seeds):
    rows = run_once(benchmark, lambda: ablate_install_latency(ratio=10, seed=seeds[0]))
    print()
    print(render_ablation("A3b — rule-install latency sensitivity (sort, 1:10)", rows))
    by = {r.label: r for r in rows}
    def fallbacks(r):
        return int(r.detail.split("=")[1])

    # at hardware speed rules win the race; at 5s/rule they lose it
    assert fallbacks(by["4ms/rule"]) <= fallbacks(by["5000ms/rule"])
    assert by["4ms/rule"].jct <= by["5000ms/rule"].jct * 1.05
