#!/usr/bin/env python3
"""Measure the sweep runner: parallel fan-out + cache vs the serial loop.

Runs the Figure-3 grid (DEFAULT_RATIOS x {ecmp, pythia} x seeds 1-3 =
24 cells) three ways — serial without a cache, parallel with a cold
cache, and again with the warm cache — verifies the three agree
bit-for-bit, and writes the numbers to ``BENCH_sweep.json``::

    PYTHONPATH=src python benchmarks/sweep_speedup.py [--pages 1e6] [--workers 4]

Parallel speedup is core-bound (each cell is one CPU-bound simulation),
so expect ~min(workers, cores)x on a cold cache; the warm-cache rerun
costs only digest computation and JSON loads regardless of core count.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

HERE = Path(__file__).resolve().parent
sys.path.insert(0, str(HERE.parent / "src"))

OUT = HERE.parent / "BENCH_sweep.json"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--pages", type=float, default=1e6,
                        help="Nutch corpus size (paper scale: 5e6)")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--out", type=Path, default=OUT)
    args = parser.parse_args()

    from repro.experiments.sweeps import DEFAULT_RATIOS
    from repro.runner import run_cells, sweep_grid
    from repro.workloads import nutch_indexing_job

    seeds = (1, 2, 3)
    cells = sweep_grid(
        lambda: nutch_indexing_job(pages=args.pages),
        ("ecmp", "pythia"), DEFAULT_RATIOS, seeds,
    )
    print(f"figure-3 grid: {len(cells)} cells "
          f"({len(DEFAULT_RATIOS)} ratios x 2 schedulers x {len(seeds)} seeds), "
          f"{os.cpu_count()} core(s) available")

    t0 = time.perf_counter()
    serial = run_cells(cells, workers=1)
    serial_s = time.perf_counter() - t0
    print(f"serial, no cache:        {serial_s:7.2f}s")

    with tempfile.TemporaryDirectory() as cache_dir:
        t0 = time.perf_counter()
        cold = run_cells(cells, workers=args.workers, cache_dir=cache_dir)
        cold_s = time.perf_counter() - t0
        print(f"{args.workers} workers, cold cache:   {cold_s:7.2f}s "
              f"({cold.executed} executed)")

        t0 = time.perf_counter()
        warm = run_cells(cells, workers=args.workers, cache_dir=cache_dir)
        warm_s = time.perf_counter() - t0
        print(f"{args.workers} workers, warm cache:   {warm_s:7.2f}s "
              f"({warm.cache_hits} hits, {warm.executed} executed)")

    def digests(report):
        return [(s.jct, s.events_processed) for s in report.summaries]

    assert digests(cold) == digests(serial), "parallel diverged from serial"
    assert digests(warm) == digests(serial), "cache served different results"
    assert warm.executed == 0, "warm sweep must be all cache hits"
    print("bit-identical across serial / parallel / cached: yes")

    payload = {
        "description": (
            "Sweep-runner numbers for the Figure-3 grid (DEFAULT_RATIOS x "
            "{ecmp, pythia} x seeds 1-3 = 24 cells). Cold-cache parallel "
            "speedup is core-bound (every cell is one CPU-bound simulation): "
            "expect ~min(workers, cores)x; the warm-cache rerun executes "
            "zero cells on any machine. Absolute times are machine-relative; "
            "the hit/executed counts and the bit-identical check are not."
        ),
        "source": "benchmarks/sweep_speedup.py",
        "grid": {
            "workload": f"nutch_indexing_job(pages={args.pages:g})",
            "ratios": ["none", "1:5", "1:10", "1:20"],
            "schedulers": ["ecmp", "pythia"],
            "seeds": list(seeds),
            "cells": len(cells),
        },
        "hardware": {"cpu_cores": os.cpu_count(), "workers": args.workers},
        "serial_no_cache_seconds": round(serial_s, 3),
        "parallel_cold_cache_seconds": round(cold_s, 3),
        "parallel_warm_cache_seconds": round(warm_s, 3),
        "speedup_parallel_cold_vs_serial": round(serial_s / cold_s, 2),
        "speedup_warm_cache_vs_serial": round(serial_s / warm_s, 1),
        "warm_cache": {"hits": warm.cache_hits, "executed": warm.executed},
        "bit_identical_serial_parallel_cached": True,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
