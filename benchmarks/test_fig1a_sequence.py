"""Benchmark F1a: regenerate the Figure 1a toy-sort sequence diagram."""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.fig1a_sequence import run_fig1a


def test_fig1a_sequence_diagram(benchmark):
    result = run_once(benchmark, run_fig1a)
    print()
    print(result.render(width=90))
    # the two §II observations the figure exists to show:
    assert result.reducer_byte_ratio == pytest.approx(5.0, rel=1e-6)
    assert result.shuffle_fraction > 0.1, "shuffle must be a visible phase"
