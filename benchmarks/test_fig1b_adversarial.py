"""Benchmark F1b: regenerate the Figure 1b adversarial-allocation demo."""

from benchmarks.conftest import run_once
from repro.analysis.report import format_table
from repro.experiments.fig1b_adversarial import run_fig1b


def test_fig1b_adversarial_allocation(benchmark):
    def run_both():
        return run_fig1b("ecmp"), run_fig1b("pythia")

    ecmp, pythia = run_once(benchmark, run_both)
    print()
    print("Figure 1b — 159MB flow vs a 95%-loaded path")
    print(
        format_table(
            ["scheduler", "flow-1 path", "flow-1 (s)", "flow-2 path", "flow-2 (s)"],
            [
                (r.scheduler, r.flow1_trunk, r.flow1_seconds, r.flow2_trunk, r.flow2_seconds)
                for r in (ecmp, pythia)
            ],
        )
    )
    assert ecmp.adversarial and not pythia.adversarial
    assert pythia.flow1_seconds < ecmp.flow1_seconds / 3
