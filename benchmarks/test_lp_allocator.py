"""LP re-optimization efficacy gates (companion to BENCH_lp.json).

Machine-independent gates for :mod:`repro.core.lp_allocator` on the
trunk-bound reference scenario (see
:mod:`repro.experiments.lp_comparison`): the min-MLU LP must deliver a
*strictly* lower peak demand-based MLU than greedy first-fit at both
oversubscription points, the solver must fit inside the controller's
rule-install window (wall time is measured but never fed back into the
simulation, so the JCT/MLU numbers here are machine-independent; only
the budget gate itself touches the clock, with a generous margin), and
``lp_mode="off"`` must be bit-identical to the default pipeline.

Everything needs the ``[lp]`` extra; the whole module skips without
scipy so the core CI job stays solver-free.  The measured numbers are
recorded in BENCH_lp.json — regenerate with
``python -m repro lp --seeds 1 2 --export BENCH_lp.json``.
"""

import numpy as np
import pytest

from repro.core.config import PythiaConfig
from repro.core.lp_allocator import HAVE_SCIPY
from repro.experiments.common import run_experiment
from repro.experiments.lp_comparison import DEFAULT_LP_PERIOD, reference_spec

pytestmark = pytest.mark.skipif(
    not HAVE_SCIPY, reason="needs the [lp] extra (scipy)"
)

SEEDS = (1, 2)
RATIOS = (5, 10)


def _run(seed, ratio, config=None):
    return run_experiment(
        reference_spec(), "pythia", ratio=ratio, seed=seed,
        pythia_config=config,
    )


def _lp_config(mode="min_mlu"):
    return PythiaConfig(lp_mode=mode, lp_period=DEFAULT_LP_PERIOD)


def test_min_mlu_lp_beats_first_fit_peak_mlu():
    """Strictly lower peak demand-MLU than greedy at every ratio/seed."""
    lines = []
    for ratio in RATIOS:
        for seed in SEEDS:
            base = _run(seed, ratio)
            lp = _run(seed, ratio, _lp_config())
            b = base.policy_stats["demand_mlu_peak"]
            l = lp.policy_stats["demand_mlu_peak"]
            lines.append(
                f"ratio 1:{ratio} seed {seed}: first_fit {b:.4f} "
                f"lp:min_mlu {l:.4f}"
            )
            assert l < b, (
                f"ratio 1:{ratio} seed {seed}: LP peak MLU {l:.4f} not "
                f"below first-fit {b:.4f}"
            )
            assert lp.policy_stats["lp_solves"] > 0
    print("\n" + "\n".join(lines))


def test_min_mlu_lp_improves_mean_mlu():
    """Time-averaged demand-MLU: no worse at any point, better on mean."""
    gains = []
    for ratio in RATIOS:
        for seed in SEEDS:
            base = _run(seed, ratio).policy_stats["demand_mlu_mean"]
            lp = _run(seed, ratio, _lp_config()).policy_stats[
                "demand_mlu_mean"
            ]
            assert lp <= base + 1e-9
            gains.append(base - lp)
    assert np.mean(gains) > 0.0


def test_solver_fits_the_rule_install_budget():
    """Worst observed solve stays inside the install window the
    controller pays anyway (budget breaches are counted, not enacted —
    this is the CI-side check that the count stayed zero)."""
    for ratio in RATIOS:
        res = _run(1, ratio, _lp_config())
        stats = res.policy_stats
        assert stats["lp_budget_exceeded"] == 0, (
            f"ratio 1:{ratio}: {stats['lp_budget_exceeded']} solves "
            f"overran the install budget "
            f"(worst {stats['lp_solve_ms_max']:.2f} ms)"
        )
        assert stats["lp_solve_ms_max"] > 0.0


def test_lp_runs_are_clean_on_the_reference_scenario():
    """No infeasibilities, fallbacks or error statuses on healthy runs."""
    for mode in ("min_mlu", "max_throughput"):
        res = _run(1, 5, _lp_config(mode))
        stats = res.policy_stats
        assert stats["lp_infeasible"] == 0
        assert stats["lp_fallbacks"] == 0
        assert stats["lp_placements_changed"] > 0  # it actually re-placed


def test_lp_mode_off_is_bit_identical_to_default():
    """The off switch leaves the greedy pipeline untouched, exactly."""
    for seed in SEEDS:
        default = _run(seed, 5)
        off = _run(seed, 5, PythiaConfig(lp_mode="off"))
        assert off.jct == default.jct
        assert off.sim.events_processed == default.sim.events_processed
        assert "lp_solves" not in off.policy_stats
