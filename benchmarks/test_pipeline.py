"""Controller-service pipeline gates (companion to BENCH_pipeline.json).

Measures the staged, backpressured prediction-ingestion pipeline as a
long-lived threaded service fed by a synthetic replay tape:

* sustained predictions/sec for 1, 2 and 4 collector shards,
* the headline perf gate — sharded + coalesced + batched install vs a
  deliberately degraded single-shard / no-coalesce / one-mod-per-txn
  configuration, measured as a *same-process ratio* so hardware speed
  cancels out,
* p99 prediction→install latency at a paced ingest rate against the
  controller's ``rule_install_budget`` for the largest transaction the
  run actually issued,
* crash/failover mid-burst: the drain must conserve every accepted
  intent (installed or coalesced, never lost) with zero double-installs.

Wall-clock rates land in ``BENCH_pipeline.json`` for the record; every
assertion here is machine-independent (ratios, conservation, modelled
budgets).
"""

import json
import time
from pathlib import Path

from benchmarks.conftest import run_once
from repro.core.config import PythiaConfig
from repro.pipeline import PipelineService, ReplayClient, synthetic_tape

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"

NJOBS, NMAPS, NREDUCERS, REPREDICT = 4, 40, 4, 2


def _expected_intents(tape):
    """Intents the collector will route: every (pred, reducer) pair
    whose bound destination differs from the source (same-host shuffle
    legs never touch the network and are dropped at binding)."""
    locs = {}
    for rec in tape.records:
        if rec.kind == "loc":
            locs[(rec.msg.job, rec.msg.reducer_id)] = rec.msg.server
    return sum(
        1
        for rec in tape.records
        if rec.kind == "pred"
        for r in range(len(rec.msg.reducer_bytes))
        if locs[(rec.msg.job, r)] != rec.msg.src_server
    )


def _publish(section: str, value: dict) -> None:
    payload = json.loads(BENCH_PATH.read_text()) if BENCH_PATH.exists() else {}
    payload.setdefault("description", (
        "Staged prediction-ingestion pipeline benchmarks "
        "(benchmarks/test_pipeline.py).  Rates are wall-clock and "
        "machine-dependent; the committed gates are same-process ratios "
        "and modelled budgets, which are not."
    ))
    payload.setdefault("tape", {
        "jobs": NJOBS, "maps": NMAPS, "reducers": NREDUCERS,
        "repredictions": REPREDICT,
    })
    payload[section] = value
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")


def _run_service(shards, coalesce=True, batch_max=64, rate=None,
                 crash_mid_burst=False, seed=2):
    """One service run over the standard tape; returns (core, results)."""
    service = PipelineService(config=PythiaConfig(
        pipeline_mode="staged",
        pipeline_shards=shards,
        pipeline_coalesce=coalesce,
        pipeline_batch_max=batch_max,
    ))
    tape = synthetic_tape(
        service.hosts(), njobs=NJOBS, nmaps=NMAPS, nreducers=NREDUCERS,
        repredict=REPREDICT, seed=seed,
    )
    service.start()
    try:
        start = time.monotonic()
        if crash_mid_burst:
            half = len(tape.records) // 2
            for rec in tape.records[:half]:
                while not service.submit(rec.kind, rec.msg):
                    time.sleep(0.0005)
            service.crash()
            for rec in tape.records[half:]:
                while not service.submit(rec.kind, rec.msg):
                    time.sleep(0.0005)
            time.sleep(0.2)  # installs fail into the retry path
            service.restore()
            client = {"sent": len(tape)}
        else:
            client = ReplayClient(tape, rate=rate).run(service.submit)
        drained = service.drain(timeout=60.0)
        wall = time.monotonic() - start
    finally:
        service.stop()
    core = service.core
    assert drained, f"service did not drain (backlog={core.backlog()})"
    assert core.intents_in == _expected_intents(tape)
    assert core.intents_in == core.intents_installed + core.intents_coalesced
    assert core.double_installs == 0
    snap = service.snapshot()
    snap["wall_seconds"] = wall
    snap["client"] = client
    snap["messages_per_sec"] = len(tape) / wall
    snap["intents_per_sec"] = core.intents_in / wall
    return core, snap


def test_throughput_scales_across_shard_counts(benchmark):
    """Sustained predictions/sec for 1, 2, 4 collector shards (published,
    not cross-gated — relative shard scaling is thread-scheduler noise
    on small hosts; the hard perf gate lives in the next test)."""
    def _sweep():
        return {s: _run_service(shards=s)[1] for s in (1, 2, 4)}

    results = run_once(benchmark, _sweep)
    for snap in results.values():
        assert snap["backlog"] == 0
        assert snap["overflow"] == 0
        assert snap["intents_coalesced"] > 0  # repredict=2 fodder consumed
    _publish("throughput", {
        f"shards_{s}": {
            "messages_per_sec": round(snap["messages_per_sec"], 1),
            "intents_per_sec": round(snap["intents_per_sec"], 1),
            "predictions_per_sec_in": round(snap["predictions_per_sec_in"], 1),
            "install_txns": snap["install_txns"],
            "intents_coalesced": snap["intents_coalesced"],
        }
        for s, snap in results.items()
    })


def test_sharded_coalesced_beats_unsharded_2x(benchmark):
    """The tentpole gate: the full pipeline (4 shards, coalescing,
    64-mod install batches) sustains at least 2x the throughput of the
    degraded configuration (1 shard, no coalescing, one mod per
    transaction) in the same process on the same tape."""
    def _pair():
        fast = _run_service(shards=4, coalesce=True, batch_max=64)[1]
        slow = _run_service(shards=1, coalesce=False, batch_max=1)[1]
        return fast, slow

    fast, slow = run_once(benchmark, _pair)
    speedup = fast["intents_per_sec"] / slow["intents_per_sec"]
    assert speedup >= 2.0, (
        f"pipeline speedup gate: {fast['intents_per_sec']:.0f} vs "
        f"{slow['intents_per_sec']:.0f} intents/s = {speedup:.2f}x < 2x"
    )
    # the mechanisms, not just the outcome: batching collapsed the
    # transaction count and coalescing absorbed the re-predictions
    assert fast["install_txns"] * 4 <= slow["install_txns"]
    assert fast["intents_coalesced"] > 0
    assert slow["intents_coalesced"] == 0
    _publish("speedup_gate", {
        "fast_intents_per_sec": round(fast["intents_per_sec"], 1),
        "slow_intents_per_sec": round(slow["intents_per_sec"], 1),
        "speedup": round(speedup, 2),
        "gate": 2.0,
        "fast_install_txns": fast["install_txns"],
        "slow_install_txns": slow["install_txns"],
    })


def test_p99_latency_within_install_budget_at_gated_rate(benchmark):
    """At a paced ingest rate the pipeline keeps up: p99 prediction→
    install latency (measured queueing + modelled switch programming)
    stays within the controller's install budget for the largest
    transaction actually issued, plus a small wall-clock allowance."""
    rate = 2000.0

    def _paced():
        return _run_service(shards=2, rate=rate)

    core, snap = run_once(benchmark, _paced)
    budget = (
        core.programmer.control_rtt
        + core.programmer.per_rule_latency * max(1, core.max_txn_mods)
    )
    e2e = snap["e2e_seconds"]
    allowance = 0.10  # wall-clock scheduling jitter of the worker threads
    assert e2e["p99"] <= budget + allowance, (
        f"p99 {e2e['p99']:.3f}s exceeds install budget {budget:.3f}s "
        f"(+{allowance:.2f}s allowance) for {core.max_txn_mods} mods"
    )
    _publish("latency", {
        "paced_rate_msgs_per_sec": rate,
        "p50_seconds": round(e2e["p50"], 4),
        "p99_seconds": round(e2e["p99"], 4),
        "max_txn_mods": core.max_txn_mods,
        "install_budget_seconds": round(budget, 4),
        "allowance_seconds": allowance,
    })


def test_failover_mid_burst_drains_without_loss(benchmark):
    """Crash the controller halfway through the burst, restore, drain:
    the ledger must prove zero lost and zero double-installed rules."""
    core, snap = run_once(
        benchmark, lambda: _run_service(shards=2, crash_mid_burst=True)
    )
    assert snap["controller"]["crashes"] == 1
    assert snap["resyncs"] == 1
    assert snap["double_installs"] == 0
    assert snap["in_flight"] == 0
    assert core.programmer.pending_installs == 0
    _publish("failover", {
        "intents_in": snap["intents_in"],
        "intents_installed": snap["intents_installed"],
        "intents_coalesced": snap["intents_coalesced"],
        "resync_adopted": snap["resync_adopted"],
        "double_installs": snap["double_installs"],
        "install_failures": snap["controller"]["install_failures"],
    })
