"""Unit tests for the link-utilization recorder."""

import pytest

from repro.analysis.utilization import UtilizationRecorder
from repro.simnet.engine import Simulator
from repro.simnet.flows import UDP, FiveTuple, Flow
from repro.simnet.network import Network
from repro.simnet.topology import two_rack


def build():
    sim = Simulator()
    topo = two_rack()
    net = Network(sim, topo)
    rec = UtilizationRecorder(sim, net, period=0.5)
    return sim, topo, net, rec


def trunk_link(topo, trunk="trunk0"):
    return [l for l in topo.links if l.src == "tor0" and l.dst == trunk][0]


def test_records_rigid_load():
    sim, topo, net, rec = build()
    bg = Flow(
        src="bg0", dst="bg1", size=None,
        five_tuple=FiveTuple("a", "b", 1, 5001, UDP), rigid_rate=62.5e6,
    )
    net.start_flow(bg, topo.path_links(["bg0", "tor0", "trunk0", "tor1", "bg1"]))
    rec.record_for(5.0)
    sim.run(until=6.0)
    lid = trunk_link(topo).lid
    assert rec.mean_utilization(lid) == pytest.approx(0.5, rel=0.05)
    assert rec.peak_utilization(lid) == pytest.approx(0.5, rel=0.05)
    net.stop_flow(bg)
    sim.run()
    assert sim.pending == 0


def test_hottest_links_ranking():
    sim, topo, net, rec = build()
    hot = Flow(src="bg0", dst="bg1", size=None,
               five_tuple=FiveTuple("a", "b", 1, 5001, UDP), rigid_rate=100e6)
    net.start_flow(hot, topo.path_links(["bg0", "tor0", "trunk0", "tor1", "bg1"]))
    rec.record_for(3.0)
    sim.run(until=4.0)
    top_ids = [lid for lid, _ in rec.hottest_links(top=6)]
    assert trunk_link(topo, "trunk0").lid in top_ids
    assert trunk_link(topo, "trunk1").lid not in top_ids
    net.stop_flow(hot)
    sim.run()


def test_render_and_empty_series():
    sim, topo, net, rec = build()
    lid = trunk_link(topo).lid
    t, u = rec.series(lid)
    assert t.size == 0 and rec.mean_utilization(lid) == 0.0
    rec.record_for(1.0)
    sim.run()
    out = rec.render([lid])
    assert "tor0->trunk0" in out


def test_stop_prevents_immortal_ticker():
    sim, topo, net, rec = build()
    rec.start()
    sim.schedule(2.0, rec.stop)
    sim.run()
    assert sim.pending == 0
    assert len(rec.times) >= 2
