"""Tests for JSON run export/import."""

import json

import pytest

from repro.analysis.export import EXPORT_VERSION, export_run, load_run, run_to_dict
from repro.experiments.common import run_experiment
from repro.workloads.sort import sort_job


@pytest.fixture(scope="module")
def result():
    return run_experiment(
        sort_job(input_gb=1.0, num_reducers=4), scheduler="pythia", ratio=None, seed=1
    )


def test_round_trip(tmp_path, result):
    path = export_run(result, tmp_path / "run.json")
    data = load_run(path)
    assert data["version"] == EXPORT_VERSION
    assert data["jct"] == pytest.approx(result.jct)
    assert data["scheduler"] == "pythia"
    assert len(data["maps"]) == result.run.spec.num_maps
    assert len(data["reduces"]) == 4
    assert len(data["fetches"]) == len(result.run.fetches)
    assert data["predictions"], "pythia runs carry the prediction log"


def test_export_is_plain_json(tmp_path, result):
    path = export_run(result, tmp_path / "run.json")
    raw = json.loads(path.read_text())  # must not require repro to parse
    total_fetched = sum(f["app_bytes"] for f in raw["fetches"])
    assert total_fetched == pytest.approx(result.run.spec.intermediate_bytes, rel=1e-6)


def test_netflow_series_exported(tmp_path, result):
    data = run_to_dict(result)
    assert data["netflow"], "per-server egress series must be present"
    for server, series in data["netflow"].items():
        assert len(series["times"]) == len(series["cumulative_bytes"])
        cum = series["cumulative_bytes"]
        assert cum == sorted(cum), "cumulative egress must be monotone"


def test_version_check(tmp_path, result):
    path = export_run(result, tmp_path / "run.json")
    data = json.loads(path.read_text())
    data["version"] = 99
    path.write_text(json.dumps(data))
    with pytest.raises(ValueError):
        load_run(path)
