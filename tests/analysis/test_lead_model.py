"""Tests for the §V-C prediction-lead model and its confirming sweep."""


from repro.analysis.lead_model import (
    lead_sensitivity_sweep,
    predicted_lead_bounds,
)
from repro.hadoop.cluster import ClusterConfig


def test_bounds_ordering():
    b = predicted_lead_bounds(ClusterConfig())
    assert 0 < b.lower <= b.expected


def test_bounds_track_parameters():
    slow_hb = predicted_lead_bounds(ClusterConfig(heartbeat=10.0))
    fast_hb = predicted_lead_bounds(ClusterConfig(heartbeat=1.0))
    assert slow_hb.expected > fast_hb.expected
    assert slow_hb.lower == fast_hb.lower  # lower bound ignores alignment
    big_startup = predicted_lead_bounds(ClusterConfig(reduce_startup=10.0))
    assert big_startup.lower > predicted_lead_bounds(ClusterConfig()).lower


def test_measured_lead_within_model_envelope():
    """The simulator's measured lead must respect the analytical bounds."""
    cluster = ClusterConfig()
    bounds = predicted_lead_bounds(cluster)
    samples = lead_sensitivity_sweep(
        parallel_copies=(5,), heartbeats=(), input_gb=4.0
    )
    lead = samples[0].min_lead
    assert lead >= bounds.lower * 0.8
    assert lead <= bounds.expected * 2.0


def test_parallel_copies_insensitivity():
    """The paper's conjecture: the parallel-transfer limit does not
    erode prediction timeliness."""
    samples = lead_sensitivity_sweep(
        parallel_copies=(2, 10), heartbeats=(), input_gb=4.0
    )
    leads = [s.min_lead for s in samples]
    assert min(leads) > 0
    assert max(leads) / min(leads) < 1.6, "lead must be roughly flat in copies"


def test_heartbeat_moves_lead():
    samples = lead_sensitivity_sweep(
        parallel_copies=(), heartbeats=(1.0, 5.0), input_gb=4.0
    )
    by_value = {s.value: s.min_lead for s in samples}
    assert by_value[5.0] > by_value[1.0] * 0.9  # not smaller; usually larger
