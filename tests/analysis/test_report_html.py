"""Tests for the standalone HTML run report."""

import pytest

from repro.analysis.report_html import run_report_html, write_report
from repro.experiments.common import run_experiment
from repro.workloads.sort import sort_job


@pytest.fixture(scope="module")
def result():
    return run_experiment(
        sort_job(input_gb=1.0, num_reducers=4), scheduler="pythia", ratio=None, seed=1
    )


def test_report_contains_all_sections(result):
    html = run_report_html(result)
    for marker in (
        "<!DOCTYPE html>",
        "Phase coverage",
        "Scheduler statistics",
        "Sequence diagram",
        "Shuffle egress",
        "<svg",
        "job completion time",
    ):
        assert marker in html


def test_report_reflects_run_facts(result):
    html = run_report_html(result, title="my run")
    assert "my run" in html
    assert f"{result.jct:.1f}" in html
    assert "rule_hits" in html


def test_write_report(tmp_path, result):
    path = write_report(result, tmp_path / "report.html")
    assert path.exists()
    assert path.read_text().startswith("<!DOCTYPE html>")
