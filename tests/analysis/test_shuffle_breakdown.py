"""Tests for the shuffle wait-time decomposition."""

import pytest

from repro.analysis.shuffle_breakdown import (
    breakdown_table,
    mean_transfer_seconds,
    shuffle_breakdown,
    total_transfer_time,
)
from repro.experiments.common import run_experiment
from repro.hadoop.cluster import ClusterConfig
from repro.workloads.sort import sort_job


@pytest.fixture(scope="module")
def loaded_runs():
    e = run_experiment(sort_job(input_gb=4.0, num_reducers=8), "ecmp", 10, seed=1)
    p = run_experiment(sort_job(input_gb=4.0, num_reducers=8), "pythia", 10, seed=1)
    return e, p


def test_breakdown_covers_every_reducer(loaded_runs):
    e, _ = loaded_runs
    rows = shuffle_breakdown(e.run)
    assert len(rows) == 8
    for b in rows:
        assert b.fetches == e.run.spec.num_maps
        assert b.discovery_wait >= 0
        assert b.queue_wait >= 0
        assert b.transfer_time > 0
        assert b.shuffle_span > 0


def test_discovery_wait_reflects_heartbeat_path(loaded_runs):
    e, _ = loaded_runs
    rows = shuffle_breakdown(e.run)
    # the two-hop heartbeat path makes discovery wait non-trivial
    assert sum(b.discovery_wait for b in rows) > 0


def test_queue_wait_appears_when_copies_scarce():
    tight = run_experiment(
        sort_job(input_gb=4.0, num_reducers=4),
        "ecmp",
        None,
        seed=1,
        cluster_config=ClusterConfig(parallel_copies=1),
    )
    rows = shuffle_breakdown(tight.run)
    assert sum(b.queue_wait for b in rows) > 0, "1-copy fetches must queue"


def test_pythia_cuts_transfer_time_not_hadoop_mechanics(loaded_runs):
    """The JCT win must come from the network-sensitive component."""
    e, p = loaded_runs
    assert total_transfer_time(p.run) < total_transfer_time(e.run) * 0.8
    assert mean_transfer_seconds(p.run) < mean_transfer_seconds(e.run)


def test_breakdown_table_shape(loaded_runs):
    e, _ = loaded_runs
    rows = breakdown_table(e.run)
    assert len(rows) == 8
    assert all(len(r) == 6 for r in rows)
