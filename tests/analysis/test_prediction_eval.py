"""Unit tests for the Figure-5 prediction evaluation machinery."""

import numpy as np
import pytest

from repro.analysis.prediction_eval import _crossing_times, evaluate_prediction
from repro.core.aggregation import FlowAggregator, ServerPairAggregation
from repro.core.collector import PredictionCollector
from repro.instrumentation.messages import PredictionMessage, ReducerLocationMessage
from repro.simnet.engine import Simulator


class FakeNetflow:
    def __init__(self, series):
        self._series = series

    def series(self, server):
        t, v = self._series[server]
        return np.asarray(t), np.asarray(v)

    def servers(self):
        return sorted(self._series)


def test_crossing_times_basic():
    t = np.array([0.0, 1.0, 2.0, 3.0])
    c = np.array([0.0, 10.0, 20.0, 30.0])
    out = _crossing_times(t, c, np.array([5.0, 15.0, 25.0, 35.0]))
    assert out[0] == 1.0 and out[1] == 2.0 and out[2] == 3.0
    assert np.isinf(out[3])


def build_collector(pred_time=0.0, sizes=(100.0,), dst="h10"):
    sim = Simulator()
    sim.now = pred_time
    col = PredictionCollector(sim, FlowAggregator(ServerPairAggregation()))
    col.receive_reducer_location(
        ReducerLocationMessage(job="j", reducer_id=0, server=dst, created_at=pred_time)
    )
    col.receive_prediction(
        PredictionMessage(
            job="j", map_id=0, src_server="h00",
            reducer_bytes=np.array(sizes), created_at=pred_time,
        )
    )
    return col


def test_evaluate_lead_and_overestimate():
    col = build_collector(pred_time=1.0, sizes=(105.0,))
    # measured: 100 bytes transferred between t=6 and t=8
    nf = FakeNetflow({"h00": ([6.0, 7.0, 8.0], [0.0, 50.0, 100.0])})
    ev = evaluate_prediction(col, nf, "h00")
    assert ev.overestimate_fraction == pytest.approx(0.05)
    assert ev.never_lags
    # prediction at t=1, measurement starts reaching levels from t~6
    assert 4.5 < ev.min_lead_seconds <= 7.0


def test_evaluate_detects_lag():
    # prediction arrives AFTER the traffic — must not report never_lags
    col = build_collector(pred_time=10.0, sizes=(105.0,))
    nf = FakeNetflow({"h00": ([0.0, 1.0], [0.0, 100.0])})
    ev = evaluate_prediction(col, nf, "h00")
    assert ev.min_lead_seconds < 0
    assert not ev.never_lags


def test_evaluate_requires_data():
    col = build_collector()
    nf = FakeNetflow({"h00": ([], [])})
    with pytest.raises(ValueError):
        evaluate_prediction(col, nf, "h00")
    with pytest.raises(ValueError):
        evaluate_prediction(col, nf, "h99")
