"""Unit tests for timeline extraction, speedup tables and reporting."""

import pytest

from repro.analysis.report import format_series, format_table
from repro.analysis.speedup import SweepRow, speedup, sweep_table
from repro.analysis.timeline import (
    job_timeline,
    phase_fractions,
    render_timeline,
)
from repro.hadoop.job import JobRun, JobSpec, TaskRecord, FetchRecord, MiB


def make_run():
    spec = JobSpec(name="t", input_bytes=2 * 128 * MiB, num_reducers=1, duration_jitter=0.0)
    run = JobRun(spec=spec, submitted_at=0.0, completed_at=20.0)
    run.maps[0] = TaskRecord(kind="map", task_id=0, node="h00", start=0.0, end=5.0)
    run.maps[1] = TaskRecord(kind="map", task_id=1, node="h01", start=1.0, end=6.0)
    rec = TaskRecord(kind="reduce", task_id=0, node="h10", start=5.0, end=20.0)
    rec.shuffle_start, rec.shuffle_end, rec.sort_end = 5.0, 12.0, 14.0
    run.reduces[0] = rec
    run.fetches.append(
        FetchRecord(
            map_id=0, reducer_id=0, src="h00", dst="h10",
            app_bytes=100.0, wire_bytes=102.7, local=False,
            enqueued=5.0, start=5.0, end=10.0,
        )
    )
    return run


def test_job_timeline_segments():
    segments = job_timeline(make_run())
    phases = {(s.row, s.phase) for s in segments}
    assert ("map-0@h00", "map") in phases
    assert ("reduce-0@h10", "shuffle") in phases
    assert ("reduce-0@h10", "sort") in phases
    assert ("reduce-0@h10", "reduce") in phases
    shuffle = [s for s in segments if s.phase == "shuffle"][0]
    assert shuffle.duration == pytest.approx(7.0)
    assert "MB" in shuffle.detail or shuffle.detail == "0MB"


def test_phase_fractions_union_semantics():
    fr = phase_fractions(make_run())
    # maps overlap [0,5] and [1,6]: union 6s of a 20s job
    assert fr["map"] == pytest.approx(0.3)
    assert fr["shuffle"] == pytest.approx(7 / 20)
    assert fr["reduce"] == pytest.approx(6 / 20)


def test_render_timeline_contains_rows():
    out = render_timeline(job_timeline(make_run()), width=60)
    assert "map-0@h00" in out
    assert "reduce-0@h10" in out
    assert "legend" in out
    assert render_timeline([]) == "(empty timeline)"


def test_speedup_definition():
    assert speedup(100.0, 54.0) == pytest.approx(0.46)
    assert speedup(100.0, 100.0) == 0.0
    with pytest.raises(ValueError):
        speedup(0.0, 1.0)


def test_sweep_row_and_table():
    rows = [
        SweepRow(ratio=None, t_ecmp=100.0, t_pythia=97.0),
        SweepRow(ratio=20, t_ecmp=450.0, t_pythia=243.0),
    ]
    table = sweep_table(rows)
    assert table[0][0] == "none"
    assert table[1][0] == "1:20"
    assert table[1][3] == pytest.approx(46.0)


def test_format_table_alignment():
    out = format_table(["a", "bb"], [(1, 2.345), (10, 20.0)])
    lines = out.splitlines()
    assert len(lines) == 4
    assert "2.3" in lines[2]
    assert all(len(l) == len(lines[0]) for l in lines[1:])


def test_format_series():
    out = format_series("x", [0, 1, 2, 3], [0.0, 1.0, 2.0, 3.0], width=4)
    assert out.startswith("x [")
    assert format_series("empty", [], []) == "empty: (empty)"
