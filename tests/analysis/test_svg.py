"""Tests for the SVG figure writers (structure-validated via ElementTree)."""

import xml.etree.ElementTree as ET

import pytest

from repro.analysis.svg import (
    svg_grouped_bars,
    svg_series,
    svg_timeline,
    write_svg,
)
from repro.analysis.timeline import Segment

SVG_NS = "{http://www.w3.org/2000/svg}"


def _parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


def _segments():
    return [
        Segment(row="map-0@h00", phase="map", start=0.0, end=5.0),
        Segment(row="reduce-0@h10", phase="shuffle", start=5.0, end=12.0, detail="336MB"),
        Segment(row="reduce-0@h10", phase="reduce", start=12.0, end=20.0),
    ]


def test_timeline_svg_valid_and_complete():
    root = _parse(svg_timeline(_segments(), title="toy"))
    assert root.tag == f"{SVG_NS}svg"
    rects = root.findall(f".//{SVG_NS}rect")
    # one rect per segment + 4 legend swatches
    assert len(rects) == 3 + 4
    texts = [t.text for t in root.findall(f".//{SVG_NS}text")]
    assert "toy" in texts
    assert any(t and "map-0@h00" in t for t in texts)
    titles = [t.text for t in root.findall(f".//{SVG_NS}title")]
    assert any("336MB" in t for t in titles)


def test_timeline_requires_segments():
    with pytest.raises(ValueError):
        svg_timeline([])


def test_series_svg_has_polyline_per_series():
    svg = svg_series(
        {
            "predicted": ([0, 1, 2], [0, 10, 20]),
            "measured": ([0, 1, 2], [0, 8, 19]),
        },
        title="fig5",
        y_label="bytes",
    )
    root = _parse(svg)
    polys = root.findall(f".//{SVG_NS}polyline")
    assert len(polys) == 2
    for p in polys:
        pts = p.attrib["points"].split()
        assert len(pts) == 3


def test_series_requires_data():
    with pytest.raises(ValueError):
        svg_series({})
    with pytest.raises(ValueError):
        svg_series({"x": ([], [])})


def test_grouped_bars_svg():
    svg = svg_grouped_bars(
        ["none", "1:10", "1:20"],
        {"ECMP": [68.0, 96.0, 148.0], "Pythia": [67.0, 77.0, 92.0]},
        title="fig3",
    )
    root = _parse(svg)
    rects = root.findall(f".//{SVG_NS}rect")
    # 3 categories x 2 series + 2 legend swatches
    assert len(rects) == 8
    heights = [float(r.attrib["height"]) for r in rects[:6]]
    assert max(heights) > min(heights)


def test_grouped_bars_validation():
    with pytest.raises(ValueError):
        svg_grouped_bars([], {})
    with pytest.raises(ValueError):
        svg_grouped_bars(["a"], {"s": [0.0]})


def test_write_svg(tmp_path):
    path = write_svg(svg_timeline(_segments()), tmp_path / "fig.svg")
    assert path.exists()
    _parse(path.read_text())  # still valid XML on disk


def test_end_to_end_figure_render(tmp_path):
    """Render a real run's sequence diagram to SVG."""
    from repro.analysis.timeline import job_timeline
    from repro.experiments.fig1a_sequence import run_fig1a

    result = run_fig1a()
    svg = svg_timeline(job_timeline(result.result.run), title="Figure 1a")
    root = _parse(svg)
    assert len(root.findall(f".//{SVG_NS}rect")) > 5
