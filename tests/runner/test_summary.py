"""RunSummary extraction and serialisation round-trips."""

import json
import pickle

import pytest

from repro.experiments.common import run_experiment
from repro.runner import RunSummary
from repro.workloads import toy_sort_job


@pytest.fixture(scope="module")
def summary() -> RunSummary:
    result = run_experiment(toy_sort_job(), scheduler="pythia", ratio=10.0, seed=1)
    return RunSummary.from_result(result)


def test_from_result_measurements(summary):
    assert summary.workload == "toy-sort"
    assert summary.scheduler == "pythia"
    assert summary.ratio == 10.0
    assert summary.seed == 1
    assert summary.jct > 0
    assert summary.events_processed > 0
    assert summary.num_maps >= 1 and summary.num_reducers >= 1
    start, end = summary.map_phase
    assert 0 <= start < end
    assert summary.policy_stats["rules_installed"] > 0
    assert 0 < sum(summary.phase_fractions.values()) <= 4.0


def test_dict_round_trip(summary):
    data = summary.to_dict()
    json.dumps(data)  # must be JSON-clean, not merely dict-shaped
    rebuilt = RunSummary.from_dict(json.loads(json.dumps(data)))
    assert rebuilt == summary


def test_pickle_round_trip(summary):
    # the process-pool path moves summaries between workers and parent
    assert pickle.loads(pickle.dumps(summary)) == summary


def test_version_gate():
    with pytest.raises(ValueError, match="version"):
        RunSummary.from_dict({"version": 999})


def test_v1_payload_loads_with_empty_fleet_fields(summary):
    """Pre-PR-8 caches serialised version-1 summaries without the
    multi-tenant fields; they must keep loading losslessly."""
    data = summary.to_dict()
    data["version"] = 1
    del data["job_rows"]
    del data["fleet"]
    rebuilt = RunSummary.from_dict(data)
    assert rebuilt.job_rows == []
    assert rebuilt.fleet == {}
    assert rebuilt.jct == summary.jct
    assert rebuilt.policy_stats == summary.policy_stats


@pytest.fixture(scope="module")
def fleet_summary() -> RunSummary:
    from repro.experiments.common import run_cluster_experiment
    from repro.workloads import poisson_workload

    result = run_cluster_experiment(
        poisson_workload(n_jobs=3, arrival_rate=0.1, seed=0),
        scheduler="ecmp",
        ratio=5.0,
        seed=1,
    )
    return RunSummary.from_result(result)


def test_fleet_summary_carries_rows_and_metrics(fleet_summary):
    assert fleet_summary.workload.startswith("poisson-")
    assert len(fleet_summary.job_rows) == 3
    row = fleet_summary.job_rows[0]
    assert {"job_id", "tenant", "jct", "slowdown"} <= set(row)
    assert row["slowdown"] is not None
    fleet = fleet_summary.fleet
    assert fleet["n_jobs"] == 3
    assert 0 < fleet["p50_jct"] <= fleet["p99_jct"]
    assert 0 < fleet["jain_fairness"] <= 1.0
    assert fleet["mean_slowdown"] >= 1.0


def test_fleet_summary_round_trips(fleet_summary):
    data = json.loads(json.dumps(fleet_summary.to_dict()))
    assert data["version"] == 2
    assert RunSummary.from_dict(data) == fleet_summary
    assert pickle.loads(pickle.dumps(fleet_summary)) == fleet_summary
