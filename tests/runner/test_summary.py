"""RunSummary extraction and serialisation round-trips."""

import json
import pickle

import pytest

from repro.experiments.common import run_experiment
from repro.runner import RunSummary
from repro.workloads import toy_sort_job


@pytest.fixture(scope="module")
def summary() -> RunSummary:
    result = run_experiment(toy_sort_job(), scheduler="pythia", ratio=10.0, seed=1)
    return RunSummary.from_result(result)


def test_from_result_measurements(summary):
    assert summary.workload == "toy-sort"
    assert summary.scheduler == "pythia"
    assert summary.ratio == 10.0
    assert summary.seed == 1
    assert summary.jct > 0
    assert summary.events_processed > 0
    assert summary.num_maps >= 1 and summary.num_reducers >= 1
    start, end = summary.map_phase
    assert 0 <= start < end
    assert summary.policy_stats["rules_installed"] > 0
    assert 0 < sum(summary.phase_fractions.values()) <= 4.0


def test_dict_round_trip(summary):
    data = summary.to_dict()
    json.dumps(data)  # must be JSON-clean, not merely dict-shaped
    rebuilt = RunSummary.from_dict(json.loads(json.dumps(data)))
    assert rebuilt == summary


def test_pickle_round_trip(summary):
    # the process-pool path moves summaries between workers and parent
    assert pickle.loads(pickle.dumps(summary)) == summary


def test_version_gate():
    with pytest.raises(ValueError, match="version"):
        RunSummary.from_dict({"version": 999})
