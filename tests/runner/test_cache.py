"""Result-cache unit tests: keys, hit/miss/invalidation, resume."""

import json

import pytest

from repro import obs
from repro.core.config import PythiaConfig
from repro.runner import (
    ResultCache,
    UncacheableCell,
    cell_key,
    canonical,
    run_cells,
    sweep_grid,
)
from repro.runner.sweep import CACHED, EXECUTED
from repro.simnet.topology import leaf_spine, two_rack
from repro.workloads import toy_sort_job


def grid(seeds=(1,)):
    return sweep_grid(toy_sort_job, ("ecmp", "pythia"), (None, 10.0), seeds)


# ----------------------------------------------------------------------
# key anatomy
# ----------------------------------------------------------------------
def test_key_is_stable_across_equal_cells():
    a, b = grid()[0], grid()[0]
    assert a is not b
    assert cell_key(a) == cell_key(b)


def test_key_separates_grid_axes():
    cells = grid(seeds=(1, 2))
    keys = {cell_key(c) for c in cells}
    assert len(keys) == len(cells), "every scheduler/ratio/seed cell gets its own key"


def test_key_covers_config_and_topology():
    cell = grid()[0]
    base = cell_key(cell)
    # None and an explicit default-constructed config are the same run
    assert cell_key(cell, {"pythia_config": PythiaConfig()}) == base
    # ... but any knob change moves the key (config-change invalidation:
    # the old entry is simply never addressed again)
    assert cell_key(cell, {"pythia_config": PythiaConfig(k_paths=2)}) != base
    assert cell_key(cell, {"topology_factory": leaf_spine}) != base
    assert cell_key(cell, {"topology_factory": two_rack}) == base
    assert cell_key(cell, {"netflow_interval": 0.5}) != base


def test_lambda_kwargs_are_uncacheable():
    with pytest.raises(UncacheableCell):
        cell_key(grid()[0], {"fault": lambda sim, topo: None})


def test_canonical_rejects_live_objects():
    with pytest.raises(UncacheableCell):
        canonical(object())


# ----------------------------------------------------------------------
# hit / miss / invalidation / resume
# ----------------------------------------------------------------------
def test_miss_then_hit(tmp_path):
    cells = grid()
    first = run_cells(cells, cache_dir=tmp_path)
    assert (first.cache_hits, first.executed) == (0, len(cells))
    second = run_cells(cells, cache_dir=tmp_path)
    assert (second.cache_hits, second.executed) == (len(cells), 0)
    assert second.hit_rate == 1.0
    assert [s.jct for s in second.summaries] == [s.jct for s in first.summaries]


def test_config_change_misses_old_entries(tmp_path):
    cells = grid()
    run_cells(cells, cache_dir=tmp_path)
    changed = run_cells(
        cells,
        cache_dir=tmp_path,
        run_kwargs={"pythia_config": PythiaConfig(k_paths=2)},
    )
    assert changed.cache_hits == 0 and changed.executed == len(cells)


def test_corrupt_entry_is_invalidated_and_reexecuted(tmp_path):
    cells = grid()
    run_cells(cells, cache_dir=tmp_path)
    victim = ResultCache(tmp_path).path_for(cell_key(cells[0]))
    victim.write_text("{ truncated")
    report = run_cells(cells, cache_dir=tmp_path)
    assert report.invalidations == 1
    assert report.executed == 1
    assert report.cache_hits == len(cells) - 1


def test_version_mismatch_is_invalidated(tmp_path):
    cells = grid()
    run_cells(cells, cache_dir=tmp_path)
    victim = ResultCache(tmp_path).path_for(cell_key(cells[0]))
    stale = json.loads(victim.read_text())
    stale["version"] = 999
    victim.write_text(json.dumps(stale))
    report = run_cells(cells, cache_dir=tmp_path)
    assert report.invalidations == 1 and report.executed == 1


def test_resume_from_partial_manifest(tmp_path):
    cells = grid(seeds=(1, 2))
    # interrupted sweep: only half the grid completed before the "crash"
    partial = run_cells(cells[: len(cells) // 2], cache_dir=tmp_path)
    assert partial.executed == len(cells) // 2
    # re-running the full sweep executes only the missing cells ...
    resumed = run_cells(cells, cache_dir=tmp_path)
    assert resumed.cache_hits == len(cells) // 2
    assert resumed.executed == len(cells) - len(cells) // 2
    # ... and the manifest records how each cell was satisfied
    manifest = json.loads(resumed.manifest_path.read_text())
    statuses = [entry["status"] for entry in manifest["cells"]]
    assert statuses.count(CACHED) == len(cells) // 2
    assert statuses.count(EXECUTED) == len(cells) - len(cells) // 2
    # a rerun of the now-complete sweep bumps the completion count
    done = run_cells(cells, cache_dir=tmp_path)
    assert done.executed == 0
    assert json.loads(done.manifest_path.read_text())["completions"] == 2


def test_obs_counters_track_cache_traffic(tmp_path):
    cells = grid()
    registry = obs.MetricsRegistry()
    with obs.use(registry=registry):
        run_cells(cells, cache_dir=tmp_path)
        run_cells(cells, cache_dir=tmp_path)
    snap = registry.snapshot()
    assert snap["runner.cache_misses"]["value"] == len(cells)
    assert snap["runner.cache_hits"]["value"] == len(cells)
    assert snap["runner.cells_executed"]["value"] == len(cells)


def test_no_cache_dir_always_executes():
    cells = grid()
    report = run_cells(cells)
    assert report.executed == len(cells)
    assert report.manifest_path is None


def test_registry_rejected_across_workers():
    with pytest.raises(ValueError, match="worker boundary"):
        run_cells(grid(), workers=2, run_kwargs={"registry": obs.MetricsRegistry()})
