"""Parallel-vs-serial determinism, cross-checked against the goldens.

A sweep's cells must be pure functions of their parameters: the same
grid run with ``workers=1`` and ``workers=4`` has to produce
bit-identical JCT/event digests, and both have to agree with the
committed ``tests/golden/digests.json`` for the cells the golden matrix
covers.  Any divergence means a worker leaked state (RNG, obs context,
simulator global) into a neighbouring cell.
"""

import pytest

from repro.runner import run_cells, sweep_grid
from tests.golden.refresh import cell_key as golden_key
from tests.golden.refresh import load_digests, make_spec

SCHEDULERS = ("ecmp", "pythia", "hedera")
SEEDS = (1, 2)


@pytest.fixture(scope="module")
def cells():
    # ratio 10.0 + make_spec matches the golden matrix's cell definition
    return sweep_grid(lambda: make_spec("sort"), SCHEDULERS, (10.0,), SEEDS)


def digests(report):
    return [(s.jct, s.events_processed) for s in report.summaries]


def test_parallel_matches_serial_bit_for_bit(cells):
    serial = run_cells(cells, workers=1)
    parallel = run_cells(cells, workers=4)
    assert digests(parallel) == digests(serial)


def test_parallel_matches_golden_digests(cells):
    golden = load_digests()
    report = run_cells(cells, workers=4)
    for cell, summary in zip(cells, report.summaries):
        expected = golden[golden_key("sort", cell.scheduler, cell.seed)]
        assert summary.events_processed == expected["events_processed"], cell.label
        assert summary.jct == pytest.approx(expected["jct_seconds"], rel=1e-9), cell.label


def test_cache_round_trip_preserves_digests(cells, tmp_path):
    cold = run_cells(cells, workers=4, cache_dir=tmp_path)
    warm = run_cells(cells, workers=4, cache_dir=tmp_path)
    assert warm.executed == 0, "second sweep must be served entirely from cache"
    assert digests(warm) == digests(cold)
