"""Shared pytest configuration: seeded hypothesis profiles.

Two profiles:

* ``dev`` (default) — hypothesis explores randomly; the deadline is
  dropped because simulation-heavy examples have noisy wall-clock times.
* ``ci`` — fully derandomized (every run draws the same examples), so a
  property failure in CI reproduces locally with zero flake surface.

Select with ``HYPOTHESIS_PROFILE=ci python -m pytest ...``.
"""

import os

from hypothesis import settings

settings.register_profile("dev", deadline=None)
settings.register_profile("ci", deadline=None, derandomize=True, print_blob=True)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
