"""Chaos integration tests: jobs complete and invariants hold under faults.

Every run here executes with the invariant checker in strict mode, so a
passing test certifies both liveness (the job finished) and physical
consistency (no checkpoint found a violation).
"""

import pytest

from repro.experiments.common import run_experiment
from repro.faults import (
    ChaosSchedule,
    ControllerOutage,
    LinkFlap,
    PredictionFault,
    StatsFreeze,
    random_schedule,
)
from repro.simnet.topology import two_rack
from repro.workloads import sort_job


def _run(schedule_events, scheduler="pythia", seed=1, chaos_seed=0, **kwargs):
    return run_experiment(
        sort_job(input_gb=2.0, num_reducers=4),
        scheduler=scheduler,
        ratio=kwargs.pop("ratio", 10.0),
        seed=seed,
        invariants=True,
        chaos=lambda _topo: ChaosSchedule(list(schedule_events), seed=chaos_seed),
        **kwargs,
    )


@pytest.mark.parametrize("scheduler", ["ecmp", "pythia", "hedera"])
def test_link_flap_mid_shuffle(scheduler):
    res = _run(
        [LinkFlap(at=10.0, down=4.0, a="tor0", b="trunk0")], scheduler=scheduler
    )
    assert res.run.completed_at is not None
    assert res.invariants["violations"] == 0
    assert res.faults_injected == {"link_flap": 2}  # down + up
    assert res.policy_stats["stranded"] == 0


def test_controller_outage_during_allocation():
    """Crash before the first predictions land: installs must retry/fail
    into the backlog, recovery must resync, and the job still finishes."""
    res = _run([ControllerOutage(at=1.0, down=20.0)])
    assert res.run.completed_at is not None
    assert res.invariants["violations"] == 0
    stats = res.policy_stats
    assert stats["crashes"] == 1
    assert stats["resyncs"] == 1
    # installs were attempted while the control channel was down
    assert stats["install_retries"] > 0
    # ...and the abandoned ones were reconciled back on restore
    assert stats["install_failures"] > 0
    assert stats["rules_resynced"] > 0
    assert res.controller is not None and res.controller.programmer.pending_installs == 0


def test_switch_tables_match_intent_after_resync():
    from repro.sdn.switch_tables import SwitchTableView

    res = _run([ControllerOutage(at=1.0, down=20.0)])
    view = SwitchTableView(res.topology, res.controller.programmer)
    assert view.missing_rules(res.controller.programmer._rules) == []
    assert view.total_entries() > 0


def test_stats_staleness_window():
    res = _run([StatsFreeze(at=5.0, duration=10.0)])
    assert res.run.completed_at is not None
    assert res.invariants["violations"] == 0
    assert res.policy_stats["stats_samples_skipped"] > 0


def test_prediction_loss_degrades_to_fallback():
    """Dropping every prediction forces ECMP fallback; the job survives."""
    res = _run(
        [PredictionFault(at=0.0, duration=1e6, drop_prob=1.0)], chaos_seed=3
    )
    assert res.run.completed_at is not None
    assert res.invariants["violations"] == 0
    assert res.collector is not None
    assert res.collector.predictions_dropped > 0
    assert res.collector.predictions_received == 0
    assert res.policy_stats["fallbacks"] > 0
    assert res.policy_stats["rules_installed"] == 0


def test_combined_random_schedule_all_schedulers():
    for scheduler in ("ecmp", "pythia", "hedera"):
        res = run_experiment(
            sort_job(input_gb=1.5, num_reducers=4),
            scheduler=scheduler,
            ratio=10.0,
            seed=1,
            invariants=True,
            chaos=lambda topo: random_schedule(topo, seed=11),
        )
        assert res.run.completed_at is not None, scheduler
        assert res.invariants["violations"] == 0, scheduler
        assert res.faults_injected, scheduler


def test_chaos_run_is_deterministic():
    """Same (workload seed, chaos seed) twice -> bit-identical outcome."""
    def once():
        res = run_experiment(
            sort_job(input_gb=1.5, num_reducers=4),
            scheduler="pythia",
            ratio=10.0,
            seed=1,
            invariants=True,
            chaos=lambda topo: random_schedule(topo, seed=7),
        )
        return res.jct, res.sim.events_processed, res.faults_injected

    assert once() == once()


def test_random_schedule_is_seed_stable():
    topo = two_rack()
    assert random_schedule(topo, seed=5).events == random_schedule(topo, seed=5).events
    assert random_schedule(topo, seed=5).events != random_schedule(topo, seed=6).events


def test_random_schedule_targets_inter_switch_cables():
    topo = two_rack()
    sched = random_schedule(topo, seed=2, flaps=6)
    from repro.faults import LinkFlap as LF
    from repro.simnet.topology import NodeKind

    flaps = [e for e in sched if isinstance(e, LF)]
    assert flaps
    for flap in flaps:
        assert topo.nodes[flap.a].kind is NodeKind.SWITCH
        assert topo.nodes[flap.b].kind is NodeKind.SWITCH
