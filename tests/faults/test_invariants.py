"""Unit tests of the invariant checker and the faults runtime context."""

import pytest

from repro.experiments.common import run_experiment
from repro.faults import (
    AccountingCorruption,
    ChaosSchedule,
    InvariantChecker,
    InvariantViolation,
    get_checker,
    set_checker,
    use_checker,
)
from repro.simnet.engine import Simulator
from repro.simnet.flows import TCP, FiveTuple, Flow
from repro.simnet.network import Network
from repro.simnet.topology import two_rack
from repro.workloads import sort_job


def _flow(src, dst, size, port=33000):
    return Flow(
        src=src, dst=dst, size=size,
        five_tuple=FiveTuple(f"ip{src}", f"ip{dst}", 50060, port, TCP),
    )


def _path(topo, src, dst, trunk="trunk0"):
    src_tor = f"tor{topo.nodes[src].rack}"
    dst_tor = f"tor{topo.nodes[dst].rack}"
    return topo.path_links([src, src_tor, trunk, dst_tor, dst])


# ----------------------------------------------------------------------
# runtime context
# ----------------------------------------------------------------------

def test_use_checker_restores_previous():
    assert get_checker() is None
    outer = InvariantChecker()
    set_checker(outer)
    try:
        inner = InvariantChecker()
        with use_checker(inner) as active:
            assert active is inner
            assert get_checker() is inner
        assert get_checker() is outer
    finally:
        set_checker(None)
    assert get_checker() is None


def test_network_self_registers_with_active_checker():
    checker = InvariantChecker()
    with use_checker(checker):
        sim = Simulator()
        net = Network(sim, two_rack())
    assert checker._networks == [net]


# ----------------------------------------------------------------------
# positive path: clean runs check clean
# ----------------------------------------------------------------------

def test_clean_network_run_checks_clean():
    checker = InvariantChecker()
    with use_checker(checker):
        sim = Simulator()
        topo = two_rack()
        net = Network(sim, topo)
        flows = [_flow("h00", "h10", 1e7, 33000), _flow("h01", "h11", 2e7, 33001)]
        for f in flows:
            sim.schedule(0.5, net.start_flow, f, _path(topo, f.src, f.dst))
        sim.run()
    assert all(f.end_time is not None for f in flows)
    assert checker.checkpoints > 0
    assert checker.violation_log == []


def test_checker_sampling_stride():
    dense = InvariantChecker(every=1)
    sparse = InvariantChecker(every=10)

    def run(checker):
        with use_checker(checker):
            sim = Simulator()
            topo = two_rack()
            net = Network(sim, topo)
            for port in range(8):
                f = _flow("h00", "h10", 5e6, 33000 + port)
                sim.schedule(0.1 * port, net.start_flow, f, _path(topo, f.src, f.dst))
            sim.run()

    run(dense)
    run(sparse)
    assert dense.checkpoints > sparse.checkpoints
    assert dense.violation_log == sparse.violation_log == []


# ----------------------------------------------------------------------
# negative path: a deliberately injected bug must be caught
# ----------------------------------------------------------------------

def test_checker_catches_injected_conservation_bug():
    with pytest.raises(InvariantViolation) as exc_info:
        run_experiment(
            sort_job(input_gb=2.0, num_reducers=4),
            scheduler="pythia",
            ratio=10.0,
            seed=1,
            invariants=True,
            chaos=lambda topo: ChaosSchedule(
                [AccountingCorruption(at=20.0, nbytes=5e6)], seed=0
            ),
        )
    violation = exc_info.value
    assert any("conservation" in p for p in violation.problems)
    assert "5000000" in str(violation)


def test_non_strict_checker_accumulates_instead_of_raising():
    checker = InvariantChecker(strict=False)
    with use_checker(checker):
        sim = Simulator()
        topo = two_rack()
        net = Network(sim, topo)
        f = _flow("h00", "h10", 1e8)
        sim.schedule(0.0, net.start_flow, f, _path(topo, f.src, f.dst))

        def corrupt():
            net._arena.sent[f._slot] -= 1e6
            net._flows_changed()

        sim.schedule(0.05, corrupt)
        sim.run()
    assert checker.violation_log
    assert any("conservation" in p for p in checker.violation_log)
    snap = checker.snapshot()
    assert snap["violations"] == len(checker.violation_log)


def test_checker_catches_manual_rate_corruption():
    """A dead arena slot carrying rate is physically impossible."""
    checker = InvariantChecker(strict=False)
    sim = Simulator()
    topo = two_rack()
    net = Network(sim, topo)
    f = _flow("h00", "h10", 1e6)
    net.start_flow(f, _path(topo, f.src, f.dst))
    sim.run()
    assert f.end_time is not None
    slot_count = net._arena.n
    assert slot_count >= 1
    net._arena.rate[0] = 123.0  # dead slot (flow completed) gains rate
    checker.watch_network(net)
    problems = checker.check()
    assert any("dead slots" in p for p in problems)


def test_violation_message_carries_problems():
    err = InvariantViolation(
        ["capacity: link 3 over", "conservation: flow 7 leaks"],
        ["t=1.000000 network.flow_start {}"],
    )
    text = str(err)
    assert "2 invariant violation(s)" in text
    assert "link 3" in text and "flow 7" in text
    assert "flow_start" in text
