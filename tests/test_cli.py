"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import _parse_ratio, build_parser, main


def test_parse_ratio_forms():
    assert _parse_ratio("none") is None
    assert _parse_ratio("0") is None
    assert _parse_ratio("10") == 10.0
    assert _parse_ratio("1:20") == 20.0


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "sort" in out and "pythia" in out and "fig3" in out


def test_run_command_small(capsys):
    rc = main(
        ["run", "--workload", "sort", "--scale", "0.01", "--scheduler", "ecmp",
         "--ratio", "none", "--seed", "1"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "JCT" in out and "phase coverage" in out


def test_run_with_timeline(capsys):
    rc = main(
        ["run", "--workload", "toy-sort", "--scale", "1.0", "--timeline"]
    )
    assert rc == 0
    assert "legend" in capsys.readouterr().out


def test_compare_command(capsys):
    rc = main(
        ["compare", "--workload", "sort", "--scale", "0.01", "--ratio", "10",
         "--seeds", "1", "--schedulers", "ecmp", "pythia"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "ecmp" in out and "pythia" in out


def test_figure_fig1a(capsys):
    assert main(["figure", "fig1a"]) == 0
    assert "reduce-0" in capsys.readouterr().out


def test_bad_workload_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "--workload", "hive-join"])


def test_run_with_export(tmp_path, capsys):
    out = tmp_path / "run.json"
    rc = main(
        ["run", "--workload", "sort", "--scale", "0.01", "--scheduler", "pythia",
         "--export", str(out)]
    )
    assert rc == 0
    assert out.exists()
    assert "measurements written" in capsys.readouterr().out


def test_sweep_command_cold_then_cached(tmp_path, capsys):
    argv = ["sweep", "--workload", "sort", "--scale", "0.01",
            "--ratios", "none", "10", "--seeds", "1",
            "--cache-dir", str(tmp_path)]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "ecmp (s)" in out and "pythia (s)" in out
    assert "8 executed" not in out  # 2 ratios x 2 schedulers x 1 seed = 4
    assert "4 executed" in out
    # the rerun is served from cache and passes the CI hit-rate guard
    assert main(argv + ["--min-cache-hit-rate", "0.9"]) == 0
    out = capsys.readouterr().out
    assert "4 from cache" in out and "0 executed" in out
    assert "hit rate 100%" in out


def test_sweep_hit_rate_guard_fails_cold(tmp_path, capsys):
    rc = main(["sweep", "--workload", "sort", "--scale", "0.01",
               "--ratios", "10", "--seeds", "1",
               "--cache-dir", str(tmp_path), "--min-cache-hit-rate", "0.9"])
    assert rc == 1
    assert "below required" in capsys.readouterr().err


def test_mix_command(capsys):
    rc = main(["mix", "--jobs", "2", "--ratio", "none", "--seed", "3",
               "--schedulers", "ecmp"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "mean JCT" in out and "makespan" in out
