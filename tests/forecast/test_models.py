"""Forecaster behaviour on constant / ramp / step / frozen-gap series.

The EWMA and Holt–Winters expectations are exact closed forms of the
published recurrences, so any drift in the update equations fails
loudly rather than shifting results quietly.
"""

import numpy as np
import pytest

from repro.forecast.models import (
    ARForecaster,
    EwmaExtrapolationForecaster,
    FORECASTERS,
    HoltWintersForecaster,
    LinkLoadForecaster,
    make_forecaster,
    register_forecaster,
)


def feed(model, series):
    for t, x in enumerate(series):
        model.observe(float(t), np.asarray(x, dtype=float))


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def test_registry_has_builtin_models():
    assert {"ewma", "holt_winters", "ar"} <= set(FORECASTERS)
    for name in ("ewma", "holt_winters", "ar"):
        model = make_forecaster(name, nlinks=3)
        assert isinstance(model, LinkLoadForecaster)
        assert model.name == name


def test_make_forecaster_rejects_unknown():
    with pytest.raises(ValueError, match="unknown forecaster"):
        make_forecaster("oracle", nlinks=2)


def test_register_forecaster_plugs_in():
    class Flat:
        name = "flat"

        def __init__(self, nlinks, period=1.0):
            self.nlinks = nlinks

        def observe(self, now, values):
            pass

        def predict(self, horizon):
            return np.zeros(self.nlinks)

        def ready(self):
            return True

        def reset(self):
            pass

    register_forecaster("flat", Flat)
    try:
        assert isinstance(make_forecaster("flat", nlinks=2), Flat)
    finally:
        del FORECASTERS["flat"]


# ----------------------------------------------------------------------
# EWMA extrapolation — exact closed forms
# ----------------------------------------------------------------------
def test_ewma_constant_series_is_exact():
    model = EwmaExtrapolationForecaster(nlinks=2, alpha=0.5)
    feed(model, [[40e6, 10e6]] * 5)
    assert model.ready()
    np.testing.assert_allclose(model.predict(5.0), [40e6, 10e6])


def test_ewma_ramp_closed_form():
    # x_t = 10 t; level_t = a x_t + (1-a) level_{t-1}, level_0 = x_0
    alpha = 0.5
    model = EwmaExtrapolationForecaster(nlinks=1, alpha=alpha)
    level = 0.0
    for t in range(6):
        x = 10.0 * t
        level = x if t == 0 else alpha * x + (1 - alpha) * level
        model.observe(float(t), np.array([x]))
    # flat extrapolation: the horizon does not move the prediction,
    # so an EWMA baseline always lags a ramp by a fixed gap.
    np.testing.assert_allclose(model.predict(1.0), [level])
    np.testing.assert_allclose(model.predict(100.0), [level])
    assert model.predict(5.0)[0] < 50.0  # strictly behind the ramp


def test_ewma_step_converges_geometrically():
    alpha = 0.5
    model = EwmaExtrapolationForecaster(nlinks=1, alpha=alpha)
    feed(model, [[0.0]] * 3 + [[100.0]] * 4)
    # after k post-step samples: 100 (1 - (1-a)^k), here k = 4
    expected = 100.0 * (1 - (1 - alpha) ** 4)
    np.testing.assert_allclose(model.predict(2.0), [expected])


def test_ewma_reset_keeps_level():
    model = EwmaExtrapolationForecaster(nlinks=1)
    feed(model, [[50.0], [50.0]])
    model.reset()
    assert model.ready()  # a flat level has no trend to discount
    np.testing.assert_allclose(model.predict(1.0), [50.0])


# ----------------------------------------------------------------------
# Holt–Winters — exact closed forms
# ----------------------------------------------------------------------
def test_holt_winters_needs_two_observations():
    model = HoltWintersForecaster(nlinks=1)
    assert not model.ready()
    model.observe(0.0, np.array([10.0]))
    assert not model.ready()
    model.observe(1.0, np.array([20.0]))
    assert model.ready()


def test_holt_winters_ramp_is_exact_undamped():
    # With phi=1 on a perfect ramp the recurrence is exact: level = x_t,
    # trend = slope, predict(h) = x_t + slope * h / period.
    model = HoltWintersForecaster(nlinks=1, period=1.0, alpha=0.5, beta=0.3, phi=1.0)
    feed(model, [[10.0 * t] for t in range(6)])
    np.testing.assert_allclose(model.predict(3.0), [50.0 + 10.0 * 3], rtol=1e-12)


def test_holt_winters_constant_has_zero_trend():
    model = HoltWintersForecaster(nlinks=2)
    feed(model, [[70.0, 5.0]] * 4)
    np.testing.assert_allclose(model._trend, [0.0, 0.0])
    np.testing.assert_allclose(model.predict(10.0), [70.0, 5.0])


def test_holt_winters_damped_recurrence_closed_form():
    alpha, beta, phi = 0.5, 0.3, 0.8
    model = HoltWintersForecaster(nlinks=1, alpha=alpha, beta=beta, phi=phi)
    xs = [0.0, 10.0, 30.0]
    feed(model, [[x] for x in xs])
    # init: level=x0 then level=x1, trend=x1-x0; third step by hand
    level, trend = xs[1], xs[1] - xs[0]
    damped = phi * trend
    level2 = alpha * xs[2] + (1 - alpha) * (level + damped)
    trend2 = beta * (level2 - level) + (1 - beta) * damped
    np.testing.assert_allclose(model._level, [level2])
    np.testing.assert_allclose(model._trend, [trend2])
    # damped h-step weight: phi (1 - phi^steps) / (1 - phi)
    steps = 4.0
    weight = phi * (1 - phi**steps) / (1 - phi)
    np.testing.assert_allclose(model.predict(4.0), [level2 + weight * trend2])


def test_holt_winters_step_overshoots_less_when_damped():
    series = [[0.0]] * 4 + [[100.0]] * 2
    undamped = HoltWintersForecaster(nlinks=1, phi=1.0)
    damped = HoltWintersForecaster(nlinks=1, phi=0.8)
    feed(undamped, series)
    feed(damped, series)
    assert damped.predict(5.0)[0] < undamped.predict(5.0)[0]


def test_holt_winters_frozen_gap_reset_drops_trend():
    model = HoltWintersForecaster(nlinks=1, phi=1.0)
    feed(model, [[10.0 * t] for t in range(5)])
    assert model._trend[0] == pytest.approx(10.0)
    model.reset()
    assert not model.ready()  # needs a fresh second sample to re-trend
    np.testing.assert_allclose(model._trend, [0.0])
    # level survives: still the best point estimate across the gap
    np.testing.assert_allclose(model._level, [40.0])
    model.observe(10.0, np.array([40.0]))
    assert model.ready()
    # post-gap trend is rebuilt from post-gap data only
    np.testing.assert_allclose(model.predict(5.0), [40.0])


# ----------------------------------------------------------------------
# AR(p)
# ----------------------------------------------------------------------
def test_ar_needs_enough_history():
    model = ARForecaster(nlinks=1, order=3)
    feed(model, [[1.0]] * 7)
    assert not model.ready()
    model.observe(7.0, np.array([1.0]))
    assert model.ready()  # 2 * order + 2 = 8


def test_ar_constant_series_is_reproduced():
    model = ARForecaster(nlinks=2, order=2)
    feed(model, [[80e6, 3e6]] * 12)
    np.testing.assert_allclose(model.predict(1.0), [80e6, 3e6], rtol=1e-4)
    np.testing.assert_allclose(model.predict(6.0), [80e6, 3e6], rtol=1e-3)


def test_ar_recovers_ar2_process():
    # x_t = 5 + 0.6 x_{t-1} + 0.3 x_{t-2}, deterministic
    xs = [10.0, 12.0]
    for _ in range(28):
        xs.append(5.0 + 0.6 * xs[-1] + 0.3 * xs[-2])
    model = ARForecaster(nlinks=1, order=2, window=32)
    feed(model, [[x] for x in xs])
    truth = 5.0 + 0.6 * xs[-1] + 0.3 * xs[-2]
    assert model.predict(1.0)[0] == pytest.approx(truth, rel=1e-3)


def test_ar_ramp_tracks_slope():
    model = ARForecaster(nlinks=1, order=2, window=16)
    feed(model, [[10.0 * t] for t in range(12)])
    # AR with intercept fits a linear series exactly: x_t = x_{t-1} + 10
    assert model.predict(1.0)[0] == pytest.approx(120.0, rel=1e-2)
    assert model.predict(4.0)[0] == pytest.approx(150.0, rel=5e-2)


def test_ar_reset_requires_rewarm():
    model = ARForecaster(nlinks=1, order=2)
    feed(model, [[5.0]] * 10)
    assert model.ready()
    model.reset()
    assert not model.ready()
    feed(model, [[5.0]] * (2 * 2 + 2))
    assert model.ready()


def test_ar_multi_link_fits_are_independent():
    # one constant link, one ramp link — the batched solve must not mix them
    model = ARForecaster(nlinks=2, order=2, window=16)
    feed(model, [[50.0, 10.0 * t] for t in range(12)])
    pred = model.predict(1.0)
    assert pred[0] == pytest.approx(50.0, rel=1e-3)
    assert pred[1] == pytest.approx(120.0, rel=1e-2)


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "ctor",
    [
        lambda: EwmaExtrapolationForecaster(nlinks=0),
        lambda: EwmaExtrapolationForecaster(nlinks=1, alpha=0.0),
        lambda: HoltWintersForecaster(nlinks=1, beta=1.5),
        lambda: HoltWintersForecaster(nlinks=1, phi=0.0),
        lambda: ARForecaster(nlinks=1, order=0),
        lambda: ARForecaster(nlinks=1, order=3, window=4),
    ],
)
def test_constructor_validation(ctor):
    with pytest.raises(ValueError):
        ctor()
