"""ProactiveRerouter: moves elephants off forecast-hot links."""

import numpy as np
import pytest

from repro.forecast.models import make_forecaster
from repro.forecast.reroute import ProactiveRerouter
from repro.forecast.service import ForecastService
from repro.sdn.stats_service import LinkStatsService
from repro.sdn.topology_service import TopologyService
from repro.simnet.engine import Simulator
from repro.simnet.flows import TCP, UDP, FiveTuple, Flow
from repro.simnet.network import Network
from repro.simnet.topology import two_rack


def build(threshold=0.85, margin=0.05, cooldown=2.0, min_bytes=8e6, mode="ewma", **fc_kwargs):
    sim = Simulator()
    topo = two_rack()
    net = Network(sim, topo)
    stats = LinkStatsService(sim, net, period=0.5, alpha=1.0)
    forecaster = make_forecaster(mode, nlinks=len(topo.links), period=0.5)
    forecast = ForecastService(stats, forecaster, horizon=1.0, **fc_kwargs)
    rerouter = ProactiveRerouter(
        net,
        stats,
        forecast,
        TopologyService(topo, k=4),
        threshold=threshold,
        margin=margin,
        pause=0.05,
        min_remaining_bytes=min_bytes,
        cooldown=cooldown,
    )
    return sim, topo, net, stats, forecast, rerouter


def start_background(net, topo, rate, path_index=0, sport=50000):
    trunk = f"trunk{path_index}"
    bg = Flow(
        src="bg0",
        dst="bg1",
        size=None,
        five_tuple=FiveTuple("10.0.250", "10.1.250", sport, 5001, UDP),
        rigid_rate=rate,
    )
    net.start_flow(bg, topo.path_links(["bg0", "tor0", trunk, "tor1", "bg1"]))
    return bg


def start_elephant(net, topo, size=800e6, path_index=0):
    trunk = f"trunk{path_index}"
    flow = Flow(
        src="h00",
        dst="h10",
        size=size,
        five_tuple=FiveTuple("10.0.0", "10.1.0", 50060, 42000, TCP),
    )
    net.start_flow(flow, topo.path_links(["h00", "tor0", trunk, "tor1", "h10"]))
    return flow


def trunk_lid(topo, path_index):
    trunk = f"trunk{path_index}"
    return [l for l in topo.links if l.src == "tor0" and l.dst == trunk][0].lid


def test_moves_elephant_off_forecast_hot_link():
    sim, topo, net, stats, forecast, rerouter = build()
    start_background(net, topo, rate=110e6, path_index=0)  # 88% of trunk0
    elephant = start_elephant(net, topo, path_index=0)
    stats.start()
    sim.run(until=3.0)
    assert rerouter.reroutes >= 1
    # the elephant now rides the cool trunk1
    assert trunk_lid(topo, 1) in elephant.path
    assert trunk_lid(topo, 0) not in elephant.path


def test_no_reroute_below_threshold():
    # An elastic elephant expands to fill its trunk, so with the default
    # 0.85 threshold its path is always "hot"; raising the threshold
    # above the achievable utilisation must silence the rerouter.
    sim, topo, net, stats, forecast, rerouter = build(threshold=1.2)
    start_background(net, topo, rate=40e6, path_index=0)
    elephant = start_elephant(net, topo, path_index=0)
    original = list(elephant.path)
    stats.start()
    sim.run(until=3.0)
    assert rerouter.reroutes == 0
    assert list(elephant.path) == original


def test_degraded_forecast_skips_rerouting():
    sim, topo, net, stats, forecast, rerouter = build(stale_after=0.6)
    start_background(net, topo, rate=110e6, path_index=0)
    elephant = start_elephant(net, topo, path_index=0)
    stats.start()
    sim.run(until=1.2)  # warm-up may legitimately move the elephant once
    moves_before = rerouter.reroutes
    path_before = list(elephant.path)
    stats.freeze()
    # frozen polls skip entirely: hooks never fire, so the rerouter
    # cannot act on a stale forecast even indirectly
    sim.run(until=4.0)
    assert rerouter.reroutes == moves_before
    assert list(elephant.path) == path_before
    # thaw: the first folded sample carries a gap, so the forecaster's
    # cross-gap trend is discarded before the rerouter runs again
    stats.unfreeze()
    sim.run(until=4.6)
    assert forecast.gap_resets == 1


def test_cold_start_skips_until_forecaster_ready():
    # Holt–Winters needs two folded samples; the rerouter must count a
    # stale skip on the first poll rather than act on a cold forecaster.
    sim, topo, net, stats, forecast, rerouter = build(mode="holt_winters")
    start_background(net, topo, rate=110e6, path_index=0)
    start_elephant(net, topo, path_index=0)
    stats.start()
    sim.run(until=0.6)  # exactly one poll
    assert rerouter.skipped_stale == 1
    assert rerouter.reroutes == 0
    sim.run(until=3.0)  # warmed up: proactive moves resume
    assert rerouter.reroutes >= 1


def test_small_flows_are_left_alone():
    sim, topo, net, stats, forecast, rerouter = build(min_bytes=8e6)
    start_background(net, topo, rate=110e6, path_index=0)
    mouse = start_elephant(net, topo, size=2e6, path_index=0)
    stats.start()
    sim.run(until=1.6)
    # the mouse either finished or was never a reroute candidate
    assert rerouter.reroutes == 0


def test_background_rigid_flows_never_move():
    sim, topo, net, stats, forecast, rerouter = build()
    bg = start_background(net, topo, rate=115e6, path_index=0)
    original = list(bg.path)
    stats.start()
    sim.run(until=3.0)
    assert list(bg.path) == original


def test_cooldown_limits_reroute_rate():
    # both trunks hot: every pass wants to move the elephant, but the
    # cooldown allows at most one move per 10 s window
    sim, topo, net, stats, forecast, rerouter = build(
        threshold=0.5, margin=0.0, cooldown=10.0
    )
    start_background(net, topo, rate=80e6, path_index=0)
    start_background(net, topo, rate=78e6, path_index=1, sport=50001)
    start_elephant(net, topo, size=5e9, path_index=0)
    stats.start()
    sim.run(until=5.0)
    assert rerouter.reroutes <= 1


def test_margin_hysteresis_blocks_marginal_moves():
    # trunk1 is barely cooler than trunk0: without margin the elephant
    # would bounce, with a wide margin it stays put
    sim, topo, net, stats, forecast, rerouter = build(threshold=0.6, margin=0.5)
    start_background(net, topo, rate=90e6, path_index=0)
    start_background(net, topo, rate=85e6, path_index=1, sport=50001)
    elephant = start_elephant(net, topo, size=5e9, path_index=0)
    original = list(elephant.path)
    stats.start()
    sim.run(until=3.0)
    assert rerouter.reroutes == 0
    assert list(elephant.path) == original


def test_reroute_counters_registered():
    from repro import obs

    registry = obs.MetricsRegistry()
    with obs.use(registry=registry):
        sim, topo, net, stats, forecast, rerouter = build()
        start_background(net, topo, rate=110e6, path_index=0)
        start_elephant(net, topo, path_index=0)
        stats.start()
        sim.run(until=3.0)
    snap = registry.snapshot()
    assert snap["forecast.reroutes"]["value"] == rerouter.reroutes >= 1
    assert snap["forecast.hot_links"]["high_water"] >= 1
