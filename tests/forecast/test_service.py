"""ForecastService: stats-stream ingestion, staleness fallback, gap reset."""

import numpy as np
import pytest

from repro.forecast.models import HoltWintersForecaster, make_forecaster
from repro.forecast.service import ForecastService
from repro.sdn.stats_service import LinkStatsService
from repro.simnet.engine import Simulator
from repro.simnet.flows import UDP, FiveTuple, Flow
from repro.simnet.network import Network
from repro.simnet.topology import two_rack


def build(mode="holt_winters", horizon=2.0, stale_after=None, period=1.0):
    sim = Simulator()
    topo = two_rack()
    net = Network(sim, topo)
    stats = LinkStatsService(sim, net, period=period, alpha=1.0)
    forecaster = make_forecaster(mode, nlinks=len(topo.links), period=period)
    service = ForecastService(
        stats, forecaster, horizon=horizon, stale_after=stale_after
    )
    return sim, topo, net, stats, service


def start_cbr(net, topo, rate=50e6):
    bg = Flow(
        src="bg0",
        dst="bg1",
        size=None,
        five_tuple=FiveTuple("10.0.250", "10.1.250", 50000, 5001, UDP),
        rigid_rate=rate,
    )
    net.start_flow(bg, topo.path_links(["bg0", "tor0", "trunk0", "tor1", "bg1"]))
    return bg


def trunk_lid(topo):
    return [l for l in topo.links if l.src == "tor0" and l.dst == "trunk0"][0].lid


def test_horizon_must_be_positive():
    sim = Simulator()
    topo = two_rack()
    net = Network(sim, topo)
    stats = LinkStatsService(sim, net)
    with pytest.raises(ValueError):
        ForecastService(stats, HoltWintersForecaster(nlinks=len(topo.links)), horizon=0.0)


def test_stale_after_defaults_to_three_periods():
    _sim, _topo, _net, stats, service = build(period=0.5)
    assert service.stale_after == pytest.approx(1.5)


def test_cold_start_degrades_to_measured():
    _sim, _topo, _net, stats, service = build()
    assert service.degraded()  # no samples yet
    np.testing.assert_allclose(service.predict_background(), stats.background_load_array())
    assert service.stale_fallbacks == 1


def test_constant_load_prediction_matches_measured():
    sim, topo, net, stats, service = build()
    start_cbr(net, topo, rate=50e6)
    stats.start()
    sim.run(until=4.5)
    assert not service.degraded()
    lid = trunk_lid(topo)
    pred = service.predict_background()
    assert pred[lid] == pytest.approx(50e6, rel=1e-3)
    assert service.predictions >= 1
    assert service.stale_fallbacks == 0


def test_predictions_are_clipped_at_zero():
    sim, topo, net, stats, service = build()
    bg = start_cbr(net, topo, rate=80e6)
    stats.start()
    sim.run(until=3.5)
    net.stop_flow(bg)  # falling load -> negative Holt trend
    sim.run(until=7.5)
    assert not service.degraded()
    assert (service.predict_background() >= 0.0).all()


def test_staleness_degrades_and_recovers():
    sim, topo, net, stats, service = build(stale_after=2.0)
    start_cbr(net, topo)
    stats.start()
    sim.run(until=3.5)
    assert not service.degraded()
    stats.freeze()
    sim.run(until=8.5)  # staleness grows past stale_after while frozen
    assert service.degraded()
    before = stats.background_load_array()
    np.testing.assert_allclose(service.predict_background(), before)
    assert service.stale_fallbacks >= 1
    stats.unfreeze()
    sim.run(until=10.5)  # thawed samples fold again
    assert not service.degraded()


def test_frozen_gap_resets_forecaster_trend():
    sim, topo, net, stats, service = build()
    start_cbr(net, topo)
    stats.start()
    sim.run(until=3.5)
    forecaster = service.forecaster
    forecaster._trend[:] = 1e6  # pretend a trend was fitted pre-gap
    stats.freeze()
    sim.run(until=6.5)
    stats.unfreeze()
    sim.run(until=7.5)  # first thawed sample carries gap > 0
    assert service.gap_resets == 1
    np.testing.assert_allclose(forecaster._trend, 0.0)


def test_mae_scores_matured_predictions():
    sim, topo, net, stats, service = build(horizon=2.0)
    start_cbr(net, topo, rate=50e6)
    stats.start()
    sim.run(until=10.5)
    # constant load: matured predictions should be near-perfect
    assert service.evaluations >= 5
    assert service.mae() < 1e6
    snap = service.snapshot()
    assert snap["forecast_mode"] == "holt_winters"
    assert snap["forecast_evaluations"] == service.evaluations


def test_gap_clears_pending_evaluations():
    sim, topo, net, stats, service = build(horizon=5.0)
    start_cbr(net, topo)
    stats.start()
    sim.run(until=3.5)
    assert len(service._pending) > 0
    stats.freeze()
    sim.run(until=6.5)
    stats.unfreeze()
    sim.run(until=7.5)
    # predictions filed before the gap must not be scored against
    # post-gap measurements
    assert all(t > 7.5 for t, _ in service._pending)


def test_metrics_registered(tmp_path):
    from repro import obs

    registry = obs.MetricsRegistry()
    with obs.use(registry=registry):
        sim, topo, net, stats, service = build()
        start_cbr(net, topo)
        stats.start()
        sim.run(until=4.5)
    snap = registry.snapshot()
    assert snap["forecast.predictions"]["value"] >= 0
    assert "forecast.mae_bytes" in snap
    assert snap["forecast.horizon_seconds"]["value"] == pytest.approx(2.0)
