"""Unit tests for the workload catalogue."""

import numpy as np
import pytest

from repro.hadoop.job import MiB
from repro.workloads import (
    HIBENCH,
    make_workload,
    nutch_indexing_job,
    sort_job,
    terasort_job,
    toy_sort_job,
    wordcount_job,
)

GiB = 1024 * MiB


def test_sort_job_shape():
    spec = sort_job(input_gb=240)
    assert spec.input_bytes == pytest.approx(240 * GiB)
    assert spec.map_output_ratio == 1.0            # sort shuffles everything
    assert spec.num_maps == 1920                   # 240 GiB / 128 MiB
    assert spec.reducer_weights.sum() == pytest.approx(1.0)


def test_nutch_job_matches_paper_sizing():
    spec = nutch_indexing_job(pages=5e6)
    assert spec.input_bytes == pytest.approx(8 * GiB)
    # indexing is compute-heavy: much slower per byte than sort
    assert spec.map_rate < sort_job().map_rate / 10
    assert spec.map_output_ratio < 1.0


def test_toy_sort_five_to_one_skew():
    spec = toy_sort_job()
    assert spec.num_maps == 3
    assert spec.num_reducers == 2
    assert spec.reducer_weights[0] / spec.reducer_weights[1] == pytest.approx(5.0)
    assert spec.per_map_sigma == 0.0               # exact skew, no jitter


def test_terasort_uniform():
    spec = terasort_job(input_gb=10)
    assert np.allclose(spec.reducer_weights, spec.reducer_weights[0])


def test_wordcount_tiny_shuffle():
    spec = wordcount_job()
    assert spec.map_output_ratio <= 0.1            # combiners shrink output


def test_make_workload_scaling():
    small = make_workload("sort", scale=0.1)
    assert small.input_bytes == pytest.approx(24 * GiB)
    assert make_workload("nutch", scale=0.5).input_bytes == pytest.approx(4 * GiB)


def test_make_workload_errors():
    with pytest.raises(KeyError):
        make_workload("hive-join")
    with pytest.raises(ValueError):
        make_workload("sort", scale=0)


def test_catalogue_complete():
    assert set(HIBENCH) == {
        "sort", "intsort", "nutch", "terasort", "wordcount", "pagerank", "toy-sort",
    }
    for name in HIBENCH:
        spec = make_workload(name, scale=0.1 if name != "toy-sort" else 1.0)
        assert spec.input_bytes > 0
        assert spec.num_maps >= 1
