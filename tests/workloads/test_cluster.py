"""Cluster workload layer: generators, validation, determinism."""

import numpy as np
import pytest

from repro.workloads.cluster import (
    ClusterJob,
    ClusterWorkload,
    Tenant,
    poisson_workload,
    single_job_workload,
    trace_workload,
)
from repro.workloads.mix import JobArrival
from repro.workloads.sort import sort_job


def test_single_job_workload_is_a_one_job_fleet():
    wl = single_job_workload(sort_job(input_gb=1.0))
    assert wl.n_jobs == 1
    assert wl.jobs[0].key == 0
    assert wl.jobs[0].at == 0.0
    assert wl.horizon == 0.0


def test_duplicate_keys_rejected():
    spec = sort_job(input_gb=1.0)
    with pytest.raises(ValueError, match="duplicate job keys"):
        ClusterWorkload(
            name="bad",
            jobs=[
                ClusterJob(key=0, tenant="t", at=0.0, spec=spec),
                ClusterJob(key=0, tenant="t", at=1.0, spec=spec),
            ],
        )


def test_unknown_tenant_rejected():
    spec = sort_job(input_gb=1.0)
    with pytest.raises(ValueError, match="unknown tenants"):
        ClusterWorkload(
            name="bad",
            jobs=[ClusterJob(key=0, tenant="ghost", at=0.0, spec=spec)],
            tenants=[Tenant(name="real")],
        )


def test_tenants_auto_created_from_jobs():
    spec = sort_job(input_gb=1.0)
    wl = ClusterWorkload(
        name="auto",
        jobs=[
            ClusterJob(key=0, tenant="b", at=0.0, spec=spec),
            ClusterJob(key=1, tenant="a", at=1.0, spec=spec),
        ],
    )
    assert [t.name for t in wl.tenants] == ["a", "b"]


def test_tenant_quota_validation():
    with pytest.raises(ValueError, match="map_quota"):
        Tenant(name="t", map_quota=1.5)
    with pytest.raises(ValueError, match="weight"):
        Tenant(name="t", weight=0.0)


def test_sorted_jobs_orders_by_arrival_then_key():
    spec = sort_job(input_gb=1.0)
    wl = ClusterWorkload(
        name="order",
        jobs=[
            ClusterJob(key=2, tenant="t", at=5.0, spec=spec),
            ClusterJob(key=1, tenant="t", at=5.0, spec=spec),
            ClusterJob(key=0, tenant="t", at=9.0, spec=spec),
        ],
    )
    assert [j.key for j in wl.sorted_jobs()] == [1, 2, 0]


def test_trace_workload_round_robins_tenants():
    arrivals = [
        JobArrival(at=float(i), spec=sort_job(input_gb=1.0)) for i in range(4)
    ]
    wl = trace_workload(arrivals, tenants=("prod", "adhoc"))
    assert [j.tenant for j in wl.jobs] == ["prod", "adhoc", "prod", "adhoc"]


def test_poisson_workload_is_deterministic():
    a = poisson_workload(n_jobs=5, arrival_rate=0.1, seed=3)
    b = poisson_workload(n_jobs=5, arrival_rate=0.1, seed=3)
    assert [(j.key, j.at, j.spec.name) for j in a.jobs] == [
        (j.key, j.at, j.spec.name) for j in b.jobs
    ]
    assert np.all(a.jobs[0].spec.reducer_weights == b.jobs[0].spec.reducer_weights)


def test_poisson_workload_first_job_opens_window():
    wl = poisson_workload(n_jobs=4, arrival_rate=0.5, seed=0)
    assert wl.sorted_jobs()[0].at == 0.0
    assert all(j.at >= 0.0 for j in wl.jobs)


def test_poisson_rate_packs_jobs_tighter():
    slow = poisson_workload(n_jobs=6, arrival_rate=0.01, seed=1)
    fast = poisson_workload(n_jobs=6, arrival_rate=1.0, seed=1)
    assert fast.horizon < slow.horizon
