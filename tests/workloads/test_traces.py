"""Tests for trace save/replay."""

import json

import numpy as np
import pytest

from repro.experiments.mix import run_mix
from repro.workloads.mix import synthesize_mix
from repro.workloads.traces import load_trace, save_trace


def test_round_trip_preserves_stream(tmp_path):
    arrivals = synthesize_mix(n_jobs=5, seed=4)
    path = save_trace(arrivals, tmp_path / "trace.json")
    loaded = load_trace(path)
    assert len(loaded) == 5
    for a, b in zip(arrivals, loaded):
        assert a.at == b.at
        assert a.spec.name == b.spec.name
        assert a.spec.input_bytes == pytest.approx(b.spec.input_bytes)
        assert np.allclose(a.spec.reducer_weights, b.spec.reducer_weights)


def test_replay_reproduces_run(tmp_path):
    arrivals = synthesize_mix(n_jobs=3, seed=5)
    path = save_trace(arrivals, tmp_path / "trace.json")
    direct = run_mix(arrivals, scheduler="ecmp", ratio=None, seed=5)
    replayed = run_mix(load_trace(path), scheduler="ecmp", ratio=None, seed=5)
    assert direct.makespan == pytest.approx(replayed.makespan)
    assert sorted(direct.jcts.values()) == pytest.approx(sorted(replayed.jcts.values()))


def test_version_guard(tmp_path):
    path = save_trace(synthesize_mix(n_jobs=1, seed=0), tmp_path / "t.json")
    data = json.loads(path.read_text())
    data["version"] = 42
    path.write_text(json.dumps(data))
    with pytest.raises(ValueError):
        load_trace(path)
