"""Property test: the full stack works on arbitrary leaf-spine fabrics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.common import run_experiment
from repro.hadoop.job import JobSpec, MiB
from repro.simnet.topology import leaf_spine


@settings(max_examples=12, deadline=None)
@given(
    leaves=st.integers(2, 4),
    spines=st.integers(1, 3),
    hosts_per_leaf=st.integers(1, 3),
    reducers=st.integers(1, 6),
    seed=st.integers(0, 2**31),
)
def test_property_full_stack_on_random_leaf_spine(
    leaves, spines, hosts_per_leaf, reducers, seed
):
    spec = JobSpec(
        name="fuzz",
        input_bytes=6 * 64 * MiB,
        block_size=64 * MiB,
        num_reducers=reducers,
    )
    for scheduler in ("ecmp", "pythia"):
        res = run_experiment(
            spec,
            scheduler=scheduler,
            ratio=None,
            seed=seed,
            topology_factory=lambda: leaf_spine(
                leaves=leaves, spines=spines, hosts_per_leaf=hosts_per_leaf
            ),
        )
        run = res.run
        assert run.completed_at is not None
        assert len(run.fetches) == spec.num_maps * reducers
        assert run.reducer_bytes().sum() == pytest.approx(
            spec.intermediate_bytes, rel=1e-6
        )
        assert res.sim.pending == 0, "event queue must drain"
        if scheduler == "pythia":
            assert res.collector is not None
            assert res.collector.pending_intents == 0
