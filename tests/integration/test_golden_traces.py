"""Differential golden-trace regression suite.

Each cell of a small workload x scheduler x seed matrix is re-run and
its digest (JCT, total simulator events) compared against the committed
``tests/golden/digests.json``.  JCT must match to relative 1e-9 (the
engine is deterministic; the tolerance only absorbs cross-platform
libm noise) and the event count must match exactly.

After an intentional engine change, refresh with::

    PYTHONPATH=src python tests/golden/refresh.py

and commit the diff alongside the change that explains it.
"""

import pytest

from tests.golden.refresh import (
    FLEET_SCHEDULERS,
    FLEET_SEEDS,
    SCHEDULERS,
    SEEDS,
    WORKLOADS,
    cell_key,
    fleet_cell_key,
    load_digests,
    load_fleet_digests,
    run_cell,
    run_fleet_cell,
)

_MATRIX = [
    (w, s, seed) for w in WORKLOADS for s in SCHEDULERS for seed in SEEDS
]

_FLEET_MATRIX = [(s, seed) for s in FLEET_SCHEDULERS for seed in FLEET_SEEDS]


@pytest.fixture(scope="module")
def golden():
    return load_digests()


def test_digests_cover_the_whole_matrix():
    golden = load_digests()
    assert sorted(golden) == sorted(cell_key(*cell) for cell in _MATRIX)


@pytest.mark.parametrize(
    "workload,scheduler,seed", _MATRIX, ids=[cell_key(*c) for c in _MATRIX]
)
def test_golden_trace(golden, workload, scheduler, seed):
    key = cell_key(workload, scheduler, seed)
    expected = golden[key]
    actual = run_cell(workload, scheduler, seed)
    assert actual["events_processed"] == expected["events_processed"], (
        f"{key}: event count drifted — if intentional, refresh with "
        f"`PYTHONPATH=src python tests/golden/refresh.py`"
    )
    assert actual["jct_seconds"] == pytest.approx(
        expected["jct_seconds"], rel=1e-9
    ), f"{key}: JCT drifted"


@pytest.fixture(scope="module")
def fleet_golden():
    return load_fleet_digests()


def test_fleet_digests_cover_the_whole_matrix():
    golden = load_fleet_digests()
    assert sorted(golden) == sorted(fleet_cell_key(*cell) for cell in _FLEET_MATRIX)


@pytest.mark.parametrize(
    "scheduler,seed", _FLEET_MATRIX, ids=[fleet_cell_key(*c) for c in _FLEET_MATRIX]
)
def test_fleet_golden_trace(fleet_golden, scheduler, seed):
    """The 2-tenant sort+nutch mix replays bit-identically per job."""
    key = fleet_cell_key(scheduler, seed)
    expected = fleet_golden[key]
    actual = run_fleet_cell(scheduler, seed)
    assert actual["events_processed"] == expected["events_processed"], (
        f"{key}: event count drifted — if intentional, refresh with "
        f"`PYTHONPATH=src python tests/golden/refresh.py`"
    )
    assert sorted(actual["jct_seconds"]) == sorted(expected["jct_seconds"])
    for job_id, jct in expected["jct_seconds"].items():
        assert actual["jct_seconds"][job_id] == pytest.approx(jct, rel=1e-9), (
            f"{key}: JCT of {job_id} drifted"
        )
