"""Failure-injection integration tests (§IV fault-tolerance claims)."""

import pytest

from repro.experiments.common import run_experiment
from repro.faults import FAULT_PRIORITY
from repro.workloads import sort_job


def trunk_fault(at, a="tor0", b="trunk0"):
    # Explicit priority: a fault sharing its timestamp with application
    # events fires first by construction, not by schedule-call order.
    def fault(sim, topo):
        sim.schedule(at, topo.fail_cable, a, b, priority=FAULT_PRIORITY)

    return fault


def flap(at, up_at, a="tor0", b="trunk0"):
    def fault(sim, topo):
        sim.schedule(at, topo.fail_cable, a, b, priority=FAULT_PRIORITY)
        sim.schedule(up_at, topo.restore_cable, a, b, priority=FAULT_PRIORITY)

    return fault


@pytest.mark.parametrize("scheduler", ["ecmp", "pythia", "hedera"])
def test_job_survives_mid_shuffle_trunk_failure(scheduler):
    res = run_experiment(
        sort_job(input_gb=6.0, num_reducers=10),
        scheduler=scheduler,
        ratio=None,
        seed=1,
        fault=trunk_fault(at=15.0),
    )
    assert res.run.completed_at is not None
    assert res.policy_stats["stranded"] == 0


def test_failure_slows_job_but_not_fatally():
    clean = run_experiment(sort_job(input_gb=6.0), "pythia", None, seed=1)
    broken = run_experiment(
        sort_job(input_gb=6.0), "pythia", None, seed=1, fault=trunk_fault(at=15.0)
    )
    assert broken.jct >= clean.jct * 0.95
    assert broken.jct < clean.jct * 3.0


def test_pythia_reroutes_and_reinstalls_on_failure():
    res = run_experiment(
        sort_job(input_gb=6.0, num_reducers=10),
        scheduler="pythia",
        ratio=None,
        seed=1,
        fault=trunk_fault(at=15.0),
    )
    assert res.controller is not None
    # routing graph was recomputed on the topology event
    assert res.controller.topology_service.recomputations >= 1
    # in-flight flows on the dead trunk were repaired
    assert res.policy_stats["repairs"] >= 0  # may be zero if none were live
    assert res.run.completed_at is not None


def test_link_flap_recovery():
    res = run_experiment(
        sort_job(input_gb=6.0, num_reducers=10),
        scheduler="pythia",
        ratio=None,
        seed=1,
        fault=flap(at=10.0, up_at=20.0),
    )
    assert res.run.completed_at is not None


def test_failure_under_background_load():
    """Worst case: the cold trunk dies, leaving only the hot one."""
    res = run_experiment(
        sort_job(input_gb=3.0, num_reducers=10),
        scheduler="pythia",
        ratio=10,
        seed=1,
        fault=trunk_fault(at=20.0, b="trunk1"),
    )
    assert res.run.completed_at is not None


@pytest.mark.parametrize("scheduler", ["ecmp", "pythia"])
def test_failure_runs_are_deterministic(scheduler):
    """Two identical fault runs agree bit-for-bit.

    The fault fires at a timestamp shared with in-flight application
    events; the engine's (time, priority, seq) ordering plus the
    helpers' explicit FAULT_PRIORITY pins the interleaving, so JCT and
    total event count must replay exactly.
    """
    def once():
        res = run_experiment(
            sort_job(input_gb=3.0, num_reducers=6),
            scheduler=scheduler,
            ratio=10,
            seed=1,
            fault=flap(at=10.0, up_at=20.0),
        )
        return res.jct, res.sim.events_processed

    assert once() == once()
