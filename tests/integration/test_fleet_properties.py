"""Property tests for the multi-tenant fleet layer's determinism.

Three contracts the workload layer promises (ISSUE 8):

* a one-job :class:`ClusterWorkload` replays the classic single-job
  path bit-for-bit (same JCT, same event count);
* fleet outcomes are invariant under permutations of the job list when
  arrival times are identical — canonical (arrival, key) submission
  order, not list order, decides everything;
* per-job RNG streams never collide across jobs or tenants (keyed
  ``SeedSequence`` spawns are provably disjoint; this holds the line
  against regressions to draw-an-integer reseeding).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.common import run_cluster_experiment, run_experiment
from repro.workloads.cluster import (
    ClusterJob,
    ClusterWorkload,
    poisson_workload,
    single_job_workload,
)
from repro.workloads.sort import sort_job


def _small_spec(gb: float = 0.3):
    return sort_job(input_gb=gb, num_reducers=2)


@settings(max_examples=4, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    scheduler=st.sampled_from(["ecmp", "pythia"]),
)
def test_one_job_fleet_is_bit_identical_to_solo_run(seed, scheduler):
    solo = run_experiment(_small_spec(), scheduler=scheduler, ratio=5.0, seed=seed)
    fleet = run_cluster_experiment(
        single_job_workload(_small_spec()),
        scheduler=scheduler,
        ratio=5.0,
        seed=seed,
        isolated_baselines=False,
    )
    assert fleet.jct == solo.jct
    assert fleet.sim.events_processed == solo.sim.events_processed
    assert fleet.jobs[0].job_id == solo.run.job_id


@settings(max_examples=5, deadline=None)
@given(
    order=st.permutations(list(range(3))),
    seed=st.integers(min_value=0, max_value=100),
)
def test_fleet_jcts_invariant_under_submission_order(order, seed):
    """Simultaneous arrivals: the jobs list permutation must not matter."""
    sizes = (0.3, 0.45, 0.2)
    jobs = [
        ClusterJob(key=k, tenant=f"tenant-{k % 2}", at=0.0, spec=_small_spec(sizes[k]))
        for k in order
    ]
    permuted = ClusterWorkload(name="perm", jobs=jobs)
    canonical = ClusterWorkload(
        name="perm",
        jobs=sorted(jobs, key=lambda j: j.key),
    )
    a = run_cluster_experiment(
        permuted, scheduler="ecmp", ratio=5.0, seed=seed, isolated_baselines=False
    )
    b = run_cluster_experiment(
        canonical, scheduler="ecmp", ratio=5.0, seed=seed, isolated_baselines=False
    )
    assert [r.job_id for r in a.jobs] == [r.job_id for r in b.jobs]
    assert [r.jct for r in a.jobs] == [r.jct for r in b.jobs]
    assert a.sim.events_processed == b.sim.events_processed


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_per_job_rng_streams_never_collide(seed):
    """Keyed spawn streams stay pairwise distinct across jobs/tenants."""
    wl = poisson_workload(n_jobs=8, arrival_rate=0.5, seed=seed)
    streams = {}
    for job in wl.jobs:
        rng = np.random.default_rng(
            np.random.SeedSequence(seed, spawn_key=(job.key,))
        )
        streams[(job.tenant, job.key)] = tuple(rng.integers(2**63, size=4))
    drawn = list(streams.values())
    assert len(set(drawn)) == len(drawn), "colliding per-job RNG streams"


def test_fleet_jobs_see_distinct_jobtracker_streams():
    """End-to-end: two identical specs in one fleet draw different jitter."""
    spec = _small_spec()
    wl = ClusterWorkload(
        name="twins",
        jobs=[
            ClusterJob(key=0, tenant="a", at=0.0, spec=_small_spec()),
            ClusterJob(key=1, tenant="b", at=0.0, spec=_small_spec()),
        ],
    )
    res = run_cluster_experiment(
        wl, scheduler="ecmp", ratio=None, seed=0, isolated_baselines=False
    )
    a, b = res.jobs
    assert a.spec.num_maps == b.spec.num_maps == spec.num_maps
    durations_a = [t.duration for t in a.maps.values()]
    durations_b = [t.duration for t in b.maps.values()]
    assert durations_a != durations_b
