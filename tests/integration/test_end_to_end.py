"""End-to-end integration tests over the full stack.

These drive complete jobs through topology + network + controller +
Hadoop + instrumentation, asserting the paper's qualitative claims and
cross-cutting invariants rather than per-module behaviour.
"""

import numpy as np
import pytest

from repro.experiments.common import run_experiment
from repro.simnet.topology import leaf_spine
from repro.workloads import make_workload, nutch_indexing_job, sort_job


def small_sort(gb=6.0, reducers=10):
    return sort_job(input_gb=gb, num_reducers=reducers)


def test_all_schedulers_complete_unloaded():
    for sched in ("ecmp", "pythia", "hedera"):
        res = run_experiment(small_sort(), scheduler=sched, ratio=None, seed=3)
        assert res.run.completed_at is not None
        assert res.jct > 0


def test_pythia_beats_ecmp_under_load():
    """The headline claim, at a single loaded operating point."""
    e = run_experiment(small_sort(), scheduler="ecmp", ratio=10, seed=1)
    p = run_experiment(small_sort(), scheduler="pythia", ratio=10, seed=1)
    assert p.jct < e.jct * 0.9, f"pythia {p.jct:.0f}s vs ecmp {e.jct:.0f}s"


def test_pythia_close_to_ecmp_unloaded():
    """Without contention there is nothing to win — but nothing big to
    lose either (the rules still route over shortest paths)."""
    e = run_experiment(small_sort(), scheduler="ecmp", ratio=None, seed=1)
    p = run_experiment(small_sort(), scheduler="pythia", ratio=None, seed=1)
    assert abs(p.jct - e.jct) / e.jct < 0.10


def test_hedera_helps_on_elephants_but_not_on_mice():
    """The §II/§VI comparison, measured honestly.

    On an elephant-dominated sort, an (idealised) reactive global
    rescheduler is competitive with ahead-of-time placement — both
    crush ECMP.  On Nutch's many small flows, Hedera's elephant
    detector never fires and it collapses to ECMP, while Pythia's
    prediction still works — the structural advantage the paper argues.
    """
    sort_jcts = {}
    for sched in ("ecmp", "hedera", "pythia"):
        sort_jcts[sched] = np.mean(
            [
                run_experiment(small_sort(), scheduler=sched, ratio=10, seed=s).jct
                for s in (1, 2)
            ]
        )
    assert sort_jcts["hedera"] < sort_jcts["ecmp"] * 0.8, "reactive must help on elephants"
    assert sort_jcts["pythia"] < sort_jcts["ecmp"] * 0.8
    assert sort_jcts["pythia"] < sort_jcts["hedera"] * 1.25, "prediction stays competitive"

    nutch_jcts = {
        sched: run_experiment(
            nutch_indexing_job(pages=1.5e6), scheduler=sched, ratio=20, seed=1
        ).jct
        for sched in ("ecmp", "hedera", "pythia")
    }
    assert nutch_jcts["hedera"] > nutch_jcts["ecmp"] * 0.95, (
        "small flows evade the elephant detector: Hedera ~ ECMP"
    )
    assert nutch_jcts["pythia"] < nutch_jcts["hedera"] * 0.9, (
        "prediction needs no elephants: Pythia must clearly win"
    )


def test_deterministic_replay():
    a = run_experiment(small_sort(), scheduler="pythia", ratio=10, seed=7)
    b = run_experiment(small_sort(), scheduler="pythia", ratio=10, seed=7)
    assert a.jct == b.jct
    assert a.sim.events_processed == b.sim.events_processed


def test_seed_changes_ecmp_outcome():
    jcts = {
        run_experiment(small_sort(), scheduler="ecmp", ratio=10, seed=s).jct
        for s in (1, 2, 3)
    }
    assert len(jcts) > 1, "ephemeral ports must vary across seeds"


def test_shuffle_bytes_conserved_through_network():
    res = run_experiment(small_sort(), scheduler="pythia", ratio=None, seed=2)
    run = res.run
    remote_wire = sum(f.wire_bytes for f in run.fetches if not f.local)
    measured = sum(res.netflow.total_sourced(s) for s in res.netflow.servers())
    assert measured == pytest.approx(remote_wire, rel=1e-6)


def test_prediction_counts_match_job_shape():
    spec = small_sort()
    res = run_experiment(spec, scheduler="pythia", ratio=None, seed=2)
    assert res.collector is not None
    assert res.collector.predictions_received == spec.num_maps
    assert res.collector.locations_received == spec.num_reducers
    assert res.collector.pending_intents == 0
    # every remote fetch was covered by an installed rule (no races)
    assert res.policy_stats["fallbacks"] <= 0.02 * len(res.run.fetches)


def test_pythia_on_leaf_spine_fabric():
    res = run_experiment(
        sort_job(input_gb=4.0, num_reducers=8),
        scheduler="pythia",
        ratio=None,
        seed=1,
        topology_factory=lambda: leaf_spine(leaves=4, spines=2, hosts_per_leaf=3),
    )
    assert res.run.completed_at is not None
    assert res.policy_stats["rule_hits"] > 0


def test_nutch_flat_sort_not_flat():
    """Figure 3 vs Figure 4's qualitative contrast."""
    nutch_idle = run_experiment(nutch_indexing_job(pages=5e6), "pythia", None, seed=1).jct
    nutch_20 = run_experiment(nutch_indexing_job(pages=5e6), "pythia", 20, seed=1).jct
    sort_idle = run_experiment(make_workload("sort", scale=0.1), "pythia", None, seed=1).jct
    sort_20 = run_experiment(make_workload("sort", scale=0.1), "pythia", 20, seed=1).jct
    nutch_growth = nutch_20 / nutch_idle
    sort_growth = sort_20 / sort_idle
    assert nutch_growth < 1.5, "Pythia must hold Nutch nearly flat"
    assert sort_growth > 2.0, "sort's shuffle must exceed one path's residual"


def test_wordcount_negative_control():
    """A CPU-bound job with a tiny shuffle must be scheduler-insensitive."""
    spec = make_workload("wordcount", scale=0.2)
    e = run_experiment(spec, scheduler="ecmp", ratio=10, seed=1).jct
    spec = make_workload("wordcount", scale=0.2)
    p = run_experiment(spec, scheduler="pythia", ratio=10, seed=1).jct
    assert abs(p - e) / e < 0.15


def test_instrumentation_cost_shows_up_but_small():
    free = run_experiment(small_sort(), "pythia", None, seed=1,
                          model_instrumentation_cost=False).jct
    charged = run_experiment(small_sort(), "pythia", None, seed=1,
                             model_instrumentation_cost=True).jct
    assert charged > free
    assert (charged - free) / free < 0.06  # bounded by the 2-5% CPU band


def test_invalid_scheduler_rejected():
    with pytest.raises(ValueError):
        run_experiment(small_sort(), scheduler="valiant")
