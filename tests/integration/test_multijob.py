"""Multi-job integration: Pythia tracks several jobs' intents at once."""

import numpy as np

from repro.core.config import PythiaConfig
from repro.core.scheduler import PythiaScheduler
from repro.hadoop.cluster import ClusterConfig, HadoopCluster
from repro.hadoop.jobtracker import JobTracker
from repro.instrumentation.decoder import SpillDecoder
from repro.instrumentation.middleware import (
    InstrumentationConfig,
    InstrumentationMiddleware,
)
from repro.sdn.controller import Controller
from repro.simnet.engine import Simulator
from repro.simnet.network import Network
from repro.simnet.topology import two_rack
from repro.workloads import nutch_indexing_job, sort_job


def build_stack(seed=0):
    sim = Simulator()
    topo = two_rack()
    net = Network(sim, topo)
    ctrl = Controller(sim, net)
    sched = PythiaScheduler(PythiaConfig())
    ctrl.register(sched)
    ctrl.start()
    cluster = HadoopCluster(topo, ClusterConfig())
    rng = np.random.default_rng(seed)
    jt = JobTracker(sim, net, cluster, sched.policy, rng)
    InstrumentationMiddleware(
        sim, jt, sched.collector, InstrumentationConfig(decoder=SpillDecoder(0.08)), rng
    )
    return sim, ctrl, sched, jt


def _stop_when_both_done(sim, ctrl, done):
    if len(done) == 2:
        ctrl.stop()
    else:
        sim.schedule(0.5, _stop_when_both_done, sim, ctrl, done)


def test_two_jobs_complete_with_separate_prediction_state():
    sim, ctrl, sched, jt = build_stack()
    done = {}
    a = jt.submit(
        sort_job(input_gb=3.0, num_reducers=8),
        on_complete=lambda r: done.setdefault("a", sim.now),
    )
    b = jt.submit(
        nutch_indexing_job(pages=5e5, num_reducers=8),
        on_complete=lambda r: done.setdefault("b", sim.now),
    )
    sim.schedule(0.5, _stop_when_both_done, sim, ctrl, done)
    sim.run()
    assert set(done) == {"a", "b"}
    assert a.completed_at is not None and b.completed_at is not None
    # predictions for both jobs flowed through one collector, fully bound
    jobs_seen = {e.job for e in sched.collector.log}
    assert jobs_seen == {a.job_id, b.job_id}
    assert a.job_id != b.job_id
    assert sched.collector.pending_intents == 0


def test_concurrent_jobs_slower_than_solo():
    """Sharing slots and trunks must cost something (sanity of contention)."""
    sim, ctrl, sched, jt = build_stack()
    done = {}
    jt.submit(sort_job(input_gb=3.0, num_reducers=8),
              on_complete=lambda r: (done.setdefault("solo", sim.now), ctrl.stop()))
    sim.run()
    solo = done["solo"]

    sim2, ctrl2, sched2, jt2 = build_stack()
    done2 = {}
    jt2.submit(sort_job(input_gb=3.0, num_reducers=8),
               on_complete=lambda r: done2.setdefault("a", sim2.now))
    jt2.submit(sort_job(input_gb=3.0, num_reducers=8, skew_alpha=0.0),
               on_complete=lambda r: done2.setdefault("b", sim2.now))
    sim2.schedule(0.5, _stop_when_both_done, sim2, ctrl2, done2)
    sim2.run()
    assert max(done2.values()) > solo
