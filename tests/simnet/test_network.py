"""Unit tests for the fluid network manager."""

import numpy as np
import pytest

from repro.simnet.engine import Simulator
from repro.simnet.flows import TCP, UDP, FiveTuple, Flow
from repro.simnet.network import Network
from repro.simnet.topology import two_rack

MBps = 1e6


def make_net():
    sim = Simulator()
    topo = two_rack()
    return sim, topo, Network(sim, topo)


def mk_flow(src, dst, size, sport=40000, dport=50060, proto=TCP, rate=None):
    return Flow(
        src=src,
        dst=dst,
        size=size,
        five_tuple=FiveTuple(f"ip-{src}", f"ip-{dst}", sport, dport, proto),
        rigid_rate=rate,
    )


def trunk_path(topo, src, dst, trunk="trunk0"):
    return topo.path_links([src, "tor0", trunk, "tor1", dst])


def test_single_flow_completes_at_line_rate():
    sim, topo, net = make_net()
    f = mk_flow("h00", "h10", 125e6)
    done = []
    net.start_flow(f, trunk_path(topo, "h00", "h10"), on_complete=done.append)
    sim.run()
    assert done == [f]
    assert f.duration == pytest.approx(1.0)
    assert f.bytes_sent == pytest.approx(125e6)


def test_two_flows_share_trunk_fairly():
    sim, topo, net = make_net()
    f1 = mk_flow("h00", "h10", 125e6, sport=1)
    f2 = mk_flow("h01", "h10", 125e6, sport=2)
    net.start_flow(f1, trunk_path(topo, "h00", "h10"))
    net.start_flow(f2, trunk_path(topo, "h01", "h10"))
    sim.run()
    # both share the h10 access link: 2x the time
    assert f1.duration == pytest.approx(2.0)
    assert f2.duration == pytest.approx(2.0)


def test_staggered_arrival_rates_adjust():
    sim, topo, net = make_net()
    f1 = mk_flow("h00", "h10", 125e6, sport=1)
    f2 = mk_flow("h01", "h10", 125e6, sport=2)
    net.start_flow(f1, trunk_path(topo, "h00", "h10"))
    sim.schedule(0.5, lambda: net.start_flow(f2, trunk_path(topo, "h01", "h10")))
    sim.run()
    # f1: 0.5s alone (62.5MB) + shares until done
    assert f1.end_time == pytest.approx(1.5)
    assert f2.end_time == pytest.approx(2.0)


def test_rigid_flow_reduces_elastic_share():
    sim, topo, net = make_net()
    bg = mk_flow("h00", "h10", None, proto=UDP, rate=62.5e6)  # half the trunk
    f = mk_flow("h01", "h10", 62.5e6, sport=7)
    net.start_flow(bg, trunk_path(topo, "h00", "h10"))
    net.start_flow(f, trunk_path(topo, "h01", "h10"))
    sim.run(until=10.0)
    assert f.end_time == pytest.approx(1.0)  # 62.5MB at 62.5MB/s residual
    net.stop_flow(bg)
    sim.run()
    assert bg.end_time is not None


def test_rigid_finite_flow_completes():
    sim, topo, net = make_net()
    bg = mk_flow("h00", "h10", 10e6, proto=UDP, rate=5e6)
    done = []
    net.start_flow(bg, trunk_path(topo, "h00", "h10"), on_complete=done.append)
    sim.run()
    assert done == [bg]
    assert bg.duration == pytest.approx(2.0)


def test_elastic_floor_prevents_starvation():
    sim, topo, net = make_net()
    # rigid overload: 2x the trunk capacity
    bg = mk_flow("h00", "h10", None, proto=UDP, rate=250e6)
    f = mk_flow("h01", "h10", 2.5e6, sport=9)
    net.start_flow(bg, trunk_path(topo, "h00", "h10"))
    net.start_flow(f, trunk_path(topo, "h01", "h10"))
    sim.run(until=5.0)
    assert f.end_time is not None  # floor share (2%) still drains it
    net.stop_flow(bg)
    sim.run()


def test_reroute_moves_traffic():
    sim, topo, net = make_net()
    f1 = mk_flow("h00", "h10", 250e6, sport=1)
    f2 = mk_flow("h01", "h11", 250e6, sport=2)
    net.start_flow(f1, trunk_path(topo, "h00", "h10"))
    net.start_flow(f2, trunk_path(topo, "h01", "h11"))  # same trunk: share
    sim.schedule(1.0, lambda: net.reroute(f2, trunk_path(topo, "h01", "h11", "trunk1")))
    sim.run()
    # after reroute at t=1 both have their own trunk
    assert f1.end_time == pytest.approx(2.5)  # 62.5MB in 1s, then 187.5 at full
    assert f2.end_time == pytest.approx(2.5)


def test_path_validation_rejects_wrong_endpoints():
    sim, topo, net = make_net()
    f = mk_flow("h00", "h10", 1e6)
    with pytest.raises(ValueError):
        net.start_flow(f, trunk_path(topo, "h01", "h10"))


def test_path_validation_rejects_discontiguous():
    sim, topo, net = make_net()
    f = mk_flow("h00", "h10", 1e6)
    p1 = trunk_path(topo, "h00", "h10")
    p2 = trunk_path(topo, "h00", "h10", "trunk1")
    frankenstein = [p1[0], p2[2], p1[3]]
    with pytest.raises(ValueError):
        net.start_flow(f, frankenstein)


def test_double_start_rejected():
    sim, topo, net = make_net()
    f = mk_flow("h00", "h10", 1e6)
    net.start_flow(f, trunk_path(topo, "h00", "h10"))
    with pytest.raises(ValueError):
        net.start_flow(f, trunk_path(topo, "h00", "h10"))


def test_link_failure_stalls_until_reroute():
    sim, topo, net = make_net()
    f = mk_flow("h00", "h10", 125e6)
    net.start_flow(f, trunk_path(topo, "h00", "h10"))
    sim.schedule(0.5, topo.fail_cable, "tor0", "trunk0")
    sim.run(until=3.0)
    assert f.end_time is None  # stalled on the dead path
    assert f.rate == 0.0
    net.reroute(f, trunk_path(topo, "h00", "h10", "trunk1"))
    sim.run()
    assert f.end_time == pytest.approx(3.5)  # 62.5MB left at 125MB/s


def test_flow_hooks_fire():
    sim, topo, net = make_net()
    events = []
    net.add_flow_hook(lambda ev, fl: events.append((ev, fl.fid)))
    f = mk_flow("h00", "h10", 1e6)
    net.start_flow(f, trunk_path(topo, "h00", "h10"))
    sim.run()
    assert ("start", f.fid) in events and ("end", f.fid) in events


def test_link_byte_accounting_matches_flow():
    sim, topo, net = make_net()
    f = mk_flow("h00", "h10", 50e6)
    path = trunk_path(topo, "h00", "h10")
    net.start_flow(f, path)
    sim.run()
    net.sample_counters()
    for lid in path:
        assert topo.links[lid].bytes_carried == pytest.approx(50e6, rel=1e-6)


def test_zero_size_flow_completes_immediately():
    sim, topo, net = make_net()
    f = mk_flow("h00", "h10", 0.0)
    done = []
    net.start_flow(f, trunk_path(topo, "h00", "h10"), on_complete=done.append)
    sim.run()
    assert done == [f]
    assert f.duration == pytest.approx(0.0)


def test_many_concurrent_flows_conserve_bytes():
    sim, topo, net = make_net()
    rng = np.random.default_rng(3)
    flows = []
    for i in range(40):
        src = f"h0{i % 5}"
        dst = f"h1{(i * 3) % 5}"
        f = mk_flow(src, dst, float(rng.uniform(1e6, 5e7)), sport=1000 + i)
        trunk = "trunk0" if i % 2 else "trunk1"
        delay = float(rng.uniform(0, 2))
        sim.schedule(delay, net.start_flow, f, trunk_path(topo, src, dst, trunk))
        flows.append(f)
    sim.run()
    for f in flows:
        assert f.end_time is not None
        assert f.bytes_sent == pytest.approx(f.size, rel=1e-6)
