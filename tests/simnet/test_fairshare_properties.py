"""Hypothesis properties of the max-min fair-share solver.

Progressive filling has a crisp optimality characterisation (the KKT
conditions of weighted max-min fairness): the allocation is feasible,
and every flow is *bottlenecked* — it crosses some saturated link on
which its normalised rate (rate/weight) is maximal.  These tests check
exactly that over random incidence structures, plus the structural
property that the solver cannot care about flow numbering.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet.fairshare import maxmin_rates

#: feasibility slack: relative to each link's residual, plus float dust.
_REL = 1e-6
_ABS = 1e-3


@st.composite
def _instances(draw):
    """A random (residual, paths, weights) fair-share instance."""
    nlinks = draw(st.integers(1, 8))
    residual = np.array(
        [
            draw(st.one_of(st.just(0.0), st.floats(1e3, 1e9, allow_nan=False)))
            for _ in range(nlinks)
        ]
    )
    nflows = draw(st.integers(1, 12))
    paths = [
        draw(
            st.lists(
                st.integers(0, nlinks - 1), min_size=1, max_size=nlinks, unique=True
            )
        )
        for _ in range(nflows)
    ]
    weights = None
    if draw(st.booleans()):
        weights = np.array(
            [draw(st.floats(0.1, 10.0, allow_nan=False)) for _ in range(nflows)]
        )
    return residual, paths, weights


def _solve(instance):
    residual, paths, weights = instance
    rates = maxmin_rates([np.asarray(p) for p in paths], residual, weights=weights)
    loads = np.zeros(residual.shape[0])
    for f, path in enumerate(paths):
        loads[path] += rates[f]
    return rates, loads


@settings(max_examples=80, deadline=None)
@given(_instances())
def test_property_feasible_and_nonnegative(instance):
    """No link ever carries more than its residual capacity."""
    residual, paths, _weights = instance
    rates, loads = _solve(instance)
    assert (rates >= 0.0).all()
    assert (loads <= residual * (1 + _REL) + _ABS).all()


@settings(max_examples=80, deadline=None)
@given(_instances())
def test_property_down_links_strand_their_flows(instance):
    """A flow crossing a zero-residual link gets exactly rate 0."""
    residual, paths, _weights = instance
    rates, _loads = _solve(instance)
    for f, path in enumerate(paths):
        if any(residual[lid] == 0.0 for lid in path):
            assert rates[f] == 0.0


@settings(max_examples=80, deadline=None)
@given(_instances())
def test_property_every_positive_flow_is_bottlenecked(instance):
    """KKT: each served flow saturates a link where its level is maximal.

    ``level`` is the weight-normalised rate.  A flow could only be
    denied a higher rate by a link that is (a) on its path, (b) full,
    and (c) not serving any other flow at a higher level — otherwise
    progressive filling would have kept ramping it.
    """
    residual, paths, weights = instance
    rates, loads = _solve(instance)
    w = weights if weights is not None else np.ones(len(paths))
    levels = rates / w
    for f, path in enumerate(paths):
        if rates[f] <= 0.0:
            continue
        bottlenecked = False
        for lid in path:
            saturated = loads[lid] >= residual[lid] * (1 - _REL) - _ABS
            if not saturated:
                continue
            peers = [g for g, p in enumerate(paths) if lid in p]
            peak = max(levels[g] for g in peers)
            if levels[f] >= peak * (1 - _REL) - _ABS:
                bottlenecked = True
                break
        assert bottlenecked, (
            f"flow {f} (rate {rates[f]:.3f}) has no saturated bottleneck "
            f"on path {path}"
        )


@settings(max_examples=60, deadline=None)
@given(_instances(), st.randoms(use_true_random=False))
def test_property_flow_permutation_invariance(instance, rnd):
    """Renumbering the flows permutes the rates and changes nothing else."""
    residual, paths, weights = instance
    rates, _ = _solve(instance)
    perm = list(range(len(paths)))
    rnd.shuffle(perm)
    p_paths = [paths[i] for i in perm]
    p_weights = weights[perm] if weights is not None else None
    p_rates, _ = _solve((residual, p_paths, p_weights))
    np.testing.assert_allclose(p_rates, rates[perm], rtol=1e-6, atol=_ABS)
