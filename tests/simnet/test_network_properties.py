"""Hypothesis property tests over random flow schedules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet.engine import Simulator
from repro.simnet.flows import TCP, FiveTuple, Flow
from repro.simnet.network import Network
from repro.simnet.topology import two_rack


@st.composite
def _schedules(draw):
    n = draw(st.integers(1, 15))
    flows = []
    for i in range(n):
        src_rack = draw(st.integers(0, 1))
        src = f"h{src_rack}{draw(st.integers(0, 4))}"
        dst = f"h{1 - src_rack}{draw(st.integers(0, 4))}"
        size = draw(st.floats(1.0, 2e8, allow_nan=False))
        start = draw(st.floats(0.0, 5.0, allow_nan=False))
        trunk = draw(st.sampled_from(["trunk0", "trunk1"]))
        flows.append((src, dst, size, start, trunk, 33000 + i))
    return flows


@settings(max_examples=40, deadline=None)
@given(_schedules())
def test_property_all_flows_complete_and_conserve_bytes(schedule):
    sim = Simulator()
    topo = two_rack()
    net = Network(sim, topo)
    flows = []
    for src, dst, size, start, trunk, port in schedule:
        f = Flow(
            src=src,
            dst=dst,
            size=size,
            five_tuple=FiveTuple(f"ip{src}", f"ip{dst}", 50060, port, TCP),
        )
        src_tor = f"tor{topo.nodes[src].rack}"
        dst_tor = f"tor{topo.nodes[dst].rack}"
        path = topo.path_links([src, src_tor, trunk, dst_tor, dst])
        sim.schedule(start, net.start_flow, f, path)
        flows.append(f)
    sim.run(max_events=200_000)
    for f in flows:
        assert f.end_time is not None, "no flow may starve on an idle network"
        assert f.bytes_sent == pytest.approx(f.size, rel=1e-6, abs=1e-2)
        assert f.end_time >= f.start_time
    # per-link accounting: carried bytes equal the sum over flows
    net.sample_counters()
    per_link = np.zeros(len(topo.links))
    for f in flows:
        for lid in f.path:
            per_link[lid] += f.size
    for link in topo.links:
        assert link.bytes_carried == pytest.approx(per_link[link.lid], rel=1e-6, abs=1.0)


@settings(max_examples=20, deadline=None)
@given(_schedules(), st.integers(0, 2**31))
def test_property_replay_is_bit_identical(schedule, seed):
    def run():
        sim = Simulator()
        topo = two_rack()
        net = Network(sim, topo)
        ends = []
        for src, dst, size, start, trunk, port in schedule:
            f = Flow(
                src=src,
                dst=dst,
                size=size,
                five_tuple=FiveTuple(f"ip{src}", f"ip{dst}", 50060, port, TCP),
            )
            src_tor = f"tor{topo.nodes[src].rack}"
            dst_tor = f"tor{topo.nodes[dst].rack}"
            sim.schedule(
                start, net.start_flow, f, topo.path_links([src, src_tor, trunk, dst_tor, dst])
            )
            ends.append(f)
        sim.run(max_events=200_000)
        return [f.end_time for f in ends]

    assert run() == run()
