"""Unit + property tests for the max-min fair-share solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet.fairshare import maxmin_rates, path_available_bandwidth


def _mk(paths, caps):
    return maxmin_rates([np.array(p, dtype=np.intp) for p in paths], np.array(caps, float))


def test_single_flow_gets_bottleneck():
    rates = _mk([[0, 1]], [100.0, 40.0])
    assert rates[0] == pytest.approx(40.0)


def test_two_flows_share_equally():
    rates = _mk([[0], [0]], [100.0])
    assert rates[0] == pytest.approx(50.0)
    assert rates[1] == pytest.approx(50.0)


def test_classic_three_flow_maxmin():
    # flows: A on link0, B on link0+1, C on link1; caps 10, 16
    # A,B share link0 at 5 each; C gets 16-5=11
    rates = _mk([[0], [0, 1], [1]], [10.0, 16.0])
    assert rates[0] == pytest.approx(5.0)
    assert rates[1] == pytest.approx(5.0)
    assert rates[2] == pytest.approx(11.0)


def test_zero_residual_starves_only_crossing_flows():
    rates = _mk([[0], [1]], [0.0, 10.0])
    assert rates[0] == pytest.approx(0.0)
    assert rates[1] == pytest.approx(10.0)


def test_empty_input():
    assert maxmin_rates([], np.array([10.0])).size == 0


def test_bad_link_index_rejected():
    with pytest.raises(IndexError):
        _mk([[5]], [10.0])


def test_path_available_bandwidth():
    load = np.array([10.0, 60.0, 5.0])
    cap = np.array([100.0, 100.0, 100.0])
    assert path_available_bandwidth(load, cap, [0, 1]) == pytest.approx(40.0)


def test_path_available_bandwidth_rejects_empty_path():
    load = np.array([10.0])
    cap = np.array([100.0])
    with pytest.raises(ValueError):
        path_available_bandwidth(load, cap, [])


def test_empty_link_list_rejected_with_flow_index():
    with pytest.raises(ValueError, match="flow 1"):
        maxmin_rates([np.array([0]), np.array([], dtype=np.intp)], np.array([10.0]))


@st.composite
def _fair_share_cases(draw):
    nlinks = draw(st.integers(1, 8))
    nflows = draw(st.integers(1, 12))
    caps = draw(
        st.lists(
            st.floats(0.0, 1e6, allow_nan=False, allow_infinity=False),
            min_size=nlinks,
            max_size=nlinks,
        )
    )
    paths = []
    for _ in range(nflows):
        length = draw(st.integers(1, nlinks))
        path = draw(
            st.lists(st.integers(0, nlinks - 1), min_size=length, max_size=length, unique=True)
        )
        paths.append(path)
    return paths, caps


@settings(max_examples=120, deadline=None)
@given(_fair_share_cases())
def test_property_capacity_never_exceeded(case):
    paths, caps = case
    rates = _mk(paths, caps)
    caps = np.asarray(caps)
    load = np.zeros_like(caps)
    for p, r in zip(paths, rates):
        load[np.asarray(p, dtype=np.intp)] += r
    assert (rates >= -1e-9).all()
    assert (load <= caps * (1 + 1e-6) + 1e-6).all()


@settings(max_examples=120, deadline=None)
@given(_fair_share_cases())
def test_property_every_flow_has_a_saturated_bottleneck(case):
    """Max-min optimality: each flow crosses a link that is (nearly)
    saturated and on which it is among the largest-rate flows."""
    paths, caps = case
    rates = _mk(paths, caps)
    caps = np.asarray(caps, float)
    load = np.zeros_like(caps)
    for p, r in zip(paths, rates):
        load[np.asarray(p, dtype=np.intp)] += r
    for p, r in zip(paths, rates):
        ok = False
        for lid in p:
            saturated = load[lid] >= caps[lid] - max(1e-6 * max(caps[lid], 1.0), 1e-6)
            max_on_link = max(
                (rates[i] for i, q in enumerate(paths) if lid in q), default=0.0
            )
            if saturated and r >= max_on_link - 1e-6 * max(max_on_link, 1.0):
                ok = True
                break
        assert ok, f"flow with rate {r} has no bottleneck link"


@settings(max_examples=60, deadline=None)
@given(_fair_share_cases())
def test_property_deterministic(case):
    paths, caps = case
    a = _mk(paths, caps)
    b = _mk(paths, caps)
    assert np.array_equal(a, b)


def test_many_flows_vectorized_path_is_consistent():
    rng = np.random.default_rng(0)
    nlinks, nflows = 20, 200
    caps = rng.uniform(1e6, 1e8, nlinks)
    paths = [rng.choice(nlinks, size=3, replace=False) for _ in range(nflows)]
    rates = _mk(paths, caps)
    load = np.zeros(nlinks)
    for p, r in zip(paths, rates):
        load[p] += r
    assert (load <= caps * (1 + 1e-9) + 1e-3).all()
    assert rates.min() > 0


# ----------------------------------------------------------------------
# grow-only scratch buffers (hoisted per-settle allocations)
# ----------------------------------------------------------------------

def _random_incidence(rng, nflows, nlinks, npairs):
    pair_flow = rng.integers(0, nflows, size=npairs).astype(np.intp)
    pair_link = rng.integers(0, nlinks, size=npairs).astype(np.intp)
    residual = rng.uniform(1.0, 100.0, size=nlinks)
    return pair_flow, pair_link, residual


def test_scratch_solves_are_bit_identical():
    """scratch= reuses buffers but must never change a single bit of
    the solution, weighted or not, across many random instances."""
    from repro.simnet.fairshare import (
        FairShareScratch,
        maxmin_rates_componentwise,
    )

    rng = np.random.default_rng(11)
    scratch = FairShareScratch()
    for trial in range(25):
        nflows = int(rng.integers(1, 40))
        nlinks = int(rng.integers(1, 20))
        npairs = int(rng.integers(0, 120))
        pf, pl, residual = _random_incidence(rng, nflows, nlinks, npairs)
        weights = rng.uniform(0.1, 5.0, size=nflows) if trial % 2 else None
        plain = maxmin_rates_componentwise(pf, pl, nflows, residual, weights)
        scratched = maxmin_rates_componentwise(
            pf, pl, nflows, residual, weights, scratch=scratch
        )
        assert np.array_equal(plain, np.asarray(scratched)), f"trial {trial}"


def test_scratch_components_are_bit_identical():
    from repro.simnet.fairshare import FairShareScratch, incidence_components

    rng = np.random.default_rng(5)
    scratch = FairShareScratch()
    for _ in range(25):
        nflows = int(rng.integers(1, 30))
        nlinks = int(rng.integers(1, 15))
        npairs = int(rng.integers(0, 90))
        pf, pl, _res = _random_incidence(rng, nflows, nlinks, npairs)
        fc0, lc0, n0 = incidence_components(pf, pl, nflows, nlinks)
        fc1, lc1, n1 = incidence_components(pf, pl, nflows, nlinks, scratch=scratch)
        assert n0 == n1
        assert np.array_equal(fc0, np.asarray(fc1))
        assert np.array_equal(lc0, np.asarray(lc1))


def test_scratch_stops_allocating_once_warm():
    """The no-allocation gate: after a warm-up solve at the working-set
    size, repeated same-size solves must reuse every slab — zero grows,
    stable buffer identities."""
    from repro.simnet.fairshare import (
        FairShareScratch,
        maxmin_rates_componentwise,
    )

    rng = np.random.default_rng(3)
    scratch = FairShareScratch()
    pf, pl, residual = _random_incidence(rng, 32, 16, 100)
    maxmin_rates_componentwise(pf, pl, 32, residual, scratch=scratch)
    warm_ids = scratch.buffer_ids()
    warm_grows = scratch.grows
    for _ in range(10):
        pf, pl, residual = _random_incidence(rng, 32, 16, 100)
        maxmin_rates_componentwise(pf, pl, 32, residual, scratch=scratch)
    assert scratch.grows == warm_grows
    assert scratch.buffer_ids() == warm_ids


def test_scratch_grow_callback_fires():
    from repro.simnet.fairshare import FairShareScratch

    ticks = []
    scratch = FairShareScratch(on_grow=lambda: ticks.append(1))
    scratch.zeros("a", 10)
    scratch.zeros("a", 10)   # reuse, no grow
    scratch.zeros("a", 200)  # doubles
    assert scratch.grows == 2
    assert len(ticks) == 2
