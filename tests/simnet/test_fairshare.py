"""Unit + property tests for the max-min fair-share solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet.fairshare import maxmin_rates, path_available_bandwidth


def _mk(paths, caps):
    return maxmin_rates([np.array(p, dtype=np.intp) for p in paths], np.array(caps, float))


def test_single_flow_gets_bottleneck():
    rates = _mk([[0, 1]], [100.0, 40.0])
    assert rates[0] == pytest.approx(40.0)


def test_two_flows_share_equally():
    rates = _mk([[0], [0]], [100.0])
    assert rates[0] == pytest.approx(50.0)
    assert rates[1] == pytest.approx(50.0)


def test_classic_three_flow_maxmin():
    # flows: A on link0, B on link0+1, C on link1; caps 10, 16
    # A,B share link0 at 5 each; C gets 16-5=11
    rates = _mk([[0], [0, 1], [1]], [10.0, 16.0])
    assert rates[0] == pytest.approx(5.0)
    assert rates[1] == pytest.approx(5.0)
    assert rates[2] == pytest.approx(11.0)


def test_zero_residual_starves_only_crossing_flows():
    rates = _mk([[0], [1]], [0.0, 10.0])
    assert rates[0] == pytest.approx(0.0)
    assert rates[1] == pytest.approx(10.0)


def test_empty_input():
    assert maxmin_rates([], np.array([10.0])).size == 0


def test_bad_link_index_rejected():
    with pytest.raises(IndexError):
        _mk([[5]], [10.0])


def test_path_available_bandwidth():
    load = np.array([10.0, 60.0, 5.0])
    cap = np.array([100.0, 100.0, 100.0])
    assert path_available_bandwidth(load, cap, [0, 1]) == pytest.approx(40.0)


def test_path_available_bandwidth_rejects_empty_path():
    load = np.array([10.0])
    cap = np.array([100.0])
    with pytest.raises(ValueError):
        path_available_bandwidth(load, cap, [])


def test_empty_link_list_rejected_with_flow_index():
    with pytest.raises(ValueError, match="flow 1"):
        maxmin_rates([np.array([0]), np.array([], dtype=np.intp)], np.array([10.0]))


@st.composite
def _fair_share_cases(draw):
    nlinks = draw(st.integers(1, 8))
    nflows = draw(st.integers(1, 12))
    caps = draw(
        st.lists(
            st.floats(0.0, 1e6, allow_nan=False, allow_infinity=False),
            min_size=nlinks,
            max_size=nlinks,
        )
    )
    paths = []
    for _ in range(nflows):
        length = draw(st.integers(1, nlinks))
        path = draw(
            st.lists(st.integers(0, nlinks - 1), min_size=length, max_size=length, unique=True)
        )
        paths.append(path)
    return paths, caps


@settings(max_examples=120, deadline=None)
@given(_fair_share_cases())
def test_property_capacity_never_exceeded(case):
    paths, caps = case
    rates = _mk(paths, caps)
    caps = np.asarray(caps)
    load = np.zeros_like(caps)
    for p, r in zip(paths, rates):
        load[np.asarray(p, dtype=np.intp)] += r
    assert (rates >= -1e-9).all()
    assert (load <= caps * (1 + 1e-6) + 1e-6).all()


@settings(max_examples=120, deadline=None)
@given(_fair_share_cases())
def test_property_every_flow_has_a_saturated_bottleneck(case):
    """Max-min optimality: each flow crosses a link that is (nearly)
    saturated and on which it is among the largest-rate flows."""
    paths, caps = case
    rates = _mk(paths, caps)
    caps = np.asarray(caps, float)
    load = np.zeros_like(caps)
    for p, r in zip(paths, rates):
        load[np.asarray(p, dtype=np.intp)] += r
    for p, r in zip(paths, rates):
        ok = False
        for lid in p:
            saturated = load[lid] >= caps[lid] - max(1e-6 * max(caps[lid], 1.0), 1e-6)
            max_on_link = max(
                (rates[i] for i, q in enumerate(paths) if lid in q), default=0.0
            )
            if saturated and r >= max_on_link - 1e-6 * max(max_on_link, 1.0):
                ok = True
                break
        assert ok, f"flow with rate {r} has no bottleneck link"


@settings(max_examples=60, deadline=None)
@given(_fair_share_cases())
def test_property_deterministic(case):
    paths, caps = case
    a = _mk(paths, caps)
    b = _mk(paths, caps)
    assert np.array_equal(a, b)


def test_many_flows_vectorized_path_is_consistent():
    rng = np.random.default_rng(0)
    nlinks, nflows = 20, 200
    caps = rng.uniform(1e6, 1e8, nlinks)
    paths = [rng.choice(nlinks, size=3, replace=False) for _ in range(nflows)]
    rates = _mk(paths, caps)
    load = np.zeros(nlinks)
    for p, r in zip(paths, rates):
        load[p] += r
    assert (load <= caps * (1 + 1e-9) + 1e-3).all()
    assert rates.min() > 0
