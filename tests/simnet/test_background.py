"""Unit tests for over-subscription background traffic."""

import numpy as np
import pytest

from repro.simnet.background import (
    BackgroundTraffic,
    _path_targets,
    oversubscription_background_rate,
)
from repro.simnet.engine import Simulator
from repro.simnet.network import Network
from repro.simnet.topology import GBPS, two_rack

TRUNK = 2 * GBPS       # two 1G trunks
DEMAND = 5 * GBPS      # five 1G workers per rack


def test_rate_none_and_low_ratio_is_zero():
    topo = two_rack()
    assert oversubscription_background_rate(topo, None) == 0.0
    # nominal over-subscription is already 1:2.5 -> no traffic needed
    assert oversubscription_background_rate(topo, 2) == 0.0
    assert oversubscription_background_rate(topo, 2.5) == 0.0


@pytest.mark.parametrize("ratio", [5, 10, 20])
def test_rate_matches_effective_capacity(ratio):
    topo = two_rack()
    rate = oversubscription_background_rate(topo, ratio)
    expected = min(TRUNK - DEMAND / ratio, 0.96 * TRUNK)
    assert rate == pytest.approx(expected)


def test_rate_ignores_generator_uplinks():
    with_gen = oversubscription_background_rate(two_rack(), 10)
    without = oversubscription_background_rate(two_rack(traffic_generators=False), 10)
    assert with_gen == pytest.approx(without)


def test_path_targets_split_and_cap():
    targets = _path_targets([100.0, 100.0], total=150.0, imbalance=0.6)
    assert sum(targets) == pytest.approx(150.0)
    assert targets[0] == pytest.approx(90.0)  # 0.6 share
    assert targets[0] <= 96.0 + 1e-9
    # overload: want 120 on path0, capped at 96, spill to path1
    targets = _path_targets([100.0, 100.0], total=190.0, imbalance=0.63)
    assert targets[0] == pytest.approx(96.0)
    assert sum(targets) == pytest.approx(190.0)


def test_path_targets_rejects_empty():
    with pytest.raises(ValueError):
        _path_targets([], 10.0, 0.6)


def test_populate_loads_trunks_unevenly_and_not_workers():
    sim = Simulator()
    topo = two_rack()
    net = Network(sim, topo)
    bg = BackgroundTraffic(net, np.random.default_rng(0))
    flows = bg.populate(10)
    assert flows
    # trunk links carry rigid load, unevenly
    t0 = [l for l in topo.links if l.src == "tor0" and l.dst == "trunk0"][0]
    t1 = [l for l in topo.links if l.src == "tor0" and l.dst == "trunk1"][0]
    assert t0.rigid_rate > t1.rigid_rate > 0
    assert t0.rigid_rate + t1.rigid_rate == pytest.approx(
        oversubscription_background_rate(topo, 10)
    )
    # worker access links carry none of it
    for h in topo.worker_hosts():
        for link in topo.up_links_from(h.name):
            assert link.rigid_rate == 0.0


def test_populate_none_is_noop():
    sim = Simulator()
    topo = two_rack()
    net = Network(sim, topo)
    bg = BackgroundTraffic(net, np.random.default_rng(0))
    assert bg.populate(None) == []
    assert all(l.rigid_rate == 0.0 for l in topo.links)


def test_teardown_clears_load_and_queue():
    sim = Simulator()
    topo = two_rack()
    net = Network(sim, topo)
    bg = BackgroundTraffic(net, np.random.default_rng(0))
    bg.populate(20)
    bg.teardown()
    assert all(l.rigid_rate == pytest.approx(0.0) for l in topo.links)
    sim.run()  # queue must drain (no immortal events)
    assert sim.pending == 0


def test_both_directions_loaded():
    sim = Simulator()
    topo = two_rack()
    net = Network(sim, topo)
    BackgroundTraffic(net, np.random.default_rng(0)).populate(10)
    fwd = [l for l in topo.links if l.src == "tor0" and l.dst.startswith("trunk")]
    rev = [l for l in topo.links if l.dst == "tor0" and l.src.startswith("trunk")]
    assert sum(l.rigid_rate for l in fwd) > 0
    assert sum(l.rigid_rate for l in rev) > 0
