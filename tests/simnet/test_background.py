"""Unit tests for over-subscription background traffic."""

import numpy as np
import pytest

from repro.simnet.background import (
    BackgroundTraffic,
    _path_targets,
    oversubscription_background_rate,
)
from repro.simnet.engine import Simulator
from repro.simnet.network import Network
from repro.simnet.topology import GBPS, two_rack

TRUNK = 2 * GBPS       # two 1G trunks
DEMAND = 5 * GBPS      # five 1G workers per rack


def test_rate_none_and_low_ratio_is_zero():
    topo = two_rack()
    assert oversubscription_background_rate(topo, None) == 0.0
    # nominal over-subscription is already 1:2.5 -> no traffic needed
    assert oversubscription_background_rate(topo, 2) == 0.0
    assert oversubscription_background_rate(topo, 2.5) == 0.0


@pytest.mark.parametrize("ratio", [5, 10, 20])
def test_rate_matches_effective_capacity(ratio):
    topo = two_rack()
    rate = oversubscription_background_rate(topo, ratio)
    expected = min(TRUNK - DEMAND / ratio, 0.96 * TRUNK)
    assert rate == pytest.approx(expected)


def test_rate_ignores_generator_uplinks():
    with_gen = oversubscription_background_rate(two_rack(), 10)
    without = oversubscription_background_rate(two_rack(traffic_generators=False), 10)
    assert with_gen == pytest.approx(without)


def test_path_targets_split_and_cap():
    targets = _path_targets([100.0, 100.0], total=150.0, imbalance=0.6)
    assert sum(targets) == pytest.approx(150.0)
    assert targets[0] == pytest.approx(90.0)  # 0.6 share
    assert targets[0] <= 96.0 + 1e-9
    # overload: want 120 on path0, capped at 96, spill to path1
    targets = _path_targets([100.0, 100.0], total=190.0, imbalance=0.63)
    assert targets[0] == pytest.approx(96.0)
    assert sum(targets) == pytest.approx(190.0)


def test_path_targets_rejects_empty():
    with pytest.raises(ValueError):
        _path_targets([], 10.0, 0.6)


def test_populate_loads_trunks_unevenly_and_not_workers():
    sim = Simulator()
    topo = two_rack()
    net = Network(sim, topo)
    bg = BackgroundTraffic(net, np.random.default_rng(0))
    flows = bg.populate(10)
    assert flows
    # trunk links carry rigid load, unevenly
    t0 = [l for l in topo.links if l.src == "tor0" and l.dst == "trunk0"][0]
    t1 = [l for l in topo.links if l.src == "tor0" and l.dst == "trunk1"][0]
    assert t0.rigid_rate > t1.rigid_rate > 0
    assert t0.rigid_rate + t1.rigid_rate == pytest.approx(
        oversubscription_background_rate(topo, 10)
    )
    # worker access links carry none of it
    for h in topo.worker_hosts():
        for link in topo.up_links_from(h.name):
            assert link.rigid_rate == 0.0


def test_populate_none_is_noop():
    sim = Simulator()
    topo = two_rack()
    net = Network(sim, topo)
    bg = BackgroundTraffic(net, np.random.default_rng(0))
    assert bg.populate(None) == []
    assert all(l.rigid_rate == 0.0 for l in topo.links)


def test_teardown_clears_load_and_queue():
    sim = Simulator()
    topo = two_rack()
    net = Network(sim, topo)
    bg = BackgroundTraffic(net, np.random.default_rng(0))
    bg.populate(20)
    bg.teardown()
    assert all(l.rigid_rate == pytest.approx(0.0) for l in topo.links)
    sim.run()  # queue must drain (no immortal events)
    assert sim.pending == 0


def test_both_directions_loaded():
    sim = Simulator()
    topo = two_rack()
    net = Network(sim, topo)
    BackgroundTraffic(net, np.random.default_rng(0)).populate(10)
    fwd = [l for l in topo.links if l.src == "tor0" and l.dst.startswith("trunk")]
    rev = [l for l in topo.links if l.dst == "tor0" and l.src.startswith("trunk")]
    assert sum(l.rigid_rate for l in fwd) > 0
    assert sum(l.rigid_rate for l in rev) > 0


def test_teardown_is_idempotent():
    sim = Simulator()
    topo = two_rack()
    net = Network(sim, topo)
    bg = BackgroundTraffic(net, np.random.default_rng(0))
    bg.populate(10)
    bg.teardown()
    assert bg.torn_down
    bg.teardown()  # second call must be a no-op, not a double-stop crash
    assert all(l.rigid_rate == pytest.approx(0.0) for l in topo.links)
    sim.run()
    assert sim.pending == 0


def test_teardown_skips_individually_stopped_flows():
    sim = Simulator()
    topo = two_rack()
    net = Network(sim, topo)
    bg = BackgroundTraffic(net, np.random.default_rng(0))
    flows = bg.populate(10)
    net.stop_flow(flows[0])  # chaos or the experiment stopped one early
    bg.teardown()            # must skip it rather than re-stop it
    assert all(not f.active for f in bg.started_flows)


def test_schedule_ramp_steps_add_load():
    from repro.simnet.background import BackgroundRamp

    sim = Simulator()
    topo = two_rack()
    net = Network(sim, topo)
    bg = BackgroundTraffic(net, np.random.default_rng(0))
    ramp = BackgroundRamp(at=1.0, duration=4.0, rate=40e6, steps=4, path_index=1)
    bg.schedule_ramp(sim, ramp)
    trunk1 = [l for l in topo.links if l.src == "tor0" and l.dst == "trunk1"][0]
    sim.run(until=0.5)
    assert trunk1.rigid_rate == pytest.approx(0.0)
    sim.run(until=1.5)  # first step at t=1.0
    assert trunk1.rigid_rate == pytest.approx(10e6)
    sim.run(until=4.5)  # steps at 2.0, 3.0, 4.0
    assert trunk1.rigid_rate == pytest.approx(40e6)
    assert all(f.tags.get("ramp") for f in bg.started_flows)


def test_schedule_ramp_rejects_zero_steps():
    from repro.simnet.background import BackgroundRamp

    sim = Simulator()
    net = Network(sim, two_rack())
    bg = BackgroundTraffic(net, np.random.default_rng(0))
    with pytest.raises(ValueError):
        bg.schedule_ramp(sim, BackgroundRamp(at=0.0, duration=1.0, rate=1e6, steps=0))


def test_ramp_steps_after_teardown_are_dropped():
    from repro.simnet.background import BackgroundRamp

    sim = Simulator()
    topo = two_rack()
    net = Network(sim, topo)
    bg = BackgroundTraffic(net, np.random.default_rng(0))
    bg.schedule_ramp(sim, BackgroundRamp(at=1.0, duration=4.0, rate=40e6, steps=4))
    sim.run(until=2.5)  # two steps landed
    bg.teardown()
    sim.run()           # remaining steps fire into a torn-down source
    assert all(l.rigid_rate == pytest.approx(0.0) for l in topo.links)
    assert sim.pending == 0


def test_invariant_checker_flags_teardown_survivor():
    from repro.faults import runtime as faults_runtime
    from repro.faults.invariants import InvariantChecker

    sim = Simulator()
    topo = two_rack()
    net = Network(sim, topo)
    checker = InvariantChecker(strict=False)
    with faults_runtime.use_checker(checker):
        bg = BackgroundTraffic(net, np.random.default_rng(0))  # auto-registers
    bg.populate(10)
    # simulate a buggy teardown: flag flipped but streams left running
    bg._torn_down = True
    problems = checker.check()
    assert any("after teardown" in p for p in problems)
    bg._torn_down = False
    bg.teardown()
    assert not checker._check_background(bg)
