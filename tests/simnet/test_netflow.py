"""Unit tests for the NetFlow measurement pipeline."""

import pytest

from repro.simnet.engine import Simulator
from repro.simnet.flows import SHUFFLE_PORT, TCP, UDP, FiveTuple, Flow
from repro.simnet.netflow import NetFlowCollector
from repro.simnet.network import Network
from repro.simnet.topology import two_rack


def mk_shuffle(src, dst, size, dport=45555):
    return Flow(
        src=src,
        dst=dst,
        size=size,
        five_tuple=FiveTuple(f"ip-{src}", f"ip-{dst}", SHUFFLE_PORT, dport, TCP),
    )


def trunk_path(topo, src, dst, trunk="trunk0"):
    return topo.path_links([src, "tor0", trunk, "tor1", dst])


def test_cumulative_series_monotone_and_complete():
    sim = Simulator()
    topo = two_rack()
    net = Network(sim, topo)
    nf = NetFlowCollector(sim, net, interval=0.25)
    f1 = mk_shuffle("h00", "h10", 50e6)
    f2 = mk_shuffle("h00", "h11", 25e6, dport=45556)
    net.start_flow(f1, trunk_path(topo, "h00", "h10"))
    net.start_flow(f2, trunk_path(topo, "h00", "h11"))
    sim.run()
    times, cum = nf.series("h00")
    assert len(times) > 2
    assert (cum[1:] >= cum[:-1]).all(), "cumulative series must be monotone"
    assert cum[-1] == pytest.approx(75e6, rel=1e-6)
    assert nf.total_sourced("h00") == pytest.approx(75e6, rel=1e-6)


def test_non_shuffle_traffic_ignored():
    sim = Simulator()
    topo = two_rack()
    net = Network(sim, topo)
    nf = NetFlowCollector(sim, net)
    f = Flow(
        src="h00",
        dst="h10",
        size=10e6,
        five_tuple=FiveTuple("a", "b", 40000, 5001, UDP),
    )
    net.start_flow(f, trunk_path(topo, "h00", "h10"))
    sim.run()
    assert nf.servers() == []


def test_traffic_matrix():
    sim = Simulator()
    topo = two_rack()
    net = Network(sim, topo)
    nf = NetFlowCollector(sim, net)
    net.start_flow(mk_shuffle("h00", "h10", 10e6), trunk_path(topo, "h00", "h10"))
    net.start_flow(mk_shuffle("h01", "h10", 20e6), trunk_path(topo, "h01", "h10"))
    sim.run()
    m = nf.traffic_matrix()
    assert m[("h00", "h10")] == pytest.approx(10e6, rel=1e-6)
    assert m[("h01", "h10")] == pytest.approx(20e6, rel=1e-6)


def test_sampler_stops_when_idle():
    sim = Simulator()
    topo = two_rack()
    net = Network(sim, topo)
    NetFlowCollector(sim, net, interval=0.5)
    net.start_flow(mk_shuffle("h00", "h10", 1e6), trunk_path(topo, "h00", "h10"))
    sim.run()
    assert sim.pending == 0, "netflow ticker must not outlive the flows"
