"""Unit tests for flow records and five-tuples."""

import pytest

from repro.simnet.flows import (
    SHUFFLE_PORT,
    TCP,
    UDP,
    FiveTuple,
    Flow,
    make_five_tuple,
)


def mk(sport=SHUFFLE_PORT, dport=42000, rate=None, size=10.0):
    return Flow(
        src="a",
        dst="b",
        size=size,
        five_tuple=FiveTuple("10.0.0", "10.1.0", sport, dport, TCP),
        rigid_rate=rate,
    )


def test_flow_ids_unique_and_hash_by_identity():
    f1, f2 = mk(), mk()
    assert f1.fid != f2.fid
    assert f1 != f2
    assert len({f1, f2}) == 2


def test_elastic_vs_rigid():
    assert mk().elastic
    assert not mk(rate=100.0).elastic


def test_is_shuffle_source_or_destination_port():
    assert mk(sport=SHUFFLE_PORT, dport=42000).is_shuffle()
    assert mk(sport=42000, dport=SHUFFLE_PORT).is_shuffle()
    assert not mk(sport=42000, dport=42001).is_shuffle()


def test_lifecycle_properties():
    f = mk()
    assert not f.active
    assert f.duration is None
    f.start_time = 1.0
    assert f.active
    f.end_time = 3.5
    assert not f.active
    assert f.duration == pytest.approx(2.5)


def test_make_five_tuple_defaults():
    ft = make_five_tuple("10.0.0", "10.1.0", src_port=50060)
    assert ft.dst_port == SHUFFLE_PORT
    assert ft.proto == TCP
    assert make_five_tuple("a", "b", src_port=1, proto=UDP).proto == UDP


def test_default_weight_is_one():
    assert mk().weight == 1.0
