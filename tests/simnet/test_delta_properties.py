"""Hypothesis property: delta water-filling == from-scratch recompute.

The tentpole claim of the topology-local engine is that scoped settles
(re-solving only the connected components a mutation touched, freezing
rates elsewhere) produce *bit-identical* state to a full-fabric solve
at every instant.  These properties drive random mutation sequences —
arrivals, completions, reroutes (with and without pause), link
failures and restores — through two engines sharing one event script,
one with ``delta=True`` and one with ``delta=False``, on all four
topology generators, and require exact float equality of every flow's
rate/remaining/bytes_sent at every probe point and of every completion
time at the end.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet.engine import Simulator
from repro.simnet.flows import TCP, FiveTuple, Flow
from repro.simnet.network import Network
from repro.simnet.paths import KPathCache
from repro.simnet.topology import fat_tree, leaf_spine, three_tier, two_rack

_GENERATORS = {
    "two_rack": lambda: two_rack(),
    "leaf_spine": lambda: leaf_spine(4, 2),
    "three_tier": lambda: three_tier(2, 2, 2),
    "fat_tree": lambda: fat_tree(4),
}


@st.composite
def _scripts(draw):
    """A generator name plus an abstract mutation script.

    The script is topology-independent: host/path/link choices are
    indices resolved against the concrete fabric at run time, so one
    draw replays identically on both engines.
    """
    gen = draw(st.sampled_from(sorted(_GENERATORS)))
    nflows = draw(st.integers(2, 12))
    flows = [
        {
            "src_i": draw(st.integers(0, 10**6)),
            "dst_i": draw(st.integers(0, 10**6)),
            "path_i": draw(st.integers(0, 3)),
            "size": draw(st.floats(1e4, 5e8, allow_nan=False)),
            "start": draw(st.floats(0.0, 4.0, allow_nan=False)),
        }
        for _ in range(nflows)
    ]
    reroutes = [
        {
            "flow": draw(st.integers(0, nflows - 1)),
            "path_i": draw(st.integers(0, 3)),
            "at": draw(st.floats(0.1, 6.0, allow_nan=False)),
            "pause": draw(st.sampled_from([0.0, 0.0, 0.05])),
        }
        for _ in range(draw(st.integers(0, 4)))
    ]
    faults = [
        {
            "link_i": draw(st.integers(0, 10**6)),
            "at": draw(st.floats(0.1, 5.0, allow_nan=False)),
            "restore_after": draw(st.sampled_from([None, 0.5, 2.0])),
        }
        for _ in range(draw(st.integers(0, 2)))
    ]
    probes = sorted(draw(st.floats(0.1, 8.0, allow_nan=False)) for _ in range(3))
    return gen, flows, reroutes, faults, probes


def _run_script(gen, flows, reroutes, faults, probes, delta):
    topo = _GENERATORS[gen]()
    sim = Simulator()
    net = Network(sim, topo, delta=delta)
    cache = KPathCache(topo, 4)
    hosts = [h.name for h in topo.hosts()]
    live: list[Flow] = []
    for i, spec in enumerate(flows):
        src = hosts[spec["src_i"] % len(hosts)]
        dst = hosts[spec["dst_i"] % len(hosts)]
        if src == dst:
            dst = hosts[(spec["dst_i"] + 1) % len(hosts)]
        paths = cache.paths_links(src, dst)
        lids = paths[spec["path_i"] % len(paths)]
        f = Flow(
            src=src,
            dst=dst,
            size=spec["size"],
            five_tuple=FiveTuple(f"ip{src}", f"ip{dst}", 50060, 31000 + i, TCP),
        )
        sim.schedule(spec["start"], net.start_flow, f, lids)
        live.append(f)

    def do_reroute(idx, path_i, pause):
        f = live[idx]
        if not f.active:
            return
        paths = cache.paths_links(f.src, f.dst)
        if not paths:
            return  # fabric degraded below reachability
        try:
            net.reroute(f, paths[path_i % len(paths)], pause=pause)
        except ValueError:
            pass  # new path crosses a down link — same outcome both engines

    for r in reroutes:
        sim.schedule(r["at"], do_reroute, r["flow"], r["path_i"], r["pause"])
    # fail inter-switch cables only (failing a host's access link can
    # permanently starve it, which is legal but makes dull examples)
    trunk_links = [
        l for l in topo.links if not l.src.startswith("h") and not l.dst.startswith("h")
    ]
    for spec in faults:
        link = trunk_links[spec["link_i"] % len(trunk_links)]
        sim.schedule(spec["at"], topo.fail_cable, link.src, link.dst)
        if spec["restore_after"] is not None:
            sim.schedule(
                spec["at"] + spec["restore_after"], topo.restore_cable, link.src, link.dst
            )

    snapshots = []

    def probe():
        snapshots.append([(f.rate, f.remaining, f.bytes_sent) for f in live])

    for at in probes:
        sim.schedule(at, probe)
    sim.run(until=600.0, max_events=300_000)
    final = [(f.end_time, f.rate, f.remaining, f.bytes_sent) for f in live]
    return snapshots, final, sim.events_processed


@settings(max_examples=25, deadline=None)
@given(_scripts())
def test_property_delta_settles_bitwise_equal_full_recompute(script):
    gen, flows, reroutes, faults, probes = script
    snaps_d, final_d, events_d = _run_script(gen, flows, reroutes, faults, probes, True)
    snaps_f, final_f, events_f = _run_script(gen, flows, reroutes, faults, probes, False)
    assert events_d == events_f, "delta mode may not change the event schedule"
    assert snaps_d == snaps_f, "mid-run rates must match the full solve bit-for-bit"
    assert final_d == final_f, "final flow state must match the full solve bit-for-bit"


@settings(max_examples=10, deadline=None)
@given(_scripts())
def test_property_delta_scope_is_component_closed(script):
    """Every scoped settle's links are exactly its slots' link closure."""
    gen, flows, reroutes, faults, probes = script
    topo = _GENERATORS[gen]()
    sim = Simulator()
    net = Network(sim, topo, delta=True)
    cache = KPathCache(topo, 4)
    hosts = [h.name for h in topo.hosts()]
    for i, spec in enumerate(flows):
        src = hosts[spec["src_i"] % len(hosts)]
        dst = hosts[spec["dst_i"] % len(hosts)]
        if src == dst:
            dst = hosts[(spec["dst_i"] + 1) % len(hosts)]
        paths = cache.paths_links(src, dst)
        f = Flow(
            src=src,
            dst=dst,
            size=spec["size"],
            five_tuple=FiveTuple(f"ip{src}", f"ip{dst}", 50060, 32000 + i, TCP),
        )
        sim.schedule(spec["start"], net.start_flow, f, paths[spec["path_i"] % len(paths)])

    scoped_seen = []

    def audit(network):
        scope = network.last_settle_scope
        if scope is None or scope["full"]:
            return
        arena = network._arena
        links = set(scope["links"].tolist())
        for s in scope["slots"].tolist():
            start = int(arena.pair_start[s])
            cnt = int(arena.pair_count[s])
            slot_links = set(arena.pair_link[start: start + cnt].tolist())
            assert slot_links <= links, "scoped slot crosses an out-of-scope link"
        scoped_seen.append(len(links))

    net.add_settle_hook(audit)
    sim.run(until=600.0, max_events=300_000)
    assert scoped_seen, "a multi-settle run must exercise scoped solves"


def test_delta_off_env_var(monkeypatch):
    monkeypatch.setenv("REPRO_DELTA", "off")
    sim = Simulator()
    net = Network(sim, two_rack())
    assert net._delta is False
    monkeypatch.delenv("REPRO_DELTA")
    net2 = Network(Simulator(), two_rack())
    assert net2._delta is True


def test_scoped_settle_freezes_other_components():
    """Admitting a flow in one pod must not rewrite rates elsewhere."""
    topo = fat_tree(4)
    sim = Simulator()
    net = Network(sim, topo, delta=True)
    cache = KPathCache(topo, 4)
    hosts = [h.name for h in topo.hosts()]
    a = Flow(src=hosts[0], dst=hosts[1], size=1e9,
             five_tuple=FiveTuple("a", "b", 50060, 1, TCP))
    net.start_flow(a, cache.paths_links(hosts[0], hosts[1])[0])
    net.settle()
    rate_a = net._arena.rate[a._slot]
    # admit in the last pod: disjoint component
    b = Flow(src=hosts[-1], dst=hosts[-2], size=1e9,
             five_tuple=FiveTuple("c", "d", 50060, 2, TCP))
    net.start_flow(b, cache.paths_links(hosts[-1], hosts[-2])[0])
    net.settle()
    scope = net.last_settle_scope
    assert not scope["full"]
    assert b._slot in scope["slots"].tolist()
    assert a._slot not in scope["slots"].tolist()
    assert net._arena.rate[a._slot] == rate_a
    assert np.all(np.asarray(scope["links"]) >= 0)
