"""Unit tests for link state and byte accounting."""

import pytest

from repro.simnet.links import Link


def test_rates_and_utilization():
    link = Link(lid=0, src="a", dst="b", capacity=100.0)
    assert link.utilization == 0.0
    link.rigid_rate = 30.0
    link.elastic_rate = 50.0
    assert link.total_rate == pytest.approx(80.0)
    assert link.utilization == pytest.approx(0.8)
    link.elastic_rate = 90.0
    assert link.utilization == 1.0  # clamped


def test_residual_floor_under_overload():
    link = Link(lid=0, src="a", dst="b", capacity=100.0)
    link.rigid_rate = 250.0
    assert link.residual == pytest.approx(Link.ELASTIC_FLOOR * 100.0)
    link.rigid_rate = 40.0
    assert link.residual == pytest.approx(60.0)


def test_advance_integrates_bytes():
    link = Link(lid=0, src="a", dst="b", capacity=100.0)
    link.elastic_rate = 10.0
    link.advance(2.0)
    assert link.bytes_carried == pytest.approx(20.0)
    link.rigid_rate = 5.0
    link.advance(4.0)
    assert link.bytes_carried == pytest.approx(20.0 + 15.0 * 2.0)
    link.advance(4.0)  # no time passed: no change
    assert link.bytes_carried == pytest.approx(50.0)


def test_zero_capacity_utilization():
    link = Link(lid=0, src="a", dst="b", capacity=0.0)
    assert link.utilization == 0.0
