"""Unit tests for topology model and builders."""

import pytest

from repro.simnet.topology import GBPS, NodeKind, Topology, fat_tree, leaf_spine, two_rack


def make_triangle():
    topo = Topology()
    topo.add_switch("s0")
    topo.add_switch("s1")
    topo.add_host("a", ip="10.0.0")
    topo.add_host("b", ip="10.0.1")
    topo.add_cable("a", "s0", GBPS)
    topo.add_cable("s0", "s1", GBPS)
    topo.add_cable("s1", "b", GBPS)
    return topo


def test_cable_creates_two_directed_links():
    topo = make_triangle()
    assert len(topo.links_between("a", "s0")) == 1
    assert len(topo.links_between("s0", "a")) == 1


def test_duplicate_node_rejected():
    topo = Topology()
    topo.add_host("a", ip="10.0.0")
    with pytest.raises(ValueError):
        topo.add_host("a", ip="10.0.1")


def test_link_to_unknown_node_rejected():
    topo = Topology()
    topo.add_host("a", ip="10.0.0")
    with pytest.raises(KeyError):
        topo.add_cable("a", "ghost", GBPS)


def test_path_links_and_back():
    topo = make_triangle()
    lids = topo.path_links(["a", "s0", "s1", "b"])
    assert len(lids) == 3
    assert topo.path_nodes(lids) == ["a", "s0", "s1", "b"]


def test_path_links_rejects_gap():
    topo = make_triangle()
    with pytest.raises(ValueError):
        topo.path_links(["a", "s1"])


def test_fail_cable_notifies_observers_and_blocks_path():
    topo = make_triangle()
    events = []
    topo.observe(lambda link: events.append((link.key(), link.up)))
    topo.fail_cable("s0", "s1")
    assert (("s0", "s1"), False) in events
    assert (("s1", "s0"), False) in events
    with pytest.raises(ValueError):
        topo.path_links(["a", "s0", "s1", "b"])
    topo.restore_cable("s0", "s1")
    assert topo.path_links(["a", "s0", "s1", "b"])


def test_host_by_ip():
    topo = make_triangle()
    assert topo.host_by_ip("10.0.1").name == "b"
    with pytest.raises(KeyError):
        topo.host_by_ip("1.2.3.4")


def test_two_rack_shape():
    topo = two_rack()
    workers = topo.worker_hosts()
    assert len(workers) == 10
    assert len(topo.generator_hosts()) == 2
    # two distinct trunk paths between opposite-rack hosts
    assert {n.name for n in topo.switches()} >= {"tor0", "tor1", "trunk0", "trunk1"}
    racks = {h.rack for h in workers}
    assert racks == {0, 1}


def test_two_rack_without_generators():
    topo = two_rack(traffic_generators=False)
    assert topo.generator_hosts() == []
    assert len(topo.hosts()) == 10


def test_leaf_spine_shape():
    topo = leaf_spine(leaves=3, spines=2, hosts_per_leaf=2)
    assert len(topo.worker_hosts()) == 6
    # every leaf connects to every spine
    for leaf in range(3):
        for spine in range(2):
            assert topo.links_between(f"leaf{leaf}", f"spine{spine}")


def test_fat_tree_host_count():
    k = 4
    topo = fat_tree(k)
    assert len(topo.hosts()) == k**3 // 4
    with pytest.raises(ValueError):
        fat_tree(3)


def test_generator_hosts_not_workers():
    topo = two_rack()
    names = {h.name for h in topo.worker_hosts()}
    assert "bg0" not in names and "bg1" not in names
    assert topo.nodes["bg0"].kind is NodeKind.HOST
